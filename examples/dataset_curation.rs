//! The curation workflow behind the paper's *separability* and *shared
//! dictionary* requirements (§I): domain experts cut and combine SMILES
//! databases. With ZSMILES, compressed archives can be sliced and
//! concatenated **without decompressing**, because every line stands alone
//! and every archive speaks the same dictionary — the two things a
//! file-based compressor (bzip2) structurally cannot offer.
//!
//! ```text
//! cargo run --release --example dataset_curation
//! ```

use molgen::{profiles, Dataset};
use textcomp::bzip;
use zsmiles_core::{Compressor, Decompressor, DictBuilder, LineIndex};

fn main() {
    // Two decks from different vendors, one shared dictionary trained on a
    // third, independent corpus — the input-independence the paper insists
    // on (FSST would need a new table per file).
    let vendor_a = Dataset::generate(profiles::MEDIATE, 8_000, 100);
    let vendor_b = Dataset::generate(profiles::EXSCALATE, 8_000, 200);
    let reference = Dataset::generate_mixed(8_000, 300);
    let dict = DictBuilder::default()
        .train(reference.iter())
        .expect("train");

    let mut archive_a = Vec::new();
    let sa = Compressor::new(&dict).compress_buffer(vendor_a.as_bytes(), &mut archive_a);
    let mut archive_b = Vec::new();
    let sb = Compressor::new(&dict).compress_buffer(vendor_b.as_bytes(), &mut archive_b);
    println!(
        "vendor A: ratio {:.3} | vendor B: ratio {:.3} (shared dictionary, trained on \
         neither)",
        sa.ratio(),
        sb.ratio()
    );

    // --- Cut: keep every 4th molecule of A (a diversity subset). ---------
    let idx_a = LineIndex::build(&archive_a);
    let mut subset = Vec::new();
    for i in (0..idx_a.len()).step_by(4) {
        subset.extend_from_slice(idx_a.line(&archive_a, i));
        subset.push(b'\n');
    }
    println!(
        "cut: {} of {} compressed lines spliced out without decompression",
        idx_a.len().div_ceil(4),
        idx_a.len()
    );

    // --- Combine: append B's archive verbatim. ----------------------------
    let mut combined = subset.clone();
    combined.extend_from_slice(&archive_b);
    let idx_c = LineIndex::build(&combined);
    println!("combine: merged archive has {} lines", idx_c.len());

    // The combined archive decompresses with the same dictionary.
    let mut restored = Vec::new();
    Decompressor::new(&dict)
        .decompress_buffer(&combined, &mut restored)
        .expect("combined archive decompresses cleanly");
    let restored_ds = Dataset::from_bytes(&restored);
    assert_eq!(restored_ds.len(), idx_c.len());
    for line in restored_ds.iter() {
        smiles::validate::full_check(line).expect("every curated molecule is valid SMILES");
    }
    println!(
        "verified: all {} curated molecules decompress to valid SMILES",
        idx_c.len()
    );

    // --- The readable-output requirement, demonstrated. -------------------
    let sample = idx_c.line(&combined, 0);
    let printable = sample
        .iter()
        .filter(|&&b| b.is_ascii_graphic() || b >= 0x80)
        .count();
    println!(
        "\nfirst compressed line ({} bytes, {} displayable): {:?}",
        sample.len(),
        printable,
        String::from_utf8_lossy(sample)
    );

    // --- Contrast with the file-based baseline. ----------------------------
    let bz = bzip::compress(vendor_a.as_bytes());
    println!(
        "\nbzip2-like on vendor A: ratio {:.3} — better, but cutting line 4k of it \
         requires decompressing everything before line 4k, and the bytes are binary",
        bz.len() as f64 / vendor_a.total_bytes() as f64
    );
}
