//! The paper's motivating workflow (§I): an extreme-scale virtual
//! screening campaign stores its chemical library and its scored output in
//! compressed form, then domain experts *sample* the archive — pulling a
//! handful of top hits out of terabytes — without decompressing the rest.
//!
//! This example runs the whole loop at laptop scale on the `vscreen`
//! substrate:
//! 1. generate a screening deck,
//! 2. screen it against two targets in parallel (deterministic surrogate
//!    scorer — ligand-pocket pairs are independent, the paper's
//!    embarrassing parallelism),
//! 3. archive the deck compressed with a shared dictionary + line index,
//! 4. persist the score tables as readable TSV,
//! 5. random-access exactly the top-k lines per target from the archive.
//!
//! ```text
//! cargo run --release --example virtual_screening_pipeline
//! ```

use molgen::Dataset;
use vscreen::{ro5_filter, screen_parallel, top_hits, Archive, Pocket, ScoreTable, StorageModel};
use zsmiles_core::DictBuilder;

fn main() {
    const DECK: usize = 20_000;
    const TOP_K: usize = 10;

    // 1. The chemical library, gated by the standard drug-likeness filter
    //    (campaigns curate before they store).
    let raw = Dataset::generate_mixed(DECK, 7);
    let kept = ro5_filter(&raw);
    let mut deck = Dataset::new();
    for &i in &kept {
        deck.push(raw.line(i));
    }
    println!(
        "library: {} of {} ligands pass Lipinski Ro5, {} bytes",
        deck.len(),
        raw.len(),
        deck.total_bytes()
    );

    // 2. Screen against two different targets (polypharmacology: the paper
    //    notes campaigns evaluate compounds against multiple proteins).
    let targets = [Pocket::from_seed(0xD0C5EED), Pocket::from_seed(0xBEEF)];
    let tables: Vec<ScoreTable> = targets
        .iter()
        .map(|pocket| screen_parallel(&deck, pocket, 4))
        .collect();

    // 3. Cold-storage archive: shared dictionary + compressed deck + index.
    let dict = DictBuilder::default().train(deck.iter()).expect("train");
    let archive = Archive::build(&dict, deck.as_bytes());
    let storage = StorageModel::MARCONI100;
    println!(
        "archive: ratio {:.3} — a {:.0} TB campaign would shrink to {:.1} TB ({:.1} TB saved)",
        archive.ratio(),
        storage.raw_tb,
        storage.compressed_tb(archive.ratio()),
        storage.saved_tb(archive.ratio()),
    );

    // 4. Scored output as a readable side table (the campaign's product).
    let mut tsv = Vec::new();
    tables[0].write_tsv(&mut tsv).expect("serialize scores");
    let reloaded = ScoreTable::read_tsv(&tsv[..]).expect("reload scores");
    assert_eq!(&reloaded, &tables[0], "score table round-trips exactly");
    println!(
        "score table: {} rows, {} bytes TSV, mean score {:.2}",
        reloaded.len(),
        tsv.len(),
        reloaded.mean()
    );

    // 5. Per-target hit retrieval — k random-access reads each.
    for (t, (pocket, table)) in targets.iter().zip(&tables).enumerate() {
        println!(
            "\ntarget {t} (seed {:#x}) — top {TOP_K} hits:",
            pocket.seed()
        );
        let hits = top_hits(&archive, table, TOP_K).expect("fetch hits");
        let mut bytes_touched = 0usize;
        for hit in &hits {
            bytes_touched += archive.compressed_line(hit.index).len();
            smiles::validate::full_check(&hit.smiles).expect("hit is valid SMILES");
            println!(
                "  #{:>6}  score {:7.2}  {}",
                hit.index,
                hit.score,
                String::from_utf8_lossy(&hit.smiles)
            );
        }
        println!(
            "  bytes read: {} of {} ({:.4}% of the archive) — the random-access \
             property the paper designs for",
            bytes_touched,
            archive.as_bytes().len(),
            bytes_touched as f64 / archive.as_bytes().len() as f64 * 100.0
        );
    }
}
