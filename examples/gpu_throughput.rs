//! Run the ZSMILES kernels on the SIMT simulator and print the modeled
//! device timeline — where the time goes on an A100-class pipeline and why
//! the paper calls the workload memory-bound.
//!
//! ```text
//! cargo run --release --example gpu_throughput
//! ```

use molgen::Dataset;
use simt::{A100_LIKE, SCRATCH_FS};
use zsmiles_core::DictBuilder;
use zsmiles_gpu::{compress, decompress, GpuOptions};

fn main() {
    let deck = Dataset::generate_mixed(3_000, 0x6F0);
    let dict = DictBuilder::default().train(deck.iter()).expect("train");

    println!(
        "deck: {} molecules, {} bytes\n",
        deck.len(),
        deck.total_bytes()
    );

    // ---- compression kernel ----------------------------------------------
    let run = compress(&dict, deck.as_bytes(), &GpuOptions::default());
    let kt = A100_LIKE.kernel_time(&run.report);
    let pt = A100_LIKE.pipeline_time(&run.report, run.in_bytes, run.out_bytes, &SCRATCH_FS);
    println!(
        "compression kernel ({} blocks of one warp each):",
        run.report.blocks
    );
    println!(
        "  instructions {:>12}   shuffles {:>10}   ld/st transactions {}/{}",
        run.report.total.instructions,
        run.report.total.shuffles,
        run.report.total.load_transactions,
        run.report.total.store_transactions
    );
    println!(
        "  modeled kernel: compute {:.3} ms vs memory {:.3} ms -> {}",
        kt.compute_s * 1e3,
        kt.memory_s * 1e3,
        if kt.is_memory_bound() {
            "memory-bound"
        } else {
            "compute-bound"
        }
    );
    print_pipeline("compression", &pt);

    // ---- decompression kernel ---------------------------------------------
    let drun = decompress(&dict, &run.output, &GpuOptions::default()).expect("decompress");
    let dkt = A100_LIKE.kernel_time(&drun.report);
    let dpt = A100_LIKE.pipeline_time(&drun.report, drun.in_bytes, drun.out_bytes, &SCRATCH_FS);
    println!("\ndecompression kernel:");
    println!(
        "  instructions {:>12}   shuffles {:>10} (prefix sums for write offsets)",
        drun.report.total.instructions, drun.report.total.shuffles
    );
    println!(
        "  modeled kernel: compute {:.3} ms vs memory {:.3} ms -> {}",
        dkt.compute_s * 1e3,
        dkt.memory_s * 1e3,
        if dkt.is_memory_bound() {
            "memory-bound"
        } else {
            "compute-bound"
        }
    );
    print_pipeline("decompression", &dpt);

    println!(
        "\nthe paper's conclusion, reproduced: end-to-end both pipelines spend \
         {:.0}% / {:.0}% of their time on I/O — \"additional C++ or CUDA \
         optimizations have a reduced impact on performance\" (§V-C)",
        pt.io_fraction() * 100.0,
        dpt.io_fraction() * 100.0
    );
}

fn print_pipeline(name: &str, pt: &simt::PipelineTime) {
    println!(
        "  {name} pipeline: read {:.2} ms | h2d {:.2} ms | kernel {:.3} ms | d2h {:.2} ms \
         | write {:.2} ms  (I/O fraction {:.0}%)",
        pt.read_s * 1e3,
        pt.h2d_s * 1e3,
        pt.kernel_s * 1e3,
        pt.d2h_s * 1e3,
        pt.write_s * 1e3,
        pt.io_fraction() * 100.0
    );
}
