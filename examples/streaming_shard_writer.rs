//! Out-of-core writing: stream a deck through the `ArchiveWriter` in
//! bounded memory, then shard the same deck into a `.zsm` manifest and
//! read it back through the layout-blind `DeckReader`.
//!
//! ```console
//! cargo run --release --example streaming_shard_writer
//! ```

use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::{
    ArchiveWriter, CountingSink, DeckReader, DictBuilder, FileSink, ShardPolicy, ShardedWriter,
    WriterOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 60k-ligand deck that will be streamed, never held by the writer.
    let deck = molgen::Dataset::generate_mixed(60_000, 0x5EED);
    let dict = AnyDictionary::Base(Box::new(
        DictBuilder {
            preprocess: false,
            ..Default::default()
        }
        .train(deck.iter())?,
    ));
    let dir = std::env::temp_dir().join("zsmiles_example_shard_writer");
    std::fs::create_dir_all(&dir)?;

    // Single-file pack through a metering sink with a 256 KiB batch
    // budget: the container is megabytes, the writer's buffering is not.
    let opts = WriterOptions {
        threads: 4,
        batch_bytes: 256 << 10,
    };
    let sink = CountingSink::new(FileSink::create(&dir.join("deck.zsa"))?);
    let mut writer = ArchiveWriter::with_options(sink, dict.clone(), opts)?;
    for chunk in deck.as_bytes().chunks(100_000) {
        writer.write(chunk)?;
    }
    let (sink, info) = writer.finish()?;
    println!(
        "single file: {} lines, {} payload bytes in {} appends — peak writer buffer {} bytes",
        info.lines,
        info.payload_bytes,
        sink.appends(),
        info.peak_buffered_bytes,
    );

    // The same deck as a manifest plus 10k-line shards.
    let mut sharder = ShardedWriter::create(
        &dir.join("deck.zsm"),
        dict,
        ShardPolicy::by_lines(10_000),
        opts,
    )?;
    for chunk in deck.as_bytes().chunks(100_000) {
        sharder.write(chunk)?;
    }
    let pack = sharder.finish()?;
    println!(
        "sharded: {} lines across {} shards (ratio {:.3})",
        pack.lines,
        pack.shards.len(),
        pack.stats.ratio(),
    );

    // One read surface for either layout, dispatched by file magic.
    for name in ["deck.zsa", "deck.zsm"] {
        let reader = DeckReader::open(&dir.join(name))?;
        let line = reader.get(31_415)?;
        println!(
            "{name}: {} shard(s), get(31415) = {}",
            reader.shard_count(),
            String::from_utf8_lossy(&line),
        );
        assert_eq!(line, deck.line(31_415));
        // A hit list straddling shard boundaries.
        let hits = reader.get_many(&[9_999, 10_000, 59_999, 0])?;
        assert_eq!(hits.len(), 4);
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
