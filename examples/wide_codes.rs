//! The wide-code extension in action: how much is code space worth beyond
//! the paper's 222-code ceiling?
//!
//! Trains the paper's one-byte dictionary and a widened one (two-byte
//! codes behind page prefixes) on the same deck, compares ratios, and
//! shows that the extension keeps every design requirement: displayable
//! bytes, one line per molecule, random access.
//!
//! ```text
//! cargo run --release --example wide_codes
//! ```

use molgen::Dataset;
use zsmiles_core::{
    Compressor, DictBuilder, LineIndex, WideCompressor, WideDecompressor, WideDictBuilder,
};

fn main() {
    let deck = Dataset::generate_mixed(20_000, 0x51DE);
    println!(
        "deck: {} ligands, {} bytes\n",
        deck.len(),
        deck.total_bytes()
    );

    // The paper's dictionary: one-byte codes only.
    let base = DictBuilder::default()
        .train(deck.iter())
        .expect("train base");
    let mut zb = Vec::new();
    let sb = Compressor::new(&base).compress_buffer(deck.as_bytes(), &mut zb);
    println!(
        "paper dictionary : {:>4} codes              ratio {:.3}",
        base.len(),
        sb.ratio()
    );

    // The widened dictionary: same Algorithm 1, more room.
    for wide_size in [256usize, 1024] {
        let wide = WideDictBuilder {
            base: DictBuilder::default(),
            wide_size,
        }
        .train(deck.iter())
        .expect("train wide");
        let mut zw = Vec::new();
        let sw = WideCompressor::new(&wide).compress_buffer(deck.as_bytes(), &mut zw);
        println!(
            "wide dictionary  : {:>4} + {:>4} codes       ratio {:.3}  ({:+.1}% vs paper)",
            wide.base_len(),
            wide.wide_len(),
            sw.ratio(),
            (sw.ratio() / sb.ratio() - 1.0) * 100.0
        );

        if wide_size == 1024 {
            // Requirements survive: readable bytes, separable lines,
            // random access into the wide archive.
            assert!(zw
                .iter()
                .all(|&b| b == b'\n' || b == b' ' || (0x21..=0x7E).contains(&b) || b >= 0x80));
            let index = LineIndex::build(&zw);
            assert_eq!(index.len(), deck.len());
            let dec = WideDecompressor::new(&wide);
            let mut one = Vec::new();
            dec.decompress_line(index.line(&zw, 777), &mut one)
                .expect("random access");
            println!(
                "\nline 777 pulled from the wide archive ({} compressed bytes):\n  {}",
                index.line(&zw, 777).len(),
                String::from_utf8_lossy(&one)
            );
        }
    }

    println!(
        "\nthe price: every wide hit costs 2 output bytes, so gains concentrate in\n\
         long tail patterns Algorithm 1 could not fit into one-byte space —\n\
         see `cargo run -p bench --bin ablation_wide` for the full sweep."
    );
}
