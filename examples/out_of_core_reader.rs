//! Out-of-core random access: pack a deck into a `.zsa`, reopen it
//! through the file-backed [`ArchiveReader`], and meter exactly how many
//! bytes a line fetch touches.
//!
//! ```console
//! cargo run --release --example out_of_core_reader
//! ```

use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::{Archive, ArchiveReader, CountingSource, DictBuilder, FileSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 50k-ligand deck, packed once into a single self-describing file.
    let deck = molgen::Dataset::generate_mixed(50_000, 0xDECC);
    let dict = DictBuilder {
        preprocess: false,
        ..Default::default()
    }
    .train(deck.iter())?;
    let archive = Archive::pack(AnyDictionary::Base(Box::new(dict)), deck.as_bytes(), 4);
    let path = std::env::temp_dir().join("zsmiles_example_out_of_core.zsa");
    archive.save(&path)?;
    let file_bytes = std::fs::metadata(&path)?.len();

    // Reopen out-of-core: only metadata is transferred at open.
    let source = CountingSource::new(FileSource::open(&path)?);
    let reader = ArchiveReader::from_source(source)?;
    println!(
        "opened {} lines ({} bytes on disk): read {} metadata bytes, payload untouched",
        reader.len(),
        file_bytes,
        reader.source().bytes_read()
    );

    // A single fetch costs one positioned read of one line's range.
    reader.source().reset();
    let smiles = reader.get(31_415)?;
    println!(
        "get(31415) = {} — {} bytes transferred in {} read(s)",
        String::from_utf8_lossy(&smiles),
        reader.source().bytes_read(),
        reader.source().reads()
    );

    // A contiguous hit batch is one read and one decoder worker.
    reader.source().reset();
    let hits = reader.get_range(40_000..40_100)?;
    println!(
        "get_range(40000..40100) = {} lines — {} bytes in {} read(s)",
        hits.len(),
        reader.source().bytes_read(),
        reader.source().reads()
    );

    // Full streaming pass in bounded memory, for completeness.
    let mut restored = Vec::new();
    let stats = reader.unpack_to(&mut restored, 4, 1 << 20)?;
    assert_eq!(restored, deck.as_bytes());
    println!(
        "streamed unpack: {} lines restored byte-for-byte",
        stats.lines
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
