//! Quickstart: train a shared dictionary, compress a deck, random-access
//! one molecule, decompress everything, verify.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use molgen::{profiles, Dataset};
use zsmiles_core::{Compressor, Decompressor, DictBuilder, LineIndex};

fn main() {
    // 1. A seeded synthetic screening deck (drug-like profile).
    let deck = Dataset::generate(profiles::MEDIATE, 5_000, 42);
    println!(
        "deck: {} molecules, {} bytes ({})",
        deck.len(),
        deck.total_bytes(),
        molgen::stats(&deck).summary()
    );

    // 2. Train a dictionary with the paper's defaults (pre-processing on,
    //    SMILES-alphabet pre-population, Lmin=2, Lmax=8).
    let dict = DictBuilder::default()
        .train(deck.iter())
        .expect("training succeeds");
    println!(
        "dictionary: {} multi-byte patterns + {} identity codes",
        dict.pattern_entries().count(),
        dict.prepopulation().identity_bytes().len()
    );

    // 3. Compress. Output is readable text, one molecule per line.
    let mut compressed = Vec::new();
    let stats = Compressor::new(&dict).compress_buffer(deck.as_bytes(), &mut compressed);
    println!(
        "compressed: {} -> {} bytes, ratio {:.3}",
        stats.in_bytes,
        stats.out_bytes,
        stats.ratio()
    );

    // 4. Random access: pull out molecule #4242 without touching the rest.
    let index = LineIndex::build(&compressed);
    let one = index
        .decompress_line_at(&dict, &compressed, 4242)
        .expect("decompress line");
    println!("molecule #4242: {}", String::from_utf8_lossy(&one));
    smiles::validate::full_check(&one).expect("valid SMILES");

    // 5. Full decompression round trip.
    let mut restored = Vec::new();
    Decompressor::new(&dict)
        .decompress_buffer(&compressed, &mut restored)
        .expect("decompress");
    let restored_ds = Dataset::from_bytes(&restored);
    assert_eq!(restored_ds.len(), deck.len());
    for (orig, back) in deck.iter().zip(restored_ds.iter()) {
        // Decompression returns the ring-renumbered (pre-processed) form:
        // different bytes, same molecule.
        let a = smiles::parser::parse(orig).expect("original parses");
        let b = smiles::parser::parse(back).expect("restored parses");
        assert_eq!(a.signature(), b.signature(), "same molecule");
    }
    println!("round trip verified: all {} molecules intact", deck.len());
}
