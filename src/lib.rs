//! # zsmiles — umbrella crate
//!
//! Re-exports the whole ZSMILES reproduction workspace behind one
//! dependency. See the README for the architecture map and
//! `DESIGN.md`/`EXPERIMENTS.md` for the paper-reproduction ledger.
//!
//! * [`zsmiles_core`] — the compressor itself (dictionaries, engines,
//!   random-access index, streaming I/O);
//! * [`smiles`] — SMILES lexer/parser/writer and the ring-ID
//!   pre-processing transform;
//! * [`molgen`] — seeded synthetic screening decks;
//! * [`textcomp`] — from-scratch baselines (bzip2-like, LZ77+Huffman,
//!   FSST, SHOCO, SMAZ);
//! * [`simt`] + [`zsmiles_gpu`] — the CUDA-substitute simulator and the
//!   warp-synchronous kernels;
//! * [`vscreen`] — the virtual-screening workload on top (surrogate
//!   docking, scored decks, archive sampling).
//!
//! # Example
//!
//! ```
//! use zsmiles::molgen::Dataset;
//! use zsmiles::zsmiles_core::{Compressor, Decompressor, Dictionary, LineIndex};
//!
//! // The built-in shared dictionary ships inside the library, so the
//! // zero-setup path needs no training step at all.
//! let dict = Dictionary::builtin();
//! let deck = Dataset::generate_mixed(500, 7);
//!
//! let mut archive = Vec::new();
//! let stats = Compressor::new(dict).compress_buffer(deck.as_bytes(), &mut archive);
//! assert!(stats.ratio() < 0.6);
//!
//! // Random access into the archive.
//! let index = LineIndex::build(&archive);
//! let one = index.decompress_line_at(dict, &archive, 123).unwrap();
//! zsmiles::smiles::validate::full_check(&one).unwrap();
//!
//! // Full round trip restores every molecule (in pre-processed spelling).
//! let mut restored = Vec::new();
//! Decompressor::new(dict).decompress_buffer(&archive, &mut restored).unwrap();
//! assert_eq!(
//!     restored.iter().filter(|&&b| b == b'\n').count(),
//!     archive.iter().filter(|&&b| b == b'\n').count()
//! );
//! ```

pub use molgen;
pub use simt;
pub use smiles;
pub use textcomp;
pub use vscreen;
pub use zsmiles_core;
pub use zsmiles_gpu;
