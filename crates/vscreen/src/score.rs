//! Score tables: the campaign output that "decorates the input with the
//! strength of their interactions" (paper §I).
//!
//! Scores are kept as a side table aligned with the deck's line numbers —
//! the deck itself stays pure SMILES and compresses with the shared
//! dictionary, while the table ships as small readable TSV. This split is
//! what lets the archive keep the paper's readable/random-access
//! properties.

use std::io::{BufRead, BufReader, Read, Write};

/// Per-ligand scores, indexed by deck line number.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScoreTable {
    scores: Vec<f64>,
}

impl ScoreTable {
    pub fn new(scores: Vec<f64>) -> ScoreTable {
        ScoreTable { scores }
    }

    pub fn len(&self) -> usize {
        self.scores.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Score of deck line `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.scores[i]
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.scores
    }

    /// Line numbers of the `k` best-scoring ligands, best first. Ties
    /// break toward the smaller line number, so selection is total and
    /// deterministic.
    pub fn top_k(&self, k: usize) -> Vec<(usize, f64)> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx.into_iter().map(|i| (i, self.scores[i])).collect()
    }

    /// The score at the `p`-th percentile (0.0–1.0), by nearest rank.
    /// Returns `None` on an empty table.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.scores.is_empty() {
            return None;
        }
        let mut sorted = self.scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((p.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Mean score (0.0 on an empty table).
    pub fn mean(&self) -> f64 {
        if self.scores.is_empty() {
            0.0
        } else {
            self.scores.iter().sum::<f64>() / self.scores.len() as f64
        }
    }

    /// Write as TSV: `line_index<TAB>score`, one row per ligand. Scores
    /// are printed with enough digits to round-trip `f64` exactly.
    pub fn write_tsv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for (i, s) in self.scores.iter().enumerate() {
            // {:?} on f64 is the shortest representation that re-parses to
            // the same bits.
            writeln!(w, "{i}\t{s:?}")?;
        }
        Ok(())
    }

    /// Parse the TSV format. Rows must be dense and in order (the table is
    /// an array, not a map).
    pub fn read_tsv<R: Read>(r: R) -> Result<ScoreTable, String> {
        let mut scores = Vec::new();
        for (ln, line) in BufReader::new(r).lines().enumerate() {
            let line = line.map_err(|e| e.to_string())?;
            if line.is_empty() {
                continue;
            }
            let (idx, val) = line
                .split_once('\t')
                .ok_or_else(|| format!("row {ln}: missing tab"))?;
            let idx: usize = idx.parse().map_err(|_| format!("row {ln}: bad index"))?;
            if idx != scores.len() {
                return Err(format!(
                    "row {ln}: expected index {}, got {idx}",
                    scores.len()
                ));
            }
            let val: f64 = val.parse().map_err(|_| format!("row {ln}: bad score"))?;
            scores.push(val);
        }
        Ok(ScoreTable { scores })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_best_first_and_breaks_ties_by_index() {
        let t = ScoreTable::new(vec![1.0, 5.0, 5.0, -2.0, 7.0]);
        let top = t.top_k(3);
        assert_eq!(top, vec![(4, 7.0), (1, 5.0), (2, 5.0)]);
        assert_eq!(t.top_k(0), vec![]);
        assert_eq!(t.top_k(99).len(), 5, "k larger than table clamps");
    }

    #[test]
    fn percentile_and_mean() {
        let t = ScoreTable::new(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.percentile(0.0), Some(0.0));
        assert_eq!(t.percentile(1.0), Some(4.0));
        assert_eq!(t.percentile(0.5), Some(2.0));
        assert!((t.mean() - 2.0).abs() < 1e-12);
        assert_eq!(ScoreTable::default().percentile(0.5), None);
        assert_eq!(ScoreTable::default().mean(), 0.0);
    }

    #[test]
    fn tsv_round_trips_exactly() {
        let t = ScoreTable::new(vec![1.5, -0.25, 1e-10, 12345.6789, f64::MIN_POSITIVE]);
        let mut buf = Vec::new();
        t.write_tsv(&mut buf).unwrap();
        let back = ScoreTable::read_tsv(&buf[..]).unwrap();
        assert_eq!(back, t, "f64 bits survive the text format");
    }

    #[test]
    fn tsv_rejects_malformed_rows() {
        assert!(
            ScoreTable::read_tsv("0 1.5\n".as_bytes()).is_err(),
            "no tab"
        );
        assert!(
            ScoreTable::read_tsv("1\t1.5\n".as_bytes()).is_err(),
            "gap in indices"
        );
        assert!(
            ScoreTable::read_tsv("0\tbanana\n".as_bytes()).is_err(),
            "bad float"
        );
        assert!(
            ScoreTable::read_tsv("x\t1.5\n".as_bytes()).is_err(),
            "bad index"
        );
    }

    #[test]
    fn empty_tsv_is_empty_table() {
        let t = ScoreTable::read_tsv("".as_bytes()).unwrap();
        assert!(t.is_empty());
    }
}
