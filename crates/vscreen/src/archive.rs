//! Cold-storage archives: a thin screening-workload view over the
//! self-describing `.zsa` container ([`zsmiles_core::archive::Archive`]).
//!
//! The paper's random-access requirement, made concrete: compressed line
//! *i* is ligand *i*, and the container's embedded line index turns that
//! into O(1) byte-range reads — a query for k hits touches k compressed
//! lines, not the archive. Since the container also embeds the dictionary,
//! an [`Archive`] is one value (and on disk, one file) rather than the
//! deck/dictionary/sidecar triple earlier revisions juggled.

use std::path::Path;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::{CompressStats, Dictionary, ZsmilesError};

/// A compressed, indexed, self-describing SMILES deck.
#[derive(Debug, Clone)]
pub struct Archive {
    inner: zsmiles_core::Archive,
    stats: CompressStats,
}

impl Archive {
    /// Compress `deck_bytes` (newline-separated SMILES) with `dict` and
    /// index the result. The dictionary is embedded in the archive.
    pub fn build(dict: &Dictionary, deck_bytes: &[u8]) -> Archive {
        Archive::build_any(AnyDictionary::Base(Box::new(dict.clone())), deck_bytes, 1)
    }

    /// [`Archive::build`] for either dictionary flavour, on `threads`
    /// workers.
    pub fn build_any(dict: AnyDictionary, deck_bytes: &[u8], threads: usize) -> Archive {
        let inner = zsmiles_core::Archive::pack(dict, deck_bytes, threads);
        let stats = *inner.stats().expect("freshly packed archives carry stats");
        Archive { inner, stats }
    }

    /// Number of ligands stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Compression ratio achieved (compressed / original payload).
    pub fn ratio(&self) -> f64 {
        self.stats.ratio()
    }

    /// Compression accounting.
    pub fn stats(&self) -> &CompressStats {
        &self.stats
    }

    /// The raw compressed payload (what cold storage holds beside the
    /// container metadata).
    pub fn as_bytes(&self) -> &[u8] {
        self.inner.payload()
    }

    /// The underlying container.
    pub fn container(&self) -> &zsmiles_core::Archive {
        &self.inner
    }

    /// The compressed bytes of ligand `i` — the unit a random-access read
    /// transfers.
    pub fn compressed_line(&self, i: usize) -> &[u8] {
        self.inner
            .compressed_line(i)
            .expect("ligand index out of range")
    }

    /// Decompress ligand `i` back to SMILES using the embedded dictionary.
    pub fn fetch(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        self.inner.get(i)
    }

    /// Decompress a contiguous run of ligands — one decoder worker for
    /// the whole batch instead of one per fetch.
    pub fn fetch_range(&self, lines: std::ops::Range<usize>) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        self.inner.get_range(lines)
    }

    /// Decompress an arbitrary hit list (scored winners are rarely
    /// contiguous), in the order given, with one decoder worker.
    pub fn fetch_many(&self, indices: &[usize]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        self.inner.get_many(indices)
    }

    /// Persist as a single `.zsa` file.
    pub fn save(&self, path: &Path) -> Result<(), ZsmilesError> {
        self.inner.save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molgen::Dataset;
    use zsmiles_core::DictBuilder;

    fn setup() -> (Dataset, Archive) {
        let deck = Dataset::generate_mixed(300, 11);
        let dict = DictBuilder::default().train(deck.iter()).unwrap();
        let archive = Archive::build(&dict, deck.as_bytes());
        (deck, archive)
    }

    #[test]
    fn archive_preserves_line_count_and_compresses() {
        let (deck, archive) = setup();
        assert_eq!(archive.len(), deck.len());
        assert!(archive.ratio() < 0.7, "ratio {}", archive.ratio());
        assert!(!archive.is_empty());
    }

    #[test]
    fn fetch_returns_the_right_molecule() {
        let (deck, archive) = setup();
        for i in [0usize, 1, 7, 150, 299] {
            let got = archive.fetch(i).unwrap();
            // Preprocessing renumbers ring IDs; compare molecules.
            assert_eq!(
                smiles::parser::parse(&got).unwrap().signature(),
                smiles::parser::parse(deck.line(i)).unwrap().signature(),
                "line {i}"
            );
        }
    }

    #[test]
    fn random_access_touches_only_the_requested_lines() {
        let (_, archive) = setup();
        let total: usize = archive.as_bytes().len();
        let touched: usize = [3usize, 42, 260]
            .iter()
            .map(|&i| archive.compressed_line(i).len())
            .sum();
        assert!(
            touched * 10 < total,
            "3 lines should be far less than the archive ({touched} vs {total})"
        );
    }

    #[test]
    fn batched_fetches_match_singles() {
        let (_, archive) = setup();
        let singles: Vec<Vec<u8>> = (40..60).map(|i| archive.fetch(i).unwrap()).collect();
        assert_eq!(archive.fetch_range(40..60).unwrap(), singles);
        let scattered = [7usize, 299, 0, 150, 150];
        let many = archive.fetch_many(&scattered).unwrap();
        for (&i, got) in scattered.iter().zip(&many) {
            assert_eq!(got, &archive.fetch(i).unwrap(), "index {i}");
        }
        assert!(archive.fetch_range(290..301).is_err());
        assert!(archive.fetch_many(&[300]).is_err());
    }

    #[test]
    fn empty_deck_builds_empty_archive() {
        let deck = Dataset::generate_mixed(50, 1);
        let dict = DictBuilder::default().train(deck.iter()).unwrap();
        let archive = Archive::build(&dict, b"");
        assert!(archive.is_empty());
        assert_eq!(archive.len(), 0);
    }

    #[test]
    fn archive_survives_a_disk_round_trip_as_one_file() {
        let (deck, archive) = setup();
        let path = std::env::temp_dir().join("vscreen_archive_test.zsa");
        archive.save(&path).unwrap();
        // Reopen with no dictionary or sidecar at hand: self-describing.
        let reopened = zsmiles_core::Archive::open(&path).unwrap();
        assert_eq!(reopened.len(), deck.len());
        let got = reopened.get(42).unwrap();
        assert_eq!(
            smiles::parser::parse(&got).unwrap().signature(),
            smiles::parser::parse(deck.line(42)).unwrap().signature()
        );
        std::fs::remove_file(&path).ok();
    }
}
