//! Cold-storage archives: a compressed deck plus its line-offset index.
//!
//! The paper's random-access requirement, made concrete: compressed line
//! *i* is ligand *i*, and a [`LineIndex`] turns that into O(1) byte-range
//! reads — a query for k hits touches k compressed lines, not the archive.

use zsmiles_core::{CompressStats, Compressor, Dictionary, LineIndex, ZsmilesError};

/// A compressed, indexed SMILES deck.
#[derive(Debug, Clone)]
pub struct Archive {
    bytes: Vec<u8>,
    index: LineIndex,
    stats: CompressStats,
}

impl Archive {
    /// Compress `deck_bytes` (newline-separated SMILES) with `dict` and
    /// index the result.
    pub fn build(dict: &Dictionary, deck_bytes: &[u8]) -> Archive {
        let mut bytes = Vec::with_capacity(deck_bytes.len() / 2);
        let stats = Compressor::new(dict).compress_buffer(deck_bytes, &mut bytes);
        let index = LineIndex::build(&bytes);
        Archive { bytes, index, stats }
    }

    /// Number of ligands stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Compression ratio achieved (compressed / original payload).
    pub fn ratio(&self) -> f64 {
        self.stats.ratio()
    }

    /// Compression accounting.
    pub fn stats(&self) -> &CompressStats {
        &self.stats
    }

    /// The raw archive bytes (what cold storage would hold).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The compressed bytes of ligand `i` — the unit a random-access read
    /// transfers.
    pub fn compressed_line(&self, i: usize) -> &[u8] {
        self.index.line(&self.bytes, i)
    }

    /// Decompress ligand `i` back to SMILES.
    pub fn fetch(&self, dict: &Dictionary, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        self.index.decompress_line_at(dict, &self.bytes, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molgen::Dataset;
    use zsmiles_core::DictBuilder;

    fn setup() -> (Dictionary, Dataset, Archive) {
        let deck = Dataset::generate_mixed(300, 11);
        let dict = DictBuilder::default().train(deck.iter()).unwrap();
        let archive = Archive::build(&dict, deck.as_bytes());
        (dict, deck, archive)
    }

    #[test]
    fn archive_preserves_line_count_and_compresses() {
        let (_, deck, archive) = setup();
        assert_eq!(archive.len(), deck.len());
        assert!(archive.ratio() < 0.7, "ratio {}", archive.ratio());
        assert!(!archive.is_empty());
    }

    #[test]
    fn fetch_returns_the_right_molecule() {
        let (dict, deck, archive) = setup();
        for i in [0usize, 1, 7, 150, 299] {
            let got = archive.fetch(&dict, i).unwrap();
            // Preprocessing renumbers ring IDs; compare molecules.
            assert_eq!(
                smiles::parser::parse(&got).unwrap().signature(),
                smiles::parser::parse(deck.line(i)).unwrap().signature(),
                "line {i}"
            );
        }
    }

    #[test]
    fn random_access_touches_only_the_requested_lines() {
        let (_, _, archive) = setup();
        let total: usize = archive.as_bytes().len();
        let touched: usize = [3usize, 42, 260]
            .iter()
            .map(|&i| archive.compressed_line(i).len())
            .sum();
        assert!(
            touched * 10 < total,
            "3 lines should be far less than the archive ({touched} vs {total})"
        );
    }

    #[test]
    fn empty_deck_builds_empty_archive() {
        let deck = Dataset::generate_mixed(50, 1);
        let dict = DictBuilder::default().train(deck.iter()).unwrap();
        let archive = Archive::build(&dict, b"");
        assert!(archive.is_empty());
        assert_eq!(archive.len(), 0);
    }
}
