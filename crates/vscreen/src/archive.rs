//! Cold-storage archives: a thin screening-workload view over the
//! self-describing `.zsa` container ([`zsmiles_core::archive::Archive`]).
//!
//! The paper's random-access requirement, made concrete: compressed line
//! *i* is ligand *i*, and the container's embedded line index turns that
//! into O(1) byte-range reads — a query for k hits touches k compressed
//! lines, not the archive. Since the container also embeds the dictionary,
//! an [`Archive`] is one value (and on disk, one file) rather than the
//! deck/dictionary/sidecar triple earlier revisions juggled.

use std::path::Path;
use zsmiles_core::engine::{AnyDictionary, DictFlavor};
use zsmiles_core::{CompressStats, DeckReader, Dictionary, ZsmilesError};

/// A compressed, indexed, self-describing SMILES deck.
#[derive(Debug, Clone)]
pub struct Archive {
    inner: zsmiles_core::Archive,
    stats: CompressStats,
}

impl Archive {
    /// Compress `deck_bytes` (newline-separated SMILES) with `dict` and
    /// index the result. The dictionary is embedded in the archive.
    pub fn build(dict: &Dictionary, deck_bytes: &[u8]) -> Archive {
        Archive::build_any(AnyDictionary::Base(Box::new(dict.clone())), deck_bytes, 1)
    }

    /// [`Archive::build`] for either dictionary flavour, on `threads`
    /// workers.
    pub fn build_any(dict: AnyDictionary, deck_bytes: &[u8], threads: usize) -> Archive {
        let inner = zsmiles_core::Archive::pack(dict, deck_bytes, threads);
        let stats = *inner.stats().expect("freshly packed archives carry stats");
        Archive { inner, stats }
    }

    /// Number of ligands stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Compression ratio achieved (compressed / original payload).
    pub fn ratio(&self) -> f64 {
        self.stats.ratio()
    }

    /// Compression accounting.
    pub fn stats(&self) -> &CompressStats {
        &self.stats
    }

    /// The raw compressed payload (what cold storage holds beside the
    /// container metadata).
    pub fn as_bytes(&self) -> &[u8] {
        self.inner.payload()
    }

    /// The underlying container.
    pub fn container(&self) -> &zsmiles_core::Archive {
        &self.inner
    }

    /// The compressed bytes of ligand `i` — the unit a random-access read
    /// transfers.
    pub fn compressed_line(&self, i: usize) -> &[u8] {
        self.inner
            .compressed_line(i)
            .expect("ligand index out of range")
    }

    /// Decompress ligand `i` back to SMILES using the embedded dictionary.
    pub fn fetch(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        self.inner.get(i)
    }

    /// Decompress a contiguous run of ligands — one decoder worker for
    /// the whole batch instead of one per fetch.
    pub fn fetch_range(&self, lines: std::ops::Range<usize>) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        self.inner.get_range(lines)
    }

    /// Decompress an arbitrary hit list (scored winners are rarely
    /// contiguous), in the order given, with one decoder worker.
    pub fn fetch_many(&self, indices: &[usize]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        self.inner.get_many(indices)
    }

    /// Persist as a single `.zsa` file.
    pub fn save(&self, path: &Path) -> Result<(), ZsmilesError> {
        self.inner.save(path)
    }
}

/// A cold-storage deck opened *on disk*: the out-of-core view a campaign
/// uses once the library no longer fits in memory. Works against either
/// archive layout — a single `.zsa` file or a `.zsm` shard manifest —
/// via [`DeckReader`]'s magic sniff, so the sampling workflow
/// ([`crate::top_hits_cold`]) is layout-blind.
#[derive(Debug)]
pub struct ColdArchive {
    reader: DeckReader,
}

impl ColdArchive {
    /// Open a `.zsa` archive or a `.zsm` shard manifest. Only metadata is
    /// read; the payload stays on disk.
    pub fn open(path: &Path) -> Result<ColdArchive, ZsmilesError> {
        Ok(ColdArchive {
            reader: DeckReader::open(path)?,
        })
    }

    /// Number of ligands stored.
    pub fn len(&self) -> usize {
        self.reader.len()
    }

    pub fn is_empty(&self) -> bool {
        self.reader.is_empty()
    }

    /// Which dictionary flavour the deck embeds.
    pub fn flavor(&self) -> DictFlavor {
        self.reader.flavor()
    }

    /// Number of `.zsa` files behind the deck (1 for the single layout).
    pub fn shard_count(&self) -> usize {
        self.reader.shard_count()
    }

    /// The underlying layout-dispatching reader.
    pub fn reader(&self) -> &DeckReader {
        &self.reader
    }

    /// Decompress ligand `i`: one positioned read in the owning file.
    pub fn fetch(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        self.reader.get(i)
    }

    /// Decompress a contiguous run of ligands — batched reads, one
    /// decoder worker per file touched.
    pub fn fetch_range(&self, lines: std::ops::Range<usize>) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        self.reader.get_range(lines)
    }

    /// Decompress an arbitrary hit list in the order given.
    pub fn fetch_many(&self, indices: &[usize]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        self.reader.get_many(indices)
    }

    /// Verify every container CRC end to end (one sequential pass per
    /// file, bounded memory).
    pub fn verify(&self) -> Result<(), ZsmilesError> {
        self.reader.verify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molgen::Dataset;
    use zsmiles_core::DictBuilder;

    fn setup() -> (Dataset, Archive) {
        let deck = Dataset::generate_mixed(300, 11);
        let dict = DictBuilder::default().train(deck.iter()).unwrap();
        let archive = Archive::build(&dict, deck.as_bytes());
        (deck, archive)
    }

    #[test]
    fn archive_preserves_line_count_and_compresses() {
        let (deck, archive) = setup();
        assert_eq!(archive.len(), deck.len());
        assert!(archive.ratio() < 0.7, "ratio {}", archive.ratio());
        assert!(!archive.is_empty());
    }

    #[test]
    fn fetch_returns_the_right_molecule() {
        let (deck, archive) = setup();
        for i in [0usize, 1, 7, 150, 299] {
            let got = archive.fetch(i).unwrap();
            // Preprocessing renumbers ring IDs; compare molecules.
            assert_eq!(
                smiles::parser::parse(&got).unwrap().signature(),
                smiles::parser::parse(deck.line(i)).unwrap().signature(),
                "line {i}"
            );
        }
    }

    #[test]
    fn random_access_touches_only_the_requested_lines() {
        let (_, archive) = setup();
        let total: usize = archive.as_bytes().len();
        let touched: usize = [3usize, 42, 260]
            .iter()
            .map(|&i| archive.compressed_line(i).len())
            .sum();
        assert!(
            touched * 10 < total,
            "3 lines should be far less than the archive ({touched} vs {total})"
        );
    }

    #[test]
    fn batched_fetches_match_singles() {
        let (_, archive) = setup();
        let singles: Vec<Vec<u8>> = (40..60).map(|i| archive.fetch(i).unwrap()).collect();
        assert_eq!(archive.fetch_range(40..60).unwrap(), singles);
        let scattered = [7usize, 299, 0, 150, 150];
        let many = archive.fetch_many(&scattered).unwrap();
        for (&i, got) in scattered.iter().zip(&many) {
            assert_eq!(got, &archive.fetch(i).unwrap(), "index {i}");
        }
        assert!(archive.fetch_range(290..301).is_err());
        assert!(archive.fetch_many(&[300]).is_err());
    }

    #[test]
    fn empty_deck_builds_empty_archive() {
        let deck = Dataset::generate_mixed(50, 1);
        let dict = DictBuilder::default().train(deck.iter()).unwrap();
        let archive = Archive::build(&dict, b"");
        assert!(archive.is_empty());
        assert_eq!(archive.len(), 0);
    }

    #[test]
    fn cold_archive_is_layout_blind() {
        let deck = Dataset::generate_mixed(300, 19);
        let dict = DictBuilder {
            preprocess: false,
            ..Default::default()
        }
        .train(deck.iter())
        .unwrap();
        let dir = std::env::temp_dir().join(format!("vscreen_cold_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // One deck, both layouts.
        let single_path = dir.join("deck.zsa");
        Archive::build(&dict, deck.as_bytes())
            .save(&single_path)
            .unwrap();
        let manifest_path = dir.join("deck.zsm");
        let mut w = zsmiles_core::ShardedWriter::create(
            &manifest_path,
            AnyDictionary::Base(Box::new(dict.clone())),
            zsmiles_core::ShardPolicy::by_lines(80),
            zsmiles_core::WriterOptions::default(),
        )
        .unwrap();
        w.write(deck.as_bytes()).unwrap();
        let info = w.finish().unwrap();
        assert_eq!(info.shards.len(), 4);

        let single = ColdArchive::open(&single_path).unwrap();
        let sharded = ColdArchive::open(&manifest_path).unwrap();
        assert_eq!(single.shard_count(), 1);
        assert_eq!(sharded.shard_count(), 4);
        assert_eq!(single.len(), sharded.len());
        for i in [0usize, 79, 80, 299] {
            assert_eq!(single.fetch(i).unwrap(), sharded.fetch(i).unwrap());
            assert_eq!(single.fetch(i).unwrap(), deck.line(i));
        }
        assert_eq!(
            single.fetch_range(70..90).unwrap(),
            sharded.fetch_range(70..90).unwrap()
        );
        single.verify().unwrap();
        sharded.verify().unwrap();

        // The hit-sampling workflow runs identically over either layout.
        let scores = crate::screen(&deck, &crate::Pocket::from_seed(3));
        let hot = crate::top_hits(&Archive::build(&dict, deck.as_bytes()), &scores, 7).unwrap();
        let a = crate::top_hits_cold(&single, &scores, 7).unwrap();
        let b = crate::top_hits_cold(&sharded, &scores, 7).unwrap();
        assert_eq!(a, hot);
        assert_eq!(b, hot);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn archive_survives_a_disk_round_trip_as_one_file() {
        let (deck, archive) = setup();
        let path = std::env::temp_dir().join("vscreen_archive_test.zsa");
        archive.save(&path).unwrap();
        // Reopen with no dictionary or sidecar at hand: self-describing.
        let reopened = zsmiles_core::Archive::open(&path).unwrap();
        assert_eq!(reopened.len(), deck.len());
        let got = reopened.get(42).unwrap();
        assert_eq!(
            smiles::parser::parse(&got).unwrap().signature(),
            smiles::parser::parse(deck.line(42)).unwrap().signature()
        );
        std::fs::remove_file(&path).ok();
    }
}
