//! Drug-likeness pre-filters — the step campaigns run *before* storing a
//! deck, which is why the substrate carries it: filtering changes the
//! byte-statistics of what ends up in cold storage.
//!
//! The classic gate is Lipinski's rule of five. We compute its descriptors
//! from the molecular graph alone (no 3D, no partial charges), with the
//! standard structural approximations spelled out per field.

use smiles::{AtomKind, Composition, Molecule};

/// Rule-of-five descriptors for one ligand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ro5Profile {
    /// Molar mass, g/mol (`None` when the molecule has wildcard atoms).
    pub molecular_weight: Option<f64>,
    /// Hydrogen-bond donors: N or O atoms carrying at least one hydrogen.
    pub hb_donors: u32,
    /// Hydrogen-bond acceptors: every N or O atom (the common
    /// heavy-atom-count approximation of Lipinski's original definition).
    pub hb_acceptors: u32,
    /// Heavy (non-H) atom count.
    pub heavy_atoms: u32,
    /// Rotatable bonds: non-ring single bonds between two non-terminal
    /// heavy atoms (amide C–N bonds are *not* excluded — documented
    /// approximation, biases the count slightly high).
    pub rotatable_bonds: u32,
}

impl Ro5Profile {
    /// Compute the descriptors for a parsed molecule.
    pub fn of(mol: &Molecule) -> Ro5Profile {
        let comp = Composition::of(mol);
        let mut donors = 0u32;
        let mut acceptors = 0u32;
        for (i, atom) in mol.atoms().iter().enumerate() {
            let sym = atom.element().symbol();
            if sym == "N" || sym == "O" {
                acceptors += 1;
                let h = match atom {
                    AtomKind::Bracket(b) => b.hcount as u32,
                    AtomKind::Bare(_) => mol.implicit_hydrogens(i as u32) as u32,
                };
                if h > 0 {
                    donors += 1;
                }
            }
        }
        let mut rotatable = 0u32;
        for bond in mol.bonds() {
            if bond.ring || bond.order(mol.atoms()) != 1 || bond.is_aromatic(mol.atoms()) {
                continue;
            }
            let deg = |i: u32| mol.adjacent(i).len();
            if deg(bond.a) >= 2 && deg(bond.b) >= 2 {
                rotatable += 1;
            }
        }
        Ro5Profile {
            molecular_weight: comp.molar_mass(),
            hb_donors: donors,
            hb_acceptors: acceptors,
            heavy_atoms: comp.heavy_atoms(),
            rotatable_bonds: rotatable,
        }
    }

    /// Lipinski's rule of five: MW ≤ 500, donors ≤ 5, acceptors ≤ 10.
    /// (logP, the fourth rule, needs an empirical model we deliberately do
    /// not fake.) Wildcard-bearing molecules fail closed.
    pub fn passes_ro5(&self) -> bool {
        matches!(self.molecular_weight, Some(mw) if mw <= 500.0)
            && self.hb_donors <= 5
            && self.hb_acceptors <= 10
    }

    /// Veber's oral-bioavailability criterion: rotatable bonds ≤ 10.
    /// (The polar-surface-area half needs group contributions; omitted.)
    pub fn passes_veber_rotatable(&self) -> bool {
        self.rotatable_bonds <= 10
    }
}

/// Indices of the deck lines whose ligands pass the rule of five.
/// Unparseable lines fail closed.
pub fn ro5_filter(deck: &molgen::Dataset) -> Vec<usize> {
    deck.iter()
        .enumerate()
        .filter(|(_, line)| {
            smiles::parser::parse(line)
                .map(|m| Ro5Profile::of(&m).passes_ro5())
                .unwrap_or(false)
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(s: &str) -> Ro5Profile {
        Ro5Profile::of(&smiles::parser::parse(s.as_bytes()).unwrap())
    }

    #[test]
    fn aspirin_is_drug_like() {
        let p = profile("CC(=O)Oc1ccccc1C(=O)O");
        assert!((p.molecular_weight.unwrap() - 180.16).abs() < 0.1);
        assert_eq!(p.hb_donors, 1, "the carboxylic OH");
        assert_eq!(p.hb_acceptors, 4, "four oxygens");
        assert_eq!(p.heavy_atoms, 13);
        assert!(p.passes_ro5());
        assert!(p.passes_veber_rotatable());
    }

    #[test]
    fn caffeine_descriptors() {
        let p = profile("CN1C=NC2=C1C(=O)N(C(=O)N2C)C");
        assert_eq!(p.hb_donors, 0, "all nitrogens methylated");
        assert_eq!(p.hb_acceptors, 6, "4 N + 2 O");
        assert!(p.passes_ro5());
    }

    #[test]
    fn a_sugar_polymer_fails_on_donors() {
        // A hexa-ol chain: 8 donors > 5.
        let p = profile("OCC(O)C(O)C(O)C(O)C(O)C(O)CO");
        assert!(p.hb_donors > 5);
        assert!(!p.passes_ro5());
    }

    #[test]
    fn a_long_lipid_fails_on_weight() {
        let p = profile(&format!("CC(=O)O{}", "C".repeat(40)));
        assert!(p.molecular_weight.unwrap() > 500.0);
        assert!(!p.passes_ro5());
    }

    #[test]
    fn rotatable_bond_counting() {
        // Butane: one rotatable bond (C2–C3); the terminal bonds do not count.
        assert_eq!(profile("CCCC").rotatable_bonds, 1);
        // Benzene: none (all ring/aromatic).
        assert_eq!(profile("c1ccccc1").rotatable_bonds, 0);
        // Biphenyl: exactly the inter-ring bond.
        assert_eq!(profile("c1ccccc1-c1ccccc1").rotatable_bonds, 1);
        // Ethane: none (both carbons terminal-ish: degree 1).
        assert_eq!(profile("CC").rotatable_bonds, 0);
    }

    #[test]
    fn wildcards_fail_closed() {
        let p = profile("C*C");
        assert_eq!(p.molecular_weight, None);
        assert!(!p.passes_ro5());
    }

    #[test]
    fn deck_filter_keeps_drug_like_lines() {
        let mut deck = molgen::Dataset::new();
        deck.push(b"CC(=O)Oc1ccccc1C(=O)O"); // aspirin: pass
        deck.push(b"not smiles"); // unparseable: fail closed
        deck.push(b"OCC(O)C(O)C(O)C(O)C(O)C(O)CO"); // too many donors
        deck.push(b"CCO"); // pass
        assert_eq!(ro5_filter(&deck), vec![0, 3]);
    }

    #[test]
    fn generated_decks_are_mostly_drug_like() {
        // The molgen profiles emit screening-deck-shaped molecules; most
        // should clear the gate (sanity of both the generator and filter).
        let deck = molgen::Dataset::generate_mixed(300, 77);
        let kept = ro5_filter(&deck);
        assert!(
            kept.len() * 2 > deck.len(),
            "only {}/{} pass Ro5",
            kept.len(),
            deck.len()
        );
    }
}
