//! Serving-side screening: the [`zsmiles_core::serve::Screener`]
//! implementation that puts `top_hits` on the wire.
//!
//! The serving core deliberately knows nothing about scoring (the crate
//! dependency points the other way), so `zsmiles-serve` executes
//! `top_hits` requests through a pluggable hook. [`PocketScreener`] is
//! the production hook: the request's pattern string names a pocket seed
//! (the same `u64` `screen --pocket-seed` takes), and every line is
//! scored by the exact [`crate::campaign::score_line`] kernel the local
//! campaign uses — which is what makes wire results byte-identical to
//! [`crate::top_hits_cold`] over the same deck.

use crate::campaign::score_line;
use crate::pocket::Pocket;
use zsmiles_core::serve::Screener;
use zsmiles_core::ZsmilesError;

/// Scores wire `top_hits` batches against [`Pocket::from_seed`] pockets;
/// the request pattern is the decimal (or `0x`-prefixed hex) seed.
#[derive(Debug, Default, Clone, Copy)]
pub struct PocketScreener;

fn parse_seed(pattern: &str) -> Result<u64, ZsmilesError> {
    let p = pattern.trim();
    let parsed = match p.strip_prefix("0x").or_else(|| p.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => p.parse(),
    };
    parsed.map_err(|_| ZsmilesError::Protocol {
        reason: format!("top_hits pattern '{pattern}' is not a pocket seed (u64)"),
    })
}

impl Screener for PocketScreener {
    fn score_batch(
        &self,
        pattern: &str,
        lines: &[Vec<u8>],
        out: &mut Vec<f64>,
    ) -> Result<(), ZsmilesError> {
        let pocket = Pocket::from_seed(parse_seed(pattern)?);
        out.extend(lines.iter().map(|l| score_line(l, &pocket)));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_parsing_takes_decimal_and_hex() {
        assert_eq!(parse_seed("7").unwrap(), 7);
        assert_eq!(parse_seed(" 0xD0C5EED ").unwrap(), 0xD0C5EED);
        assert!(parse_seed("not a seed").is_err());
        assert!(parse_seed("").is_err());
    }

    #[test]
    fn screener_scores_match_the_local_kernel() {
        let deck: Vec<Vec<u8>> = [
            b"COc1cc(C=O)ccc1O".to_vec(),
            b"definitely not smiles".to_vec(),
            b"CCO".to_vec(),
        ]
        .to_vec();
        let mut wire = Vec::new();
        PocketScreener.score_batch("5", &deck, &mut wire).unwrap();
        let pocket = Pocket::from_seed(5);
        let local: Vec<f64> = deck.iter().map(|l| score_line(l, &pocket)).collect();
        assert_eq!(
            wire.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            local.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(wire[1], f64::NEG_INFINITY);
    }
}
