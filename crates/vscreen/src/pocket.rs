//! Target pocket model for the docking surrogate.
//!
//! A real campaign scores ligands against a protein binding site with a
//! force field; we cannot ship one, and the storage experiments do not need
//! one — they need *some* deterministic ligand → affinity map so that
//! "top-k hits" is meaningful and different targets rank ligands
//! differently. A [`Pocket`] is a small bundle of feature weights derived
//! from a seed: aromatic-ring affinity, heteroatom affinity, an optimal
//! ligand size, and a hydrophobicity preference.

/// A seeded screening target: deterministic feature weights standing in for
/// a binding-site model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pocket {
    seed: u64,
    /// Reward per aromatic atom.
    pub w_aromatic: f64,
    /// Reward per heteroatom (non-C).
    pub w_hetero: f64,
    /// Reward per ring closure.
    pub w_ring: f64,
    /// Preferred heavy-atom count; deviation is penalized linearly.
    pub size_opt: f64,
    /// Reward (or penalty) per halogen — models a hydrophobic subpocket.
    pub w_halogen: f64,
}

impl Pocket {
    /// Derive a pocket from a seed. Distinct seeds give visibly different
    /// ranking behaviour; the same seed is bit-reproducible everywhere.
    pub fn from_seed(seed: u64) -> Pocket {
        // splitmix64 steps so nearby seeds decorrelate.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Pocket {
            seed,
            w_aromatic: 0.75 + (next() % 8) as f64 * 0.25,
            w_hetero: 0.40 + (next() % 6) as f64 * 0.30,
            w_ring: 1.50 + (next() % 4) as f64 * 0.50,
            size_opt: 18.0 + (next() % 15) as f64,
            w_halogen: -0.50 + (next() % 5) as f64 * 0.40,
        }
    }

    /// The seed this pocket was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Score one parsed ligand: weighted feature counts minus a size
    /// penalty. Higher is a better predicted binder.
    pub fn score(&self, mol: &smiles::Molecule) -> f64 {
        let atoms = mol.atom_count() as f64;
        let mut aromatic = 0.0;
        let mut hetero = 0.0;
        let mut halogen = 0.0;
        for a in mol.atoms() {
            if a.aromatic() {
                aromatic += 1.0;
            }
            match a.element().symbol() {
                "C" | "H" => {}
                "F" | "Cl" | "Br" | "I" => {
                    halogen += 1.0;
                    hetero += 1.0;
                }
                _ => hetero += 1.0,
            }
        }
        let rings = mol.ring_count() as f64;
        self.w_aromatic * aromatic
            + self.w_hetero * hetero
            + self.w_ring * rings
            + self.w_halogen * halogen
            - 0.15 * (atoms - self.size_opt).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mol(s: &str) -> smiles::Molecule {
        smiles::parser::parse(s.as_bytes()).unwrap()
    }

    #[test]
    fn same_seed_same_pocket() {
        assert_eq!(Pocket::from_seed(42), Pocket::from_seed(42));
        assert_eq!(Pocket::from_seed(42).seed(), 42);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Pocket::from_seed(1);
        let b = Pocket::from_seed(2);
        assert_ne!(a, b);
    }

    #[test]
    fn scoring_is_deterministic() {
        let p = Pocket::from_seed(7);
        let m = mol("COc1cc(C=O)ccc1O");
        assert_eq!(p.score(&m), p.score(&m));
    }

    #[test]
    fn aromatic_rich_ligand_beats_plain_chain_on_aromatic_pocket() {
        let p = Pocket::from_seed(7);
        assert!(p.w_aromatic > 0.0);
        let aromatic = mol("c1ccccc1c1ccccc1");
        let chain = mol("CCCCCCCCCCCC");
        assert!(p.score(&aromatic) > p.score(&chain));
    }

    #[test]
    fn size_penalty_applies() {
        let p = Pocket::from_seed(3);
        // A huge featureless chain scores worse than one near size_opt.
        let near = mol(&"C".repeat(p.size_opt as usize));
        let huge = mol(&"C".repeat(90));
        assert!(p.score(&near) > p.score(&huge));
    }

    #[test]
    fn pockets_rank_differently() {
        // Two targets should disagree on *some* pair from a varied panel —
        // the property the example's multi-target flow relies on.
        let panel = [
            "COc1cc(C=O)ccc1O",
            "CCCCCCCCCC",
            "Clc1ccc(Cl)cc1",
            "OCC(O)C(O)C(O)C(O)CO",
            "c1ccc2ccccc2c1",
        ];
        let mols: Vec<_> = panel.iter().map(|s| mol(s)).collect();
        let order = |p: &Pocket| {
            let mut idx: Vec<usize> = (0..mols.len()).collect();
            idx.sort_by(|&a, &b| p.score(&mols[b]).partial_cmp(&p.score(&mols[a])).unwrap());
            idx
        };
        let orders: Vec<Vec<usize>> = (0..20u64).map(|s| order(&Pocket::from_seed(s))).collect();
        assert!(
            orders.iter().any(|o| o != &orders[0]),
            "20 distinct targets should not all agree on the ranking"
        );
    }
}
