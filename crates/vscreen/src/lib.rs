//! Virtual-screening substrate — the workload the paper's storage design
//! exists for (§I).
//!
//! An extreme-scale campaign does three things with its chemical library:
//!
//! 1. **screen** — score every ligand against one or more target pockets
//!    (embarrassingly parallel; the 72 TB Marconi100 run in the paper);
//! 2. **archive** — store the deck and its scores in cold storage, where
//!    compression ratio is the cost driver;
//! 3. **sample** — domain experts pull small subsets (top hits, random
//!    spot-checks) back out, which is what makes *random access* a hard
//!    requirement and rules out stateful compressors.
//!
//! This crate implements all three at laptop scale against the real
//! `zsmiles-core` codec: a deterministic docking *surrogate* (feature-based
//! scoring — chemistry-shaped, reproducible, no force field), scored decks,
//! and compressed archives with O(1) line access. The examples and the
//! `scale` harness build on it.
//!
//! ```
//! use molgen::Dataset;
//! use vscreen::{Archive, Pocket, screen};
//! use zsmiles_core::DictBuilder;
//!
//! let deck = Dataset::generate_mixed(200, 42);
//! let pocket = Pocket::from_seed(7);
//! let scores = screen(&deck, &pocket);
//!
//! let dict = DictBuilder::default().train(deck.iter()).unwrap();
//! let archive = Archive::build(&dict, deck.as_bytes());
//! let hits = vscreen::top_hits(&archive, &scores, 5).unwrap();
//! assert_eq!(hits.len(), 5);
//! assert!(archive.ratio() < 1.0);
//! ```

pub mod archive;
pub mod campaign;
pub mod filter;
pub mod pocket;
pub mod score;
pub mod wire;

pub use archive::{Archive, ColdArchive};
pub use campaign::{
    score_line, screen, screen_parallel, top_hits, top_hits_cold, Hit, StorageModel,
};
pub use filter::{ro5_filter, Ro5Profile};
pub use pocket::Pocket;
pub use score::ScoreTable;
pub use wire::PocketScreener;
