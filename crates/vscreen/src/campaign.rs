//! The campaign loop: screen → archive → sample.
//!
//! [`screen`] and [`screen_parallel`] produce a [`ScoreTable`] for a deck
//! against one pocket (ligand-pocket pairs are independent — the
//! embarrassing parallelism the paper notes in §I). [`top_hits`] closes the
//! loop: it pulls exactly the winning lines back out of a compressed
//! [`Archive`] — the sampling workflow the random-access requirement
//! exists for. [`StorageModel`] does the paper's cold-storage arithmetic.

use crate::archive::Archive;
use crate::pocket::Pocket;
use crate::score::ScoreTable;
use molgen::Dataset;
use zsmiles_core::ZsmilesError;

/// Score an unparseable line poorly instead of failing the campaign: real
/// decks contain the odd malformed row and a screen must not stop for it.
pub const UNPARSEABLE_SCORE: f64 = f64::NEG_INFINITY;

/// Score every ligand in `deck` against `pocket`, serially.
pub fn screen(deck: &Dataset, pocket: &Pocket) -> ScoreTable {
    let mut scores = Vec::with_capacity(deck.len());
    for line in deck.iter() {
        scores.push(score_line(line, pocket));
    }
    ScoreTable::new(scores)
}

/// Score every ligand in `deck` against `pocket` on `workers` threads.
/// Deterministic: each ligand's score is independent, and every worker
/// writes only its own contiguous slice, so the result is byte-identical
/// to [`screen`] for any worker count.
pub fn screen_parallel(deck: &Dataset, pocket: &Pocket, workers: usize) -> ScoreTable {
    let n = deck.len();
    if n == 0 {
        return ScoreTable::new(Vec::new());
    }
    let workers = workers.max(1).min(n);
    let mut scores = vec![0.0f64; n];
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        for (w, out) in scores.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            s.spawn(move || {
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = score_line(deck.line(start + k), pocket);
                }
            });
        }
    });
    ScoreTable::new(scores)
}

/// Score one deck line against a pocket — the per-ligand kernel that
/// [`screen`], [`screen_parallel`] and the wire-protocol screener
/// ([`crate::wire::PocketScreener`]) must all share so their scores stay
/// bit-identical. Unparseable lines sink to [`UNPARSEABLE_SCORE`].
pub fn score_line(line: &[u8], pocket: &Pocket) -> f64 {
    match smiles::parser::parse(line) {
        Ok(mol) => pocket.score(&mol),
        Err(_) => UNPARSEABLE_SCORE,
    }
}

/// One retrieved hit: deck line number, its score, and the decompressed
/// SMILES pulled from the archive.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    pub index: usize,
    pub score: f64,
    pub smiles: Vec<u8>,
}

/// Select the `k` best ligands from `scores` and fetch exactly those lines
/// from the archive — k random-access reads, not a decompression pass.
/// The fetch is batched ([`Archive::fetch_many`]): one decoder worker
/// serves the whole hit list instead of being re-minted per hit.
pub fn top_hits(
    archive: &Archive,
    scores: &ScoreTable,
    k: usize,
) -> Result<Vec<Hit>, ZsmilesError> {
    let ranked = scores.top_k(k);
    let indices: Vec<usize> = ranked.iter().map(|&(i, _)| i).collect();
    let fetched = archive.fetch_many(&indices)?;
    Ok(ranked
        .into_iter()
        .zip(fetched)
        .map(|((index, score), smiles)| Hit {
            index,
            score,
            smiles,
        })
        .collect())
}

/// [`top_hits`] against a deck that lives *on disk* — single `.zsa` or
/// sharded `.zsm`, sniffed at open: k hit fetches touch k compressed
/// lines in whichever shard owns them, never the deck.
pub fn top_hits_cold(
    deck: &crate::archive::ColdArchive,
    scores: &ScoreTable,
    k: usize,
) -> Result<Vec<Hit>, ZsmilesError> {
    let ranked = scores.top_k(k);
    let indices: Vec<usize> = ranked.iter().map(|&(i, _)| i).collect();
    let fetched = deck.fetch_many(&indices)?;
    Ok(ranked
        .into_iter()
        .zip(fetched)
        .map(|((index, score), smiles)| Hit {
            index,
            score,
            smiles,
        })
        .collect())
}

/// The paper's cold-storage arithmetic (§I: 72 TB on Marconi100), scaled
/// by a measured compression ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageModel {
    /// Raw campaign footprint in terabytes.
    pub raw_tb: f64,
}

impl StorageModel {
    /// The Marconi100 campaign from the paper's introduction.
    pub const MARCONI100: StorageModel = StorageModel { raw_tb: 72.0 };

    /// Footprint after compression at `ratio`.
    pub fn compressed_tb(&self, ratio: f64) -> f64 {
        self.raw_tb * ratio
    }

    /// Storage reclaimed at `ratio`.
    pub fn saved_tb(&self, ratio: f64) -> f64 {
        self.raw_tb * (1.0 - ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zsmiles_core::DictBuilder;

    fn fixture() -> (Dataset, Pocket) {
        (Dataset::generate_mixed(400, 3), Pocket::from_seed(5))
    }

    #[test]
    fn parallel_screen_matches_serial_for_any_worker_count() {
        let (deck, pocket) = fixture();
        let serial = screen(&deck, &pocket);
        for workers in [1usize, 2, 3, 7, 64] {
            let par = screen_parallel(&deck, &pocket, workers);
            assert_eq!(par, serial, "{workers} workers");
        }
    }

    #[test]
    fn empty_deck_screens_to_empty_table() {
        let pocket = Pocket::from_seed(2);
        let empty = Dataset::new();
        assert_eq!(screen_parallel(&empty, &pocket, 4), screen(&empty, &pocket));
        assert_eq!(screen_parallel(&empty, &pocket, 4).len(), 0);
    }

    #[test]
    fn unparseable_lines_sink_to_the_bottom() {
        let mut deck = Dataset::new();
        deck.push(b"COc1cc(C=O)ccc1O");
        deck.push(b"this is not smiles!!!");
        deck.push(b"CCO");
        let pocket = Pocket::from_seed(1);
        let t = screen(&deck, &pocket);
        assert_eq!(t.get(1), f64::NEG_INFINITY);
        let top = t.top_k(3);
        assert_eq!(top.last().unwrap().0, 1, "malformed row ranks last");
    }

    #[test]
    fn top_hits_fetches_the_right_lines() {
        let (deck, pocket) = fixture();
        let scores = screen(&deck, &pocket);
        let dict = DictBuilder::default().train(deck.iter()).unwrap();
        let archive = Archive::build(&dict, deck.as_bytes());
        let hits = top_hits(&archive, &scores, 10).unwrap();
        assert_eq!(hits.len(), 10);
        // Best-first ordering, and every SMILES matches its deck line.
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        for h in &hits {
            assert_eq!(
                smiles::parser::parse(&h.smiles).unwrap().signature(),
                smiles::parser::parse(deck.line(h.index))
                    .unwrap()
                    .signature()
            );
        }
    }

    #[test]
    fn top_hits_clamps_k() {
        let (deck, pocket) = fixture();
        let scores = screen(&deck, &pocket);
        let dict = DictBuilder::default().train(deck.iter()).unwrap();
        let archive = Archive::build(&dict, deck.as_bytes());
        let hits = top_hits(&archive, &scores, deck.len() + 50).unwrap();
        assert_eq!(hits.len(), deck.len());
    }

    #[test]
    fn storage_model_arithmetic() {
        let m = StorageModel::MARCONI100;
        assert!((m.compressed_tb(0.29) - 20.88).abs() < 1e-9);
        assert!((m.saved_tb(0.29) - 51.12).abs() < 1e-9);
        assert_eq!(m.compressed_tb(1.0), 72.0);
        assert_eq!(m.saved_tb(1.0), 0.0);
    }
}
