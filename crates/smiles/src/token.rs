//! Token model for SMILES lines.

use crate::element::Element;
use std::fmt;

/// Bond symbols. `Single` is written `-` when explicit; most single bonds
/// are implicit and produce no token at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BondSym {
    /// `-`
    Single,
    /// `=`
    Double,
    /// `#`
    Triple,
    /// `$`
    Quadruple,
    /// `:` aromatic bond
    Aromatic,
    /// `/` directional (stereo) single bond
    Up,
    /// `\` directional (stereo) single bond
    Down,
}

impl BondSym {
    pub fn as_byte(&self) -> u8 {
        match self {
            BondSym::Single => b'-',
            BondSym::Double => b'=',
            BondSym::Triple => b'#',
            BondSym::Quadruple => b'$',
            BondSym::Aromatic => b':',
            BondSym::Up => b'/',
            BondSym::Down => b'\\',
        }
    }

    pub fn from_byte(b: u8) -> Option<BondSym> {
        Some(match b {
            b'-' => BondSym::Single,
            b'=' => BondSym::Double,
            b'#' => BondSym::Triple,
            b'$' => BondSym::Quadruple,
            b':' => BondSym::Aromatic,
            b'/' => BondSym::Up,
            b'\\' => BondSym::Down,
            _ => return None,
        })
    }

    /// Bond order for valence accounting (directional bonds are single).
    pub fn order(&self) -> u8 {
        match self {
            BondSym::Single | BondSym::Up | BondSym::Down => 1,
            BondSym::Double => 2,
            BondSym::Triple => 3,
            BondSym::Quadruple => 4,
            BondSym::Aromatic => 1,
        }
    }
}

/// Tetrahedral chirality marker inside a bracket atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Chirality {
    #[default]
    None,
    /// `@` — anticlockwise
    Ccw,
    /// `@@` — clockwise
    Cw,
}

impl Chirality {
    pub fn as_str(&self) -> &'static str {
        match self {
            Chirality::None => "",
            Chirality::Ccw => "@",
            Chirality::Cw => "@@",
        }
    }
}

/// A bare (organic subset) atom, e.g. `C`, `n`, `Cl`, `*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BareAtom {
    pub element: Element,
    pub aromatic: bool,
}

/// A bracket atom with all its optional fields, e.g. `[13C@H2+2:7]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BracketAtom {
    pub isotope: Option<u16>,
    pub element: Element,
    pub aromatic: bool,
    pub chirality: Chirality,
    /// Explicit hydrogen count (the `H3` field); 0 when absent.
    pub hcount: u8,
    /// Formal charge in `-15..=15`.
    pub charge: i8,
    /// Atom-map class (`:nnn`), `None` when absent.
    pub class: Option<u16>,
}

impl BracketAtom {
    /// A plain bracket atom of an element with every optional field empty.
    pub fn bare(element: Element) -> Self {
        BracketAtom {
            isotope: None,
            element,
            aromatic: false,
            chirality: Chirality::None,
            hcount: 0,
            charge: 0,
            class: None,
        }
    }

    /// Serialize back to the canonical `[...]` byte form.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.push(b'[');
        if let Some(iso) = self.isotope {
            push_u16(out, iso);
        }
        let sym = self.element.symbol();
        if self.aromatic {
            for b in sym.bytes() {
                out.push(b.to_ascii_lowercase());
            }
        } else {
            out.extend_from_slice(sym.as_bytes());
        }
        out.extend_from_slice(self.chirality.as_str().as_bytes());
        if self.hcount > 0 {
            out.push(b'H');
            if self.hcount > 1 {
                push_u16(out, self.hcount as u16);
            }
        }
        match self.charge {
            0 => {}
            1 => out.push(b'+'),
            -1 => out.push(b'-'),
            c if c > 0 => {
                out.push(b'+');
                push_u16(out, c as u16);
            }
            c => {
                out.push(b'-');
                push_u16(out, (-(c as i16)) as u16);
            }
        }
        if let Some(class) = self.class {
            out.push(b':');
            push_u16(out, class);
        }
        out.push(b']');
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    let mut buf = [0u8; 5];
    let mut i = buf.len();
    let mut v = v as u32;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

/// How a ring-bond ID was written in the input: single digit or `%nn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingForm {
    /// `0`..`9`
    Digit,
    /// `%10`..`%99` (also tolerates `%00`..`%09` on input)
    Percent,
}

/// One lexical token. Ring-bond tokens carry the optional bond symbol that
/// immediately precedes the digit (`C=1...=1`), because the pair belongs
/// together for both parsing and re-serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    Atom(BareAtom),
    Bracket(BracketAtom),
    Bond(BondSym),
    /// Ring-bond open-or-close marker. Whether it opens or closes is
    /// resolved by the parser (first occurrence opens, second closes).
    Ring {
        id: u16,
        form: RingForm,
    },
    BranchOpen,
    BranchClose,
    Dot,
}

impl Token {
    /// Serialize a single token to bytes (ring tokens in their stated form).
    pub fn write_to(&self, out: &mut Vec<u8>) {
        match self {
            Token::Atom(a) => {
                let sym = a.element.symbol();
                if a.aromatic {
                    for b in sym.bytes() {
                        out.push(b.to_ascii_lowercase());
                    }
                } else {
                    out.extend_from_slice(sym.as_bytes());
                }
            }
            Token::Bracket(b) => b.write_to(out),
            Token::Bond(b) => out.push(b.as_byte()),
            Token::Ring { id, form } => match form {
                RingForm::Digit => {
                    debug_assert!(*id < 10);
                    out.push(b'0' + *id as u8);
                }
                RingForm::Percent => {
                    debug_assert!(*id < 100);
                    out.push(b'%');
                    out.push(b'0' + (*id / 10) as u8);
                    out.push(b'0' + (*id % 10) as u8);
                }
            },
            Token::BranchOpen => out.push(b'('),
            Token::BranchClose => out.push(b')'),
            Token::Dot => out.push(b'.'),
        }
    }

    /// Is this token an atom (bare or bracket)?
    pub fn is_atom(&self) -> bool {
        matches!(self, Token::Atom(_) | Token::Bracket(_))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = Vec::with_capacity(8);
        self.write_to(&mut buf);
        f.write_str(&String::from_utf8_lossy(&buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    fn to_string(t: Token) -> String {
        let mut v = Vec::new();
        t.write_to(&mut v);
        String::from_utf8(v).unwrap()
    }

    #[test]
    fn bond_symbol_round_trip() {
        for b in [b'-', b'=', b'#', b'$', b':', b'/', b'\\'] {
            let sym = BondSym::from_byte(b).unwrap();
            assert_eq!(sym.as_byte(), b);
        }
        assert_eq!(BondSym::from_byte(b'x'), None);
    }

    #[test]
    fn bond_orders() {
        assert_eq!(BondSym::Single.order(), 1);
        assert_eq!(BondSym::Up.order(), 1);
        assert_eq!(BondSym::Double.order(), 2);
        assert_eq!(BondSym::Triple.order(), 3);
        assert_eq!(BondSym::Quadruple.order(), 4);
    }

    #[test]
    fn bare_atom_serialization() {
        let c = Token::Atom(BareAtom {
            element: Element::from_symbol(b"C").unwrap(),
            aromatic: false,
        });
        assert_eq!(to_string(c), "C");
        let n = Token::Atom(BareAtom {
            element: Element::from_symbol(b"N").unwrap(),
            aromatic: true,
        });
        assert_eq!(to_string(n), "n");
        let cl = Token::Atom(BareAtom {
            element: Element::from_symbol(b"Cl").unwrap(),
            aromatic: false,
        });
        assert_eq!(to_string(cl), "Cl");
    }

    #[test]
    fn bracket_atom_serialization_full() {
        let a = BracketAtom {
            isotope: Some(13),
            element: Element::from_symbol(b"C").unwrap(),
            aromatic: false,
            chirality: Chirality::Ccw,
            hcount: 2,
            charge: 2,
            class: Some(7),
        };
        assert_eq!(to_string(Token::Bracket(a)), "[13C@H2+2:7]");
    }

    #[test]
    fn bracket_atom_serialization_minimal() {
        let a = BracketAtom::bare(Element::from_symbol(b"Au").unwrap());
        assert_eq!(to_string(Token::Bracket(a)), "[Au]");
    }

    #[test]
    fn bracket_charge_forms() {
        let mut a = BracketAtom::bare(Element::from_symbol(b"O").unwrap());
        a.charge = -1;
        assert_eq!(to_string(Token::Bracket(a)), "[O-]");
        a.charge = -2;
        assert_eq!(to_string(Token::Bracket(a)), "[O-2]");
        a.charge = 1;
        assert_eq!(to_string(Token::Bracket(a)), "[O+]");
        a.charge = 3;
        assert_eq!(to_string(Token::Bracket(a)), "[O+3]");
    }

    #[test]
    fn bracket_hcount_forms() {
        let mut a = BracketAtom::bare(Element::from_symbol(b"N").unwrap());
        a.hcount = 1;
        assert_eq!(to_string(Token::Bracket(a)), "[NH]");
        a.hcount = 4;
        a.charge = 1;
        assert_eq!(to_string(Token::Bracket(a)), "[NH4+]");
    }

    #[test]
    fn aromatic_bracket_atom() {
        let mut a = BracketAtom::bare(Element::from_symbol(b"Se").unwrap());
        a.aromatic = true;
        assert_eq!(to_string(Token::Bracket(a)), "[se]");
    }

    #[test]
    fn ring_token_forms() {
        assert_eq!(
            to_string(Token::Ring {
                id: 3,
                form: RingForm::Digit
            }),
            "3"
        );
        assert_eq!(
            to_string(Token::Ring {
                id: 12,
                form: RingForm::Percent
            }),
            "%12"
        );
        assert_eq!(
            to_string(Token::Ring {
                id: 5,
                form: RingForm::Percent
            }),
            "%05"
        );
    }

    #[test]
    fn structural_tokens() {
        assert_eq!(to_string(Token::BranchOpen), "(");
        assert_eq!(to_string(Token::BranchClose), ")");
        assert_eq!(to_string(Token::Dot), ".");
        assert_eq!(to_string(Token::Bond(BondSym::Double)), "=");
    }

    #[test]
    fn is_atom_predicate() {
        assert!(Token::Atom(BareAtom {
            element: Element::Wildcard,
            aromatic: false
        })
        .is_atom());
        assert!(Token::Bracket(BracketAtom::bare(Element::Z(26))).is_atom());
        assert!(!Token::Dot.is_atom());
        assert!(!Token::Ring {
            id: 1,
            form: RingForm::Digit
        }
        .is_atom());
    }
}
