//! Character sets used for dictionary pre-population (paper §IV-B).
//!
//! Pre-populating the compression dictionary with every character a valid
//! SMILES can contain guarantees that compliant input never *expands*: each
//! input byte either matches a multi-byte pattern or falls back to its
//! identity entry at cost 1. The paper compares three seeds — nothing, the
//! SMILES alphabet, and all printable ASCII — and finds the SMILES alphabet
//! best (fewer identity codes leave more code points for patterns).

/// Every byte that can appear in a valid SMILES string.
///
/// Letters cover all element symbols (bracket atoms may name any element,
/// upper then lower case), digits cover ring IDs / isotopes / charges /
/// H-counts / atom classes, and the symbol set is the full OpenSMILES
/// punctuation: branches, brackets, bonds, dot, chirality, charge signs,
/// `%` ring-ID prefix and the `*` wildcard.
pub const SMILES_ALPHABET: &[u8] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789()[]=#$:/\\.@+-%*";

/// Printable ASCII excluding space (0x21..=0x7E). Space cannot be an
/// identity code because ZSMILES uses it as the escape marker.
pub fn printable_ascii() -> impl Iterator<Item = u8> {
    0x21u8..=0x7E
}

/// Is `b` part of the SMILES alphabet? O(1) table lookup.
pub fn is_smiles_char(b: u8) -> bool {
    SMILES_TABLE[b as usize]
}

static SMILES_TABLE: [bool; 256] = build_table();

const fn build_table() -> [bool; 256] {
    let mut t = [false; 256];
    let mut i = 0;
    while i < SMILES_ALPHABET.len() {
        t[SMILES_ALPHABET[i] as usize] = true;
        i += 1;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_size() {
        // 52 letters + 10 digits + 16 punctuation marks = 78.
        assert_eq!(SMILES_ALPHABET.len(), 78);
        // No duplicates.
        let mut seen = [false; 256];
        for &b in SMILES_ALPHABET {
            assert!(!seen[b as usize], "duplicate {}", b as char);
            seen[b as usize] = true;
        }
    }

    #[test]
    fn alphabet_is_printable_subset() {
        for &b in SMILES_ALPHABET {
            assert!((0x21..=0x7E).contains(&b), "byte {b:#x}");
        }
        assert!(SMILES_ALPHABET.len() < printable_ascii().count());
    }

    #[test]
    fn printable_count() {
        assert_eq!(printable_ascii().count(), 94);
        assert!(!printable_ascii().any(|b| b == b' '));
        assert!(!printable_ascii().any(|b| b == b'\n'));
    }

    #[test]
    fn membership_lookup() {
        for c in "COc1cc(C=O)ccc1O[nH+]%99\\/#$.*@".bytes() {
            assert!(is_smiles_char(c), "{}", c as char);
        }
        assert!(!is_smiles_char(b' '));
        assert!(!is_smiles_char(b'\n'));
        assert!(!is_smiles_char(b'!'));
        assert!(!is_smiles_char(b'~'));
        assert!(!is_smiles_char(0x80));
        assert!(!is_smiles_char(0xFF));
    }

    #[test]
    fn real_smiles_stay_inside_alphabet() {
        for s in [
            "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            "[13C@@H](N)(C)C(=O)O",
            "C/C=C\\C.[NH4+].[Cl-]",
            "C%10CCCCC%10",
            "N#Cc1ccccc1$C",
        ] {
            for b in s.bytes() {
                assert!(is_smiles_char(b), "{} in {s}", b as char);
            }
        }
    }
}
