//! The periodic table, as far as SMILES needs it.
//!
//! Bracket atoms may name any element; bare (organic-subset) atoms may only
//! use a small whitelist. This module owns both tables plus the metadata the
//! parser and the generator need: default valences and which elements may be
//! aromatic.

/// Maximum length of an element symbol in bytes ("Cl", "Br", "Uue" is 3 but
/// we stop at the 118 named elements, all of which fit in 2 bytes).
pub const MAX_SYMBOL_LEN: usize = 2;

/// All IUPAC element symbols for Z = 1..=118, indexed by `Z - 1`.
///
/// Order matters: `symbol(z)` and `atomic_number(sym)` round-trip through it.
pub const SYMBOLS: [&str; 118] = [
    "H", "He", "Li", "Be", "B", "C", "N", "O", "F", "Ne", "Na", "Mg", "Al", "Si", "P", "S", "Cl",
    "Ar", "K", "Ca", "Sc", "Ti", "V", "Cr", "Mn", "Fe", "Co", "Ni", "Cu", "Zn", "Ga", "Ge", "As",
    "Se", "Br", "Kr", "Rb", "Sr", "Y", "Zr", "Nb", "Mo", "Tc", "Ru", "Rh", "Pd", "Ag", "Cd", "In",
    "Sn", "Sb", "Te", "I", "Xe", "Cs", "Ba", "La", "Ce", "Pr", "Nd", "Pm", "Sm", "Eu", "Gd", "Tb",
    "Dy", "Ho", "Er", "Tm", "Yb", "Lu", "Hf", "Ta", "W", "Re", "Os", "Ir", "Pt", "Au", "Hg", "Tl",
    "Pb", "Bi", "Po", "At", "Rn", "Fr", "Ra", "Ac", "Th", "Pa", "U", "Np", "Pu", "Am", "Cm", "Bk",
    "Cf", "Es", "Fm", "Md", "No", "Lr", "Rf", "Db", "Sg", "Bh", "Hs", "Mt", "Ds", "Rg", "Cn", "Nh",
    "Fl", "Mc", "Lv", "Ts", "Og",
];

/// Standard atomic weights (CIAAW 2021 conventional values, u), indexed by
/// `Z - 1`. Elements with no stable isotope carry the mass number of their
/// longest-lived isotope, the usual convention for tables like this.
pub const ATOMIC_WEIGHTS: [f64; 118] = [
    1.008, 4.0026, 6.94, 9.0122, 10.81, 12.011, 14.007, 15.999, 18.998, 20.180, 22.990, 24.305,
    26.982, 28.085, 30.974, 32.06, 35.45, 39.95, 39.098, 40.078, 44.956, 47.867, 50.942, 51.996,
    54.938, 55.845, 58.933, 58.693, 63.546, 65.38, 69.723, 72.630, 74.922, 78.971, 79.904, 83.798,
    85.468, 87.62, 88.906, 91.224, 92.906, 95.95, 97.0, 101.07, 102.91, 106.42, 107.87, 112.41,
    114.82, 118.71, 121.76, 127.60, 126.90, 131.29, 132.91, 137.33, 138.91, 140.12, 140.91, 144.24,
    145.0, 150.36, 151.96, 157.25, 158.93, 162.50, 164.93, 167.26, 168.93, 173.05, 174.97, 178.49,
    180.95, 183.84, 186.21, 190.23, 192.22, 195.08, 196.97, 200.59, 204.38, 207.2, 208.98, 209.0,
    210.0, 222.0, 223.0, 226.0, 227.0, 232.04, 231.04, 238.03, 237.0, 244.0, 243.0, 247.0, 247.0,
    251.0, 252.0, 257.0, 258.0, 259.0, 262.0, 267.0, 270.0, 269.0, 270.0, 270.0, 278.0, 281.0,
    281.0, 285.0, 286.0, 289.0, 289.0, 293.0, 293.0, 294.0,
];

/// An element identified by atomic number, plus the `*` wildcard atom that
/// SMILES permits ("unknown / any atom").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// A real element; payload is the atomic number `Z` (1..=118).
    Z(u8),
    /// The `*` wildcard atom.
    Wildcard,
}

impl Element {
    /// Look up an element by its case-sensitive symbol (`"Cl"`, not `"CL"`).
    pub fn from_symbol(sym: &[u8]) -> Option<Element> {
        if sym == b"*" {
            return Some(Element::Wildcard);
        }
        // Linear scan grouped by first byte would be faster, but symbol
        // lookup only happens while lexing bracket atoms, which are rare in
        // screening decks; keep it simple.
        SYMBOLS
            .iter()
            .position(|s| s.as_bytes() == sym)
            .map(|i| Element::Z(i as u8 + 1))
    }

    /// The printable symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            Element::Wildcard => "*",
            Element::Z(z) => SYMBOLS[(*z as usize) - 1],
        }
    }

    /// Atomic number, or `None` for the wildcard.
    pub fn atomic_number(&self) -> Option<u8> {
        match self {
            Element::Z(z) => Some(*z),
            Element::Wildcard => None,
        }
    }

    /// May this element appear *bare* (outside brackets)?
    ///
    /// The SMILES "organic subset": B, C, N, O, P, S, F, Cl, Br, I
    /// (plus the wildcard `*`).
    pub fn in_organic_subset(&self) -> bool {
        matches!(
            self,
            Element::Wildcard
                | Element::Z(5)   // B
                | Element::Z(6)   // C
                | Element::Z(7)   // N
                | Element::Z(8)   // O
                | Element::Z(15)  // P
                | Element::Z(16)  // S
                | Element::Z(9)   // F
                | Element::Z(17)  // Cl
                | Element::Z(35)  // Br
                | Element::Z(53) // I
        )
    }

    /// May this element be aromatic (lower-case) in SMILES at all?
    ///
    /// OpenSMILES: b, c, n, o, p, s, as, se (the latter two only inside
    /// brackets).
    pub fn may_be_aromatic(&self) -> bool {
        matches!(
            self,
            Element::Z(5)
                | Element::Z(6)
                | Element::Z(7)
                | Element::Z(8)
                | Element::Z(15)
                | Element::Z(16)
                | Element::Z(33)
                | Element::Z(34)
        )
    }

    /// May this element be aromatic *outside* brackets? (b c n o p s only)
    pub fn bare_aromatic_allowed(&self) -> bool {
        matches!(
            self,
            Element::Z(5)
                | Element::Z(6)
                | Element::Z(7)
                | Element::Z(8)
                | Element::Z(15)
                | Element::Z(16)
        )
    }

    /// Standard atomic weight in unified atomic mass units; `None` for the
    /// wildcard atom.
    pub fn atomic_weight(&self) -> Option<f64> {
        match self {
            Element::Z(z) => Some(ATOMIC_WEIGHTS[(*z as usize) - 1]),
            Element::Wildcard => None,
        }
    }

    /// Default valences used for implicit-hydrogen accounting of
    /// organic-subset atoms (OpenSMILES table). Elements with several normal
    /// valences list them all, smallest first.
    pub fn default_valences(&self) -> &'static [u8] {
        match self {
            Element::Z(5) => &[3],        // B
            Element::Z(6) => &[4],        // C
            Element::Z(7) => &[3, 5],     // N
            Element::Z(8) => &[2],        // O
            Element::Z(15) => &[3, 5],    // P
            Element::Z(16) => &[2, 4, 6], // S
            Element::Z(9) | Element::Z(17) | Element::Z(35) | Element::Z(53) => &[1],
            _ => &[],
        }
    }
}

/// Parse the longest element symbol starting at `input[0]` that is valid
/// *inside a bracket atom*. Returns `(element, consumed_bytes, aromatic)`.
///
/// Inside brackets a lower-case first letter means "aromatic" for the
/// handful of elements that support it; two-letter aromatic symbols keep the
/// second letter lower-case too (`se`, `as`).
pub fn parse_bracket_symbol(input: &[u8]) -> Option<(Element, usize, bool)> {
    if input.is_empty() {
        return None;
    }
    let b0 = input[0];
    if b0 == b'*' {
        return Some((Element::Wildcard, 1, false));
    }
    if b0.is_ascii_uppercase() {
        // Try the two-letter symbol first ("Cl" before "C").
        if input.len() >= 2 && input[1].is_ascii_lowercase() {
            let two = &input[..2];
            if let Some(e) = Element::from_symbol(two) {
                return Some((e, 2, false));
            }
        }
        return Element::from_symbol(&input[..1]).map(|e| (e, 1, false));
    }
    if b0.is_ascii_lowercase() {
        // Aromatic symbols: "as" / "se" are two letters; b c n o p s are one.
        if input.len() >= 2 && input[1].is_ascii_lowercase() {
            let upper2 = [b0.to_ascii_uppercase(), input[1]];
            if let Some(e) = Element::from_symbol(&upper2) {
                if e.may_be_aromatic() {
                    return Some((e, 2, true));
                }
            }
        }
        let upper1 = [b0.to_ascii_uppercase()];
        if let Some(e) = Element::from_symbol(&upper1) {
            if e.may_be_aromatic() {
                return Some((e, 1, true));
            }
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_round_trips() {
        for z in 1..=118u8 {
            let e = Element::Z(z);
            let sym = e.symbol();
            assert_eq!(
                Element::from_symbol(sym.as_bytes()),
                Some(e),
                "symbol {sym}"
            );
        }
    }

    #[test]
    fn wildcard_round_trips() {
        assert_eq!(Element::from_symbol(b"*"), Some(Element::Wildcard));
        assert_eq!(Element::Wildcard.symbol(), "*");
        assert_eq!(Element::Wildcard.atomic_number(), None);
    }

    #[test]
    fn unknown_symbols_rejected() {
        assert_eq!(Element::from_symbol(b"Xx"), None);
        assert_eq!(Element::from_symbol(b"CL"), None, "case sensitive");
        assert_eq!(Element::from_symbol(b""), None);
        assert_eq!(Element::from_symbol(b"cl"), None);
    }

    #[test]
    fn organic_subset_is_exactly_ten_plus_wildcard() {
        let subset: Vec<&str> = (1..=118u8)
            .map(Element::Z)
            .filter(|e| e.in_organic_subset())
            .map(|e| e.symbol())
            .collect();
        assert_eq!(subset, ["B", "C", "N", "O", "F", "P", "S", "Cl", "Br", "I"]);
        assert!(Element::Wildcard.in_organic_subset());
    }

    #[test]
    fn aromatic_rules() {
        assert!(Element::from_symbol(b"C").unwrap().bare_aromatic_allowed());
        assert!(Element::from_symbol(b"Se").unwrap().may_be_aromatic());
        assert!(!Element::from_symbol(b"Se").unwrap().bare_aromatic_allowed());
        assert!(!Element::from_symbol(b"Fe").unwrap().may_be_aromatic());
    }

    #[test]
    fn bracket_symbol_parsing() {
        // Longest match wins: "Cl" not "C".
        let (e, n, ar) = parse_bracket_symbol(b"Cl]").unwrap();
        assert_eq!(e.symbol(), "Cl");
        assert_eq!(n, 2);
        assert!(!ar);

        // "Sc" is scandium even though "S" would match first.
        let (e, n, _) = parse_bracket_symbol(b"Sc").unwrap();
        assert_eq!(e.symbol(), "Sc");
        assert_eq!(n, 2);

        // Aromatic selenium.
        let (e, n, ar) = parse_bracket_symbol(b"se]").unwrap();
        assert_eq!(e.symbol(), "Se");
        assert_eq!(n, 2);
        assert!(ar);

        // Aromatic carbon.
        let (e, n, ar) = parse_bracket_symbol(b"c1").unwrap();
        assert_eq!(e.symbol(), "C");
        assert_eq!(n, 1);
        assert!(ar);

        // "fe" is not a valid aromatic symbol.
        assert!(parse_bracket_symbol(b"fe").is_none());
        // Digits can't start a symbol.
        assert!(parse_bracket_symbol(b"2H").is_none());
    }

    #[test]
    fn sc_vs_s_carbon_trap() {
        // Inside a bracket, "SC" (sulfur then junk) must parse as S (1 byte),
        // because the second letter is uppercase.
        let (e, n, _) = parse_bracket_symbol(b"SC").unwrap();
        assert_eq!(e.symbol(), "S");
        assert_eq!(n, 1);
    }

    #[test]
    fn default_valences_table() {
        assert_eq!(Element::from_symbol(b"C").unwrap().default_valences(), &[4]);
        assert_eq!(
            Element::from_symbol(b"N").unwrap().default_valences(),
            &[3, 5]
        );
        assert_eq!(
            Element::from_symbol(b"S").unwrap().default_valences(),
            &[2, 4, 6]
        );
        assert_eq!(
            Element::from_symbol(b"Fe").unwrap().default_valences(),
            &[] as &[u8]
        );
    }
}
