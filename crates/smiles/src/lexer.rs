//! Byte-level SMILES tokenizer.
//!
//! The lexer is strict about *lexical* structure (bracket syntax, `%nn`
//! digits, known element symbols) and silent about *grammatical* structure
//! (ring pairing, branch balance) — that is the parser's job. Every token is
//! returned with the byte [`Span`] it came from, which the preprocessor uses
//! to rewrite ring IDs in place without touching any other byte.

use crate::element::{parse_bracket_symbol, Element};
use crate::error::{SmilesError, Span};
use crate::token::{BareAtom, BondSym, BracketAtom, Chirality, RingForm, Token};

/// A token plus its origin in the input line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spanned {
    pub token: Token,
    pub span: Span,
}

/// Iterator-style lexer over one SMILES line.
pub struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(input: &'a [u8]) -> Self {
        Lexer { input, pos: 0 }
    }

    /// Current byte offset (start of the next token).
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    /// Lex the next token, or `Ok(None)` at end of line.
    pub fn next_token(&mut self) -> Result<Option<Spanned>, SmilesError> {
        let start = self.pos;
        let b = match self.peek() {
            None => return Ok(None),
            Some(b) => b,
        };
        let token = match b {
            b'(' => {
                self.pos += 1;
                Token::BranchOpen
            }
            b')' => {
                self.pos += 1;
                Token::BranchClose
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b'0'..=b'9' => {
                self.pos += 1;
                Token::Ring {
                    id: (b - b'0') as u16,
                    form: RingForm::Digit,
                }
            }
            b'%' => {
                let d1 = self.input.get(self.pos + 1).copied();
                let d2 = self.input.get(self.pos + 2).copied();
                match (d1, d2) {
                    (Some(d1 @ b'0'..=b'9'), Some(d2 @ b'0'..=b'9')) => {
                        self.pos += 3;
                        Token::Ring {
                            id: ((d1 - b'0') as u16) * 10 + (d2 - b'0') as u16,
                            form: RingForm::Percent,
                        }
                    }
                    _ => return Err(SmilesError::MalformedPercentRing { at: start }),
                }
            }
            b'[' => self.lex_bracket()?,
            b'-' | b'=' | b'#' | b'$' | b':' | b'/' | b'\\' => {
                self.pos += 1;
                Token::Bond(BondSym::from_byte(b).expect("byte checked above"))
            }
            b'*' => {
                self.pos += 1;
                Token::Atom(BareAtom {
                    element: Element::Wildcard,
                    aromatic: false,
                })
            }
            b'A'..=b'Z' => self.lex_bare_upper()?,
            b'b' | b'c' | b'n' | b'o' | b'p' | b's' => {
                // Bare aromatic atoms. Note: "se"/"as" are NOT allowed bare;
                // a following lowercase letter that would form them is an
                // error caught here for a clearer message.
                if b == b's' && self.input.get(self.pos + 1) == Some(&b'e') {
                    return Err(SmilesError::BareAromaticNotAllowed {
                        span: Span::new(start, start + 2),
                    });
                }
                self.pos += 1;
                let elem = Element::from_symbol(&[b.to_ascii_uppercase()]).expect("bcnops");
                Token::Atom(BareAtom {
                    element: elem,
                    aromatic: true,
                })
            }
            b'a' => {
                if self.input.get(self.pos + 1) == Some(&b's') {
                    return Err(SmilesError::BareAromaticNotAllowed {
                        span: Span::new(start, start + 2),
                    });
                }
                return Err(SmilesError::UnexpectedByte { byte: b, at: start });
            }
            _ => return Err(SmilesError::UnexpectedByte { byte: b, at: start }),
        };
        Ok(Some(Spanned {
            token,
            span: Span::new(start, self.pos),
        }))
    }

    /// Bare upper-case atom: one of the organic subset, honouring two-letter
    /// symbols (`Cl`, `Br`).
    fn lex_bare_upper(&mut self) -> Result<Token, SmilesError> {
        let start = self.pos;
        let b0 = self.input[self.pos];
        // Per OpenSMILES, the *only* two-letter bare symbols are Cl and Br;
        // everything else is one letter. This is what makes "Sc" parse as
        // sulfur + aromatic carbon rather than scandium.
        if (b0 == b'C' && self.input.get(self.pos + 1) == Some(&b'l'))
            || (b0 == b'B' && self.input.get(self.pos + 1) == Some(&b'r'))
        {
            let e =
                Element::from_symbol(&self.input[self.pos..self.pos + 2]).expect("Cl/Br in table");
            self.pos += 2;
            return Ok(Token::Atom(BareAtom {
                element: e,
                aromatic: false,
            }));
        }
        match Element::from_symbol(&[b0]) {
            Some(e) if e.in_organic_subset() => {
                self.pos += 1;
                Ok(Token::Atom(BareAtom {
                    element: e,
                    aromatic: false,
                }))
            }
            Some(_) | None => Err(SmilesError::UnknownElement {
                span: Span::new(start, start + 1),
            }),
        }
    }

    /// `[` isotope? symbol chirality? hcount? charge? class? `]`
    fn lex_bracket(&mut self) -> Result<Token, SmilesError> {
        let open = self.pos;
        self.pos += 1; // consume '['

        // Find the closing bracket up front so all errors can carry a span.
        let close_rel = self.input[self.pos..]
            .iter()
            .position(|&b| b == b']')
            .ok_or(SmilesError::UnterminatedBracket { at: open })?;
        let close = self.pos + close_rel;
        let body_span = Span::new(open, close + 1);

        let mut atom = BracketAtom {
            isotope: None,
            element: Element::Wildcard,
            aromatic: false,
            chirality: Chirality::None,
            hcount: 0,
            charge: 0,
            class: None,
        };

        // isotope
        if self.peek().is_some_and(|b| b.is_ascii_digit()) {
            let (v, used) = self.read_number(3)?;
            atom.isotope = Some(v);
            debug_assert!(used > 0);
        }

        // element symbol (mandatory)
        if self.pos >= close {
            return Err(SmilesError::EmptyBracket { span: body_span });
        }
        // 'H' alone is hydrogen-the-element inside brackets ([H+], [2H]);
        // parse_bracket_symbol handles it because H is in the symbol table.
        let (elem, used, aromatic) = parse_bracket_symbol(&self.input[self.pos..close]).ok_or(
            SmilesError::UnknownElement {
                span: Span::new(self.pos, (self.pos + 2).min(close)),
            },
        )?;
        atom.element = elem;
        atom.aromatic = aromatic;
        self.pos += used;

        // chirality
        if self.peek() == Some(b'@') {
            self.pos += 1;
            if self.peek() == Some(b'@') {
                self.pos += 1;
                atom.chirality = Chirality::Cw;
            } else {
                atom.chirality = Chirality::Ccw;
            }
        }

        // hcount — but NOT if the element itself is H and we're at ']'
        if self.peek() == Some(b'H') && self.pos < close {
            self.pos += 1;
            if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                let (v, _) = self.read_number(2)?;
                if v > 9 {
                    return Err(SmilesError::NumberOverflow {
                        span: Span::new(self.pos - 2, self.pos),
                    });
                }
                atom.hcount = v as u8;
            } else {
                atom.hcount = 1;
            }
        }

        // charge: '+'/'-' optionally followed by digits, or doubled (++/--)
        if let Some(sign @ (b'+' | b'-')) = self.peek() {
            self.pos += 1;
            let unit: i16 = if sign == b'+' { 1 } else { -1 };
            if self.peek() == Some(sign) {
                // archaic "++" / "--"
                self.pos += 1;
                atom.charge = (2 * unit) as i8;
            } else if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                let numspan = Span::new(self.pos, self.pos + 2);
                let (v, _) = self.read_number(2)?;
                if v > 15 {
                    return Err(SmilesError::NumberOverflow { span: numspan });
                }
                atom.charge = (v as i16 * unit) as i8;
            } else {
                atom.charge = unit as i8;
            }
        }

        // atom class
        if self.peek() == Some(b':') {
            self.pos += 1;
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(SmilesError::UnexpectedByte {
                    byte: self.peek().unwrap_or(b']'),
                    at: self.pos,
                });
            }
            let (v, _) = self.read_number(4)?;
            atom.class = Some(v);
        }

        if self.pos != close {
            return Err(SmilesError::UnexpectedByte {
                byte: self.input[self.pos],
                at: self.pos,
            });
        }
        self.pos = close + 1;
        Ok(Token::Bracket(atom))
    }

    /// Read up to `max_digits` ASCII digits as a u16.
    fn read_number(&mut self, max_digits: usize) -> Result<(u16, usize), SmilesError> {
        let start = self.pos;
        let mut v: u32 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            if self.pos - start >= max_digits {
                return Err(SmilesError::NumberOverflow {
                    span: Span::new(start, self.pos + 1),
                });
            }
            v = v * 10 + (b - b'0') as u32;
            self.pos += 1;
        }
        if v > u16::MAX as u32 {
            return Err(SmilesError::NumberOverflow {
                span: Span::new(start, self.pos),
            });
        }
        Ok((v as u16, self.pos - start))
    }
}

/// Tokenize a whole line. Fails on the first lexical error.
pub fn tokenize(line: &[u8]) -> Result<Vec<Spanned>, SmilesError> {
    let mut lx = Lexer::new(line);
    let mut out = Vec::with_capacity(line.len());
    while let Some(t) = lx.next_token()? {
        out.push(t);
    }
    Ok(out)
}

/// Re-serialize a token stream. For any stream produced by [`tokenize`]
/// this reproduces the input bytes exactly (the lexer is lossless modulo
/// nothing: every byte belongs to exactly one token).
pub fn detokenize(tokens: &[Spanned]) -> Vec<u8> {
    let mut out = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        t.token.write_to(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(line: &str) -> Vec<Token> {
        tokenize(line.as_bytes())
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    fn roundtrip(line: &str) -> String {
        let toks = tokenize(line.as_bytes()).unwrap();
        String::from_utf8(detokenize(&toks)).unwrap()
    }

    #[test]
    fn vanillin_tokens() {
        // The paper's worked example (Fig. 1).
        let toks = kinds("COc1cc(C=O)ccc1O");
        assert_eq!(toks.len(), 16);
        assert!(matches!(toks[0], Token::Atom(a) if !a.aromatic && a.element.symbol() == "C"));
        assert!(matches!(toks[2], Token::Atom(a) if a.aromatic && a.element.symbol() == "C"));
        assert!(matches!(
            toks[3],
            Token::Ring {
                id: 1,
                form: RingForm::Digit
            }
        ));
        assert!(matches!(toks[6], Token::BranchOpen));
        assert!(matches!(toks[8], Token::Bond(BondSym::Double)));
        assert!(matches!(toks[10], Token::BranchClose));
    }

    #[test]
    fn exact_roundtrip_on_corpus() {
        for s in [
            "COc1cc(C=O)ccc1O",
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            "[13CH4]",
            "[NH4+].[Cl-]",
            "C/C=C\\C",
            "N#Cc1ccccc1",
            "C%12CCCCC%12",
            "[C@@H](N)(C)C(=O)O",
            "[Fe+2]",
            "[se]1cccc1",
            "[CH3:42]C",
            "*C*",
            "C$C",
        ] {
            assert_eq!(roundtrip(s), s, "roundtrip {s}");
        }
    }

    #[test]
    fn two_letter_bare_atoms() {
        let toks = kinds("ClCCBr");
        assert_eq!(toks.len(), 4);
        assert!(matches!(toks[0], Token::Atom(a) if a.element.symbol() == "Cl"));
        assert!(matches!(toks[3], Token::Atom(a) if a.element.symbol() == "Br"));
    }

    #[test]
    fn percent_ring_ids() {
        let toks = kinds("C%10CC%10");
        assert!(matches!(
            toks[1],
            Token::Ring {
                id: 10,
                form: RingForm::Percent
            }
        ));
        assert!(matches!(
            toks[4],
            Token::Ring {
                id: 10,
                form: RingForm::Percent
            }
        ));
    }

    #[test]
    fn archaic_double_minus_normalizes() {
        // "[O--]" lexes to charge -2 and re-serializes in the modern form.
        assert_eq!(roundtrip("[O--]"), "[O-2]");
        assert_eq!(roundtrip("[Ca++]"), "[Ca+2]");
    }

    #[test]
    fn percent_requires_two_digits() {
        assert!(matches!(
            tokenize(b"C%1CC"),
            Err(SmilesError::MalformedPercentRing { at: 1 })
        ));
        assert!(matches!(
            tokenize(b"C%"),
            Err(SmilesError::MalformedPercentRing { at: 1 })
        ));
    }

    #[test]
    fn bracket_full_fields() {
        let toks = kinds("[13C@H2+2:7]");
        let Token::Bracket(b) = toks[0] else {
            panic!("want bracket")
        };
        assert_eq!(b.isotope, Some(13));
        assert_eq!(b.element.symbol(), "C");
        assert_eq!(b.chirality, Chirality::Ccw);
        assert_eq!(b.hcount, 2);
        assert_eq!(b.charge, 2);
        assert_eq!(b.class, Some(7));
    }

    #[test]
    fn bracket_hydrogen_element() {
        let toks = kinds("[H+]");
        let Token::Bracket(b) = toks[0] else { panic!() };
        assert_eq!(b.element.symbol(), "H");
        assert_eq!(b.charge, 1);
        assert_eq!(b.hcount, 0);

        let toks = kinds("[2H]");
        let Token::Bracket(b) = toks[0] else { panic!() };
        assert_eq!(b.isotope, Some(2));
        assert_eq!(b.element.symbol(), "H");
    }

    #[test]
    fn bracket_double_negative_charge() {
        let toks = kinds("[O--]");
        let Token::Bracket(b) = toks[0] else { panic!() };
        assert_eq!(b.charge, -2);
        let toks = kinds("[O-2]");
        let Token::Bracket(b) = toks[0] else { panic!() };
        assert_eq!(b.charge, -2);
    }

    #[test]
    fn bracket_chirality_double_at() {
        let toks = kinds("[C@@H]");
        let Token::Bracket(b) = toks[0] else { panic!() };
        assert_eq!(b.chirality, Chirality::Cw);
        assert_eq!(b.hcount, 1);
    }

    #[test]
    fn bracket_errors() {
        assert!(matches!(
            tokenize(b"[CH4"),
            Err(SmilesError::UnterminatedBracket { at: 0 })
        ));
        assert!(matches!(
            tokenize(b"[]"),
            Err(SmilesError::EmptyBracket { .. })
        ));
        assert!(matches!(
            tokenize(b"[Xx]"),
            Err(SmilesError::UnknownElement { .. })
        ));
        assert!(matches!(
            tokenize(b"[C+16]"),
            Err(SmilesError::NumberOverflow { .. })
        ));
        assert!(matches!(
            tokenize(b"[CH99]"),
            Err(SmilesError::NumberOverflow { .. })
        ));
    }

    #[test]
    fn bare_errors() {
        // Fe must be bracketed: F lexes, then 'e' cannot start a token.
        assert!(matches!(
            tokenize(b"FeC"),
            Err(SmilesError::UnexpectedByte { byte: b'e', .. })
        ));
        // se / as must be bracketed.
        assert!(matches!(
            tokenize(b"se1ccc1"),
            Err(SmilesError::BareAromaticNotAllowed { .. })
        ));
        assert!(matches!(
            tokenize(b"asC"),
            Err(SmilesError::BareAromaticNotAllowed { .. })
        ));
        // random junk
        assert!(matches!(
            tokenize(b"C!C"),
            Err(SmilesError::UnexpectedByte { byte: b'!', at: 1 })
        ));
        // 'E' is not an element
        assert!(matches!(
            tokenize(b"E"),
            Err(SmilesError::UnknownElement { .. })
        ));
    }

    #[test]
    fn bare_f_is_fluorine_not_prefix() {
        // "Fl" is NOT flerovium outside brackets: F lexes, 'l' errors.
        assert!(matches!(
            tokenize(b"FlC"),
            Err(SmilesError::UnexpectedByte { byte: b'l', .. })
        ));
        // Plain F is fine.
        let toks = kinds("FC");
        assert!(matches!(toks[0], Token::Atom(a) if a.element.symbol() == "F"));
    }

    #[test]
    fn bare_sc_is_sulfur_then_aromatic_carbon() {
        // The classic trap: outside brackets only Cl/Br are two-letter.
        let toks = kinds("CSc1ccccc1");
        assert!(matches!(toks[1], Token::Atom(a) if a.element.symbol() == "S" && !a.aromatic));
        assert!(matches!(toks[2], Token::Atom(a) if a.element.symbol() == "C" && a.aromatic));
    }

    #[test]
    fn spans_cover_input_exactly() {
        let line = b"C%10[CH3:4]=Cc1(Br)1.%10"; // grammatical nonsense, lexically fine
        let toks = tokenize(line).unwrap();
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.span.start, pos, "tokens must tile the input");
            pos = t.span.end;
        }
        assert_eq!(pos, line.len());
    }

    #[test]
    fn empty_line_tokenizes_to_nothing() {
        assert!(tokenize(b"").unwrap().is_empty());
    }

    #[test]
    fn wildcard_atom() {
        let toks = kinds("*");
        assert!(matches!(toks[0], Token::Atom(a) if a.element == Element::Wildcard));
    }
}
