//! Molecular formula and molar mass from a parsed [`Molecule`].
//!
//! Screening decks are routinely filtered by composition (Lipinski-style
//! cutoffs on molecular weight) before a campaign is even stored, so the
//! substrate should be able to answer "what is this ligand, by the
//! numbers?" without round-tripping through an external toolkit. Formulas
//! follow the **Hill convention**: carbon first, hydrogen second, every
//! other element alphabetically (and strictly alphabetical when no carbon
//! is present); a non-zero net formal charge is appended as a suffix
//! (`+`, `2-`, …).

use crate::element::Element;
use crate::graph::{AtomKind, Molecule};
use std::collections::BTreeMap;

/// Element counts plus net charge — the data behind a formula string.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Composition {
    /// Counts per element symbol (hydrogens included under "H").
    counts: BTreeMap<&'static str, u32>,
    /// Number of `*` wildcard atoms (kept out of the formula proper).
    pub wildcards: u32,
    /// Sum of formal charges.
    pub net_charge: i32,
}

impl Composition {
    /// Tally a molecule: every heavy atom plus explicit (bracket) and
    /// implicit hydrogens.
    pub fn of(mol: &Molecule) -> Composition {
        let mut c = Composition::default();
        for (i, atom) in mol.atoms().iter().enumerate() {
            match atom.element() {
                Element::Wildcard => c.wildcards += 1,
                e => *c.counts.entry(e.symbol()).or_insert(0) += 1,
            }
            let h = mol.implicit_hydrogens(i as u32) as u32;
            if h > 0 {
                *c.counts.entry("H").or_insert(0) += h;
            }
            if let AtomKind::Bracket(b) = atom {
                c.net_charge += b.charge as i32;
            }
        }
        c
    }

    /// Count for one element symbol (0 when absent).
    pub fn count(&self, symbol: &str) -> u32 {
        self.counts.get(symbol).copied().unwrap_or(0)
    }

    /// Total heavy (non-H, non-wildcard) atoms.
    pub fn heavy_atoms(&self) -> u32 {
        self.counts
            .iter()
            .filter(|(s, _)| **s != "H")
            .map(|(_, n)| n)
            .sum()
    }

    /// The Hill-order formula string.
    pub fn hill_formula(&self) -> String {
        let mut out = String::new();
        let mut push = |sym: &str, n: u32| {
            if n == 0 {
                return;
            }
            out.push_str(sym);
            if n > 1 {
                out.push_str(&n.to_string());
            }
        };
        let has_carbon = self.count("C") > 0;
        if has_carbon {
            push("C", self.count("C"));
            push("H", self.count("H"));
            for (sym, &n) in &self.counts {
                if *sym != "C" && *sym != "H" {
                    push(sym, n);
                }
            }
        } else {
            // No carbon: strictly alphabetical, H included in order.
            for (sym, &n) in &self.counts {
                push(sym, n);
            }
        }
        match self.net_charge {
            0 => {}
            1 => out.push('+'),
            -1 => out.push('-'),
            q if q > 0 => out.push_str(&format!("{q}+")),
            q => out.push_str(&format!("{}-", -q)),
        }
        out
    }

    /// Molar mass in g/mol from standard atomic weights. `None` if the
    /// molecule contains wildcard atoms (their mass is undefined).
    pub fn molar_mass(&self) -> Option<f64> {
        if self.wildcards > 0 {
            return None;
        }
        let mut total = 0.0;
        for (sym, &n) in &self.counts {
            let w = Element::from_symbol(sym.as_bytes())?.atomic_weight()?;
            total += w * n as f64;
        }
        Some(total)
    }
}

/// Convenience: the Hill formula of a molecule.
pub fn molecular_formula(mol: &Molecule) -> String {
    Composition::of(mol).hill_formula()
}

/// Convenience: the molar mass of a molecule (g/mol).
pub fn molar_mass(mol: &Molecule) -> Option<f64> {
    Composition::of(mol).molar_mass()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn formula(s: &str) -> String {
        molecular_formula(&parse(s.as_bytes()).unwrap())
    }

    fn mass(s: &str) -> f64 {
        molar_mass(&parse(s.as_bytes()).unwrap()).unwrap()
    }

    #[test]
    fn known_drug_formulas() {
        // Vanillin (the paper's own Fig. 1 example).
        assert_eq!(formula("COc1cc(C=O)ccc1O"), "C8H8O3");
        // Aspirin.
        assert_eq!(formula("CC(=O)Oc1ccccc1C(=O)O"), "C9H8O4");
        // Caffeine.
        assert_eq!(formula("CN1C=NC2=C1C(=O)N(C(=O)N2C)C"), "C8H10N4O2");
        // Ibuprofen.
        assert_eq!(formula("CC(C)Cc1ccc(cc1)C(C)C(=O)O"), "C13H18O2");
        // Ethanol.
        assert_eq!(formula("CCO"), "C2H6O");
        // Methane as a bracket atom.
        assert_eq!(formula("[CH4]"), "CH4");
    }

    #[test]
    fn hill_order_without_carbon_is_alphabetical() {
        assert_eq!(formula("O"), "H2O");
        assert_eq!(formula("N"), "H3N", "ammonia: alphabetical, not NH3");
        assert_eq!(formula("[Na+].[Cl-]"), "ClNa");
    }

    #[test]
    fn charges_in_formula() {
        assert_eq!(formula("[NH4+]"), "H4N+");
        assert_eq!(formula("[OH-]"), "HO-");
        assert_eq!(formula("[Ca+2]"), "Ca2+");
        // A zwitterion sums to zero net charge: glycine-like.
        assert_eq!(formula("[NH3+]CC(=O)[O-]"), "C2H5NO2");
    }

    #[test]
    fn known_masses() {
        assert!((mass("O") - 18.015).abs() < 0.01, "water {}", mass("O"));
        assert!(
            (mass("COc1cc(C=O)ccc1O") - 152.15).abs() < 0.05,
            "vanillin {}",
            mass("COc1cc(C=O)ccc1O")
        );
        assert!(
            (mass("CN1C=NC2=C1C(=O)N(C(=O)N2C)C") - 194.19).abs() < 0.05,
            "caffeine"
        );
    }

    #[test]
    fn wildcard_blocks_mass_but_not_formula() {
        let m = parse(b"C*C").unwrap();
        let c = Composition::of(&m);
        assert_eq!(c.wildcards, 1);
        assert!(c.molar_mass().is_none());
        // Wildcards contribute no symbol; carbons and their H's remain.
        assert!(c.hill_formula().starts_with("C2"));
    }

    #[test]
    fn composition_accessors() {
        let c = Composition::of(&parse(b"CC(=O)Oc1ccccc1C(=O)O").unwrap());
        assert_eq!(c.count("C"), 9);
        assert_eq!(c.count("H"), 8);
        assert_eq!(c.count("O"), 4);
        assert_eq!(c.count("N"), 0);
        assert_eq!(c.heavy_atoms(), 13);
        assert_eq!(c.net_charge, 0);
    }

    #[test]
    fn multi_component_salts_tally_everything() {
        // Sodium acetate: both components in one formula.
        assert_eq!(formula("CC(=O)[O-].[Na+]"), "C2H3NaO2");
    }
}
