//! Molecule → SMILES serialization.
//!
//! The writer performs a depth-first traversal (neighbors in bond-insertion
//! order, which makes it deterministic) and supports the two ring-ID
//! allocation policies that matter for this paper:
//!
//! * [`RingAlloc::Sequential`] — every ring gets a fresh ID (1, 2, 3, …),
//!   the style many cheminformatics exporters produce and the style the
//!   paper's *pre-processing* step is designed to undo;
//! * [`RingAlloc::Reuse`] — the smallest free ID is reused as soon as a ring
//!   closes (what ZSMILES pre-processing converges to).
//!
//! Stereo bonds (`/`, `\`) are flipped when an edge is traversed against its
//! stored direction, so cis/trans is preserved. Tetrahedral `@`/`@@` markers
//! are emitted verbatim; a traversal that changes the neighbor order around
//! a chiral atom may therefore misstate parity — acceptable here because the
//! writer is only applied to graphs it (or the generator) built itself, and
//! because round-trip tests compare write∘parse fixpoints, not parity.

use crate::error::SmilesError;
use crate::graph::{AtomKind, Molecule};
use crate::token::{BondSym, RingForm, Token};

/// Ring-ID allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingAlloc {
    /// Fresh ID per ring: 1, 2, 3, … (like many dataset exporters).
    #[default]
    Sequential,
    /// Smallest free ID, released when the ring closes.
    Reuse,
}

/// Which atom a component's description starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartAtom {
    /// A terminal heavy atom (degree ≤ 1) when one exists — the convention
    /// the paper describes — falling back to the lowest index.
    #[default]
    Terminal,
    /// Always the lowest atom index in the component.
    First,
}

/// Writer configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    pub ring_alloc: RingAlloc,
    pub start: StartAtom,
}

/// Result of serialization: the SMILES bytes plus the order in which atoms
/// were emitted (`emit_order[k]` = original atom index of the k-th atom in
/// the output). Re-parsing the output assigns indices in exactly this
/// order, so `emit_order` doubles as the permutation for graph-equality
/// round-trip checks.
#[derive(Debug, Clone)]
pub struct Written {
    pub smiles: Vec<u8>,
    pub emit_order: Vec<u32>,
}

/// Serialize a molecule. Errors only if more than 100 rings are
/// simultaneously open (SMILES cannot express ring IDs above 99).
pub fn write(mol: &Molecule, opts: &WriteOptions) -> Result<Written, SmilesError> {
    let n = mol.atom_count();
    let mut out = Vec::with_capacity(n * 2);
    let mut emit_order = Vec::with_capacity(n);
    if n == 0 {
        return Ok(Written {
            smiles: out,
            emit_order,
        });
    }

    let mut visited = vec![false; n];
    let mut alloc = RingIdAllocator::new(opts.ring_alloc);
    // ring edge -> assigned ID (set at the opening endpoint).
    let mut ring_ids: Vec<Option<u16>> = vec![None; mol.bond_count()];

    let mut first_component = true;
    while let Some(start) = pick_start(mol, &visited, opts.start) {
        if !first_component {
            out.push(b'.');
        }
        first_component = false;
        write_component(
            mol,
            start,
            &mut visited,
            &mut alloc,
            &mut ring_ids,
            &mut out,
            &mut emit_order,
        )?;
    }
    Ok(Written {
        smiles: out,
        emit_order,
    })
}

/// Convenience wrapper returning only the bytes.
pub fn to_smiles(mol: &Molecule, opts: &WriteOptions) -> Result<Vec<u8>, SmilesError> {
    write(mol, opts).map(|w| w.smiles)
}

fn pick_start(mol: &Molecule, visited: &[bool], policy: StartAtom) -> Option<u32> {
    let first_unvisited = visited.iter().position(|v| !v)? as u32;
    match policy {
        StartAtom::First => Some(first_unvisited),
        StartAtom::Terminal => {
            // Find the component of `first_unvisited`, preferring a terminal
            // atom in it.
            let mut comp = Vec::new();
            let mut stack = vec![first_unvisited];
            let mut seen = vec![false; mol.atom_count()];
            seen[first_unvisited as usize] = true;
            while let Some(a) = stack.pop() {
                comp.push(a);
                for &bi in mol.adjacent(a) {
                    let o = mol.bonds()[bi as usize].other(a);
                    if !seen[o as usize] {
                        seen[o as usize] = true;
                        stack.push(o);
                    }
                }
            }
            comp.sort_unstable();
            comp.iter()
                .copied()
                .find(|&a| mol.adjacent(a).len() <= 1)
                .or(Some(first_unvisited))
        }
    }
}

struct RingIdAllocator {
    policy: RingAlloc,
    /// Sequential: next fresh ID.
    next: u16,
    /// Reuse: in-use flags for IDs 0..100. ID 0 is skipped by default
    /// because several legacy tools reject it, even though it is legal; the
    /// preprocessor has its own allocator where 0 is fair game.
    in_use: [bool; 100],
}

impl RingIdAllocator {
    fn new(policy: RingAlloc) -> Self {
        RingIdAllocator {
            policy,
            next: 1,
            in_use: [false; 100],
        }
    }

    fn open(&mut self) -> Result<u16, SmilesError> {
        match self.policy {
            RingAlloc::Sequential => {
                let id = self.next;
                if id > 99 {
                    return Err(SmilesError::RingIdSpaceExhausted {
                        concurrent: id as usize,
                    });
                }
                self.next += 1;
                Ok(id)
            }
            RingAlloc::Reuse => {
                for id in 1..100u16 {
                    if !self.in_use[id as usize] {
                        self.in_use[id as usize] = true;
                        return Ok(id);
                    }
                }
                Err(SmilesError::RingIdSpaceExhausted { concurrent: 100 })
            }
        }
    }

    fn close(&mut self, id: u16) {
        if self.policy == RingAlloc::Reuse {
            self.in_use[id as usize] = false;
        }
    }
}

/// Emission plan entries for the iterative DFS.
enum Plan {
    /// Emit atom (entering through bond index, u32::MAX for roots).
    Atom {
        atom: u32,
        via: u32,
    },
    Open,
    Close,
}

fn write_component(
    mol: &Molecule,
    start: u32,
    visited: &mut [bool],
    alloc: &mut RingIdAllocator,
    ring_ids: &mut [Option<u16>],
    out: &mut Vec<u8>,
    emit_order: &mut Vec<u32>,
) -> Result<(), SmilesError> {
    // Phase A — classify edges with a proper DFS: an edge explored toward
    // an unvisited atom is a tree edge; everything else (pre-marked ring
    // bonds, back edges, cross edges) closes a ring. Classification must
    // happen *before* emission: the single-pass variant mis-handles graphs
    // where one atom is reachable through two planned-but-not-yet-emitted
    // branches (the edge would be neither tree nor ring at its first
    // endpoint's emission time).
    let mut tree_parent: Vec<u32> = vec![u32::MAX; mol.bond_count()];
    let mut is_ring_edge: Vec<bool> = vec![false; mol.bond_count()];
    {
        let mut frames: Vec<(u32, u32, usize)> = vec![(start, u32::MAX, 0)];
        visited[start as usize] = true;
        while let Some(&mut (atom, via, ref mut next)) = frames.last_mut() {
            let adj = mol.adjacent(atom);
            if *next >= adj.len() {
                frames.pop();
                continue;
            }
            let bi = adj[*next];
            *next += 1;
            if bi == via || tree_parent[bi as usize] != u32::MAX || is_ring_edge[bi as usize] {
                continue;
            }
            let bond = &mol.bonds()[bi as usize];
            let other = bond.other(atom);
            if bond.ring || visited[other as usize] {
                is_ring_edge[bi as usize] = true;
            } else {
                tree_parent[bi as usize] = atom;
                visited[other as usize] = true;
                frames.push((other, bi, 0));
            }
        }
    }

    // Phase B — emit in the same preorder, printing ring digits at both
    // endpoints of every ring edge (opened at the first-emitted endpoint).
    let mut stack: Vec<Plan> = vec![Plan::Atom {
        atom: start,
        via: u32::MAX,
    }];
    while let Some(step) = stack.pop() {
        match step {
            Plan::Open => out.push(b'('),
            Plan::Close => out.push(b')'),
            Plan::Atom { atom, via } => {
                emit_order.push(atom);

                // 1. incoming bond symbol
                if via != u32::MAX {
                    let bond = &mol.bonds()[via as usize];
                    if let Some(sym) = oriented_sym(bond, atom) {
                        out.push(sym.as_byte());
                    }
                }

                // 2. the atom itself
                let tok = match mol.atom(atom) {
                    AtomKind::Bare(a) => Token::Atom(*a),
                    AtomKind::Bracket(b) => Token::Bracket(*b),
                };
                tok.write_to(out);

                // 3. ring digits and tree children, in adjacency order.
                let mut children: Vec<u32> = Vec::new();
                for &bi in mol.adjacent(atom) {
                    if bi == via {
                        continue;
                    }
                    let bond = &mol.bonds()[bi as usize];
                    if is_ring_edge[bi as usize] {
                        match ring_ids[bi as usize] {
                            Some(id) => {
                                // closing half; no bond symbol (it was
                                // written at the opening half if needed)
                                push_ring_digit(out, id);
                                alloc.close(id);
                            }
                            None => {
                                let id = alloc.open()?;
                                ring_ids[bi as usize] = Some(id);
                                if let Some(sym) = oriented_sym(bond, bond.other(atom)) {
                                    out.push(sym.as_byte());
                                }
                                push_ring_digit(out, id);
                            }
                        }
                    } else if tree_parent[bi as usize] == atom {
                        children.push(bi);
                    }
                }

                // 4. children: all but the last in parentheses. Push onto
                //    the stack in reverse so they pop in order.
                let k = children.len();
                for (pos, &bi) in children.iter().enumerate().rev() {
                    let child = mol.bonds()[bi as usize].other(atom);
                    if pos + 1 == k {
                        stack.push(Plan::Atom {
                            atom: child,
                            via: bi,
                        });
                    } else {
                        stack.push(Plan::Close);
                        stack.push(Plan::Atom {
                            atom: child,
                            via: bi,
                        });
                        stack.push(Plan::Open);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Bond symbol adjusted for traversal direction: directional bonds flip
/// when the edge is walked from `b` to `a`.
fn oriented_sym(bond: &crate::graph::Bond, entering: u32) -> Option<BondSym> {
    let sym = bond.sym?;
    let forward = bond.b == entering; // stored direction is a -> b
    Some(match (sym, forward) {
        (BondSym::Up, false) => BondSym::Down,
        (BondSym::Down, false) => BondSym::Up,
        (s, _) => s,
    })
}

fn push_ring_digit(out: &mut Vec<u8>, id: u16) {
    let tok = if id < 10 {
        Token::Ring {
            id,
            form: RingForm::Digit,
        }
    } else {
        Token::Ring {
            id,
            form: RingForm::Percent,
        }
    };
    tok.write_to(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn rt(s: &str, opts: &WriteOptions) -> String {
        let mol = parse(s.as_bytes()).unwrap();
        String::from_utf8(to_smiles(&mol, opts).unwrap()).unwrap()
    }

    fn seq() -> WriteOptions {
        WriteOptions {
            ring_alloc: RingAlloc::Sequential,
            start: StartAtom::First,
        }
    }

    fn reuse() -> WriteOptions {
        WriteOptions {
            ring_alloc: RingAlloc::Reuse,
            start: StartAtom::First,
        }
    }

    #[test]
    fn chain_is_identity() {
        assert_eq!(rt("CCO", &seq()), "CCO");
        assert_eq!(rt("CC(C)(C)C", &seq()), "CC(C)(C)C");
    }

    #[test]
    fn benzene_round_trips() {
        assert_eq!(rt("c1ccccc1", &seq()), "c1ccccc1");
        assert_eq!(rt("C1=CC=CC=C1", &seq()), "C1=CC=CC=C1");
    }

    #[test]
    fn ring_ids_sequential_vs_reuse() {
        // Two disjoint rings: Sequential numbers them 1 and 2; Reuse gives
        // both ID 1.
        let s = "C1CCCCC1C1CCCCC1";
        assert_eq!(rt(s, &seq()), "C1CCCCC1C2CCCCC2");
        assert_eq!(rt(s, &reuse()), "C1CCCCC1C1CCCCC1");
    }

    #[test]
    fn write_parse_fixpoint() {
        // write∘parse must be idempotent: a second round-trip reproduces
        // the first output byte-for-byte.
        for s in [
            "COc1cc(C=O)ccc1O",
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            "[NH4+].[Cl-]",
            "N#Cc1ccccc1",
            "C/C=C\\C",
            "CC(=O)Oc1ccccc1C(=O)O",
        ] {
            for opts in [seq(), reuse()] {
                let once = rt(s, &opts);
                let twice = rt(&once, &opts);
                assert_eq!(once, twice, "fixpoint for {s}");
            }
        }
    }

    #[test]
    fn round_trip_preserves_graph() {
        for s in [
            "COc1cc(C=O)ccc1O",
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "CC(C)(C)c1ccc(O)cc1",
            "[O-]C(=O)c1ccccc1",
            "C1CC2CCC1CC2", // bicyclic
        ] {
            let mol = parse(s.as_bytes()).unwrap();
            let w = write(&mol, &seq()).unwrap();
            let re = parse(&w.smiles).unwrap();
            // emit_order maps original -> new: atom emitted k-th becomes
            // index k in the reparse.
            let mut perm = vec![0u32; mol.atom_count()];
            for (new_idx, &orig) in w.emit_order.iter().enumerate() {
                perm[orig as usize] = new_idx as u32;
            }
            assert!(
                mol.eq_under_permutation(&re, &perm),
                "graph preserved for {s}"
            );
        }
    }

    #[test]
    fn stereo_bond_flips_with_direction() {
        // Parse trans-2-butene, then force traversal from the other end by
        // starting at the last atom (Terminal policy picks a terminal; both
        // ends are terminal, so index order decides). The fixpoint test is
        // the real guard; here we just verify a direction flip happens when
        // walking an Up bond backwards.
        let mol = parse(b"C/C=C/C").unwrap();
        let up = mol.bonds().iter().find(|b| b.sym.is_some()).unwrap();
        assert_eq!(oriented_sym(up, up.b), up.sym);
        assert_eq!(
            oriented_sym(up, up.a),
            Some(match up.sym.unwrap() {
                BondSym::Up => BondSym::Down,
                BondSym::Down => BondSym::Up,
                s => s,
            })
        );
    }

    #[test]
    fn terminal_start_prefers_degree_one() {
        // Ring with a tail: CCc1ccccc1 parsed, starting Terminal must begin
        // at the chain end, not inside the ring.
        let mol = parse(b"c1ccccc1CC").unwrap();
        let opts = WriteOptions {
            ring_alloc: RingAlloc::Sequential,
            start: StartAtom::Terminal,
        };
        let w = write(&mol, &opts).unwrap();
        let s = String::from_utf8(w.smiles).unwrap();
        assert!(s.starts_with("CC"), "got {s}");
    }

    #[test]
    fn components_dot_joined() {
        let out = rt("[NH4+].[Cl-]", &seq());
        assert_eq!(out, "[NH4+].[Cl-]");
    }

    #[test]
    fn percent_ids_when_many_rings_open() {
        // Build a molecule with 12 simultaneously-open rings: a long chain
        // where ring i opens at atom i and closes at atom 2n-i (nested).
        let mut m = Molecule::new();
        use crate::element::Element;
        use crate::graph::AtomKind;
        use crate::token::BareAtom;
        let c = AtomKind::Bare(BareAtom {
            element: Element::from_symbol(b"C").unwrap(),
            aromatic: false,
        });
        let n = 12;
        let atoms: Vec<u32> = (0..2 * n).map(|_| m.add_atom(c)).collect();
        for w in atoms.windows(2) {
            m.add_bond(w[0], w[1], None, false);
        }
        // Skip the innermost pair: it would duplicate a chain bond.
        for i in 0..n - 1 {
            m.add_bond(atoms[i], atoms[2 * n - 1 - i], None, true);
        }
        let w = write(&m, &seq()).unwrap();
        let s = String::from_utf8(w.smiles.clone()).unwrap();
        assert!(s.contains("%10"), "needs percent form: {s}");
        // And it must re-parse to the same graph.
        let re = parse(&w.smiles).unwrap();
        let mut perm = vec![0u32; m.atom_count()];
        for (new_idx, &orig) in w.emit_order.iter().enumerate() {
            perm[orig as usize] = new_idx as u32;
        }
        assert!(m.eq_under_permutation(&re, &perm));
    }

    #[test]
    fn empty_molecule_writes_empty() {
        let m = Molecule::new();
        assert!(to_smiles(&m, &seq()).unwrap().is_empty());
    }
}
