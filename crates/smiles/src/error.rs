//! Error types shared by the SMILES lexer, parser and preprocessor.

use std::fmt;

/// Byte range of the offending region inside the input line.
///
/// Spans are half-open (`start..end`) byte offsets. They always refer to a
/// single line of input, which is how every SMILES API in this crate
/// operates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end);
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for "expected something here" errors.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Slice the input line with this span.
    pub fn slice<'a>(&self, line: &'a [u8]) -> &'a [u8] {
        &line[self.start..self.end.min(line.len())]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Everything that can go wrong while reading a SMILES line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmilesError {
    /// A byte that cannot start any SMILES token.
    UnexpectedByte { byte: u8, at: usize },
    /// A `[` bracket atom that is not terminated by `]`.
    UnterminatedBracket { at: usize },
    /// A bracket atom with no element symbol, e.g. `[+]`.
    EmptyBracket { span: Span },
    /// An element symbol that is not in the periodic table.
    UnknownElement { span: Span },
    /// An organic-subset aromatic symbol that is not allowed bare
    /// (e.g. `se` outside brackets).
    BareAromaticNotAllowed { span: Span },
    /// `%` ring bond not followed by two digits.
    MalformedPercentRing { at: usize },
    /// Numeric field (isotope, charge, class) out of the representable range.
    NumberOverflow { span: Span },
    /// A ring-bond ID was opened twice without being closed
    /// (e.g. `C1CC1C1` leaves ring 1 open at end of line -> see below),
    /// or a ring closure bonds an atom to itself (`C11`).
    RingSelfBond { id: u16, span: Span },
    /// The two halves of a ring closure carry contradictory bond symbols
    /// (`C=1CCC-1`).
    RingBondMismatch { id: u16, span: Span },
    /// A ring ID still open when the line (or dot-separated component) ends.
    UnclosedRing { id: u16 },
    /// Ring closure would duplicate an existing bond (e.g. `C12CC12`
    /// creating two bonds between the same atoms is chemically suspect but
    /// legal SMILES; this error is only for an *identical* pair re-bonded via
    /// the same ring digit semantics, i.e. `C11`).
    DuplicateRingBond { id: u16, span: Span },
    /// `(` without a matching `)`.
    UnclosedBranch { at: usize },
    /// `)` without a matching `(`.
    UnmatchedBranchClose { at: usize },
    /// A branch with no atoms, `C()C`.
    EmptyBranch { span: Span },
    /// A bond symbol with nothing to attach to (`=CC`, `C(=)C`, trailing `=`).
    DanglingBond { at: usize },
    /// A dot (fragment separator) in an illegal position, e.g. inside an
    /// open branch or at the start/end of the line.
    MisplacedDot { at: usize },
    /// Branch open immediately after start of line or after `.`:
    /// `(C)C` has no preceding atom.
    BranchWithoutAtom { at: usize },
    /// A ring-bond digit with no preceding atom, e.g. `1CC1`.
    RingWithoutAtom { at: usize },
    /// The line is empty (no atoms).
    EmptyInput,
    /// More than [`crate::preprocess::MAX_RING_ID`] rings simultaneously
    /// open: cannot be renumbered into `%nn` notation.
    RingIdSpaceExhausted { concurrent: usize },
    /// Two chirality markers or other duplicate fields inside one bracket.
    DuplicateBracketField { span: Span },
}

impl fmt::Display for SmilesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use SmilesError::*;
        match self {
            UnexpectedByte { byte, at } => {
                if byte.is_ascii_graphic() {
                    write!(f, "unexpected character '{}' at byte {}", *byte as char, at)
                } else {
                    write!(f, "unexpected byte 0x{byte:02x} at byte {at}")
                }
            }
            UnterminatedBracket { at } => write!(f, "'[' at byte {at} has no matching ']'"),
            EmptyBracket { span } => write!(f, "bracket atom at {span} has no element symbol"),
            UnknownElement { span } => write!(f, "unknown element symbol at {span}"),
            BareAromaticNotAllowed { span } => {
                write!(
                    f,
                    "aromatic symbol at {span} must be written inside brackets"
                )
            }
            MalformedPercentRing { at } => {
                write!(f, "'%' at byte {at} must be followed by exactly two digits")
            }
            NumberOverflow { span } => write!(f, "numeric field at {span} out of range"),
            RingSelfBond { id, span } => {
                write!(f, "ring bond {id} at {span} closes onto the same atom")
            }
            RingBondMismatch { id, span } => {
                write!(
                    f,
                    "ring bond {id} at {span} disagrees with its opening bond symbol"
                )
            }
            UnclosedRing { id } => write!(f, "ring bond {id} is never closed"),
            DuplicateRingBond { id, span } => {
                write!(f, "ring bond {id} at {span} duplicates an existing bond")
            }
            UnclosedBranch { at } => write!(f, "'(' at byte {at} has no matching ')'"),
            UnmatchedBranchClose { at } => write!(f, "')' at byte {at} has no matching '('"),
            EmptyBranch { span } => write!(f, "empty branch at {span}"),
            DanglingBond { at } => write!(f, "bond symbol at byte {at} has no following atom"),
            MisplacedDot { at } => write!(f, "'.' at byte {at} is not allowed here"),
            BranchWithoutAtom { at } => {
                write!(f, "branch at byte {at} is not attached to any atom")
            }
            RingWithoutAtom { at } => {
                write!(f, "ring bond at byte {at} is not attached to any atom")
            }
            EmptyInput => write!(f, "empty SMILES"),
            RingIdSpaceExhausted { concurrent } => write!(
                f,
                "{concurrent} rings are simultaneously open; SMILES ring IDs only go up to 99"
            ),
            DuplicateBracketField { span } => {
                write!(f, "duplicate field inside bracket atom at {span}")
            }
        }
    }
}

impl std::error::Error for SmilesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(2, 5);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.slice(b"0123456789"), b"234");
        let p = Span::point(4);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn display_is_humane() {
        let e = SmilesError::UnexpectedByte { byte: b'!', at: 3 };
        assert_eq!(e.to_string(), "unexpected character '!' at byte 3");
        let e = SmilesError::UnexpectedByte { byte: 0x07, at: 0 };
        assert_eq!(e.to_string(), "unexpected byte 0x07 at byte 0");
        let e = SmilesError::UnclosedRing { id: 12 };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn span_slice_clamps_to_line() {
        let s = Span::new(8, 64);
        assert_eq!(s.slice(b"0123456789"), b"89");
    }
}
