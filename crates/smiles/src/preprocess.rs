//! The paper's pre-processing step (§IV-A): ring-ID renumbering.
//!
//! SMILES exporters tend to give every ring a fresh closure digit
//! (`C1=CC=C(C=C1)…C2=CC=CC=C2`), which makes two otherwise identical ring
//! spellings differ and defeats substring-dictionary compression. The
//! transform here re-numbers ring IDs so they are *reused* as soon as a ring
//! closes, which maximizes repeated substrings while keeping the SMILES
//! valid and the molecule unchanged.
//!
//! Two pairs of ring-closure digits may share an ID only if their
//! open–close intervals are disjoint; assigning IDs is therefore interval
//! graph coloring. The greedy order decides who gets the small IDs:
//!
//! * [`RingRenumber::Innermost`] (the paper's choice) colors intervals in
//!   closing order, so the innermost / simplest rings take the smallest IDs;
//! * [`RingRenumber::Outermost`] colors in opening order;
//! * [`RingRenumber::Preserve`] leaves IDs untouched.
//!
//! Only ring-digit bytes are rewritten — every other byte of the line is
//! copied verbatim, so bracket atoms, stereo markers and the rest of the
//! string survive untouched. `%nn` spellings shrink to plain digits whenever
//! the new ID fits (`%12` → `3`), which is itself worth a few bytes.

use crate::error::SmilesError;
use crate::lexer::Lexer;
use crate::token::{RingForm, Token};

/// Largest ring ID expressible in SMILES (`%99`).
pub const MAX_RING_ID: u16 = 99;

/// Ring-ID renumbering strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingRenumber {
    /// Innermost rings get the smallest IDs (paper §IV-A choice).
    #[default]
    Innermost,
    /// Outermost rings get the smallest IDs.
    Outermost,
    /// Keep the input numbering (identity transform).
    Preserve,
}

/// One open/close ring-digit pair found in a line.
#[derive(Debug, Clone, Copy)]
struct RingPair {
    /// Byte span of the opening digit (excluding any bond symbol).
    open_span: (usize, usize),
    close_span: (usize, usize),
    /// Occurrence order indices used for interval intersection tests.
    open_seq: u32,
    close_seq: u32,
}

/// Reusable pre-processor. Holds scratch buffers so per-line processing is
/// allocation-free in the steady state.
#[derive(Debug)]
pub struct Preprocessor {
    pairs: Vec<RingPair>,
    assigned: Vec<u16>,
    /// Map id -> index into `pairs` of the currently-open pair.
    open_slots: [i32; 100],
}

impl Default for Preprocessor {
    fn default() -> Self {
        Preprocessor::new()
    }
}

impl Preprocessor {
    pub fn new() -> Self {
        Preprocessor {
            pairs: Vec::new(),
            assigned: Vec::new(),
            open_slots: [-1; 100],
        }
    }

    /// Renumber ring IDs in `line` (no trailing newline), appending the
    /// result to `out`. `out` is *not* cleared. The first assigned ID is
    /// `first_id` — the paper starts at 0; conventional exporters start
    /// at 1.
    pub fn process_into(
        &mut self,
        line: &[u8],
        strategy: RingRenumber,
        first_id: u16,
        out: &mut Vec<u8>,
    ) -> Result<(), SmilesError> {
        if strategy == RingRenumber::Preserve {
            out.extend_from_slice(line);
            return Ok(());
        }
        self.collect_pairs(line)?;
        if self.pairs.is_empty() {
            out.extend_from_slice(line);
            return Ok(());
        }
        self.assign_ids(strategy, first_id)?;
        self.rewrite(line, out);
        Ok(())
    }

    /// Find and pair all ring digits. Errors on an unclosed ring, the only
    /// structural property the transform needs. (Full validation is the
    /// parser's job; compression must work even on lines it has not parsed.)
    fn collect_pairs(&mut self, line: &[u8]) -> Result<(), SmilesError> {
        self.pairs.clear();
        self.open_slots = [-1; 100];
        let mut lexer = Lexer::new(line);
        let mut seq: u32 = 0;
        while let Some(st) = lexer.next_token()? {
            if let Token::Ring { id, form: _ } = st.token {
                let slot = &mut self.open_slots[id as usize];
                if *slot < 0 {
                    self.pairs.push(RingPair {
                        open_span: (st.span.start, st.span.end),
                        close_span: (0, 0),
                        open_seq: seq,
                        close_seq: u32::MAX,
                    });
                    *slot = (self.pairs.len() - 1) as i32;
                } else {
                    let p = &mut self.pairs[*slot as usize];
                    p.close_span = (st.span.start, st.span.end);
                    p.close_seq = seq;
                    *slot = -1;
                }
                seq += 1;
            }
        }
        if let Some(id) = self.open_slots.iter().position(|&s| s >= 0) {
            return Err(SmilesError::UnclosedRing { id: id as u16 });
        }
        Ok(())
    }

    /// Greedy interval coloring in the strategy's order.
    fn assign_ids(&mut self, strategy: RingRenumber, first_id: u16) -> Result<(), SmilesError> {
        let n = self.pairs.len();
        self.assigned.clear();
        self.assigned.resize(n, u16::MAX);

        // Processing order: indices of `pairs`, sorted by close or open seq.
        let mut order: Vec<u32> = (0..n as u32).collect();
        match strategy {
            RingRenumber::Innermost => {
                order.sort_unstable_by_key(|&i| self.pairs[i as usize].close_seq)
            }
            RingRenumber::Outermost => {
                order.sort_unstable_by_key(|&i| self.pairs[i as usize].open_seq)
            }
            RingRenumber::Preserve => unreachable!("handled by caller"),
        }

        for &pi in &order {
            let p = self.pairs[pi as usize];
            // IDs already taken by assigned pairs whose interval intersects.
            let mut taken = [false; 100];
            for (qi, q) in self.pairs.iter().enumerate() {
                let qid = self.assigned[qi];
                if qid == u16::MAX {
                    continue;
                }
                let disjoint = p.close_seq < q.open_seq || q.close_seq < p.open_seq;
                if !disjoint {
                    taken[qid as usize] = true;
                }
            }
            let id = (first_id..=MAX_RING_ID)
                .find(|&id| !taken[id as usize])
                .ok_or(SmilesError::RingIdSpaceExhausted { concurrent: n })?;
            self.assigned[pi as usize] = id;
        }
        Ok(())
    }

    /// Copy `line` to `out`, substituting ring-digit spans.
    fn rewrite(&self, line: &[u8], out: &mut Vec<u8>) {
        // Collect (span, new_id) for both halves of every pair, sorted by
        // position, then splice.
        let mut edits: Vec<((usize, usize), u16)> = Vec::with_capacity(self.pairs.len() * 2);
        for (i, p) in self.pairs.iter().enumerate() {
            let id = self.assigned[i];
            edits.push((p.open_span, id));
            edits.push((p.close_span, id));
        }
        edits.sort_unstable_by_key(|(span, _)| span.0);

        let mut pos = 0;
        for ((start, end), id) in edits {
            out.extend_from_slice(&line[pos..start]);
            let tok = if id < 10 {
                Token::Ring {
                    id,
                    form: RingForm::Digit,
                }
            } else {
                Token::Ring {
                    id,
                    form: RingForm::Percent,
                }
            };
            tok.write_to(out);
            pos = end;
        }
        out.extend_from_slice(&line[pos..]);
    }
}

/// One-shot convenience: renumber with the paper's defaults
/// (innermost-first, IDs from 0).
pub fn preprocess(line: &[u8]) -> Result<Vec<u8>, SmilesError> {
    let mut out = Vec::with_capacity(line.len());
    Preprocessor::new().process_into(line, RingRenumber::Innermost, 0, &mut out)?;
    Ok(out)
}

/// One-shot post-processing: renumber to the conventional exporter style
/// (outermost-first, IDs from 1, no ID 0). Decompressed archives stay valid
/// SMILES without this; it exists for tools that dislike ring ID 0.
pub fn postprocess(line: &[u8]) -> Result<Vec<u8>, SmilesError> {
    let mut out = Vec::with_capacity(line.len() + 4);
    Preprocessor::new().process_into(line, RingRenumber::Outermost, 1, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(s: &str) -> String {
        String::from_utf8(preprocess(s.as_bytes()).unwrap()).unwrap()
    }

    fn post(s: &str) -> String {
        String::from_utf8(postprocess(s.as_bytes()).unwrap()).unwrap()
    }

    #[test]
    fn paper_example_dibenzoylmethane() {
        // Figure in §IV-A: both disjoint rings collapse onto ID 0.
        assert_eq!(
            pp("C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2"),
            "C0=CC=C(C=C0)C(=O)CC(=O)C0=CC=CC=C0"
        );
    }

    #[test]
    fn chain_identity() {
        assert_eq!(pp("CCO"), "CCO");
        assert_eq!(pp("CC(=O)N"), "CC(=O)N");
    }

    #[test]
    fn nested_rings_innermost_gets_zero() {
        // Outer ring 1 spans everything; inner ring 2 nested. Innermost
        // strategy: inner -> 0, outer -> 1.
        assert_eq!(pp("C1CC2CCC2CC1"), "C1CC0CCC0CC1");
        // Outermost strategy: outer -> 0, inner -> 1.
        let mut out = Vec::new();
        Preprocessor::new()
            .process_into(b"C1CC2CCC2CC1", RingRenumber::Outermost, 0, &mut out)
            .unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "C0CC1CCC1CC0");
    }

    #[test]
    fn interleaved_rings_get_distinct_ids() {
        // open1 open2 close1 close2 — intervals intersect, distinct IDs.
        let s = "C1CC2CC1CC2";
        let got = pp(s);
        // innermost: ring 1 closes first -> 0; ring 2 -> 1
        assert_eq!(got, "C0CC1CC0CC1");
    }

    #[test]
    fn percent_ids_shrink_to_digits() {
        assert_eq!(pp("C%10CCCCC%10"), "C0CCCCC0");
        assert_eq!(pp("C%99CC%99"), "C0CC0");
    }

    #[test]
    fn preprocessed_output_reparses_to_same_molecule() {
        use crate::parser::parse;
        for s in [
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "C1CC2CCC2CC1",
            "c1ccc2ccccc2c1", // naphthalene, fused
            "C%12CCCC%12",
            "C1CCCCC1C2CCCCC2C3CCCCC3",
        ] {
            let before = parse(s.as_bytes()).unwrap();
            let after = parse(pp(s).as_bytes()).unwrap();
            assert_eq!(before.signature(), after.signature(), "{s}");
            assert_eq!(before.ring_count(), after.ring_count());
        }
    }

    #[test]
    fn idempotent() {
        for s in [
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "c1ccc2ccccc2c1",
            "C1CC2CCC2CC1",
        ] {
            let once = pp(s);
            assert_eq!(pp(&once), once, "{s}");
        }
    }

    #[test]
    fn fused_rings_share_atom_but_not_interval() {
        // Naphthalene c1ccc2ccccc2c1: ring 2 nested inside ring 1.
        assert_eq!(pp("c1ccc2ccccc2c1"), "c1ccc0ccccc0c1");
    }

    #[test]
    fn reuse_after_close_many_rings() {
        // Ten disjoint rings all collapse to ID 0.
        let s = "C1CC1C2CC2C3CC3C4CC4C5CC5C6CC6C7CC7C8CC8C9CC9C%10CC%10";
        let expect = "C0CC0".repeat(10);
        assert_eq!(pp(s), expect);
    }

    #[test]
    fn unclosed_ring_is_error() {
        assert!(matches!(
            preprocess(b"C1CCC"),
            Err(SmilesError::UnclosedRing { id: 1 })
        ));
    }

    #[test]
    fn lexical_error_propagates() {
        assert!(preprocess(b"C!C").is_err());
        assert!(preprocess(b"C%1C").is_err());
    }

    #[test]
    fn postprocess_starts_at_one_outermost() {
        assert_eq!(
            post("C0=CC=C(C=C0)C(=O)CC(=O)C0=CC=CC=C0"),
            "C1=CC=C(C=C1)C(=O)CC(=O)C1=CC=CC=C1"
        );
        assert_eq!(post("C1CC0CCC0CC1"), "C1CC2CCC2CC1");
    }

    #[test]
    fn postprocess_then_preprocess_round_trip() {
        for s in ["C0=CC=C(C=C0)C0=CC=CC=C0", "C1CC0CCC0CC1", "c0ccc1ccccc1c0"] {
            assert_eq!(pp(&post(s)), pp(s), "{s}");
        }
    }

    #[test]
    fn ring_id_zero_inputs_handled() {
        // Input already using 0 renumbers fine.
        assert_eq!(pp("C0CC0C1CC1"), "C0CC0C0CC0");
    }

    #[test]
    fn bond_symbol_before_digit_untouched() {
        assert_eq!(pp("C=1CCCCC=1C=2CC=2"), "C=0CCCCC=0C=0CC=0");
    }

    #[test]
    fn preserve_is_identity() {
        let mut out = Vec::new();
        Preprocessor::new()
            .process_into(b"C1CC2CCC2CC1", RingRenumber::Preserve, 0, &mut out)
            .unwrap();
        assert_eq!(out, b"C1CC2CCC2CC1");
    }

    #[test]
    fn deeply_nested_rings_allocate_increasing_ids() {
        // 3 nested rings: innermost 0, middle 1, outer 2.
        assert_eq!(pp("C1C2C3CC3C2C1"), "C2C1C0CC0C1C2");
    }

    #[test]
    fn brackets_untouched() {
        assert_eq!(pp("[13CH3]C1CC1[O-]"), "[13CH3]C0CC0[O-]");
    }

    #[test]
    fn processor_reuse_across_lines() {
        let mut p = Preprocessor::new();
        let mut out = Vec::new();
        for (input, want) in [
            ("C1CC1", "C0CC0"),
            ("C2CC2", "C0CC0"),
            ("CCO", "CCO"),
            ("C1CC2CCC2CC1", "C1CC0CCC0CC1"),
        ] {
            out.clear();
            p.process_into(input.as_bytes(), RingRenumber::Innermost, 0, &mut out)
                .unwrap();
            assert_eq!(std::str::from_utf8(&out).unwrap(), want, "{input}");
        }
    }
}
