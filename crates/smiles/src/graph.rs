//! Molecular graph: the in-memory form shared by the parser, the writer and
//! the dataset generator.

use crate::element::Element;
use crate::token::{BareAtom, BondSym, BracketAtom};

/// An atom node. We keep the distinction between bare and bracket notation
/// because it matters for re-serialization (`[CH4]` and `C` are the same
/// molecule but different bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomKind {
    Bare(BareAtom),
    Bracket(BracketAtom),
}

impl AtomKind {
    pub fn element(&self) -> Element {
        match self {
            AtomKind::Bare(a) => a.element,
            AtomKind::Bracket(a) => a.element,
        }
    }

    pub fn aromatic(&self) -> bool {
        match self {
            AtomKind::Bare(a) => a.aromatic,
            AtomKind::Bracket(a) => a.aromatic,
        }
    }
}

/// An edge. `sym == None` means the bond was implicit in the notation:
/// single between two non-aromatic atoms, aromatic between two aromatic ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bond {
    pub a: u32,
    pub b: u32,
    pub sym: Option<BondSym>,
    /// True when the bond came from (or should be written as) a ring-closure
    /// digit rather than adjacency in the string.
    pub ring: bool,
}

impl Bond {
    /// Bond order after resolving implicitness against the endpoints.
    pub fn order(&self, _atoms: &[AtomKind]) -> u8 {
        match self.sym {
            Some(s) => s.order(),
            None => 1, // implicit aromatic bonds also count 1 for valence
        }
    }

    /// The other endpoint.
    pub fn other(&self, atom: u32) -> u32 {
        if self.a == atom {
            self.b
        } else {
            debug_assert_eq!(self.b, atom);
            self.a
        }
    }

    /// Is the (possibly implicit) bond aromatic given its endpoints?
    pub fn is_aromatic(&self, atoms: &[AtomKind]) -> bool {
        match self.sym {
            Some(BondSym::Aromatic) => true,
            None => atoms[self.a as usize].aromatic() && atoms[self.b as usize].aromatic(),
            _ => false,
        }
    }
}

/// A molecule (possibly multiple disconnected components, as produced by
/// dot-separated SMILES).
#[derive(Debug, Clone, Default)]
pub struct Molecule {
    atoms: Vec<AtomKind>,
    bonds: Vec<Bond>,
    /// Bond indices incident to each atom, in insertion order. Insertion
    /// order is what makes the writer deterministic.
    adj: Vec<Vec<u32>>,
}

impl Molecule {
    pub fn new() -> Self {
        Molecule::default()
    }

    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    pub fn bond_count(&self) -> usize {
        self.bonds.len()
    }

    pub fn atoms(&self) -> &[AtomKind] {
        &self.atoms
    }

    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    pub fn atom(&self, i: u32) -> &AtomKind {
        &self.atoms[i as usize]
    }

    /// Bond indices incident to atom `i`, in insertion order.
    pub fn adjacent(&self, i: u32) -> &[u32] {
        &self.adj[i as usize]
    }

    pub fn add_atom(&mut self, kind: AtomKind) -> u32 {
        let idx = self.atoms.len() as u32;
        self.atoms.push(kind);
        self.adj.push(Vec::new());
        idx
    }

    /// Add a bond; panics on self-bonds or out-of-range atoms (the parser
    /// reports those as errors before calling this).
    pub fn add_bond(&mut self, a: u32, b: u32, sym: Option<BondSym>, ring: bool) -> u32 {
        assert!(a != b, "self bond");
        assert!((a as usize) < self.atoms.len() && (b as usize) < self.atoms.len());
        let idx = self.bonds.len() as u32;
        self.bonds.push(Bond { a, b, sym, ring });
        self.adj[a as usize].push(idx);
        self.adj[b as usize].push(idx);
        idx
    }

    /// Replace the kind of atom `i` (used by post-pass decorators, e.g.
    /// turning a bare `C` into a `[C@H]` bracket atom). The caller is
    /// responsible for keeping valence arithmetic consistent.
    pub fn set_atom_kind(&mut self, i: u32, kind: AtomKind) {
        self.atoms[i as usize] = kind;
    }

    /// Replace the bond symbol of bond `idx` (used to add `/`/`\` stereo
    /// marks after skeleton construction).
    pub fn set_bond_sym(&mut self, idx: u32, sym: Option<BondSym>) {
        self.bonds[idx as usize].sym = sym;
    }

    /// Is there already a bond between `a` and `b`?
    pub fn has_bond_between(&self, a: u32, b: u32) -> bool {
        self.adj[a as usize]
            .iter()
            .any(|&bi| self.bonds[bi as usize].other(a) == b)
    }

    /// Sum of bond orders at an atom (explicit graph valence).
    pub fn degree_valence(&self, i: u32) -> u32 {
        self.adj[i as usize]
            .iter()
            .map(|&bi| self.bonds[bi as usize].order(&self.atoms) as u32)
            .sum()
    }

    /// Number of implicit hydrogens an organic-subset atom would get, per
    /// the OpenSMILES default-valence rule. Bracket atoms carry their
    /// hydrogen count explicitly, so this returns that count for them.
    pub fn implicit_hydrogens(&self, i: u32) -> u8 {
        match &self.atoms[i as usize] {
            AtomKind::Bracket(b) => b.hcount,
            AtomKind::Bare(a) => {
                let v = self.degree_valence(i);
                // Aromatic atoms in rings get one fewer H slot because the
                // delocalized system adds bonding; the standard approximation
                // is to charge them one extra unit of valence.
                let v = if a.aromatic { v + 1 } else { v };
                for &dv in a.element.default_valences() {
                    if v <= dv as u32 {
                        return (dv as u32 - v) as u8;
                    }
                }
                0
            }
        }
    }

    /// Connected components, each a sorted list of atom indices.
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.atoms.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start as u32];
            seen[start] = true;
            while let Some(a) = stack.pop() {
                comp.push(a);
                for &bi in &self.adj[a as usize] {
                    let o = self.bonds[bi as usize].other(a);
                    if !seen[o as usize] {
                        seen[o as usize] = true;
                        stack.push(o);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Number of independent rings (circuit rank): `bonds - atoms + components`.
    pub fn ring_count(&self) -> usize {
        self.bonds.len() + self.components().len() - self.atoms.len()
    }

    /// Exact graph equality under an atom-index permutation `perm`, where
    /// `perm[i]` is the index in `other` corresponding to atom `i` in
    /// `self`. Used by round-trip tests: the writer reports the emit order,
    /// which is exactly this permutation for the re-parsed molecule.
    pub fn eq_under_permutation(&self, other: &Molecule, perm: &[u32]) -> bool {
        if self.atoms.len() != other.atoms.len()
            || self.bonds.len() != other.bonds.len()
            || perm.len() != self.atoms.len()
        {
            return false;
        }
        for (i, kind) in self.atoms.iter().enumerate() {
            if other.atoms[perm[i] as usize] != *kind {
                return false;
            }
        }
        let key = |a: u32, b: u32, ord: u8| {
            let (x, y) = if a < b { (a, b) } else { (b, a) };
            (x, y, ord)
        };
        let mut mine: Vec<_> = self
            .bonds
            .iter()
            .map(|bd| {
                key(
                    perm[bd.a as usize],
                    perm[bd.b as usize],
                    bd.order(&self.atoms),
                )
            })
            .collect();
        let mut theirs: Vec<_> = other
            .bonds
            .iter()
            .map(|bd| key(bd.a, bd.b, bd.order(&other.atoms)))
            .collect();
        mine.sort_unstable();
        theirs.sort_unstable();
        mine == theirs
    }

    /// A cheap permutation-invariant fingerprint: sorted atom kinds plus the
    /// sorted multiset of (element, element, order) bond descriptors. Equal
    /// molecules always have equal signatures; the converse is not
    /// guaranteed (it is a sanity check, not an isomorphism test).
    pub fn signature(&self) -> u64 {
        let mut atom_keys: Vec<u64> = self
            .atoms
            .iter()
            .map(|a| {
                let z = a.element().atomic_number().unwrap_or(0) as u64;
                let ar = a.aromatic() as u64;
                (z << 1) | ar
            })
            .collect();
        atom_keys.sort_unstable();
        let mut bond_keys: Vec<u64> = self
            .bonds
            .iter()
            .map(|b| {
                let za = self.atoms[b.a as usize]
                    .element()
                    .atomic_number()
                    .unwrap_or(0) as u64;
                let zb = self.atoms[b.b as usize]
                    .element()
                    .atomic_number()
                    .unwrap_or(0) as u64;
                let (lo, hi) = if za < zb { (za, zb) } else { (zb, za) };
                (lo << 16) | (hi << 4) | b.order(&self.atoms) as u64
            })
            .collect();
        bond_keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for k in atom_keys.iter().chain(bond_keys.iter()) {
            h ^= k.wrapping_mul(0x100_0000_01b3);
            h = h.rotate_left(27).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        h ^ (self.atoms.len() as u64) << 32 ^ self.bonds.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    fn carbon() -> AtomKind {
        AtomKind::Bare(BareAtom {
            element: Element::from_symbol(b"C").unwrap(),
            aromatic: false,
        })
    }

    fn arom_carbon() -> AtomKind {
        AtomKind::Bare(BareAtom {
            element: Element::from_symbol(b"C").unwrap(),
            aromatic: true,
        })
    }

    #[test]
    fn build_ethane() {
        let mut m = Molecule::new();
        let a = m.add_atom(carbon());
        let b = m.add_atom(carbon());
        m.add_bond(a, b, None, false);
        assert_eq!(m.atom_count(), 2);
        assert_eq!(m.bond_count(), 1);
        assert_eq!(m.degree_valence(a), 1);
        assert_eq!(m.implicit_hydrogens(a), 3);
        assert!(m.has_bond_between(a, b));
        assert!(m.has_bond_between(b, a));
        assert_eq!(m.ring_count(), 0);
    }

    #[test]
    fn implicit_h_counts() {
        // C=C : each carbon has valence 2 -> 2 implicit H.
        let mut m = Molecule::new();
        let a = m.add_atom(carbon());
        let b = m.add_atom(carbon());
        m.add_bond(a, b, Some(BondSym::Double), false);
        assert_eq!(m.implicit_hydrogens(a), 2);
        // Aromatic ring carbon: 2 ring bonds + 1 aromatic adjustment = 3 -> 1 H.
        let mut ring = Molecule::new();
        let atoms: Vec<u32> = (0..6).map(|_| ring.add_atom(arom_carbon())).collect();
        for i in 0..6 {
            ring.add_bond(atoms[i], atoms[(i + 1) % 6], None, i == 5);
        }
        for &a in &atoms {
            assert_eq!(ring.implicit_hydrogens(a), 1, "benzene CH");
        }
        assert_eq!(ring.ring_count(), 1);
    }

    #[test]
    fn components_and_rings() {
        let mut m = Molecule::new();
        let a = m.add_atom(carbon());
        let b = m.add_atom(carbon());
        let c = m.add_atom(carbon());
        m.add_bond(a, b, None, false);
        // c is disconnected
        let comps = m.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![a, b]);
        assert_eq!(comps[1], vec![c]);
        assert_eq!(m.ring_count(), 0);
    }

    #[test]
    fn permutation_equality() {
        // Triangle written twice with different index orders.
        let mut m1 = Molecule::new();
        let a = m1.add_atom(carbon());
        let b = m1.add_atom(arom_carbon());
        let c = m1.add_atom(carbon());
        m1.add_bond(a, b, None, false);
        m1.add_bond(b, c, None, false);
        m1.add_bond(c, a, None, true);

        let mut m2 = Molecule::new();
        let x = m2.add_atom(arom_carbon()); // = b
        let y = m2.add_atom(carbon()); // = c
        let z = m2.add_atom(carbon()); // = a
        m2.add_bond(x, y, None, false);
        m2.add_bond(y, z, None, false);
        m2.add_bond(z, x, None, false);

        // perm maps m1 indices -> m2 indices: a->z, b->x, c->y
        assert!(m1.eq_under_permutation(&m2, &[z, x, y]));
        assert!(!m1.eq_under_permutation(&m2, &[x, y, z]), "wrong mapping");
        assert_eq!(m1.signature(), m2.signature());
    }

    #[test]
    fn signature_differs_on_bond_order() {
        let mut m1 = Molecule::new();
        let a = m1.add_atom(carbon());
        let b = m1.add_atom(carbon());
        m1.add_bond(a, b, None, false);
        let mut m2 = Molecule::new();
        let a = m2.add_atom(carbon());
        let b = m2.add_atom(carbon());
        m2.add_bond(a, b, Some(BondSym::Double), false);
        assert_ne!(m1.signature(), m2.signature());
    }

    #[test]
    #[should_panic(expected = "self bond")]
    fn self_bond_panics() {
        let mut m = Molecule::new();
        let a = m.add_atom(carbon());
        m.add_bond(a, a, None, false);
    }
}
