//! Light canonicalization: a deterministic, traversal-invariant SMILES
//! form for deduplication and equality checks.
//!
//! This is a Morgan-style iterative refinement (atom invariants sharpened
//! by neighborhood hashing until stable), then a writer pass that starts
//! from the highest-ranked atom and visits neighbors in rank order. It is
//! *not* a certified graph-canonicalization (no orbit splitting beyond the
//! deterministic index tie-break), but it is stable under input reordering
//! for the overwhelming majority of chemical graphs, which is what the
//! dataset generator's deduplication and the tests need. Stereo markers
//! are dropped in the canonical form (parity would need neighbor-order
//! bookkeeping this light variant does not do).

use crate::graph::{AtomKind, Molecule};
use crate::writer::{write, RingAlloc, StartAtom, WriteOptions};

/// Initial invariant of one atom: element, aromaticity, degree, charge,
/// hydrogen count, isotope. Deliberately *structural only* — notational
/// artifacts like which bond carried the ring-closure digit must not
/// enter, or the canonical form would not be a fixed point.
fn initial_invariant(mol: &Molecule, i: u32) -> u64 {
    let a = mol.atom(i);
    let z = a.element().atomic_number().unwrap_or(0) as u64;
    let aromatic = a.aromatic() as u64;
    let degree = mol.adjacent(i).len() as u64;
    let (charge, hcount, isotope) = match a {
        AtomKind::Bracket(b) => (
            b.charge as i64 + 16,
            b.hcount as u64,
            b.isotope.unwrap_or(0),
        ),
        AtomKind::Bare(_) => (16, mol.implicit_hydrogens(i) as u64, 0),
    };
    let mut h = z;
    h = h << 1 | aromatic;
    h = h << 4 | degree.min(15);
    h = h << 6 | (charge as u64).min(63);
    h = h << 4 | hcount.min(15);
    h << 10 | (isotope as u64).min(1023)
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .rotate_left(23)
        .wrapping_mul(0x100_0000_01b3)
}

/// Refined ranks: position of each atom in the sorted invariant order.
fn refine(mol: &Molecule) -> Vec<u64> {
    let n = mol.atom_count();
    let mut inv: Vec<u64> = (0..n as u32).map(|i| initial_invariant(mol, i)).collect();
    // log₂(n)+2 rounds reach the graph diameter for molecule-sized graphs.
    let rounds = (usize::BITS - n.leading_zeros()) as usize + 2;
    for _ in 0..rounds {
        let mut next = vec![0u64; n];
        for i in 0..n {
            // Combine neighbor invariants order-independently (sorted).
            let mut neigh: Vec<u64> = mol
                .adjacent(i as u32)
                .iter()
                .map(|&b| {
                    let bond = &mol.bonds()[b as usize];
                    let other = bond.other(i as u32) as usize;
                    mix(inv[other], bond.order(mol.atoms()) as u64 + 1)
                })
                .collect();
            neigh.sort_unstable();
            let mut h = mix(inv[i], 0x5EED);
            for v in neigh {
                h = mix(h, v);
            }
            next[i] = h;
        }
        inv = next;
    }
    inv
}

/// A canonical-ish SMILES string: deterministic and traversal-invariant
/// (the same molecule entered with different atom orders produces the same
/// bytes, stereo aside).
pub fn canonical_smiles(mol: &Molecule) -> Vec<u8> {
    let n = mol.atom_count();
    if n == 0 {
        return Vec::new();
    }
    let inv = refine(mol);

    // Rebuild the molecule with atoms ordered by (invariant, original
    // index) and adjacency sorted the same way, so the deterministic
    // writer's traversal order is invariant-driven.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| (inv[i as usize], i));
    let mut new_index = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_index[old as usize] = new as u32;
    }

    let mut canon = Molecule::new();
    for &old in &order {
        let kind = strip_stereo(mol.atom(old));
        canon.add_atom(kind);
    }
    // Insert bonds sorted by their new endpoints so adjacency order is
    // also canonical.
    let mut bonds: Vec<(u32, u32, _)> = mol
        .bonds()
        .iter()
        .map(|b| {
            let x = new_index[b.a as usize];
            let y = new_index[b.b as usize];
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            (lo, hi, strip_dir(b.sym))
        })
        .collect();
    bonds.sort_unstable_by_key(|&(a, b, _)| (a, b));
    for (a, b, sym) in bonds {
        canon.add_bond(a, b, sym, false);
    }

    let opts = WriteOptions {
        ring_alloc: RingAlloc::Reuse,
        start: StartAtom::First,
    };
    write(&canon, &opts)
        .expect("canonical rewrite stays in ring-ID bounds")
        .smiles
}

fn strip_stereo(kind: &AtomKind) -> AtomKind {
    match kind {
        AtomKind::Bare(a) => AtomKind::Bare(*a),
        AtomKind::Bracket(b) => {
            let mut b = *b;
            b.chirality = crate::token::Chirality::None;
            AtomKind::Bracket(b)
        }
    }
}

fn strip_dir(sym: Option<crate::token::BondSym>) -> Option<crate::token::BondSym> {
    use crate::token::BondSym;
    match sym {
        Some(BondSym::Up) | Some(BondSym::Down) => None,
        s => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn canon(s: &str) -> String {
        String::from_utf8(canonical_smiles(&parse(s.as_bytes()).unwrap())).unwrap()
    }

    #[test]
    fn traversal_invariance() {
        // The same molecule written from different starting atoms / orders.
        let spellings: [&[&str]; 5] = [
            &["CCO", "OCC", "C(O)C"],
            &["c1ccccc1C", "Cc1ccccc1"],
            &["CC(=O)O", "OC(C)=O", "C(C)(=O)O"],
            &["COc1cc(C=O)ccc1O", "O=Cc1ccc(O)c(OC)c1"],
            &["C1CCCCC1", "C2CCCCC2"],
        ];
        for group in spellings {
            let forms: Vec<String> = group.iter().map(|s| canon(s)).collect();
            for w in forms.windows(2) {
                assert_eq!(w[0], w[1], "group {group:?}");
            }
        }
    }

    #[test]
    fn distinct_molecules_stay_distinct() {
        let pairs = [
            ("CCO", "CCN"),
            ("c1ccccc1", "C1CCCCC1"),
            ("CC(=O)O", "CC(=O)N"),
            ("C1CC1", "C1CCC1"),
            ("CC#N", "CC=N"),
        ];
        for (a, b) in pairs {
            assert_ne!(canon(a), canon(b), "{a} vs {b}");
        }
    }

    #[test]
    fn canonical_form_is_fixed_point() {
        for s in [
            "COc1cc(C=O)ccc1O",
            "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            "C1CC2CCC2C1",
        ] {
            let once = canon(s);
            assert_eq!(canon(&once), once, "{s}");
        }
    }

    #[test]
    fn canonical_output_is_valid() {
        for s in ["COc1cc(C=O)ccc1O", "[NH4+].[Cl-]", "C/C=C\\C", "[13CH3]C"] {
            let c = canon(s);
            let m = parse(c.as_bytes()).unwrap_or_else(|e| panic!("{e} in {c}"));
            assert_eq!(
                m.atom_count(),
                parse(s.as_bytes()).unwrap().atom_count(),
                "{s} -> {c}"
            );
        }
    }

    #[test]
    fn stereo_is_dropped_consistently() {
        assert_eq!(canon("C/C=C\\C"), canon("C/C=C/C"), "cis/trans collapse");
        assert_eq!(
            canon("[C@H](C)(N)O"),
            canon("[C@@H](C)(N)O"),
            "parity collapse"
        );
    }

    #[test]
    fn charges_and_isotopes_distinguish() {
        assert_ne!(canon("[O-]C"), canon("OC"));
        assert_ne!(canon("[13CH4]"), canon("C"));
    }

    #[test]
    fn generated_molecules_dedupe_by_canonical_form() {
        // Same generator seed twice: canonical forms must match pairwise.
        use crate::writer::{RingAlloc, StartAtom, WriteOptions};
        let m = parse(b"CC(C)c1ccc(N)cc1").unwrap();
        let w1 = write(
            &m,
            &WriteOptions {
                ring_alloc: RingAlloc::Sequential,
                start: StartAtom::Terminal,
            },
        )
        .unwrap();
        let m2 = parse(&w1.smiles).unwrap();
        assert_eq!(canonical_smiles(&m), canonical_smiles(&m2));
    }
}
