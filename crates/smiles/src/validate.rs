//! Line validation helpers.
//!
//! Two levels:
//! * [`quick_check`] — lexical scan plus branch/ring balance, no graph
//!   construction. This is what the compressor uses to decide whether a
//!   line is "compliant" (and therefore guaranteed not to expand).
//! * [`full_check`] — complete parse into a molecular graph, catching
//!   grammatical problems the quick check cannot (dangling bonds, empty
//!   branches, self-rings, …).

use crate::error::SmilesError;
use crate::lexer::Lexer;
use crate::parser::parse;
use crate::token::Token;

/// Lexical + balance validation without building a graph. Roughly 3×
/// faster than [`full_check`]; sufficient for compression pipelines.
pub fn quick_check(line: &[u8]) -> Result<(), SmilesError> {
    let mut lexer = Lexer::new(line);
    let mut depth: usize = 0;
    let mut first_open_at = 0usize;
    let mut ring_open = [false; 100];
    let mut ring_open_count = 0usize;
    let mut any_atom = false;
    while let Some(st) = lexer.next_token()? {
        match st.token {
            Token::BranchOpen => {
                if depth == 0 {
                    first_open_at = st.span.start;
                }
                depth += 1;
            }
            Token::BranchClose => {
                if depth == 0 {
                    return Err(SmilesError::UnmatchedBranchClose { at: st.span.start });
                }
                depth -= 1;
            }
            Token::Ring { id, .. } => {
                let slot = &mut ring_open[id as usize];
                if *slot {
                    *slot = false;
                    ring_open_count -= 1;
                } else {
                    *slot = true;
                    ring_open_count += 1;
                }
            }
            Token::Atom(_) | Token::Bracket(_) => any_atom = true,
            _ => {}
        }
    }
    if depth > 0 {
        return Err(SmilesError::UnclosedBranch { at: first_open_at });
    }
    if ring_open_count > 0 {
        let id = ring_open.iter().position(|&b| b).unwrap() as u16;
        return Err(SmilesError::UnclosedRing { id });
    }
    if !any_atom {
        return Err(SmilesError::EmptyInput);
    }
    Ok(())
}

/// Full grammatical validation (builds and discards the molecule).
pub fn full_check(line: &[u8]) -> Result<(), SmilesError> {
    parse(line).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_accepts_valid() {
        for s in [
            "COc1cc(C=O)ccc1O",
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "[NH4+].[Cl-]",
            "C%10CCCCC%10",
        ] {
            assert!(quick_check(s.as_bytes()).is_ok(), "{s}");
            assert!(full_check(s.as_bytes()).is_ok(), "{s}");
        }
    }

    #[test]
    fn quick_rejects_imbalance() {
        assert!(matches!(
            quick_check(b"C(C"),
            Err(SmilesError::UnclosedBranch { at: 1 })
        ));
        assert!(matches!(
            quick_check(b"CC)"),
            Err(SmilesError::UnmatchedBranchClose { .. })
        ));
        assert!(matches!(
            quick_check(b"C1CC"),
            Err(SmilesError::UnclosedRing { id: 1 })
        ));
        assert!(matches!(quick_check(b""), Err(SmilesError::EmptyInput)));
        assert!(matches!(quick_check(b"=#"), Err(SmilesError::EmptyInput)));
    }

    #[test]
    fn quick_misses_what_full_catches() {
        // Dangling bond is grammatical, not lexical: quick passes, full fails.
        assert!(quick_check(b"CC=").is_ok());
        assert!(full_check(b"CC=").is_err());
        // Self-ring likewise.
        assert!(quick_check(b"C11").is_ok());
        assert!(full_check(b"C11").is_err());
    }

    #[test]
    fn both_reject_lexical_garbage() {
        assert!(quick_check(b"C?C").is_err());
        assert!(full_check(b"C?C").is_err());
    }
}
