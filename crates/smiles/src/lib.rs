//! SMILES substrate for the ZSMILES reproduction.
//!
//! This crate owns everything about the SMILES notation itself, independent
//! of compression:
//!
//! * [`lexer`] — byte-level tokenizer with spans;
//! * [`parser`] — tokens → [`graph::Molecule`] with full structural checks;
//! * [`writer`] — molecule → SMILES with configurable ring-ID allocation;
//! * [`mod@preprocess`] — the paper's §IV-A ring-ID renumbering transform;
//! * [`alphabet`] — the SMILES character set used for dictionary
//!   pre-population (§IV-B);
//! * [`validate`] — quick (lexical) and full (grammatical) line checks;
//! * [`element`] — the periodic table, organic subset, aromaticity rules.
//!
//! # Example
//!
//! ```
//! use smiles::preprocess::preprocess;
//!
//! // The paper's Dibenzoylmethane example: ring IDs 1 and 2 collapse to 0,
//! // so both benzene rings now share the spelling "C0=CC=C".
//! let out = preprocess(b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2").unwrap();
//! assert_eq!(out, b"C0=CC=C(C=C0)C(=O)CC(=O)C0=CC=CC=C0");
//! ```

pub mod alphabet;
pub mod canon;
pub mod element;
pub mod error;
pub mod formula;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod preprocess;
pub mod token;
pub mod validate;
pub mod writer;

pub use error::{SmilesError, Span};
pub use formula::{molar_mass, molecular_formula, Composition};
pub use graph::{AtomKind, Bond, Molecule};
pub use preprocess::{postprocess, preprocess, Preprocessor, RingRenumber};
pub use token::{BareAtom, BondSym, BracketAtom, Chirality, RingForm, Token};
