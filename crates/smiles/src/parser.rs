//! SMILES grammar: token stream → [`Molecule`].
//!
//! The parser enforces the structural rules the lexer cannot see:
//! branch balance, ring-bond pairing (first occurrence opens, second
//! closes, IDs reusable after closing), bond-symbol agreement between the
//! two halves of a ring closure, and sane placement of dots and bonds.

use crate::error::{SmilesError, Span};
use crate::graph::{AtomKind, Molecule};
use crate::lexer::{tokenize, Spanned};
use crate::token::{BondSym, Token};

/// An open ring-bond half waiting for its partner digit.
#[derive(Debug, Clone, Copy)]
struct OpenRing {
    atom: u32,
    bond: Option<BondSym>,
    span: Span,
}

/// Parse one SMILES line into a molecule.
pub fn parse(line: &[u8]) -> Result<Molecule, SmilesError> {
    let tokens = tokenize(line)?;
    parse_tokens(&tokens)
}

/// Parse an already-tokenized line.
pub fn parse_tokens(tokens: &[Spanned]) -> Result<Molecule, SmilesError> {
    let mut mol = Molecule::new();
    // `prev` is the attachment point for the next atom/ring digit.
    let mut prev: Option<u32> = None;
    // Branch stack stores the attachment point to restore at ')'.
    let mut stack: Vec<(u32, usize)> = Vec::new(); // (atom, '(' byte pos)
    let mut pending_bond: Option<(BondSym, usize)> = None;
    // 100 possible ring IDs (0..=9 digits, %00..%99 overlap on 0..=9: the
    // ID value is what matters, not the spelling).
    let mut open_rings: Vec<Option<OpenRing>> = vec![None; 100];
    let mut open_ring_count: usize = 0;
    // Set when the token immediately after '(' has been seen, to detect "()".
    let mut branch_just_opened = false;

    for st in tokens {
        let tok = &st.token;
        match tok {
            Token::Atom(_) | Token::Bracket(_) => {
                let kind = match tok {
                    Token::Atom(a) => AtomKind::Bare(*a),
                    Token::Bracket(b) => AtomKind::Bracket(*b),
                    _ => unreachable!(),
                };
                let idx = mol.add_atom(kind);
                if let Some(p) = prev {
                    let sym = pending_bond.take().map(|(s, _)| s);
                    mol.add_bond(p, idx, sym, false);
                } else if let Some((_, at)) = pending_bond.take() {
                    return Err(SmilesError::DanglingBond { at });
                }
                prev = Some(idx);
                branch_just_opened = false;
            }
            Token::Bond(sym) => {
                if pending_bond.is_some() {
                    return Err(SmilesError::DanglingBond { at: st.span.start });
                }
                if prev.is_none() {
                    return Err(SmilesError::DanglingBond { at: st.span.start });
                }
                pending_bond = Some((*sym, st.span.start));
                branch_just_opened = false;
            }
            Token::Ring { id, form: _ } => {
                let cur = match prev {
                    Some(p) => p,
                    None => return Err(SmilesError::RingWithoutAtom { at: st.span.start }),
                };
                let slot = &mut open_rings[*id as usize];
                match slot.take() {
                    None => {
                        // Opening half.
                        *slot = Some(OpenRing {
                            atom: cur,
                            bond: pending_bond.take().map(|(s, _)| s),
                            span: st.span,
                        });
                        open_ring_count += 1;
                    }
                    Some(open) => {
                        // Closing half.
                        open_ring_count -= 1;
                        if open.atom == cur {
                            return Err(SmilesError::RingSelfBond {
                                id: *id,
                                span: st.span,
                            });
                        }
                        let close_bond = pending_bond.take().map(|(s, _)| s);
                        let sym = match (open.bond, close_bond) {
                            (Some(a), Some(b)) if a != b => {
                                // Directional bonds may legitimately differ
                                // (/ on one side, \ on the other).
                                let dir = |s: BondSym| matches!(s, BondSym::Up | BondSym::Down);
                                if dir(a) && dir(b) {
                                    Some(a)
                                } else {
                                    return Err(SmilesError::RingBondMismatch {
                                        id: *id,
                                        span: st.span,
                                    });
                                }
                            }
                            (Some(a), _) => Some(a),
                            (None, b) => b,
                        };
                        if mol.has_bond_between(open.atom, cur) {
                            return Err(SmilesError::DuplicateRingBond {
                                id: *id,
                                span: st.span,
                            });
                        }
                        let _ = open.span;
                        mol.add_bond(open.atom, cur, sym, true);
                    }
                }
                branch_just_opened = false;
            }
            Token::BranchOpen => {
                let cur = match prev {
                    Some(p) => p,
                    None => return Err(SmilesError::BranchWithoutAtom { at: st.span.start }),
                };
                if pending_bond.is_some() {
                    // "C=(C)" is not legal: the bond belongs inside.
                    return Err(SmilesError::DanglingBond { at: st.span.start });
                }
                stack.push((cur, st.span.start));
                branch_just_opened = true;
            }
            Token::BranchClose => {
                let (restore, open_at) = match stack.pop() {
                    Some(v) => v,
                    None => return Err(SmilesError::UnmatchedBranchClose { at: st.span.start }),
                };
                if branch_just_opened {
                    return Err(SmilesError::EmptyBranch {
                        span: Span::new(open_at, st.span.end),
                    });
                }
                if let Some((_, at)) = pending_bond.take() {
                    return Err(SmilesError::DanglingBond { at });
                }
                prev = Some(restore);
                branch_just_opened = false;
            }
            Token::Dot => {
                if !stack.is_empty() {
                    return Err(SmilesError::MisplacedDot { at: st.span.start });
                }
                if prev.is_none() {
                    return Err(SmilesError::MisplacedDot { at: st.span.start });
                }
                if let Some((_, at)) = pending_bond.take() {
                    return Err(SmilesError::DanglingBond { at });
                }
                prev = None;
                branch_just_opened = false;
            }
        }
    }

    if mol.atom_count() == 0 {
        return Err(SmilesError::EmptyInput);
    }
    if let Some((_, at)) = pending_bond {
        return Err(SmilesError::DanglingBond { at });
    }
    if let Some((_, at)) = stack.first() {
        return Err(SmilesError::UnclosedBranch { at: *at });
    }
    if open_ring_count > 0 {
        let id = open_rings
            .iter()
            .position(|s| s.is_some())
            .expect("count says one is open") as u16;
        return Err(SmilesError::UnclosedRing { id });
    }
    // Trailing dot leaves prev == None with atoms present: "C." — the dot
    // token would have required a following atom; detect by checking the
    // last token.
    if let Some(last) = tokens.last() {
        if matches!(last.token, Token::Dot) {
            return Err(SmilesError::MisplacedDot {
                at: last.span.start,
            });
        }
    }
    Ok(mol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::BondSym;

    #[test]
    fn linear_chain() {
        let m = parse(b"CCO").unwrap();
        assert_eq!(m.atom_count(), 3);
        assert_eq!(m.bond_count(), 2);
        assert_eq!(m.atoms()[2].element().symbol(), "O");
    }

    #[test]
    fn vanillin_structure() {
        let m = parse(b"COc1cc(C=O)ccc1O").unwrap();
        assert_eq!(m.atom_count(), 11);
        // ring closure adds 1 bond beyond the tree: atoms-1 + 1
        assert_eq!(m.bond_count(), 11);
        assert_eq!(m.ring_count(), 1);
    }

    #[test]
    fn dibenzoylmethane_structure() {
        // The paper's preprocessing example.
        let m = parse(b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2").unwrap();
        assert_eq!(m.ring_count(), 2);
        assert_eq!(m.atom_count(), 17);
        // And the pre-processed form parses to an equivalent graph.
        let p = parse(b"C0=CC=C(C=C0)C(=O)CC(=O)C0=CC=CC=C0").unwrap();
        assert_eq!(p.ring_count(), 2);
        assert_eq!(m.signature(), p.signature());
    }

    #[test]
    fn branches_attach_correctly() {
        let m = parse(b"CC(C)(C)C").unwrap(); // neopentane
        assert_eq!(m.atom_count(), 5);
        assert_eq!(m.adjacent(1).len(), 4, "quaternary carbon");
    }

    #[test]
    fn ring_bond_symbol_on_open_half() {
        let m = parse(b"C=1CCCCC=1").unwrap();
        let ring_bond = m.bonds().iter().find(|b| b.ring).unwrap();
        assert_eq!(ring_bond.sym, Some(BondSym::Double));
    }

    #[test]
    fn ring_bond_symbol_on_either_half() {
        for s in [&b"C=1CCCCC1"[..], &b"C1CCCCC=1"[..]] {
            let m = parse(s).unwrap();
            let ring_bond = m.bonds().iter().find(|b| b.ring).unwrap();
            assert_eq!(
                ring_bond.sym,
                Some(BondSym::Double),
                "{}",
                String::from_utf8_lossy(s)
            );
        }
    }

    #[test]
    fn ring_bond_symbol_conflict() {
        assert!(matches!(
            parse(b"C=1CCCCC-1"),
            Err(SmilesError::RingBondMismatch { id: 1, .. })
        ));
    }

    #[test]
    fn directional_ring_halves_tolerated() {
        assert!(parse(b"C/1CCCCC\\1").is_ok());
    }

    #[test]
    fn ring_id_reuse_across_line() {
        // Two hexagons reusing digit 1 after it closed.
        let m = parse(b"C1CCCCC1C1CCCCC1").unwrap();
        assert_eq!(m.ring_count(), 2);
        assert_eq!(m.atom_count(), 12);
    }

    #[test]
    fn percent_ring_ids_pair_with_digit_ids() {
        // %01 and 1 are the same ID value.
        let m = parse(b"C%01CCCCC1").unwrap();
        assert_eq!(m.ring_count(), 1);
    }

    #[test]
    fn dot_separates_components() {
        let m = parse(b"[NH4+].[Cl-]").unwrap();
        assert_eq!(m.atom_count(), 2);
        assert_eq!(m.bond_count(), 0);
        assert_eq!(m.components().len(), 2);
    }

    #[test]
    fn ring_closure_across_dot_components_is_legal() {
        // Rare but valid: ring bond 1 spans the dot.
        let m = parse(b"C1.CC1").unwrap();
        assert_eq!(m.components().len(), 1, "the ring bond joins them");
        assert_eq!(m.bond_count(), 2);
    }

    #[test]
    fn error_unclosed_ring() {
        assert!(matches!(
            parse(b"C1CCC"),
            Err(SmilesError::UnclosedRing { id: 1 })
        ));
    }

    #[test]
    fn error_self_ring() {
        assert!(matches!(
            parse(b"C11"),
            Err(SmilesError::RingSelfBond { id: 1, .. })
        ));
    }

    #[test]
    fn error_duplicate_ring_bond() {
        // 1 closes C(0)-C(1); then 2 would bond the same pair again.
        assert!(matches!(
            parse(b"C12C12"),
            Err(SmilesError::DuplicateRingBond { .. })
        ));
    }

    #[test]
    fn error_branch_imbalance() {
        assert!(matches!(
            parse(b"C(C"),
            Err(SmilesError::UnclosedBranch { at: 1 })
        ));
        assert!(matches!(
            parse(b"CC)"),
            Err(SmilesError::UnmatchedBranchClose { at: 2 })
        ));
    }

    #[test]
    fn error_empty_branch() {
        assert!(matches!(
            parse(b"C()C"),
            Err(SmilesError::EmptyBranch { .. })
        ));
    }

    #[test]
    fn error_branch_without_atom() {
        assert!(matches!(
            parse(b"(C)C"),
            Err(SmilesError::BranchWithoutAtom { at: 0 })
        ));
    }

    #[test]
    fn error_dangling_bonds() {
        assert!(matches!(
            parse(b"=CC"),
            Err(SmilesError::DanglingBond { at: 0 })
        ));
        assert!(matches!(
            parse(b"CC="),
            Err(SmilesError::DanglingBond { at: 2 })
        ));
        assert!(matches!(
            parse(b"C==C"),
            Err(SmilesError::DanglingBond { .. })
        ));
        assert!(matches!(
            parse(b"C=(C)"),
            Err(SmilesError::DanglingBond { .. })
        ));
        assert!(matches!(
            parse(b"C(C=)"),
            Err(SmilesError::DanglingBond { .. })
        ));
        assert!(matches!(
            parse(b"C=.C"),
            Err(SmilesError::DanglingBond { .. })
        ));
    }

    #[test]
    fn error_misplaced_dots() {
        assert!(matches!(
            parse(b".CC"),
            Err(SmilesError::MisplacedDot { at: 0 })
        ));
        assert!(matches!(
            parse(b"CC."),
            Err(SmilesError::MisplacedDot { .. })
        ));
        assert!(matches!(
            parse(b"C(.C)C"),
            Err(SmilesError::MisplacedDot { .. })
        ));
        assert!(matches!(
            parse(b"C..C"),
            Err(SmilesError::MisplacedDot { .. })
        ));
    }

    #[test]
    fn error_ring_without_atom() {
        assert!(matches!(
            parse(b"1CC1"),
            Err(SmilesError::RingWithoutAtom { at: 0 })
        ));
        assert!(matches!(
            parse(b"C.1CC1"),
            Err(SmilesError::RingWithoutAtom { .. })
        ));
    }

    #[test]
    fn error_empty() {
        assert!(matches!(parse(b""), Err(SmilesError::EmptyInput)));
    }

    #[test]
    fn bond_after_branch_close() {
        let m = parse(b"CC(C)=O").unwrap(); // acetone written with = after )
        assert_eq!(m.atom_count(), 4);
        let dbl = m
            .bonds()
            .iter()
            .find(|b| b.sym == Some(BondSym::Double))
            .unwrap();
        assert_eq!(m.atoms()[dbl.other(1) as usize].element().symbol(), "O");
    }

    #[test]
    fn nested_branches() {
        let m = parse(b"CC(C(C)(C)C)C").unwrap();
        assert_eq!(m.atom_count(), 7);
        assert_eq!(m.adjacent(2).len(), 4);
    }

    #[test]
    fn aromatic_implicit_bond_is_aromatic() {
        let m = parse(b"c1ccccc1").unwrap();
        for b in m.bonds() {
            assert!(b.is_aromatic(m.atoms()));
        }
    }

    #[test]
    fn explicit_single_between_aromatic_rings() {
        let m = parse(b"c1ccccc1-c1ccccc1").unwrap(); // biphenyl
        let link = m
            .bonds()
            .iter()
            .find(|b| b.sym == Some(BondSym::Single))
            .unwrap();
        assert!(!link.is_aromatic(m.atoms()));
        assert_eq!(m.ring_count(), 2);
    }
}
