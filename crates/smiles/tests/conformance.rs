//! OpenSMILES conformance battery: a broad accept/reject sweep over the
//! grammar corners, plus semantic spot-checks. One test per grammar area
//! so failures localize.

use smiles::parser::parse;
use smiles::validate::{full_check, quick_check};

fn accepts(cases: &[&str]) {
    for s in cases {
        full_check(s.as_bytes()).unwrap_or_else(|e| panic!("should accept {s}: {e}"));
    }
}

fn rejects(cases: &[&str]) {
    for s in cases {
        assert!(full_check(s.as_bytes()).is_err(), "should reject {s}");
    }
}

#[test]
fn organic_subset_atoms() {
    accepts(&[
        "B", "C", "N", "O", "P", "S", "F", "Cl", "Br", "I", "*", "BCNOPSF", "ClBr",
        "CI", // iodine, not lowercase L
    ]);
    rejects(&[
        "A", "E", "G", "J", "L", "M", "Q", "R", "T", "X", "Z", // not elements/bare
        "Fe", "Na", "Ca", "Si", // real elements that need brackets
        "a", "e", "g", // not aromatic-capable letters
    ]);
}

#[test]
fn aromatic_atoms() {
    accepts(&[
        "c1ccccc1",
        "n1ccccc1",
        "o1cccc1",
        "s1cccc1",
        "[nH]1cccc1",
        "[se]1cccc1",
    ]);
    rejects(&["se1cccc1", "asc"]); // two-letter aromatics must be bracketed
    accepts(&["b"]); // lone aromatic boron is syntactically acceptable
}

#[test]
fn bracket_atoms() {
    accepts(&[
        "[H]",
        "[H+]",
        "[2H]",
        "[238U]",
        "[Fe]",
        "[Fe+2]",
        "[Fe++]",
        "[CH4]",
        "[C@H](N)(O)C",
        "[C@@H](N)(O)C",
        "[OH-]",
        "[O-2]",
        "[13CH3]C",
        "[CH3:1][CH2:2]C",
        "[*+]",
        "[Au]",
    ]);
    rejects(&[
        "[]", "[4]", "[+]", // no element
        "[Xx]", "[Zz]", // unknown elements
        "[C",   // unterminated
        "[C-16]", "[C+16]", // charge magnitude
        "[CH99]", // hcount magnitude
    ]);
}

#[test]
fn bonds() {
    accepts(&[
        "C-C", "C=C", "C#N", "C$C", "c:c", "C/C=C/C", "C/C=C\\C", "CC(=O)C", "C=C=C", "C#CC#C",
    ]);
    rejects(&["C==C", "C=-C", "C=", "=C", "C(=)", "C.=C", "C=.C", "C=)C"]);
}

#[test]
fn branches() {
    accepts(&[
        "CC(C)C",
        "CC(C)(C)C",
        "C(C(C(C)))C",
        "CC(=O)O",
        "C(Cl)(Br)(F)I",
    ]);
    rejects(&["C(", "C)", "(C)", "C()C", "C((C))C ", "CC)("]);
}

#[test]
fn ring_bonds() {
    accepts(&[
        "C1CCCCC1",
        "C1CC1",
        "c1ccccc1c1ccccc1",
        "C%10CCCCC%10",
        "C12CC1C2", // fused via two ring bonds (legal: distinct pairs)
        "C=1CCCCC1",
        "C1CCCCC=1",
        "C=1CCCCC=1",
        "C0CC0",      // ring ID zero is legal
        "C%01CCCCC1", // %01 pairs with 1
    ]);
    rejects(&[
        "C1CC",       // unclosed
        "C11",        // self-bond
        "1CC1",       // digit before any atom
        "C=1CCCCC-1", // conflicting bond symbols
        "C%1CC",      // malformed percent
        "C12C12",     // duplicate bond between same atom pair
    ]);
}

#[test]
fn dots_and_components() {
    accepts(&["[Na+].[Cl-]", "C.C.C", "c1ccccc1.c1ccccc1", "CCO.O.O"]);
    rejects(&[".C", "C.", "C..C", "C(.C)C"]);
}

#[test]
fn stereo_markers() {
    accepts(&[
        "N[C@@H](C)C(=O)O", // L-alanine
        "N[C@H](C)C(=O)O",
        "F/C=C/F",  // trans
        "F/C=C\\F", // cis
        "C(/F)=C/F",
    ]);
}

#[test]
fn real_molecules() {
    // A gallery of well-known drugs/compounds, all must parse.
    accepts(&[
        "CC(=O)Oc1ccccc1C(=O)O",                  // aspirin
        "CN1C=NC2=C1C(=O)N(C(=O)N2C)C",           // caffeine
        "CC(C)Cc1ccc(cc1)C(C)C(=O)O",             // ibuprofen
        "COc1cc(C=O)ccc1O",                       // vanillin
        "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",    // dibenzoylmethane
        "c1ccc2c(c1)ccc3c2ccc4c3cccc4",           // chrysene
        "OC[C@@H](O)[C@@H](O)[C@H](O)[C@H](O)CO", // mannitol-ish
        "CN1CCC[C@H]1c1cccnc1",                   // nicotine
        "Clc1ccccc1",                             // chlorobenzene
        "O=C(O)c1ccccc1O",                        // salicylic acid
        "N#Cc1ccccc1",                            // benzonitrile
        "[O-][N+](=O)c1ccccc1",                   // nitrobenzene
    ]);
}

#[test]
fn semantic_spot_checks() {
    // Atom/bond/ring counts on known structures.
    let caffeine = parse(b"CN1C=NC2=C1C(=O)N(C(=O)N2C)C").unwrap();
    assert_eq!(caffeine.atom_count(), 14);
    assert_eq!(caffeine.ring_count(), 2);

    let chrysene = parse(b"c1ccc2c(c1)ccc3c2ccc4c3cccc4").unwrap();
    assert_eq!(chrysene.atom_count(), 18);
    assert_eq!(chrysene.ring_count(), 4);

    let salt = parse(b"[Na+].[Cl-]").unwrap();
    assert_eq!(salt.components().len(), 2);
    assert_eq!(salt.bond_count(), 0);

    // Implicit hydrogens: methane carbon has 4, benzene carbons 1 each.
    let methane = parse(b"C").unwrap();
    assert_eq!(methane.implicit_hydrogens(0), 4);
    let benzene = parse(b"c1ccccc1").unwrap();
    for i in 0..6 {
        assert_eq!(benzene.implicit_hydrogens(i), 1);
    }
}

#[test]
fn quick_check_agrees_with_full_on_valid_input() {
    // quick_check is a relaxation: everything full accepts, quick accepts.
    for s in [
        "CC(=O)Oc1ccccc1C(=O)O",
        "CN1C=NC2=C1C(=O)N(C(=O)N2C)C",
        "[Na+].[Cl-]",
        "C%10CCCCC%10",
        "F/C=C\\F",
    ] {
        full_check(s.as_bytes()).unwrap();
        quick_check(s.as_bytes()).unwrap();
    }
}

#[test]
fn whitespace_and_garbage_rejected() {
    rejects(&[
        "", " ", "C C", "C\tC", "CC ", " CC", "C!C", "C?C", "C~C", "C^C", "C&C", "ε", "碳",
    ]);
}

#[test]
fn preprocessing_conformance() {
    // The §IV-A transform on the conformance gallery: output must stay
    // valid and represent the same molecule.
    for s in [
        "CC(=O)Oc1ccccc1C(=O)O",
        "CN1C=NC2=C1C(=O)N(C(=O)N2C)C",
        "c1ccc2c(c1)ccc3c2ccc4c3cccc4",
        "CN1CCC[C@H]1c1cccnc1",
        "C12CC1C2",
    ] {
        let pp = smiles::preprocess(s.as_bytes()).unwrap();
        let a = parse(s.as_bytes()).unwrap();
        let b = parse(&pp).unwrap();
        assert_eq!(a.signature(), b.signature(), "{s}");
        assert_eq!(a.ring_count(), b.ring_count(), "{s}");
    }
}

#[test]
fn formula_conformance_battery() {
    // Hill formulas for a gallery of well-known molecules — checks the
    // parser's implicit-hydrogen model end to end, since every H here is
    // inferred from valence.
    for (s, want) in [
        ("C", "CH4"),
        ("CC", "C2H6"),
        ("C=C", "C2H4"),
        ("C#C", "C2H2"),
        ("c1ccccc1", "C6H6"),
        ("Cc1ccccc1", "C7H8"),
        ("c1ccc2ccccc2c1", "C10H8"), // naphthalene
        ("C1CCCCC1", "C6H12"),       // cyclohexane
        ("N#N", "N2"),
        ("O=C=O", "CO2"),
        ("C(=O)(O)O", "CH2O3"),   // carbonic acid
        ("NC(=O)N", "CH4N2O"),    // urea
        ("OS(=O)(=O)O", "H2O4S"), // sulfuric acid, no C: alphabetical
        ("OP(=O)(O)O", "H3O4P"),  // phosphoric acid
        ("C(Cl)(Cl)(Cl)Cl", "CCl4"),
        ("FC(F)(F)F", "CF4"),
        ("CS(=O)C", "C2H6OS"),                // DMSO
        ("CCOC(=O)C", "C4H8O2"),              // ethyl acetate
        ("NCC(=O)O", "C2H5NO2"),              // glycine
        ("CN1CCC[C@H]1c1cccnc1", "C10H14N2"), // nicotine
        ("OCC1OC(O)C(O)C(O)C1O", "C6H12O6"),  // glucose (pyranose)
    ] {
        let mol = parse(s.as_bytes()).unwrap();
        assert_eq!(smiles::molecular_formula(&mol), want, "{s}");
    }
}

#[test]
fn formula_stable_under_preprocessing_gallery() {
    for s in [
        "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
        "c1ccc2c(c1)ccc3c2ccc4c3cccc4",
        "C12CC1C2",
        "C%10CC%10",
    ] {
        let pp = smiles::preprocess(s.as_bytes()).unwrap();
        assert_eq!(
            smiles::molecular_formula(&parse(s.as_bytes()).unwrap()),
            smiles::molecular_formula(&parse(&pp).unwrap()),
            "{s}"
        );
    }
}
