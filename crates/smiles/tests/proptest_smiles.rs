//! Property tests for the SMILES substrate: lexer totality, token
//! serialization inverses, writer/parser round trips on arbitrary
//! generated molecular graphs, preprocessing invariants.

use proptest::prelude::*;
use smiles::element::Element;
use smiles::graph::{AtomKind, Molecule};
use smiles::lexer::{detokenize, tokenize};
use smiles::preprocess::{preprocess, Preprocessor, RingRenumber};
use smiles::token::{BareAtom, BondSym};
use smiles::writer::{write, RingAlloc, StartAtom, WriteOptions};

/// Arbitrary random graphs over organic-subset atoms: a random tree plus
/// random extra (ring) edges, all single/double bonds within valence.
fn arb_molecule() -> impl Strategy<Value = Molecule> {
    (2usize..24, any::<u64>()).prop_map(|(n, seed)| {
        // Deterministic xorshift so shrinking stays meaningful.
        let mut state = seed | 1;
        let mut next = move |m: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as usize) % m.max(1)
        };
        let symbols = ["C", "C", "C", "C", "N", "O", "S"];
        let mut mol = Molecule::new();
        for _ in 0..n {
            let sym = symbols[next(symbols.len())];
            mol.add_atom(AtomKind::Bare(BareAtom {
                element: Element::from_symbol(sym.as_bytes()).unwrap(),
                aromatic: false,
            }));
        }
        let free = |mol: &Molecule, i: u32| -> u32 {
            let a = match mol.atom(i) {
                AtomKind::Bare(a) => *a,
                _ => unreachable!(),
            };
            let max = a.element.default_valences().last().copied().unwrap_or(0) as u32;
            max.saturating_sub(mol.degree_valence(i))
        };
        // Spanning tree.
        for i in 1..n as u32 {
            let parent = next(i as usize) as u32;
            if free(&mol, parent) >= 1 {
                mol.add_bond(parent, i, None, false);
            } else {
                // Fall back to any open atom; at least atom i-1 of a fresh
                // chain has capacity in practice, else leave disconnected
                // (a dot component — also legal).
                let mut attached = false;
                for p in 0..i {
                    if free(&mol, p) >= 1 && !mol.has_bond_between(p, i) {
                        mol.add_bond(p, i, None, false);
                        attached = true;
                        break;
                    }
                }
                let _ = attached;
            }
        }
        // Extra ring edges.
        let extra = next(3);
        for _ in 0..extra {
            let a = next(n) as u32;
            let b = next(n) as u32;
            if a != b && !mol.has_bond_between(a, b) && free(&mol, a) >= 1 && free(&mol, b) >= 1 {
                mol.add_bond(a, b, None, true);
            }
        }
        // A few double bonds where valence allows.
        for _ in 0..next(3) {
            let a = next(n) as u32;
            let b = next(n) as u32;
            if a != b && !mol.has_bond_between(a, b) && free(&mol, a) >= 2 && free(&mol, b) >= 2 {
                mol.add_bond(a, b, Some(BondSym::Double), true);
            }
        }
        mol
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// The lexer never panics on arbitrary bytes, and on success
    /// detokenize reproduces the input exactly (modulo documented
    /// normalizations, which the doubly-lexed form is a fixed point of).
    #[test]
    fn lexer_total_and_detokenize_fixpoint(line in proptest::collection::vec(any::<u8>(), 0..80)) {
        if let Ok(tokens) = tokenize(&line) {
            let once = detokenize(&tokens);
            let tokens2 = tokenize(&once).expect("detokenized output must re-lex");
            let twice = detokenize(&tokens2);
            prop_assert_eq!(once, twice);
        }
    }

    /// Arbitrary generated graphs survive write → parse → compare.
    #[test]
    fn writer_parser_roundtrip(mol in arb_molecule()) {
        for opts in [
            WriteOptions { ring_alloc: RingAlloc::Sequential, start: StartAtom::First },
            WriteOptions { ring_alloc: RingAlloc::Reuse, start: StartAtom::Terminal },
        ] {
            let w = write(&mol, &opts).unwrap();
            let re = smiles::parser::parse(&w.smiles).unwrap_or_else(|e| {
                panic!("{e}: {}", String::from_utf8_lossy(&w.smiles))
            });
            let mut perm = vec![0u32; mol.atom_count()];
            for (new_idx, &orig) in w.emit_order.iter().enumerate() {
                perm[orig as usize] = new_idx as u32;
            }
            prop_assert!(mol.eq_under_permutation(&re, &perm),
                "graph mismatch for {}", String::from_utf8_lossy(&w.smiles));
        }
    }

    /// Preprocessing on arbitrary generated molecules: valid output, same
    /// molecule, idempotent, never longer.
    #[test]
    fn preprocess_invariants(mol in arb_molecule()) {
        let opts = WriteOptions { ring_alloc: RingAlloc::Sequential, start: StartAtom::First };
        let s = write(&mol, &opts).unwrap().smiles;
        let pp = preprocess(&s).unwrap_or_else(|e| {
            panic!("{e}: {}", String::from_utf8_lossy(&s))
        });
        prop_assert!(pp.len() <= s.len(), "renumbering never grows the line");
        let a = smiles::parser::parse(&s).unwrap();
        let b = smiles::parser::parse(&pp).unwrap();
        prop_assert_eq!(a.signature(), b.signature());
        let pp2 = preprocess(&pp).unwrap();
        prop_assert_eq!(&pp, &pp2);
    }

    /// Innermost and outermost strategies agree on ring-pair structure
    /// (same molecule), even when they number differently.
    #[test]
    fn renumber_strategies_preserve_molecule(mol in arb_molecule()) {
        let opts = WriteOptions { ring_alloc: RingAlloc::Sequential, start: StartAtom::First };
        let s = write(&mol, &opts).unwrap().smiles;
        let mut pp = Preprocessor::new();
        let mut inner = Vec::new();
        pp.process_into(&s, RingRenumber::Innermost, 0, &mut inner).unwrap();
        let mut outer = Vec::new();
        pp.process_into(&s, RingRenumber::Outermost, 0, &mut outer).unwrap();
        let sig = smiles::parser::parse(&s).unwrap().signature();
        prop_assert_eq!(smiles::parser::parse(&inner).unwrap().signature(), sig);
        prop_assert_eq!(smiles::parser::parse(&outer).unwrap().signature(), sig);
    }

    /// Canonical form is identical across writer configurations of the
    /// same molecule.
    #[test]
    fn canonical_form_is_writer_invariant(mol in arb_molecule()) {
        let a = write(&mol, &WriteOptions { ring_alloc: RingAlloc::Sequential, start: StartAtom::First }).unwrap();
        let b = write(&mol, &WriteOptions { ring_alloc: RingAlloc::Reuse, start: StartAtom::Terminal }).unwrap();
        let ma = smiles::parser::parse(&a.smiles).unwrap();
        let mb = smiles::parser::parse(&b.smiles).unwrap();
        prop_assert_eq!(
            smiles::canon::canonical_smiles(&ma),
            smiles::canon::canonical_smiles(&mb)
        );
    }
}
