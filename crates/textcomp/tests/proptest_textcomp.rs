//! Property tests for every stage of the baseline compressors: each
//! transform must invert exactly on arbitrary inputs, and the containers
//! must round-trip end to end.

use proptest::prelude::*;
use textcomp::bwt::{bwt_forward, bwt_inverse};
use textcomp::huffman::{build_code_lengths, HuffmanDecoder, HuffmanEncoder};
use textcomp::mtf::{mtf_forward, mtf_inverse};
use textcomp::rle::{rle1_decode, rle1_encode, rle2_decode, rle2_encode};
use textcomp::{bitio, bzip, fsst, lz, shoco, smaz};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bwt_inverts(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let t = bwt_forward(&data);
        prop_assert_eq!(bwt_inverse(&t).unwrap(), data);
    }

    #[test]
    fn mtf_inverts(data in proptest::collection::vec(0u16..257, 0..500)) {
        prop_assert_eq!(mtf_inverse(&mtf_forward(&data)).unwrap(), data);
    }

    #[test]
    fn rle1_inverts(data in proptest::collection::vec(any::<u8>(), 0..800)) {
        prop_assert_eq!(rle1_decode(&rle1_encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle2_inverts(ranks in proptest::collection::vec(0u16..257, 0..500)) {
        prop_assert_eq!(rle2_decode(&rle2_encode(&ranks)).unwrap(), ranks);
    }

    #[test]
    fn huffman_inverts(symbols in proptest::collection::vec(0u16..64, 1..400)) {
        let mut freqs = vec![0u64; 64];
        for &s in &symbols {
            freqs[s as usize] += 1;
        }
        let lengths = build_code_lengths(&freqs);
        let enc = HuffmanEncoder::new(&lengths);
        let dec = HuffmanDecoder::new(&lengths);
        let mut w = bitio::BitWriter::new();
        for &s in &symbols {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = bitio::BitReader::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(dec.read(&mut r), Some(s));
        }
    }

    #[test]
    fn bitio_inverts(values in proptest::collection::vec((any::<u32>(), 1u32..=32), 0..200)) {
        let mut w = bitio::BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v & ((1u64 << n) - 1) as u32, n);
        }
        let bytes = w.finish();
        let mut r = bitio::BitReader::new(&bytes);
        for &(v, n) in &values {
            prop_assert_eq!(r.read_bits(n), Some(v & ((1u64 << n) - 1) as u32));
        }
    }

    #[test]
    fn bzip_container_inverts(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
        let z = bzip::compress(&data);
        prop_assert_eq!(bzip::decompress(&z).unwrap(), data);
    }

    #[test]
    fn lz_container_inverts(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
        let z = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&z).unwrap(), data);
    }

    /// LZ with highly repetitive structure (worst case for window/match
    /// bookkeeping).
    #[test]
    fn lz_repetitive_inverts(unit in proptest::collection::vec(any::<u8>(), 1..12),
                             reps in 1usize..400) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let z = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&z).unwrap(), data);
    }

    #[test]
    fn fsst_inverts_on_arbitrary_lines(
        training in proptest::collection::vec(any::<u8>(), 0..800),
        line in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let table = fsst::Fsst::train(&training);
        let mut z = Vec::new();
        table.compress_line(&line, &mut z);
        let mut back = Vec::new();
        table.decompress_line(&z, &mut back).unwrap();
        prop_assert_eq!(back, line);
    }

    #[test]
    fn shoco_inverts_on_arbitrary_lines(
        training in proptest::collection::vec(any::<u8>(), 0..800),
        line in proptest::collection::vec(
            any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 0..120),
    ) {
        let model = shoco::ShocoModel::train(&training);
        let mut z = Vec::new();
        model.compress_line(&line, &mut z);
        let mut back = Vec::new();
        model.decompress_line(&z, &mut back).unwrap();
        prop_assert_eq!(back, line);
    }

    #[test]
    fn smaz_trained_inverts_on_arbitrary_lines(
        training in proptest::collection::vec(any::<u8>(), 0..800),
        line in proptest::collection::vec(
            any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 0..300),
    ) {
        let table = smaz::Smaz::train(&training);
        let mut z = Vec::new();
        table.compress_line(&line, &mut z);
        let mut back = Vec::new();
        table.decompress_line(&z, &mut back).unwrap();
        prop_assert_eq!(back, line);
    }

    #[test]
    fn smaz_classic_inverts_on_arbitrary_lines(
        line in proptest::collection::vec(
            any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 0..300),
    ) {
        let table = smaz::Smaz::classic();
        let mut z = Vec::new();
        table.compress_line(&line, &mut z);
        let mut back = Vec::new();
        table.decompress_line(&z, &mut back).unwrap();
        prop_assert_eq!(back, line);
    }

    /// FSST table serialization round-trips for any training corpus.
    #[test]
    fn fsst_table_serialization(training in proptest::collection::vec(any::<u8>(), 0..600)) {
        let table = fsst::Fsst::train(&training);
        let blob = table.to_bytes();
        let back = fsst::Fsst::from_bytes(&blob).unwrap();
        prop_assert_eq!(back.len(), table.len());
        // Reloaded table must decode the original's output.
        let sample = &training[..training.len().min(40)];
        let mut z = Vec::new();
        table.compress_line(sample, &mut z);
        let mut out = Vec::new();
        back.decompress_line(&z, &mut out).unwrap();
        prop_assert_eq!(out, sample.to_vec());
    }
}
