//! From-scratch baseline compressors for the ZSMILES comparison (Fig. 4).
//!
//! Three fundamentally different designs, matching the paper's taxonomy:
//!
//! | codec            | granularity | random access | readable | dictionary |
//! |------------------|-------------|---------------|----------|------------|
//! | [`bzip`]         | file/block  | no            | no       | adaptive   |
//! | [`lz`]           | file/block  | no            | no       | adaptive   |
//! | [`fsst`]         | string      | yes           | no       | per input  |
//! | [`shoco`]        | string      | yes           | no       | trained    |
//! | [`smaz`]         | string      | yes           | no       | static     |
//! | ZSMILES (core)   | string      | yes           | yes      | shared     |
//!
//! Shared infrastructure: [`bitio`], [`crc32`], [`huffman`], [`bwt`],
//! [`mtf`], [`rle`].

pub mod bitio;
pub mod bwt;
pub mod bzip;
pub mod crc32;
pub mod fsst;
pub mod huffman;
pub mod lz;
pub mod mtf;
pub mod rle;
pub mod shoco;
pub mod smaz;

/// Uniform per-line codec interface used by the Fig. 4 harness.
pub trait LineCodec {
    /// Human-readable tool name (axis label in Fig. 4).
    fn name(&self) -> &'static str;
    /// Compress one line, appending to `out`.
    fn compress_line(&self, line: &[u8], out: &mut Vec<u8>);
    /// Decompress one line, appending to `out`.
    fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), String>;
    /// Bytes of side-band state (symbol table / model) that a fair ratio
    /// comparison must charge to this codec.
    fn overhead_bytes(&self) -> usize {
        0
    }
}

impl LineCodec for fsst::Fsst {
    fn name(&self) -> &'static str {
        "FSST"
    }
    fn compress_line(&self, line: &[u8], out: &mut Vec<u8>) {
        fsst::Fsst::compress_line(self, line, out)
    }
    fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), String> {
        fsst::Fsst::decompress_line(self, line, out).map_err(str::to_owned)
    }
    fn overhead_bytes(&self) -> usize {
        self.serialized_size()
    }
}

impl LineCodec for smaz::Smaz {
    fn name(&self) -> &'static str {
        "SMAZ"
    }
    fn compress_line(&self, line: &[u8], out: &mut Vec<u8>) {
        smaz::Smaz::compress_line(self, line, out)
    }
    fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), String> {
        smaz::Smaz::decompress_line(self, line, out).map_err(str::to_owned)
    }
    fn overhead_bytes(&self) -> usize {
        self.serialized_size()
    }
}

impl LineCodec for shoco::ShocoModel {
    fn name(&self) -> &'static str {
        "SHOCO"
    }
    fn compress_line(&self, line: &[u8], out: &mut Vec<u8>) {
        shoco::ShocoModel::compress_line(self, line, out)
    }
    fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), String> {
        shoco::ShocoModel::decompress_line(self, line, out).map_err(str::to_owned)
    }
    fn overhead_bytes(&self) -> usize {
        // chrs table + successor tables, as a serialized model would ship.
        shoco::N_CHRS * (1 + shoco::N_SUCCESSORS)
    }
}

/// Compress every line of a newline-separated buffer with a [`LineCodec`],
/// returning `(compressed payload bytes incl. overhead, input payload
/// bytes)` — the two numbers a Fig. 4 bar divides.
pub fn line_codec_ratio(codec: &dyn LineCodec, input: &[u8]) -> (usize, usize) {
    let mut out_bytes = codec.overhead_bytes();
    let mut in_bytes = 0usize;
    let mut buf = Vec::new();
    for line in input.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
        buf.clear();
        codec.compress_line(line, &mut buf);
        out_bytes += buf.len();
        in_bytes += line.len();
    }
    (out_bytes, in_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<u8> {
        let lines = [
            "COc1cc(C=O)ccc1O",
            "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
        ];
        let mut buf = Vec::new();
        // Enough volume that per-codec side-band overhead (FSST's symbol
        // table is ~1.5 kB) amortizes the way it does on real decks.
        for _ in 0..500 {
            for l in lines {
                buf.extend_from_slice(l.as_bytes());
                buf.push(b'\n');
            }
        }
        buf
    }

    #[test]
    fn line_codecs_round_trip_through_trait() {
        let data = corpus();
        let codecs: Vec<Box<dyn LineCodec>> = vec![
            Box::new(fsst::Fsst::train(&data)),
            Box::new(shoco::ShocoModel::train(&data)),
        ];
        for codec in &codecs {
            for line in data.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
                let mut z = Vec::new();
                codec.compress_line(line, &mut z);
                let mut back = Vec::new();
                codec.decompress_line(&z, &mut back).unwrap();
                assert_eq!(back, line, "{}", codec.name());
            }
        }
    }

    #[test]
    fn fig4_ordering_holds_on_repetitive_smiles() {
        // The paper's qualitative ordering on a SMILES deck:
        // bzip2 (file-based) < FSST < SHOCO, all < 1.0.
        let data = corpus();
        let fsst_codec = fsst::Fsst::train(&data);
        let shoco_codec = shoco::ShocoModel::train(&data);
        let (f_out, f_in) = line_codec_ratio(&fsst_codec, &data);
        let (s_out, s_in) = line_codec_ratio(&shoco_codec, &data);
        let fsst_ratio = f_out as f64 / f_in as f64;
        let shoco_ratio = s_out as f64 / s_in as f64;
        let bzip_ratio = bzip::compress(&data).len() as f64 / data.len() as f64;
        assert!(
            bzip_ratio < fsst_ratio,
            "bzip {bzip_ratio} < fsst {fsst_ratio}"
        );
        assert!(
            fsst_ratio < shoco_ratio,
            "fsst {fsst_ratio} < shoco {shoco_ratio}"
        );
        assert!(shoco_ratio < 1.0);
    }
}
