//! SHOCO-style short-string compression, reimplemented from Ed von
//! Schleck's `shoco` design: a trained model of the most frequent
//! characters and their most frequent *successors*, packed into bit-fields.
//!
//! The model: the 32 most common bytes get 5-bit IDs; for each of them, its
//! 8 most common successor bytes get 3-bit IDs. The encoder then packs runs
//! of model-predicted characters:
//!
//! * `0xxxxxxx` — literal ASCII byte (pass-through);
//! * `10...`    — 2-byte pack: 5-bit lead + 3 successor hops = 4 chars;
//! * `110...`   — 4-byte pack: 5-bit lead + 8 successor hops = 9 chars;
//! * `0xFF b`   — escaped literal for non-ASCII bytes.
//!
//! Like the original, compression quality hinges on how chain-predictable
//! the text is; SMILES hop between ~20 hot characters with moderate bigram
//! skew, which is why SHOCO trails both FSST and ZSMILES in the paper's
//! Fig. 4 — a shape this implementation reproduces.

/// Number of lead characters in the model (5-bit IDs).
pub const N_CHRS: usize = 32;
/// Successors per lead character (3-bit IDs).
pub const N_SUCCESSORS: usize = 8;
/// Escape byte for non-ASCII literals.
pub const ESCAPE: u8 = 0xFF;

/// A trained SHOCO model.
#[derive(Debug, Clone)]
pub struct ShocoModel {
    /// The top characters, by descending frequency.
    chrs: [u8; N_CHRS],
    /// byte → lead ID (or -1).
    chr_ids: [i8; 256],
    /// `successors[lead_id][successor_id]` = byte.
    successors: [[u8; N_SUCCESSORS]; N_CHRS],
    /// `successor_ids[lead_id][byte]` = successor ID (or -1).
    successor_ids: Vec<[i8; 256]>, // N_CHRS entries; boxed to keep the struct small
}

impl ShocoModel {
    /// Train on a corpus (newlines are skipped: they separate records and
    /// must never be predicted).
    pub fn train(corpus: &[u8]) -> ShocoModel {
        let mut uni = [0u64; 256];
        let mut bi = vec![[0u64; 256]; 256];
        let mut prev: Option<u8> = None;
        for &b in corpus {
            if b == b'\n' {
                prev = None;
                continue;
            }
            uni[b as usize] += 1;
            if let Some(p) = prev {
                bi[p as usize][b as usize] += 1;
            }
            prev = Some(b);
        }

        // Top 32 characters by frequency (ties: smaller byte). Newline is
        // excluded outright — it separates records and must never be
        // produced by a pack — and zero-frequency bytes only enter as
        // padding after every observed byte.
        let mut order: Vec<u8> = (0u8..=255).filter(|&b| b != b'\n').collect();
        order.sort_unstable_by(|&a, &b| uni[b as usize].cmp(&uni[a as usize]).then(a.cmp(&b)));
        let mut chrs = [0u8; N_CHRS];
        chrs.copy_from_slice(&order[..N_CHRS]);

        let mut chr_ids = [-1i8; 256];
        for (id, &c) in chrs.iter().enumerate() {
            chr_ids[c as usize] = id as i8;
        }

        let mut successors = [[0u8; N_SUCCESSORS]; N_CHRS];
        let mut successor_ids = vec![[-1i8; 256]; N_CHRS];
        for (id, &c) in chrs.iter().enumerate() {
            let mut foll: Vec<u8> = (0u8..=255).filter(|&b| b != b'\n').collect();
            foll.sort_unstable_by(|&a, &b| {
                bi[c as usize][b as usize]
                    .cmp(&bi[c as usize][a as usize])
                    .then(a.cmp(&b))
            });
            for (sid, &s) in foll[..N_SUCCESSORS].iter().enumerate() {
                successors[id][sid] = s;
                successor_ids[id][s as usize] = sid as i8;
            }
        }
        ShocoModel {
            chrs,
            chr_ids,
            successors,
            successor_ids,
        }
    }

    /// Longest encodable successor chain starting at `line[pos]`:
    /// `chain[k]` holds the 3-bit successor ID of char `pos+1+k`.
    /// Returns how many successors are encodable (0..=max).
    fn chain_len(&self, line: &[u8], pos: usize, max: usize, chain: &mut [u8]) -> Option<usize> {
        let lead = line[pos];
        let mut lead_id = match self.chr_ids[lead as usize] {
            -1 => return None,
            id => id as usize,
        };
        let mut k = 0usize;
        while k < max && pos + 1 + k < line.len() {
            let next = line[pos + 1 + k];
            let sid = self.successor_ids[lead_id][next as usize];
            if sid < 0 {
                break;
            }
            chain[k] = sid as u8;
            // The next hop needs `next` to be a lead character itself.
            match self.chr_ids[next as usize] {
                -1 => {
                    k += 1;
                    break;
                }
                id => lead_id = id as usize,
            }
            k += 1;
        }
        Some(k)
    }

    /// Compress one line, appending to `out`.
    pub fn compress_line(&self, line: &[u8], out: &mut Vec<u8>) {
        let mut pos = 0usize;
        let mut chain = [0u8; 8];
        while pos < line.len() {
            let b = line[pos];
            let chain_n = self.chain_len(line, pos, 8, &mut chain);
            if let Some(n) = chain_n {
                if n >= 8 {
                    // 4-byte pack: 110 | lead(5) | 8 × succ(3)
                    let lead_id = self.chr_ids[b as usize] as u32;
                    let mut word: u32 = 0b110 << 29 | lead_id << 24;
                    for (k, &s) in chain[..8].iter().enumerate() {
                        word |= (s as u32) << (21 - 3 * k);
                    }
                    out.extend_from_slice(&word.to_be_bytes());
                    pos += 9;
                    continue;
                }
                if n >= 3 {
                    // 2-byte pack: 10 | lead(5) | 3 × succ(3)
                    let lead_id = self.chr_ids[b as usize] as u16;
                    let mut word: u16 = 0b10 << 14 | lead_id << 9;
                    for (k, &s) in chain[..3].iter().enumerate() {
                        word |= (s as u16) << (6 - 3 * k);
                    }
                    out.extend_from_slice(&word.to_be_bytes());
                    pos += 4;
                    continue;
                }
            }
            if b < 0x80 {
                out.push(b);
                pos += 1;
            } else {
                out.push(ESCAPE);
                out.push(b);
                pos += 1;
            }
        }
    }

    /// Decompress one line, appending to `out`.
    pub fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), &'static str> {
        let mut i = 0usize;
        while i < line.len() {
            let b = line[i];
            if b < 0x80 {
                out.push(b);
                i += 1;
            } else if b == ESCAPE {
                let lit = line.get(i + 1).ok_or("truncated escape")?;
                out.push(*lit);
                i += 2;
            } else if b >> 6 == 0b10 {
                let hi = b as u16;
                let lo = *line.get(i + 1).ok_or("truncated 2-byte pack")? as u16;
                let word = hi << 8 | lo;
                let lead_id = ((word >> 9) & 0x1F) as usize;
                let mut cur = self.chrs[lead_id];
                out.push(cur);
                for k in 0..3 {
                    let sid = ((word >> (6 - 3 * k)) & 0x7) as usize;
                    let cur_id = self.chr_ids[cur as usize];
                    if cur_id < 0 {
                        return Err("broken successor chain");
                    }
                    cur = self.successors[cur_id as usize][sid];
                    out.push(cur);
                }
                i += 2;
            } else if b >> 5 == 0b110 {
                let bytes = line.get(i..i + 4).ok_or("truncated 4-byte pack")?;
                let word = u32::from_be_bytes(bytes.try_into().unwrap());
                let lead_id = ((word >> 24) & 0x1F) as usize;
                let mut cur = self.chrs[lead_id];
                out.push(cur);
                for k in 0..8 {
                    let sid = ((word >> (21 - 3 * k)) & 0x7) as usize;
                    let cur_id = self.chr_ids[cur as usize];
                    if cur_id < 0 {
                        return Err("broken successor chain");
                    }
                    cur = self.successors[cur_id as usize][sid];
                    out.push(cur);
                }
                i += 4;
            } else {
                return Err("invalid pack header");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<u8> {
        let lines = [
            "COc1cc(C=O)ccc1O",
            "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "c1ccc2ccccc2c1",
            "CCN(CC)CC",
        ];
        let mut buf = Vec::new();
        for _ in 0..50 {
            for l in lines {
                buf.extend_from_slice(l.as_bytes());
                buf.push(b'\n');
            }
        }
        buf
    }

    #[test]
    fn model_learns_hot_smiles_chars() {
        let m = ShocoModel::train(&corpus());
        // 'C' and 'c' dominate SMILES; both must be lead chars.
        assert!(m.chr_ids[b'C' as usize] >= 0);
        assert!(m.chr_ids[b'c' as usize] >= 0);
        assert!(m.chr_ids[b'(' as usize] >= 0);
        // Newline must never enter the model: packs could otherwise emit
        // record separators and break line-oriented archives.
        assert!(m.chr_ids[b'\n' as usize] < 0);
        for lead in 0..N_CHRS {
            for sid in 0..N_SUCCESSORS {
                assert_ne!(m.successors[lead][sid], b'\n');
            }
        }
    }

    #[test]
    fn round_trip_on_training_lines() {
        let data = corpus();
        let m = ShocoModel::train(&data);
        for line in data.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let mut z = Vec::new();
            m.compress_line(line, &mut z);
            let mut back = Vec::new();
            m.decompress_line(&z, &mut back).unwrap();
            assert_eq!(back, line, "{}", String::from_utf8_lossy(line));
        }
    }

    #[test]
    fn round_trip_on_unseen_and_hostile_input() {
        let m = ShocoModel::train(&corpus());
        for line in [
            b"N#Cc1ccccc1".as_slice(),
            b"THE QUICK BROWN FOX",
            &[0x80, 0xFF, 0x00, 0x7F],
            b"",
            &[0xFF; 5],
        ] {
            let mut z = Vec::new();
            m.compress_line(line, &mut z);
            let mut back = Vec::new();
            m.decompress_line(&z, &mut back).unwrap();
            assert_eq!(back, line);
        }
    }

    #[test]
    fn compresses_predictable_smiles() {
        let data = corpus();
        let m = ShocoModel::train(&data);
        let mut in_bytes = 0usize;
        let mut out_bytes = 0usize;
        for line in data.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let mut z = Vec::new();
            m.compress_line(line, &mut z);
            in_bytes += line.len();
            out_bytes += z.len();
        }
        let ratio = out_bytes as f64 / in_bytes as f64;
        assert!(ratio < 0.9, "some packing must happen: {ratio}");
        assert!(
            ratio > 0.35,
            "entropy coding can't beat dictionaries here: {ratio}"
        );
    }

    #[test]
    fn ascii_passthrough_when_unpredictable() {
        let m = ShocoModel::train(b"zzzz\nzzzz\n");
        let mut z = Vec::new();
        m.compress_line(b"Q", &mut z);
        assert_eq!(z, b"Q");
    }

    #[test]
    fn non_ascii_escapes() {
        let m = ShocoModel::train(&corpus());
        let mut z = Vec::new();
        m.compress_line(&[0x80], &mut z);
        assert_eq!(z, vec![ESCAPE, 0x80]);
    }

    #[test]
    fn pack_headers_disambiguate() {
        // A compressed stream must decode unambiguously even when packs,
        // literals and escapes interleave.
        let data = corpus();
        let m = ShocoModel::train(&data);
        let line = b"CCCC(=O)c1ccccc1\x80\x81QQ";
        let mut z = Vec::new();
        m.compress_line(line, &mut z);
        let mut back = Vec::new();
        m.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn decompress_rejects_garbage() {
        let m = ShocoModel::train(&corpus());
        let mut out = Vec::new();
        assert!(
            m.decompress_line(&[0xFF], &mut out).is_err(),
            "dangling escape"
        );
        assert!(
            m.decompress_line(&[0b1000_0000], &mut out).is_err(),
            "cut 2-byte pack"
        );
        assert!(
            m.decompress_line(&[0b1100_0000, 0, 0], &mut out).is_err(),
            "cut 4-byte pack"
        );
        assert!(
            m.decompress_line(&[0b1110_0000], &mut out).is_err(),
            "bad header"
        );
    }

    #[test]
    fn four_byte_pack_used_on_highly_predictable_runs() {
        // 'ccccccccc' (9 chars) should use one 4-byte pack when 'c'→'c' is
        // the hottest bigram.
        let m = ShocoModel::train(&b"cccccccccc\n".repeat(50));
        let mut z = Vec::new();
        m.compress_line(b"ccccccccc", &mut z);
        assert_eq!(
            z.len(),
            4,
            "9 chars in one 4-byte pack, got {} bytes",
            z.len()
        );
        let mut back = Vec::new();
        m.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, b"ccccccccc");
    }
}
