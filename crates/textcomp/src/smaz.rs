//! SMAZ-style codebook compression for short strings, from scratch.
//!
//! The paper's related work (§III) names SMAZ next to SHOCO and FSST as the
//! short-string family. SMAZ is the simplest member: a *fixed* codebook of
//! up to 254 frequent fragments; each output byte `0..=253` is a codebook
//! index, `254` escapes one verbatim byte, and `255 L` escapes a verbatim
//! run of `L + 2` bytes. Compression is greedy longest-match — there is no
//! entropy stage, which is what keeps it fast and what caps its ratio.
//!
//! Two codebooks are provided:
//!
//! * [`Smaz::classic`] — an English-text codebook in the spirit of the
//!   original tool (antirez/smaz). On SMILES it performs *badly*, which is
//!   precisely why the paper dismisses it: the fragments ("the", " of",
//!   "and"…) almost never occur in molecular strings, so nearly every byte
//!   pays the escape tax.
//! * [`Smaz::train`] — the same machinery with a codebook built from a
//!   training corpus (greedy `freq × (len − 1)` gain), the fairest version
//!   to put in the Fig. 4 line-up.
//!
//! Output is binary (indices + escapes), not readable, and the codebook is
//! compiled in / shipped out of band — the same two properties that
//! disqualify it from the paper's requirements while still allowing random
//! access per line.

use std::collections::HashMap;

/// Codebook capacity: indices `0..=253`.
pub const MAX_ENTRIES: usize = 254;
/// Escape marker for a single verbatim byte.
pub const ESC_ONE: u8 = 254;
/// Escape marker for a verbatim run; followed by `L`, then `L + 2` bytes.
pub const ESC_RUN: u8 = 255;
/// Longest fragment a codebook entry may hold.
pub const MAX_FRAGMENT_LEN: usize = 8;

/// A SMAZ codec: the codebook plus a first-byte index for greedy matching.
#[derive(Debug, Clone)]
pub struct Smaz {
    /// `entries[i]` is the fragment emitted for code `i`.
    entries: Vec<Box<[u8]>>,
    /// For each possible first byte, the codes whose fragments start with
    /// it, sorted by fragment length descending (greedy longest match).
    by_first: Vec<Vec<u8>>,
}

impl Smaz {
    /// Build a codec from explicit fragments (first fragment gets code 0).
    /// Empty, over-long, and duplicate fragments are skipped; at most
    /// [`MAX_ENTRIES`] are kept.
    pub fn from_fragments<I, F>(fragments: I) -> Smaz
    where
        I: IntoIterator<Item = F>,
        F: AsRef<[u8]>,
    {
        let mut entries: Vec<Box<[u8]>> = Vec::new();
        let mut seen: HashMap<Vec<u8>, ()> = HashMap::new();
        for frag in fragments {
            let frag = frag.as_ref();
            if frag.is_empty() || frag.len() > MAX_FRAGMENT_LEN {
                continue;
            }
            if entries.len() == MAX_ENTRIES {
                break;
            }
            if seen.insert(frag.to_vec(), ()).is_none() {
                entries.push(frag.to_vec().into_boxed_slice());
            }
        }
        let mut by_first = vec![Vec::new(); 256];
        for (code, frag) in entries.iter().enumerate() {
            by_first[frag[0] as usize].push(code as u8);
        }
        for bucket in &mut by_first {
            bucket.sort_by_key(|&c| std::cmp::Reverse(entries[c as usize].len()));
        }
        Smaz { entries, by_first }
    }

    /// The classic English-text codebook, reconstructed in the spirit of
    /// the original tool: space- and vowel-heavy digrams/trigrams and the
    /// most frequent English words. Exact entry-for-entry parity with the
    /// original table is not required — what the Fig. 4 comparison needs is
    /// its *behaviour*: good on prose, terrible on SMILES.
    pub fn classic() -> Smaz {
        const CLASSIC: &[&str] = &[
            " ", "the", "e", "t", "a", "of", "o", "and", "i", "n", "s", "e ", "r", " th", " t",
            "in", "he", "th", "h", "he ", "to", "\r\n", "l", "s ", "d", " a", "an", "er", "c",
            " o", "d ", "on", " of", "re", "of ", "t ", ", ", "is", "u", "at", "   ", "n ", "or",
            "which", "f", "m", "as", "it", "that", "\n", "was", "en", "  ", " w", "es", " an",
            " i", "\r", "f ", "g", "p", "nd", " s", "nd ", "ed ", "w", "ed", "http://", "for",
            "te", "ing", "y ", "The", " c", "ti", "r ", "his", "st", " in", "ar", "nt", ",", " to",
            "y", "ng", " h", "with", "le", "al", "to ", "b", "ou", "be", "were", " b", "se", "o ",
            "ent", "ha", "ng ", "their", "\"", "hi", "from", " f", "in ", "de", "ion", "me", "v",
            ".", "ve", "all", "re ", "ri", "ro", "is ", "co", "f t", "are", "ea", ". ", "her",
            " m", "er ", " p", "es ", "by", "they", "di", "ra", "ic", "not", "s, ", "d t", "at ",
            "ce", "la", "h ", "ne", "as ", "tio", "on ", "n t", "io", "we", " a ", "om", ", a",
            "s o", "ur", "li", "ll", "ch", "had", "this", "e t", "g ", "e\r\n", " wh", "ere",
            " co", "e o", "a ", "us", " d", "ss", "\n\r\n", "\r\n\r", "=\"", " be", " e", "s a",
            "ma", "one", "t t", "or ", "but", "el", "so", "l ", "e s", "s,", "no", "ter", " wa",
            "iv", "ho", "e a", " r", "hat", "s t", "ns", "ch ", "wh", "tr", "ut", "/", "have",
            "ly ", "ta", " ha", " on", "tha", "-", " l", "ati", "en ", "pe", " re", "there", "ass",
            "si", " fo", "wa", "ec", "our", "who", "its", "z", "fo", "rs", ">", "ot", "un", "<",
            "im", "th ", "nc", "ate", "><", "ver", "ad", " we", "ly", "ee", " n", "id", " cl",
            "ac", "il", "</", "rt", " wi", "div", "e, ", " it", "whi", " ma", "ge", "x", "e c",
            "men", ".com",
        ];
        Smaz::from_fragments(CLASSIC.iter().map(|s| s.as_bytes()))
    }

    /// Train a codebook on a corpus: count substrings of length
    /// `1..=MAX_FRAGMENT_LEN` per line, rank by greedy gain
    /// `freq × (len − 1)` with single bytes ranked by frequency alone
    /// (they save the escape byte), keep the top [`MAX_ENTRIES`].
    pub fn train(corpus: &[u8]) -> Smaz {
        Smaz::train_with(corpus, MAX_ENTRIES)
    }

    /// [`Smaz::train`] with an explicit codebook budget (≤
    /// [`MAX_ENTRIES`]), so corpus-driven training harnesses can sweep
    /// codebook sizes.
    pub fn train_with(corpus: &[u8], max_entries: usize) -> Smaz {
        let max_entries = max_entries.min(MAX_ENTRIES);
        let mut counts: HashMap<&[u8], u64> = HashMap::new();
        for line in corpus.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            for start in 0..line.len() {
                let max = MAX_FRAGMENT_LEN.min(line.len() - start);
                for len in 1..=max {
                    *counts.entry(&line[start..start + len]).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(&[u8], u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| {
            let gain = |&(frag, freq): &(&[u8], u64)| {
                if frag.len() == 1 {
                    freq // a matched single byte still beats ESC_ONE + byte
                } else {
                    freq * (frag.len() as u64 - 1)
                }
            };
            gain(b).cmp(&gain(a)).then_with(|| a.0.cmp(b.0))
        });
        Smaz::from_fragments(ranked.into_iter().take(max_entries).map(|(f, _)| f))
    }

    /// Number of codebook entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The fragment behind a code, if assigned.
    pub fn fragment(&self, code: u8) -> Option<&[u8]> {
        self.entries.get(code as usize).map(|f| &f[..])
    }

    /// Bytes a shipped codebook occupies: one length byte per entry plus
    /// the fragment bytes (how the original stores its static table).
    pub fn serialized_size(&self) -> usize {
        self.entries.iter().map(|f| 1 + f.len()).sum()
    }

    /// Longest codebook fragment starting at `input[pos..]`.
    fn longest_match(&self, input: &[u8], pos: usize) -> Option<u8> {
        let rest = &input[pos..];
        self.by_first[rest[0] as usize]
            .iter()
            .copied()
            .find(|&code| rest.starts_with(&self.entries[code as usize]))
    }

    /// Compress one line (must not contain `\n`), appending to `out`.
    pub fn compress_line(&self, line: &[u8], out: &mut Vec<u8>) {
        let mut pos = 0usize;
        let mut verbatim_start = 0usize;
        while pos < line.len() {
            if let Some(code) = self.longest_match(line, pos) {
                flush_verbatim(&line[verbatim_start..pos], out);
                out.push(code);
                pos += self.entries[code as usize].len();
                verbatim_start = pos;
            } else {
                pos += 1;
            }
        }
        flush_verbatim(&line[verbatim_start..], out);
    }

    /// Decompress one line, appending to `out`.
    pub fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), &'static str> {
        let mut i = 0usize;
        while i < line.len() {
            match line[i] {
                ESC_ONE => {
                    let b = *line.get(i + 1).ok_or("truncated single-byte escape")?;
                    out.push(b);
                    i += 2;
                }
                ESC_RUN => {
                    let l = *line.get(i + 1).ok_or("truncated run escape")? as usize + 2;
                    let run = line.get(i + 2..i + 2 + l).ok_or("truncated verbatim run")?;
                    out.extend_from_slice(run);
                    i += 2 + l;
                }
                code => {
                    let frag = self
                        .entries
                        .get(code as usize)
                        .ok_or("code beyond codebook")?;
                    out.extend_from_slice(frag);
                    i += 1;
                }
            }
        }
        Ok(())
    }
}

/// Emit pending verbatim bytes using the cheapest escape framing: single
/// bytes as `254 b`, longer runs as `255 L run` in chunks of ≤ 257 bytes.
fn flush_verbatim(run: &[u8], out: &mut Vec<u8>) {
    let mut rest = run;
    while !rest.is_empty() {
        if rest.len() == 1 {
            out.push(ESC_ONE);
            out.push(rest[0]);
            return;
        }
        let take = rest.len().min(u8::MAX as usize + 2);
        out.push(ESC_RUN);
        out.push((take - 2) as u8);
        out.extend_from_slice(&rest[..take]);
        rest = &rest[take..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_round_trips_english() {
        let smaz = Smaz::classic();
        let text = b"this is a small string compressed with the classic table";
        let mut z = Vec::new();
        smaz.compress_line(text, &mut z);
        assert!(z.len() < text.len(), "{} < {}", z.len(), text.len());
        let mut back = Vec::new();
        smaz.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, text);
    }

    #[test]
    fn classic_is_bad_on_smiles() {
        // The reason the paper dismisses general short-string codebooks:
        // English fragments barely occur in SMILES, so escapes dominate.
        let smaz = Smaz::classic();
        let line = b"COc1cc(C=O)ccc1O";
        let mut z = Vec::new();
        smaz.compress_line(line, &mut z);
        assert!(
            z.len() as f64 >= line.len() as f64 * 0.9,
            "classic table should not help on SMILES ({} vs {})",
            z.len(),
            line.len()
        );
        let mut back = Vec::new();
        smaz.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn trained_beats_classic_on_smiles() {
        let corpus: Vec<u8> = std::iter::repeat_n(
            b"COc1cc(C=O)ccc1O\nCC(C)Cc1ccc(cc1)C(C)C(=O)O\n".as_slice(),
            100,
        )
        .flatten()
        .copied()
        .collect();
        let trained = Smaz::train(&corpus);
        let classic = Smaz::classic();
        let line = b"CC(C)Cc1ccc(cc1)C(C)C(=O)O";
        let (mut zt, mut zc) = (Vec::new(), Vec::new());
        trained.compress_line(line, &mut zt);
        classic.compress_line(line, &mut zc);
        assert!(
            zt.len() < zc.len(),
            "trained {} < classic {}",
            zt.len(),
            zc.len()
        );
        let mut back = Vec::new();
        trained.decompress_line(&zt, &mut back).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn verbatim_framing_boundaries() {
        // No codebook at all: everything goes through escapes, including
        // runs straddling the 257-byte chunk limit.
        let smaz = Smaz::from_fragments(std::iter::empty::<&[u8]>());
        for n in [0usize, 1, 2, 3, 256, 257, 258, 600] {
            let line: Vec<u8> = (0..n).map(|i| (i % 251) as u8).map(|b| b.max(1)).collect();
            let line: Vec<u8> = line.into_iter().filter(|&b| b != b'\n').collect();
            let mut z = Vec::new();
            smaz.compress_line(&line, &mut z);
            let mut back = Vec::new();
            smaz.decompress_line(&z, &mut back).unwrap();
            assert_eq!(back, line, "length {n}");
        }
    }

    #[test]
    fn greedy_prefers_longest_fragment() {
        let smaz = Smaz::from_fragments([b"ab".as_slice(), b"abc", b"c"]);
        let mut z = Vec::new();
        smaz.compress_line(b"abc", &mut z);
        // One code for "abc", not "ab" + "c".
        assert_eq!(z.len(), 1);
        assert_eq!(smaz.fragment(z[0]), Some(&b"abc"[..]));
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let smaz = Smaz::classic();
        let mut out = Vec::new();
        assert!(smaz.decompress_line(&[ESC_ONE], &mut out).is_err());
        assert!(smaz.decompress_line(&[ESC_RUN], &mut out).is_err());
        assert!(smaz
            .decompress_line(&[ESC_RUN, 10, 1, 2], &mut out)
            .is_err());
    }

    #[test]
    fn decode_rejects_unassigned_code() {
        let smaz = Smaz::from_fragments([b"a".as_slice()]);
        let mut out = Vec::new();
        assert!(smaz.decompress_line(&[7], &mut out).is_err());
    }

    #[test]
    fn from_fragments_dedupes_and_caps() {
        let frags: Vec<Vec<u8>> = (0..400u32)
            .map(|i| vec![(i % 100) as u8 + 1, (i / 100) as u8 + 1])
            .collect();
        let smaz = Smaz::from_fragments(&frags);
        assert!(smaz.len() <= MAX_ENTRIES);
        let dup = Smaz::from_fragments([b"aa".as_slice(), b"aa", b"bb"]);
        assert_eq!(dup.len(), 2);
    }

    #[test]
    fn train_prefers_high_gain_fragments() {
        let corpus = b"cccccccc\ncccccccc\nxy\n";
        let smaz = Smaz::train(corpus);
        // Code 0 goes to the gain-optimal c-run: freq × (len − 1) peaks at
        // len 5 (8 positions/line × 4 saved bytes), not at the full run.
        assert_eq!(smaz.fragment(0), Some(&b"ccccc"[..]));
        // Full line still packs into two codes ("ccccc" + "ccc").
        let mut z = Vec::new();
        smaz.compress_line(b"cccccccc", &mut z);
        assert!(z.len() <= 2, "got {} bytes", z.len());
    }

    #[test]
    fn serialized_size_counts_fragments() {
        let smaz = Smaz::from_fragments([b"ab".as_slice(), b"c"]);
        assert_eq!(smaz.serialized_size(), (1 + 2) + (1 + 1));
    }
}
