//! The two run-length stages of the bzip-like pipeline.
//!
//! * **RLE1** (bytes → bytes, before BWT): runs of 4–259 identical bytes
//!   become `bbbb` + count byte, exactly like bzip2's first stage. Its job
//!   is protecting the suffix sorter from degenerate inputs.
//! * **RLE2** (MTF ranks → symbols, after MTF): zero runs are encoded in
//!   bijective base-2 using two dedicated symbols RUNA/RUNB; non-zero ranks
//!   shift up by one. An EOB symbol terminates the block. This is the
//!   encoding bzip2 feeds its Huffman stage.

/// RLE1 threshold: a run of this many bytes triggers a count byte.
const RLE1_RUN: usize = 4;
/// Maximum extra run length the count byte can express.
const RLE1_MAX_EXTRA: usize = 255;

/// RLE1 encode (bytes → bytes).
pub fn rle1_encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len());
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let mut run = 1;
        while i + run < input.len() && input[i + run] == b && run < RLE1_RUN + RLE1_MAX_EXTRA {
            run += 1;
        }
        if run >= RLE1_RUN {
            out.extend_from_slice(&[b; RLE1_RUN]);
            out.push((run - RLE1_RUN) as u8);
        } else {
            for _ in 0..run {
                out.push(b);
            }
        }
        i += run;
    }
    out
}

/// RLE1 decode.
pub fn rle1_decode(input: &[u8]) -> Result<Vec<u8>, &'static str> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        // Detect a literal run of 4 identical bytes → next byte is a count.
        if i + RLE1_RUN <= input.len() && input[i..i + RLE1_RUN].iter().all(|&x| x == b) {
            let extra = *input
                .get(i + RLE1_RUN)
                .ok_or("RLE1: missing count byte after run")? as usize;
            for _ in 0..RLE1_RUN + extra {
                out.push(b);
            }
            i += RLE1_RUN + 1;
        } else {
            out.push(b);
            i += 1;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// RLE2: zero-run coding of MTF ranks
// ---------------------------------------------------------------------------

/// RUNA symbol (zero-run bit 1 in bijective base 2).
pub const RUNA: u16 = 0;
/// RUNB symbol (zero-run bit 2).
pub const RUNB: u16 = 1;
/// End-of-block symbol.
pub const EOB: u16 = 2 + crate::mtf::ALPHABET as u16 - 1; // ranks 1..=256 → 3..=258; EOB = 258
/// Total RLE2 alphabet size (RUNA, RUNB, shifted ranks, EOB).
pub const RLE2_ALPHABET: usize = EOB as usize + 1;

/// Encode MTF ranks into RLE2 symbols (EOB appended).
pub fn rle2_encode(ranks: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(ranks.len() / 2 + 8);
    let mut zero_run: u64 = 0;
    for &r in ranks {
        if r == 0 {
            zero_run += 1;
            continue;
        }
        flush_zero_run(&mut out, &mut zero_run);
        // rank 1..=256 → symbol 2..=257
        out.push(r + 1);
    }
    flush_zero_run(&mut out, &mut zero_run);
    out.push(EOB);
    out
}

/// Bijective base-2: n ≥ 1 written with digits RUNA(=1), RUNB(=2),
/// least-significant first.
fn flush_zero_run(out: &mut Vec<u16>, run: &mut u64) {
    let mut n = *run;
    while n > 0 {
        if n % 2 == 1 {
            out.push(RUNA);
            n = (n - 1) / 2;
        } else {
            out.push(RUNB);
            n = (n - 2) / 2;
        }
    }
    *run = 0;
}

/// Decode RLE2 symbols back into MTF ranks. Stops at EOB; returns an error
/// if EOB is missing or a symbol is out of range.
pub fn rle2_decode(symbols: &[u16]) -> Result<Vec<u16>, &'static str> {
    let mut out = Vec::with_capacity(symbols.len() * 2);
    let mut run_value: u64 = 0; // accumulated zero-run count
    let mut run_digit: u64 = 1; // current bijective digit weight
    let mut saw_eob = false;
    for &s in symbols {
        match s {
            RUNA | RUNB => {
                let digit = if s == RUNA { 1 } else { 2 };
                run_value += digit * run_digit;
                run_digit *= 2;
            }
            _ if s == EOB => {
                saw_eob = true;
                break;
            }
            _ if (2..EOB).contains(&s) => {
                emit_zero_run(&mut out, &mut run_value, &mut run_digit);
                out.push(s - 1);
            }
            _ => return Err("RLE2: symbol out of range"),
        }
    }
    if !saw_eob {
        return Err("RLE2: missing EOB");
    }
    emit_zero_run(&mut out, &mut run_value, &mut run_digit);
    Ok(out)
}

fn emit_zero_run(out: &mut Vec<u16>, run_value: &mut u64, run_digit: &mut u64) {
    for _ in 0..*run_value {
        out.push(0);
    }
    *run_value = 0;
    *run_digit = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle1_short_runs_pass_through() {
        for input in [&b"abc"[..], b"aabbcc", b"aaa", b""] {
            let enc = rle1_encode(input);
            assert_eq!(enc, input, "runs < 4 unchanged");
            assert_eq!(rle1_decode(&enc).unwrap(), input);
        }
    }

    #[test]
    fn rle1_long_runs_collapse() {
        let input = vec![b'x'; 100];
        let enc = rle1_encode(&input);
        assert_eq!(enc, vec![b'x', b'x', b'x', b'x', 96]);
        assert_eq!(rle1_decode(&enc).unwrap(), input);
    }

    #[test]
    fn rle1_exact_four() {
        let input = b"aaaab";
        let enc = rle1_encode(input);
        assert_eq!(enc, vec![b'a', b'a', b'a', b'a', 0, b'b']);
        assert_eq!(rle1_decode(&enc).unwrap(), input);
    }

    #[test]
    fn rle1_run_longer_than_cap_splits() {
        let input = vec![b'z'; 600];
        let enc = rle1_encode(&input);
        assert_eq!(rle1_decode(&enc).unwrap(), input);
        assert!(enc.len() < 20);
    }

    #[test]
    fn rle1_truncated_run_is_error() {
        assert!(rle1_decode(b"aaaa").is_err(), "missing count byte");
    }

    #[test]
    fn rle1_mixed_content() {
        let mut input = Vec::new();
        input.extend_from_slice(b"CCO");
        input.extend(vec![b'c'; 10]);
        input.extend_from_slice(b"N=N");
        input.extend(vec![0u8; 300]);
        input.extend_from_slice(b"end");
        let enc = rle1_encode(&input);
        assert_eq!(rle1_decode(&enc).unwrap(), input);
        assert!(enc.len() < input.len());
    }

    #[test]
    fn rle2_zero_runs_bijective_base2() {
        // run of 1 → RUNA; 2 → RUNB; 3 → RUNA RUNA (1 + 1·2); 4 → RUNB RUNA
        let cases: Vec<(Vec<u16>, Vec<u16>)> = vec![
            (vec![0], vec![RUNA, EOB]),
            (vec![0, 0], vec![RUNB, EOB]),
            (vec![0, 0, 0], vec![RUNA, RUNA, EOB]),
            (vec![0, 0, 0, 0], vec![RUNB, RUNA, EOB]),
        ];
        for (ranks, want) in cases {
            assert_eq!(rle2_encode(&ranks), want, "{ranks:?}");
            assert_eq!(rle2_decode(&want).unwrap(), ranks);
        }
    }

    #[test]
    fn rle2_nonzero_shift() {
        let ranks = vec![5u16, 0, 0, 7];
        let sym = rle2_encode(&ranks);
        assert_eq!(sym, vec![6, RUNB, 8, EOB]);
        assert_eq!(rle2_decode(&sym).unwrap(), ranks);
    }

    #[test]
    fn rle2_round_trip_exhaustive_runs() {
        for run in 0..50usize {
            let mut ranks = vec![3u16];
            ranks.extend(vec![0u16; run]);
            ranks.push(9);
            let sym = rle2_encode(&ranks);
            assert_eq!(rle2_decode(&sym).unwrap(), ranks, "run={run}");
        }
    }

    #[test]
    fn rle2_trailing_zeros() {
        let ranks = vec![1u16, 0, 0, 0, 0, 0];
        let sym = rle2_encode(&ranks);
        assert_eq!(rle2_decode(&sym).unwrap(), ranks);
    }

    #[test]
    fn rle2_max_rank() {
        let ranks = vec![256u16, 0, 256];
        let sym = rle2_encode(&ranks);
        assert!(sym.iter().all(|&s| (s as usize) < RLE2_ALPHABET));
        assert_eq!(rle2_decode(&sym).unwrap(), ranks);
    }

    #[test]
    fn rle2_errors() {
        assert!(rle2_decode(&[RUNA]).is_err(), "missing EOB");
        assert!(rle2_decode(&[999, EOB]).is_err(), "out of range");
        assert_eq!(rle2_decode(&[EOB]).unwrap(), Vec::<u16>::new());
    }

    #[test]
    fn rle2_compresses_zero_dominated_stream() {
        // 1000 zeros → ~10 RUNA/RUNB symbols.
        let ranks = vec![0u16; 1000];
        let sym = rle2_encode(&ranks);
        assert!(sym.len() <= 11, "got {}", sym.len());
    }

    #[test]
    fn full_mtf_rle2_pipeline_round_trip() {
        let bwt = crate::bwt::bwt_forward(&b"c1ccccc1Nc1ccccc1".repeat(10));
        let ranks = crate::mtf::mtf_forward(&bwt);
        let sym = rle2_encode(&ranks);
        let ranks2 = rle2_decode(&sym).unwrap();
        assert_eq!(ranks2, ranks);
        let bwt2 = crate::mtf::mtf_inverse(&ranks2).unwrap();
        assert_eq!(bwt2, bwt);
    }
}
