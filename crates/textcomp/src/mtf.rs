//! Move-to-front transform over the widened (u16) BWT alphabet.
//!
//! After BWT, identical characters cluster; MTF turns that locality into a
//! stream dominated by small values (especially 0), which the zero-run
//! RLE2 stage then crushes.

/// Number of symbols in the widened alphabet (sentinel + 256 byte values).
pub const ALPHABET: usize = 257;

/// Forward MTF. Symbols must be `< ALPHABET`.
pub fn mtf_forward(input: &[u16]) -> Vec<u16> {
    let mut order: Vec<u16> = (0..ALPHABET as u16).collect();
    let mut out = Vec::with_capacity(input.len());
    for &sym in input {
        let pos = order
            .iter()
            .position(|&s| s == sym)
            .expect("symbol within alphabet");
        out.push(pos as u16);
        // Move to front.
        order.copy_within(0..pos, 1);
        order[0] = sym;
    }
    out
}

/// Inverse MTF.
pub fn mtf_inverse(ranks: &[u16]) -> Result<Vec<u16>, &'static str> {
    let mut order: Vec<u16> = (0..ALPHABET as u16).collect();
    let mut out = Vec::with_capacity(ranks.len());
    for &r in ranks {
        let pos = r as usize;
        if pos >= ALPHABET {
            return Err("MTF rank out of range");
        }
        let sym = order[pos];
        out.push(sym);
        order.copy_within(0..pos, 1);
        order[0] = sym;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_example() {
        // alphabet positions: 5 is at index 5; after moving, repeats cost 0.
        let input = vec![5u16, 5, 5, 2, 2, 5];
        let ranks = mtf_forward(&input);
        assert_eq!(ranks, vec![5, 0, 0, 3, 0, 1]);
        assert_eq!(mtf_inverse(&ranks).unwrap(), input);
    }

    #[test]
    fn runs_become_zeros() {
        let input = vec![9u16; 100];
        let ranks = mtf_forward(&input);
        assert_eq!(ranks[0], 9);
        assert!(ranks[1..].iter().all(|&r| r == 0));
    }

    #[test]
    fn round_trip_full_alphabet() {
        let input: Vec<u16> = (0..ALPHABET as u16).rev().collect();
        assert_eq!(mtf_inverse(&mtf_forward(&input)).unwrap(), input);
    }

    #[test]
    fn round_trip_bwt_output() {
        let bwt = crate::bwt::bwt_forward(b"c1ccccc1Nc1ccccc1Oc1ccccc1");
        assert_eq!(mtf_inverse(&mtf_forward(&bwt)).unwrap(), bwt);
    }

    #[test]
    fn empty() {
        assert!(mtf_forward(&[]).is_empty());
        assert!(mtf_inverse(&[]).unwrap().is_empty());
    }

    #[test]
    fn inverse_rejects_out_of_range() {
        assert!(mtf_inverse(&[300]).is_err());
    }

    #[test]
    fn clustered_input_yields_small_ranks() {
        // BWT-like clustering: 'a'*50 + 'b'*50 + 'a'*50.
        let mut input = vec![10u16; 50];
        input.extend(vec![20u16; 50]);
        input.extend(vec![10u16; 50]);
        let ranks = mtf_forward(&input);
        let small = ranks.iter().filter(|&&r| r <= 1).count();
        assert!(small >= 147, "{small} of {} ranks are small", ranks.len());
    }
}
