//! Bzip2-style block compressor: RLE1 → BWT → MTF → RLE2 → Huffman.
//!
//! This is the paper's Fig. 4 "file-based" baseline, built from scratch.
//! Deviations from real bzip2, none of which change the comparison's shape:
//! one Huffman table per block instead of up to six with selector streams
//! (costs a few percent of ratio), byte-granular block header instead of
//! bit-packed, and a plain `u32` length field instead of bzip2's 48-bit
//! magic. Like bzip2, the format is **stateful across a block**: random
//! access to individual lines is impossible — decompressing line *k*
//! requires decompressing the whole block containing it, and the output is
//! binary. Those two properties are exactly why the paper rejects it for
//! the virtual-screening use case despite its better ratio.

use crate::bitio::{BitReader, BitWriter};
use crate::bwt::{bwt_forward, bwt_inverse};
use crate::crc32::crc32;
use crate::huffman::{build_code_lengths, HuffmanDecoder, HuffmanEncoder};
use crate::mtf::{mtf_forward, mtf_inverse};
use crate::rle::{rle1_decode, rle1_encode, rle2_decode, rle2_encode, RLE2_ALPHABET};

const MAGIC: &[u8; 4] = b"RZB1";
/// Default block size (bzip2's `-9` uses 900 kB; suffix-doubling keeps us a
/// bit smaller for comparable wall-clock).
pub const DEFAULT_BLOCK_SIZE: usize = 256 * 1024;

/// Errors from the container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BzipError {
    BadMagic,
    Truncated,
    CrcMismatch { block: usize },
    Pipeline(&'static str),
}

impl std::fmt::Display for BzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BzipError::BadMagic => write!(f, "not an RZB1 stream"),
            BzipError::Truncated => write!(f, "truncated stream"),
            BzipError::CrcMismatch { block } => write!(f, "CRC mismatch in block {block}"),
            BzipError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for BzipError {}

/// Compress with the default block size.
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_with_block_size(input, DEFAULT_BLOCK_SIZE)
}

/// Compress with an explicit block size (≥ 1 KiB enforced).
pub fn compress_with_block_size(input: &[u8], block_size: usize) -> Vec<u8> {
    let block_size = block_size.max(1024);
    let mut out = Vec::with_capacity(input.len() / 3 + 64);
    out.extend_from_slice(MAGIC);
    for block in input.chunks(block_size) {
        compress_block(block, &mut out);
    }
    out
}

fn compress_block(raw: &[u8], out: &mut Vec<u8>) {
    let crc = crc32(raw);
    let rle1 = rle1_encode(raw);
    let bwt = bwt_forward(&rle1);
    let ranks = mtf_forward(&bwt);
    let symbols = rle2_encode(&ranks);

    let mut freqs = vec![0u64; RLE2_ALPHABET];
    for &s in &symbols {
        freqs[s as usize] += 1;
    }
    let lengths = build_code_lengths(&freqs);
    let enc = HuffmanEncoder::new(&lengths);
    let mut bits = BitWriter::new();
    for &s in &symbols {
        enc.write(&mut bits, s);
    }
    let payload = bits.finish();

    // Block header: raw length, crc, code-length table, payload length.
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&lengths);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Decompress a full stream.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, BzipError> {
    if input.len() < 4 || &input[..4] != MAGIC {
        return Err(BzipError::BadMagic);
    }
    let mut out = Vec::with_capacity(input.len() * 3);
    let mut pos = 4usize;
    let mut block_no = 0usize;
    while pos < input.len() {
        let raw_len = read_u32(input, &mut pos)? as usize;
        let crc = read_u32(input, &mut pos)?;
        if pos + RLE2_ALPHABET > input.len() {
            return Err(BzipError::Truncated);
        }
        let lengths = &input[pos..pos + RLE2_ALPHABET];
        pos += RLE2_ALPHABET;
        let payload_len = read_u32(input, &mut pos)? as usize;
        if pos + payload_len > input.len() {
            return Err(BzipError::Truncated);
        }
        let payload = &input[pos..pos + payload_len];
        pos += payload_len;

        let dec = HuffmanDecoder::new(lengths);
        let mut reader = BitReader::new(payload);
        let mut symbols = Vec::with_capacity(raw_len / 2 + 8);
        loop {
            match dec.read(&mut reader) {
                Some(s) => {
                    let is_eob = s as usize == RLE2_ALPHABET - 1;
                    symbols.push(s);
                    if is_eob {
                        break;
                    }
                }
                None => return Err(BzipError::Truncated),
            }
        }
        let ranks = rle2_decode(&symbols).map_err(BzipError::Pipeline)?;
        let bwt = mtf_inverse(&ranks).map_err(BzipError::Pipeline)?;
        let rle1 = bwt_inverse(&bwt).map_err(BzipError::Pipeline)?;
        let raw = rle1_decode(&rle1).map_err(BzipError::Pipeline)?;
        if raw.len() != raw_len {
            return Err(BzipError::Pipeline("block length mismatch"));
        }
        if crc32(&raw) != crc {
            return Err(BzipError::CrcMismatch { block: block_no });
        }
        out.extend_from_slice(&raw);
        block_no += 1;
    }
    Ok(out)
}

fn read_u32(input: &[u8], pos: &mut usize) -> Result<u32, BzipError> {
    if *pos + 4 > input.len() {
        return Err(BzipError::Truncated);
    }
    let v = u32::from_le_bytes(input[*pos..*pos + 4].try_into().unwrap());
    *pos += 4;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let z = compress(input);
        assert_eq!(decompress(&z).unwrap(), input);
        z
    }

    #[test]
    fn empty_input() {
        let z = round_trip(b"");
        assert_eq!(z.len(), 4, "just the magic");
    }

    #[test]
    fn tiny_inputs() {
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"CCO\n");
    }

    #[test]
    fn repetitive_text_compresses_hard() {
        let input = b"COc1cc(C=O)ccc1O\n".repeat(500);
        let z = round_trip(&input);
        let ratio = z.len() as f64 / input.len() as f64;
        assert!(ratio < 0.05, "ratio {ratio} on pure repetition");
    }

    #[test]
    fn smiles_deck_compresses_below_half() {
        // Mildly varied SMILES-like text.
        let mut input = Vec::new();
        for i in 0..400 {
            input.extend_from_slice(b"CC(C)Cc1ccc(cc1)C(C)C(=O)O");
            input.extend_from_slice(format!("{}", i % 10).as_bytes());
            input.push(b'\n');
        }
        let z = round_trip(&input);
        let ratio = z.len() as f64 / input.len() as f64;
        assert!(ratio < 0.5, "ratio {ratio}");
    }

    #[test]
    fn incompressible_data_expands_gracefully() {
        let mut x = 0x9E3779B9u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let z = round_trip(&data);
        // Random bytes cannot shrink; header + table overhead stays small.
        assert!(z.len() < data.len() + 600, "{} vs {}", z.len(), data.len());
    }

    #[test]
    fn multi_block_round_trip() {
        let input = b"c1ccccc1CCN\n".repeat(2000); // > one 1 KiB block
        let z = compress_with_block_size(&input, 1024);
        assert_eq!(decompress(&z).unwrap(), input);
    }

    #[test]
    fn degenerate_runs() {
        round_trip(&vec![b'a'; 50_000]);
        round_trip(&vec![0u8; 10_000]);
    }

    #[test]
    fn corruption_detected() {
        let input = b"COc1cc(C=O)ccc1O\n".repeat(100);
        let mut z = compress(&input);
        // Flip a bit deep in the payload (past magic + header + table).
        let target = z.len() - 10;
        z[target] ^= 0x40;
        let r = decompress(&z);
        assert!(r.is_err(), "bit flip must not decode cleanly");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decompress(b"NOPE").unwrap_err(), BzipError::BadMagic);
        assert_eq!(decompress(b"RZ").unwrap_err(), BzipError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let z = compress(b"hello hello hello hello");
        for cut in [5, 10, z.len() - 1] {
            assert!(decompress(&z[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn full_byte_spectrum() {
        let input: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        round_trip(&input);
    }
}
