//! FSST — Fast Static Symbol Table string compression, reimplemented from
//! Boncz, Neumann & Leis, *FSST: Fast Random Access String Compression*,
//! VLDB 2020. This is the paper's strongest random-access baseline in
//! Fig. 4.
//!
//! A table holds up to 255 symbols of 1–8 bytes; output bytes are symbol
//! codes, with code 255 escaping one literal byte. The table is built by a
//! few *generations*: encode a sample with the current table, count symbol
//! and adjacent-pair frequencies, then keep the 255 candidates with the
//! highest `gain = frequency × length` (pairs form new, longer symbols).
//!
//! Contrast with ZSMILES (the comparison the paper draws): the table is
//! **input-dependent** — every dataset gets its own — and compressed output
//! uses arbitrary byte values, so it is neither readable nor
//! dictionary-compatible across files. Random access works (strings are
//! compressed independently), which is why it is the fair baseline.

use std::collections::HashMap;

/// Escape code: the next output byte is a literal.
pub const ESCAPE: u8 = 255;
/// Maximum number of real symbols.
pub const MAX_SYMBOLS: usize = 255;
/// Maximum symbol length in bytes.
pub const MAX_SYMBOL_LEN: usize = 8;
/// Training generations (the VLDB paper uses 5).
const GENERATIONS: usize = 5;
/// Default sample budget for table construction.
const SAMPLE_BYTES: usize = 16 * 1024;

/// A symbol packed into a u64 (little-endian bytes) plus its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Sym {
    packed: u64,
    len: u8,
}

impl Sym {
    fn from_bytes(b: &[u8]) -> Sym {
        debug_assert!(!b.is_empty() && b.len() <= MAX_SYMBOL_LEN);
        let mut buf = [0u8; 8];
        buf[..b.len()].copy_from_slice(b);
        Sym {
            packed: u64::from_le_bytes(buf),
            len: b.len() as u8,
        }
    }

    fn bytes(&self) -> [u8; 8] {
        self.packed.to_le_bytes()
    }

    fn as_slice<'a>(&self, buf: &'a mut [u8; 8]) -> &'a [u8] {
        *buf = self.bytes();
        &buf[..self.len as usize]
    }

    /// Concatenate, truncating to 8 bytes.
    fn concat(&self, other: &Sym) -> Sym {
        let a = self.bytes();
        let b = other.bytes();
        let mut buf = [0u8; 8];
        let la = self.len as usize;
        let lb = (other.len as usize).min(MAX_SYMBOL_LEN - la);
        buf[..la].copy_from_slice(&a[..la]);
        buf[la..la + lb].copy_from_slice(&b[..lb]);
        Sym {
            packed: u64::from_le_bytes(buf),
            len: (la + lb) as u8,
        }
    }
}

/// An immutable FSST symbol table.
#[derive(Debug, Clone)]
pub struct Fsst {
    /// `symbols[code]`, code < symbols.len() ≤ 255.
    symbols: Vec<Sym>,
    /// Longest-match lookup: (packed, len) → code.
    lookup: HashMap<Sym, u8>,
    /// Longest symbol installed (bounds the match probe).
    max_len: usize,
}

impl Fsst {
    /// Build a table from a training sample (typically the data itself or
    /// a prefix — the table is input-dependent by design).
    pub fn train(data: &[u8]) -> Fsst {
        Fsst::train_with(data, MAX_SYMBOLS)
    }

    /// [`Fsst::train`] with an explicit symbol budget (≤ [`MAX_SYMBOLS`]),
    /// so corpus-driven training harnesses can sweep table sizes.
    pub fn train_with(data: &[u8], max_symbols: usize) -> Fsst {
        let max_symbols = max_symbols.min(MAX_SYMBOLS);
        let sample = &data[..data.len().min(SAMPLE_BYTES)];
        let mut table = Fsst::from_syms(Vec::new());
        for _gen in 0..GENERATIONS {
            table = table.next_generation(sample, max_symbols);
        }
        table
    }

    fn from_syms(symbols: Vec<Sym>) -> Fsst {
        let mut lookup = HashMap::with_capacity(symbols.len() * 2);
        let mut max_len = 0usize;
        for (code, s) in symbols.iter().enumerate() {
            lookup.insert(*s, code as u8);
            max_len = max_len.max(s.len as usize);
        }
        Fsst {
            symbols,
            lookup,
            max_len,
        }
    }

    /// One construction generation: encode the sample, count, re-select.
    /// The sample is consumed record-by-record (newline-separated), so
    /// symbols never span two strings — FSST compresses strings
    /// independently, and a symbol containing a separator would never
    /// match.
    fn next_generation(&self, sample: &[u8], max_symbols: usize) -> Fsst {
        // Codes: 0..n = table symbols, 256 + b = escaped byte b.
        let n = self.symbols.len();
        let mut count1 = vec![0u64; n + 512];
        let mut count2: HashMap<(u16, u16), u64> = HashMap::new();

        for record in sample.split(|&b| b == b'\n').filter(|r| !r.is_empty()) {
            self.count_record(record, n, &mut count1, &mut count2);
        }

        // Candidates: existing symbols, escaped bytes, and pair concats.
        let sym_of = |code: u16| -> Sym {
            if code >= 256 {
                Sym::from_bytes(&[(code - 256) as u8])
            } else {
                self.symbols[code as usize]
            }
        };
        let mut gains: HashMap<Sym, u64> = HashMap::new();
        for (idx, &cnt) in count1.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let sym = if idx < n {
                self.symbols[idx]
            } else {
                Sym::from_bytes(&[(idx - n) as u8])
            };
            let g = gains.entry(sym).or_insert(0);
            *g += cnt * sym.len as u64;
        }
        for (&(c1, c2), &cnt) in &count2 {
            let merged = sym_of(c1).concat(&sym_of(c2));
            if merged.len as usize <= MAX_SYMBOL_LEN {
                let g = gains.entry(merged).or_insert(0);
                *g += cnt * merged.len as u64;
            }
        }

        let mut ranked: Vec<(Sym, u64)> = gains.into_iter().collect();
        ranked.sort_unstable_by(|a, b| {
            b.1.cmp(&a.1)
                .then(b.0.len.cmp(&a.0.len))
                .then(a.0.packed.cmp(&b.0.packed))
        });
        ranked.truncate(max_symbols);
        Fsst::from_syms(ranked.into_iter().map(|(s, _)| s).collect())
    }

    /// Count one record's greedy parse into the generation counters.
    fn count_record(
        &self,
        record: &[u8],
        n: usize,
        count1: &mut [u64],
        count2: &mut HashMap<(u16, u16), u64>,
    ) {
        let mut pos = 0usize;
        let mut prev: Option<u16> = None;
        while pos < record.len() {
            let (code, len) = match self.longest_match(record, pos) {
                Some((c, l)) => (c as u16, l),
                None => (256 + record[pos] as u16, 1),
            };
            let idx = if code >= 256 {
                n + (code - 256) as usize
            } else {
                code as usize
            };
            count1[idx] += 1;
            // Like the VLDB paper: also count the bare first byte at this
            // position, so single-byte symbols stay alive as candidates and
            // the table keeps byte-level fallbacks instead of collapsing
            // onto a handful of long symbols.
            let byte_code = 256 + record[pos] as u16;
            if code < 256 {
                count1[n + record[pos] as usize] += 1;
            }
            if let Some(p) = prev {
                *count2.entry((p, code)).or_insert(0) += 1;
                if code < 256 {
                    *count2.entry((p, byte_code)).or_insert(0) += 1;
                }
            }
            prev = Some(code);
            pos += len;
        }
    }

    /// Longest symbol matching at `data[pos]`.
    fn longest_match(&self, data: &[u8], pos: usize) -> Option<(u8, usize)> {
        let limit = self.max_len.min(data.len() - pos);
        for len in (1..=limit).rev() {
            let probe = Sym::from_bytes(&data[pos..pos + len]);
            if let Some(&code) = self.lookup.get(&probe) {
                return Some((code, len));
            }
        }
        None
    }

    /// Symbol bytes in code order (diagnostics and tests).
    pub fn debug_symbols(&self) -> Vec<Vec<u8>> {
        let mut buf = [0u8; 8];
        self.symbols
            .iter()
            .map(|s| s.as_slice(&mut buf).to_vec())
            .collect()
    }

    /// Number of installed symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Compress one string, appending codes to `out`.
    pub fn compress_line(&self, line: &[u8], out: &mut Vec<u8>) {
        let mut pos = 0usize;
        while pos < line.len() {
            match self.longest_match(line, pos) {
                Some((code, len)) => {
                    out.push(code);
                    pos += len;
                }
                None => {
                    out.push(ESCAPE);
                    out.push(line[pos]);
                    pos += 1;
                }
            }
        }
    }

    /// Decompress one string.
    pub fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), &'static str> {
        let mut i = 0usize;
        let mut buf = [0u8; 8];
        while i < line.len() {
            let b = line[i];
            if b == ESCAPE {
                let lit = line.get(i + 1).ok_or("truncated escape")?;
                out.push(*lit);
                i += 2;
            } else {
                let sym = self
                    .symbols
                    .get(b as usize)
                    .ok_or("code beyond symbol table")?;
                out.extend_from_slice(sym.as_slice(&mut buf));
                i += 1;
            }
        }
        Ok(())
    }

    /// Serialized table: count byte + per-symbol (len byte + bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.symbols.len() * 9);
        out.push(self.symbols.len() as u8);
        let mut buf = [0u8; 8];
        for s in &self.symbols {
            out.push(s.len);
            out.extend_from_slice(s.as_slice(&mut buf));
        }
        out
    }

    /// Parse a serialized table.
    pub fn from_bytes(data: &[u8]) -> Result<Fsst, &'static str> {
        let n = *data.first().ok_or("empty table blob")? as usize;
        let mut pos = 1usize;
        let mut symbols = Vec::with_capacity(n);
        for _ in 0..n {
            let len = *data.get(pos).ok_or("truncated table")? as usize;
            if len == 0 || len > MAX_SYMBOL_LEN {
                return Err("bad symbol length");
            }
            pos += 1;
            let bytes = data.get(pos..pos + len).ok_or("truncated table")?;
            symbols.push(Sym::from_bytes(bytes));
            pos += len;
        }
        Ok(Fsst::from_syms(symbols))
    }

    /// Size of the serialized table (counted against the compression ratio
    /// in comparisons, like the VLDB paper does).
    pub fn serialized_size(&self) -> usize {
        1 + self
            .symbols
            .iter()
            .map(|s| 1 + s.len as usize)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<u8> {
        let lines = [
            "COc1cc(C=O)ccc1O",
            "CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            "CCN(CC)CC",
            "c1ccc2ccccc2c1",
        ];
        let mut buf = Vec::new();
        for _ in 0..300 {
            for l in lines {
                buf.extend_from_slice(l.as_bytes());
                buf.push(b'\n');
            }
        }
        buf
    }

    #[test]
    fn sym_packing() {
        let s = Sym::from_bytes(b"c1cc");
        let mut buf = [0u8; 8];
        assert_eq!(s.as_slice(&mut buf), b"c1cc");
        assert_eq!(s.len, 4);
        let t = Sym::from_bytes(b"ccc1");
        let joined = s.concat(&t);
        let mut buf2 = [0u8; 8];
        assert_eq!(joined.as_slice(&mut buf2), b"c1ccccc1");
        // Truncation at 8.
        let long = joined.concat(&t);
        assert_eq!(long.len, 8);
    }

    #[test]
    fn training_produces_multibyte_symbols() {
        let data = corpus();
        let t = Fsst::train(&data);
        assert!(t.len() > 10, "table has {} symbols", t.len());
        assert!(
            t.max_len >= 4,
            "long symbols learned, max_len = {}",
            t.max_len
        );
    }

    #[test]
    fn round_trip_on_training_data() {
        let data = corpus();
        let t = Fsst::train(&data);
        for line in data.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let mut z = Vec::new();
            t.compress_line(line, &mut z);
            let mut back = Vec::new();
            t.decompress_line(&z, &mut back).unwrap();
            assert_eq!(back, line);
            assert!(
                z.len() <= line.len(),
                "compressed not larger on trained data"
            );
        }
    }

    #[test]
    fn round_trip_on_unseen_data() {
        let t = Fsst::train(&corpus());
        for line in [
            b"N#Cc1ccccc1".as_slice(),
            b"completely different text!",
            &[0u8, 255, 128, 7],
            b"",
        ] {
            let mut z = Vec::new();
            t.compress_line(line, &mut z);
            let mut back = Vec::new();
            t.decompress_line(&z, &mut back).unwrap();
            assert_eq!(back, line);
        }
    }

    #[test]
    fn compresses_repetitive_smiles_well() {
        let data = corpus();
        let t = Fsst::train(&data);
        let mut z = Vec::new();
        for line in data.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            t.compress_line(line, &mut z);
        }
        let payload: usize = data
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(|l| l.len())
            .sum();
        let ratio = (z.len() + t.serialized_size()) as f64 / payload as f64;
        assert!(ratio < 0.5, "FSST ratio on repetitive SMILES: {ratio}");
    }

    #[test]
    fn empty_table_escapes_everything() {
        let t = Fsst::from_syms(Vec::new());
        let mut z = Vec::new();
        t.compress_line(b"abc", &mut z);
        assert_eq!(z, vec![ESCAPE, b'a', ESCAPE, b'b', ESCAPE, b'c']);
        let mut back = Vec::new();
        t.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, b"abc");
    }

    #[test]
    fn table_serialization_round_trip() {
        let t = Fsst::train(&corpus());
        let blob = t.to_bytes();
        assert_eq!(blob.len(), t.serialized_size());
        let t2 = Fsst::from_bytes(&blob).unwrap();
        assert_eq!(t2.len(), t.len());
        // The reloaded table must decode output of the original.
        let line = b"COc1cc(C=O)ccc1O";
        let mut z = Vec::new();
        t.compress_line(line, &mut z);
        let mut back = Vec::new();
        t2.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn serialization_rejects_garbage() {
        assert!(Fsst::from_bytes(&[]).is_err());
        assert!(Fsst::from_bytes(&[1]).is_err(), "truncated");
        assert!(Fsst::from_bytes(&[1, 0]).is_err(), "zero-length symbol");
        assert!(
            Fsst::from_bytes(&[1, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9]).is_err(),
            "too long"
        );
    }

    #[test]
    fn decompress_errors() {
        let t = Fsst::from_syms(vec![Sym::from_bytes(b"ab")]);
        let mut out = Vec::new();
        assert!(
            t.decompress_line(&[ESCAPE], &mut out).is_err(),
            "dangling escape"
        );
        assert!(t.decompress_line(&[7], &mut out).is_err(), "unknown code");
        out.clear();
        t.decompress_line(&[0, 0], &mut out).unwrap();
        assert_eq!(out, b"abab");
    }

    #[test]
    fn max_symbols_respected() {
        // Train on high-entropy data with many distinct bigrams.
        let mut data = Vec::new();
        for a in 0u8..64 {
            for b in 0u8..64 {
                data.push(b'A' + (a % 26));
                data.push(b'a' + (b % 26));
            }
        }
        let t = Fsst::train(&data);
        assert!(t.len() <= MAX_SYMBOLS);
    }
}
