//! LZ77 + Huffman ("deflate-like") compressor, built from scratch.
//!
//! The paper's related-work section positions DEFLATE/LZ77 alongside Bzip2
//! as the general-purpose alternatives; this module supplies that third
//! baseline family. The design follows DEFLATE: a 32 KiB sliding window,
//! greedy hash-chain match finding (min match 3, max 258), the standard
//! length/distance bucket tables with extra bits, and per-block canonical
//! Huffman tables for the literal/length and distance alphabets. The
//! container is *not* RFC 1951 wire-compatible (no fixed-table mode, no
//! bit-level header games) — compatibility is not what the comparison
//! needs; the compression behavior is.
//!
//! Like bzip2 and unlike ZSMILES/FSST, output is stateful across a block:
//! no random access, binary bytes.

use crate::bitio::{BitReader, BitWriter};
use crate::crc32::crc32;
use crate::huffman::{build_code_lengths, HuffmanDecoder, HuffmanEncoder};

const MAGIC: &[u8; 4] = b"RZLZ";
/// Sliding-window size (DEFLATE's 32 KiB).
const WINDOW: usize = 32 * 1024;
/// Tokenization block size: tokens are re-Huffmanned per block.
const BLOCK: usize = 256 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
/// Hash-chain search depth.
const MAX_CHAIN: usize = 64;

/// DEFLATE length buckets: base length per code 257+i.
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// DEFLATE distance buckets.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Literal/length alphabet: 256 literals + EOB (256) + 29 length codes.
const LITLEN_ALPHABET: usize = 286;
const EOB: u16 = 256;
const DIST_ALPHABET: usize = 30;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

/// Map a length (3..=258) to (code index, extra bits value, extra count).
fn length_code(len: usize) -> (usize, u32, u8) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let mut i = LENGTH_BASE.len() - 1;
    while LENGTH_BASE[i] as usize > len {
        i -= 1;
    }
    (i, (len - LENGTH_BASE[i] as usize) as u32, LENGTH_EXTRA[i])
}

/// Map a distance (1..=32768) to (code index, extra value, extra count).
fn dist_code(dist: usize) -> (usize, u32, u8) {
    debug_assert!((1..=WINDOW).contains(&dist));
    let mut i = DIST_BASE.len() - 1;
    while DIST_BASE[i] as usize > dist {
        i -= 1;
    }
    (i, (dist - DIST_BASE[i] as usize) as u32, DIST_EXTRA[i])
}

fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | (data[i + 1] as u32) << 8 | (data[i + 2] as u32) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

/// Greedy hash-chain tokenizer over the whole input.
fn tokenize(data: &[u8]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 3 + 8);
    let mut head = vec![u32::MAX; HASH_SIZE];
    let mut prev = vec![u32::MAX; n];
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0usize;
            while cand != u32::MAX && chain < MAX_CHAIN {
                let c = cand as usize;
                if i - c > WINDOW {
                    break;
                }
                // Extend the match.
                let limit = (n - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[c + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l >= MAX_MATCH {
                        break;
                    }
                }
                cand = prev[c];
                chain += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i as u32;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert the skipped positions so later matches can reference
            // them (bounded work: matches are ≤ 258 long).
            let end = (i + best_len).min(n.saturating_sub(MIN_MATCH - 1));
            let mut j = i + 1;
            while j < end {
                let h = hash3(data, j);
                prev[j] = head[h];
                head[h] = j as u32;
                j += 1;
            }
            i += best_len;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

/// Compress a buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(input).to_le_bytes());
    for block in input.chunks(BLOCK) {
        // NOTE: chunking resets the window at block boundaries (simpler
        // container; costs a hair of ratio on multi-block inputs).
        compress_block(block, &mut out);
    }
    out
}

fn compress_block(data: &[u8], out: &mut Vec<u8>) {
    let tokens = tokenize(data);

    let mut lit_freq = vec![0u64; LITLEN_ALPHABET];
    let mut dist_freq = vec![0u64; DIST_ALPHABET];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[257 + length_code(len as usize).0] += 1;
                dist_freq[dist_code(dist as usize).0] += 1;
            }
        }
    }
    lit_freq[EOB as usize] += 1;

    let lit_lengths = build_code_lengths(&lit_freq);
    let dist_lengths = build_code_lengths(&dist_freq);
    let lit_enc = HuffmanEncoder::new(&lit_lengths);
    let dist_enc = HuffmanEncoder::new(&dist_lengths);

    let mut bits = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_enc.write(&mut bits, b as u16),
            Token::Match { len, dist } => {
                let (lc, lx, ln) = length_code(len as usize);
                lit_enc.write(&mut bits, (257 + lc) as u16);
                if ln > 0 {
                    bits.write_bits(lx, ln as u32);
                }
                let (dc, dx, dn) = dist_code(dist as usize);
                dist_enc.write(&mut bits, dc as u16);
                if dn > 0 {
                    bits.write_bits(dx, dn as u32);
                }
            }
        }
    }
    lit_enc.write(&mut bits, EOB);
    let payload = bits.finish();

    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&lit_lengths);
    out.extend_from_slice(&dist_lengths);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Decompress a buffer.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, &'static str> {
    if input.len() < 12 || &input[..4] != MAGIC {
        return Err("not an RZLZ stream");
    }
    let total_len = u32::from_le_bytes(input[4..8].try_into().unwrap()) as usize;
    let expect_crc = u32::from_le_bytes(input[8..12].try_into().unwrap());
    let mut out = Vec::with_capacity(total_len);
    let mut pos = 12usize;
    while pos < input.len() {
        pos = decompress_block(input, pos, &mut out)?;
    }
    if out.len() != total_len {
        return Err("length mismatch");
    }
    if crc32(&out) != expect_crc {
        return Err("CRC mismatch");
    }
    Ok(out)
}

fn decompress_block(
    input: &[u8],
    mut pos: usize,
    out: &mut Vec<u8>,
) -> Result<usize, &'static str> {
    let need = |pos: usize, n: usize| {
        if pos + n > input.len() {
            Err("truncated stream")
        } else {
            Ok(())
        }
    };
    need(pos, 4)?;
    let raw_len = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 4;
    need(pos, LITLEN_ALPHABET + DIST_ALPHABET + 4)?;
    let lit_lengths = &input[pos..pos + LITLEN_ALPHABET];
    pos += LITLEN_ALPHABET;
    let dist_lengths = &input[pos..pos + DIST_ALPHABET];
    pos += DIST_ALPHABET;
    let payload_len = u32::from_le_bytes(input[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 4;
    need(pos, payload_len)?;
    let payload = &input[pos..pos + payload_len];
    pos += payload_len;

    let lit_dec = HuffmanDecoder::new(lit_lengths);
    let dist_dec = HuffmanDecoder::new(dist_lengths);
    let block_start = out.len();
    let mut bits = BitReader::new(payload);
    loop {
        let sym = lit_dec.read(&mut bits).ok_or("truncated bitstream")?;
        match sym {
            0..=255 => out.push(sym as u8),
            s if s == EOB => break,
            s if (257..257 + 29).contains(&(s as usize)) => {
                let idx = s as usize - 257;
                let extra = LENGTH_EXTRA[idx];
                let len = LENGTH_BASE[idx] as usize
                    + if extra > 0 {
                        bits.read_bits(extra as u32).ok_or("truncated extra bits")? as usize
                    } else {
                        0
                    };
                let dsym = dist_dec.read(&mut bits).ok_or("truncated distance")? as usize;
                if dsym >= DIST_ALPHABET {
                    return Err("bad distance code");
                }
                let dextra = DIST_EXTRA[dsym];
                let dist = DIST_BASE[dsym] as usize
                    + if dextra > 0 {
                        bits.read_bits(dextra as u32)
                            .ok_or("truncated extra bits")? as usize
                    } else {
                        0
                    };
                // Window resets per block: distances may not reach before
                // the block start.
                if dist == 0 || dist > out.len() - block_start {
                    return Err("distance out of range");
                }
                let from = out.len() - dist;
                for k in 0..len {
                    let b = out[from + k];
                    out.push(b);
                }
            }
            _ => return Err("bad literal/length code"),
        }
        if out.len() - block_start > raw_len {
            return Err("block overruns declared length");
        }
    }
    if out.len() - block_start != raw_len {
        return Err("block length mismatch");
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let z = compress(input);
        assert_eq!(decompress(&z).unwrap(), input, "{} bytes", input.len());
        z
    }

    #[test]
    fn bucket_tables_cover_their_domains() {
        for len in MIN_MATCH..=MAX_MATCH {
            let (c, extra, n) = length_code(len);
            assert!(c < 29);
            let reconstructed = LENGTH_BASE[c] as usize + extra as usize;
            assert_eq!(reconstructed, len);
            assert!(extra < (1 << n) || n == 0);
        }
        for dist in 1..=WINDOW {
            let (c, extra, n) = dist_code(dist);
            assert!(c < 30);
            assert_eq!(DIST_BASE[c] as usize + extra as usize, dist);
            assert!(extra < (1 << n) || n == 0);
        }
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
        round_trip(b"aaaa");
    }

    #[test]
    fn repetitive_text_uses_matches() {
        let input = b"COc1cc(C=O)ccc1O\n".repeat(300);
        let z = round_trip(&input);
        let ratio = z.len() as f64 / input.len() as f64;
        assert!(ratio < 0.1, "LZ77 crushes repetition: {ratio}");
    }

    #[test]
    fn long_runs() {
        round_trip(&vec![b'x'; 100_000]);
        let mut v = Vec::new();
        for i in 0..50_000 {
            v.push((i % 251) as u8);
        }
        round_trip(&v);
    }

    #[test]
    fn smiles_deck_ratio_between_bzip_and_dictionary_tools() {
        let mut input = Vec::new();
        for i in 0..2000 {
            input.extend_from_slice(b"CC(C)Cc1ccc(cc1)C(C)C(=O)O");
            input.extend_from_slice(format!("{}", i % 100).as_bytes());
            input.push(b'\n');
        }
        let z = round_trip(&input);
        let lz_ratio = z.len() as f64 / input.len() as f64;
        let bz_ratio = crate::bzip::compress(&input).len() as f64 / input.len() as f64;
        assert!(lz_ratio < 0.35, "lz {lz_ratio}");
        // bzip2's BWT usually wins on this text, as in the wider world.
        assert!(bz_ratio < lz_ratio + 0.05, "bz {bz_ratio} vs lz {lz_ratio}");
    }

    #[test]
    fn incompressible_data_survives() {
        let mut x = 0xDEADBEEFu32;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let z = round_trip(&data);
        assert!(z.len() < data.len() + 800);
    }

    #[test]
    fn multi_block_inputs() {
        let input = b"c1ccccc1NC(=O)".repeat(30_000); // > BLOCK
        assert!(input.len() > BLOCK);
        round_trip(&input);
    }

    #[test]
    fn corruption_detected() {
        let input = b"COc1cc(C=O)ccc1O\n".repeat(100);
        let mut z = compress(&input);
        let n = z.len();
        z[n - 8] ^= 0x10;
        assert!(decompress(&z).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(decompress(b"").is_err());
        assert!(decompress(b"NOPE00000000").is_err());
        let z = compress(b"hello world hello world");
        assert!(decompress(&z[..z.len() - 2]).is_err(), "truncation");
    }

    #[test]
    fn matches_do_not_cross_block_boundary() {
        // Construct input where block 2 starts with text that matched
        // block 1 — decoder must not allow the reference.
        let unit = b"ABCDEFGH".repeat(BLOCK / 8 + 10);
        round_trip(&unit);
    }

    #[test]
    fn window_limit_respected() {
        // A repeat farther than 32 KiB apart cannot be matched; correctness
        // must be unaffected.
        let mut v = vec![0u8; 40_000];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (i / 7) as u8;
        }
        let mut input = b"UNIQUEPREFIX".to_vec();
        input.extend_from_slice(&v);
        input.extend_from_slice(b"UNIQUEPREFIX");
        round_trip(&input);
    }
}
