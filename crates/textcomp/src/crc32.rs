//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Used by the bzip-like container to detect corrupted blocks, the same job
//! bzip2's per-block CRC does.

const POLY: u32 = 0xEDB8_8320;

static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Streaming CRC-32.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"COc1cc(C=O)ccc1O repeated stuff COc1cc(C=O)ccc1O";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..30]);
        c.update(&data[30..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = b"CCOCCN".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
