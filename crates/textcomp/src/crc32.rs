//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Used by the bzip-like container to detect corrupted blocks, the same job
//! bzip2's per-block CRC does.

const POLY: u32 = 0xEDB8_8320;

static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Streaming CRC-32.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// `mat * vec` over GF(2): each set bit of `vec` selects a row to XOR.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// `crc32(A ‖ B)` from `crc32(A)`, `crc32(B)` and `len(B)` — without the
/// bytes of either part.
///
/// CRC-32 is linear over GF(2), so appending `len2` bytes to a stream
/// transforms its CRC by a fixed matrix (the "advance one zero byte"
/// operator raised to the `len2`-th power, built here by repeated
/// squaring). This is what lets an archive writer stream everything
/// *after* a fixed-size header, patch the header once the payload length
/// is known, and still produce the exact whole-file checksum: combine the
/// 48-byte header's CRC with the streamed tail's.
pub fn crc32_combine(mut crc1: u32, crc2: u32, mut len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32];
    let mut odd = [0u32; 32];
    // Operator for advancing the CRC register past one zero bit.
    odd[0] = POLY;
    let mut row = 1u32;
    for cell in odd.iter_mut().skip(1) {
        *cell = row;
        row <<= 1;
    }
    // Square twice: odd now advances past one zero *byte*.
    gf2_matrix_square(&mut even, &odd);
    gf2_matrix_square(&mut odd, &even);
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_matrix_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"COc1cc(C=O)ccc1O repeated stuff COc1cc(C=O)ccc1O";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..30]);
        c.update(&data[30..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn combine_matches_concatenation() {
        let a: &[u8] = b"COc1cc(C=O)ccc1O";
        let b: &[u8] = b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2";
        for split in [0usize, 1, 7, a.len()] {
            let (x, y) = (&a[..split], &a[split..]);
            assert_eq!(
                crc32_combine(crc32(x), crc32(y), y.len() as u64),
                crc32(a),
                "split={split}"
            );
        }
        let joined: Vec<u8> = a.iter().chain(b).copied().collect();
        assert_eq!(
            crc32_combine(crc32(a), crc32(b), b.len() as u64),
            crc32(&joined)
        );
        // Empty suffix is the identity; long zero-heavy suffixes work too.
        assert_eq!(crc32_combine(crc32(a), crc32(b""), 0), crc32(a));
        let zeros = vec![0u8; 100_000];
        let mut with_zeros = a.to_vec();
        with_zeros.extend_from_slice(&zeros);
        assert_eq!(
            crc32_combine(crc32(a), crc32(&zeros), zeros.len() as u64),
            crc32(&with_zeros)
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = b"CCOCCN".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
