//! Burrows–Wheeler transform via suffix arrays.
//!
//! The transform works on a widened `u16` alphabet: input bytes map to
//! `1..=256` and a virtual sentinel `0` (strictly smallest, unique) is
//! appended. This sidesteps the classic "sentinel byte collides with data"
//! problem without restricting the input alphabet, and makes the inverse a
//! textbook LF-mapping walk with no primary-index bookkeeping.
//!
//! The suffix array uses prefix doubling (Manber–Myers with radix-ish
//! sorting via `sort_unstable`), O(n log² n) — entirely adequate for the
//! ≤ 1 MiB blocks the bzip-like container feeds it.

/// Sentinel symbol (smallest, unique, appended internally).
pub const SENTINEL: u16 = 0;

/// Forward BWT. Returns the transformed column over the widened alphabet
/// (length = input length + 1, containing exactly one [`SENTINEL`]).
pub fn bwt_forward(input: &[u8]) -> Vec<u16> {
    let n = input.len() + 1;
    // Widened text with sentinel.
    let text: Vec<u16> = input
        .iter()
        .map(|&b| b as u16 + 1)
        .chain(std::iter::once(SENTINEL))
        .collect();
    let sa = suffix_array(&text);
    let mut out = Vec::with_capacity(n);
    for &s in &sa {
        let prev = if s == 0 { n - 1 } else { s as usize - 1 };
        out.push(text[prev]);
    }
    out
}

/// Inverse BWT. `bwt` must contain exactly one [`SENTINEL`]; returns the
/// original bytes.
pub fn bwt_inverse(bwt: &[u16]) -> Result<Vec<u8>, &'static str> {
    let n = bwt.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if bwt.iter().filter(|&&c| c == SENTINEL).count() != 1 {
        return Err("BWT column must contain exactly one sentinel");
    }
    if bwt.iter().any(|&c| c > 256) {
        return Err("BWT symbol out of range");
    }
    // LF mapping: LF(i) = C[bwt[i]] + rank_{bwt[i]}(i).
    let mut counts = [0u32; 257];
    for &c in bwt {
        counts[c as usize] += 1;
    }
    let mut starts = [0u32; 257];
    let mut acc = 0u32;
    for c in 0..257 {
        starts[c] = acc;
        acc += counts[c];
    }
    let mut lf = vec![0u32; n];
    let mut seen = [0u32; 257];
    for (i, &c) in bwt.iter().enumerate() {
        lf[i] = starts[c as usize] + seen[c as usize];
        seen[c as usize] += 1;
    }
    // Row 0 of the sorted matrix starts with the sentinel, i.e. it is the
    // rotation "⌀ + text": its last column entry is text's last character.
    // Walking LF from there yields the text backwards.
    let mut out = vec![0u8; n - 1];
    let mut row = 0u32;
    for k in (0..n - 1).rev() {
        let c = bwt[row as usize];
        if c == SENTINEL {
            // Only reachable on corrupted input: a valid BWT column walks
            // the sentinel row exactly once, at the very end.
            return Err("corrupt BWT: sentinel reached too early");
        }
        out[k] = (c - 1) as u8;
        row = lf[row as usize];
    }
    Ok(out)
}

/// Suffix array by prefix doubling.
pub fn suffix_array(text: &[u16]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<i64> = text.iter().map(|&c| c as i64).collect();
    let mut tmp: Vec<i64> = vec![0; n];
    let mut k = 1usize;
    loop {
        let key = |i: u32| -> (i64, i64) {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] } else { -1 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&a| key(a));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + if key(prev) < key(cur) { 1 } else { 0 };
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        k *= 2;
    }
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) {
        let bwt = bwt_forward(input);
        assert_eq!(bwt.len(), input.len() + 1);
        let back = bwt_inverse(&bwt).unwrap();
        assert_eq!(back, input, "{}", String::from_utf8_lossy(input));
    }

    #[test]
    fn banana_is_textbook() {
        // BWT("banana") with sentinel: rotations sorted give the classic
        // "annb⌀aa" column (sentinel in the middle).
        let bwt = bwt_forward(b"banana");
        let printable: Vec<char> = bwt
            .iter()
            .map(|&c| {
                if c == SENTINEL {
                    '$'
                } else {
                    (c - 1) as u8 as char
                }
            })
            .collect();
        let s: String = printable.into_iter().collect();
        assert_eq!(s, "annb$aa");
        round_trip(b"banana");
    }

    #[test]
    fn suffix_array_of_banana() {
        // text = banana$ (widened); suffixes sorted:
        // $ , a$, ana$, anana$, banana$, na$, nana$
        let text: Vec<u16> = b"banana"
            .iter()
            .map(|&b| b as u16 + 1)
            .chain(std::iter::once(SENTINEL))
            .collect();
        assert_eq!(suffix_array(&text), vec![6, 5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"aa");
    }

    #[test]
    fn degenerate_runs() {
        round_trip(&[b'x'; 1000]);
        round_trip(&[0u8; 257]);
        round_trip(&[255u8; 64]);
    }

    #[test]
    fn full_byte_alphabet() {
        let all: Vec<u8> = (0..=255u8).collect();
        round_trip(&all);
        let rev: Vec<u8> = (0..=255u8).rev().collect();
        round_trip(&rev);
    }

    #[test]
    fn smiles_text_round_trips() {
        let text = b"COc1cc(C=O)ccc1O\nC1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2\n".repeat(20);
        round_trip(&text);
    }

    #[test]
    fn bwt_groups_similar_contexts() {
        // The whole point of BWT: repeated substrings put identical
        // characters together. On a repetitive input, the output should
        // have long runs — measure run count drops.
        let input = b"c1ccccc1Nc1ccccc1Oc1ccccc1Sc1ccccc1".repeat(8);
        let bwt = bwt_forward(&input);
        let runs_in = count_runs_u8(&input);
        let runs_out = count_runs_u16(&bwt);
        assert!(
            runs_out < runs_in / 2,
            "BWT should at least halve run count: {runs_in} -> {runs_out}"
        );
    }

    fn count_runs_u8(v: &[u8]) -> usize {
        v.windows(2).filter(|w| w[0] != w[1]).count() + 1
    }

    fn count_runs_u16(v: &[u16]) -> usize {
        v.windows(2).filter(|w| w[0] != w[1]).count() + 1
    }

    #[test]
    fn inverse_rejects_garbage() {
        assert!(bwt_inverse(&[1, 2, 3]).is_err(), "no sentinel");
        assert!(bwt_inverse(&[0, 0, 1]).is_err(), "two sentinels");
        assert!(bwt_inverse(&[0, 999]).is_err(), "symbol out of range");
        assert_eq!(bwt_inverse(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn random_data_round_trips() {
        // Deterministic xorshift so the test needs no rand dependency here.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        round_trip(&data);
    }
}
