//! Canonical Huffman coding over an arbitrary (≤ 2¹⁶) symbol alphabet.
//!
//! The bzip-like pipeline Huffman-codes RLE2 symbols (alphabet ≈ 259), so
//! symbols are `u16`. Code lengths are limited to [`MAX_CODE_LEN`] by
//! frequency-halving rebuilds, and codes are *canonical*: the decoder needs
//! only the length table, which the container stores as one byte per
//! symbol.

use crate::bitio::{BitReader, BitWriter};

/// Upper bound on code length. 20 bits is plenty for ≤ 2¹⁶ symbols on
/// blocks ≤ 1 MiB and keeps the decoder's per-length tables tiny.
pub const MAX_CODE_LEN: u32 = 20;

/// Build code lengths for `freqs` (0-frequency symbols get length 0 = no
/// code). Standard heap-based Huffman with the frequency-halving trick when
/// the depth limit is exceeded.
pub fn build_code_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let mut adjusted: Vec<u64> = freqs.to_vec();
    loop {
        let lengths = build_once(&adjusted);
        let too_deep = lengths.iter().any(|&l| l as u32 > MAX_CODE_LEN);
        if !too_deep {
            return lengths;
        }
        // Halve (rounding up so nothing drops to zero) and retry; flattens
        // the tree.
        for f in adjusted.iter_mut() {
            if *f > 0 {
                *f = (*f).div_ceil(2);
            }
        }
        let _ = n;
    }
}

fn build_once(freqs: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct HeapItem {
        weight: u64,
        /// Tie-break on creation order for determinism.
        order: u32,
        node: u32,
    }
    impl Ord for HeapItem {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed: BinaryHeap is a max-heap, we need min.
            other
                .weight
                .cmp(&self.weight)
                .then(other.order.cmp(&self.order))
        }
    }
    impl PartialOrd for HeapItem {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let alive: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match alive.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs one bit on the wire.
            lengths[alive[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Internal tree: leaves are 0..n, internal nodes appended after.
    let mut parent: Vec<u32> = vec![u32::MAX; n];
    let mut heap = std::collections::BinaryHeap::with_capacity(alive.len());
    let mut order = 0u32;
    for &i in &alive {
        heap.push(HeapItem {
            weight: freqs[i],
            order,
            node: i as u32,
        });
        order += 1;
    }
    while heap.len() >= 2 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        let internal = parent.len() as u32;
        parent.push(u32::MAX);
        parent[a.node as usize] = internal;
        parent[b.node as usize] = internal;
        heap.push(HeapItem {
            weight: a.weight + b.weight,
            order,
            node: internal,
        });
        order += 1;
    }
    for &i in &alive {
        let mut depth = 0u8;
        let mut cur = i as u32;
        while parent[cur as usize] != u32::MAX {
            depth += 1;
            cur = parent[cur as usize];
        }
        lengths[i] = depth;
    }
    lengths
}

/// Canonical code assignment: shorter codes first, ties by symbol index.
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let mut codes = vec![0u32; lengths.len()];
    let max_len = lengths.iter().copied().max().unwrap_or(0) as u32;
    let mut code = 0u32;
    for len in 1..=max_len {
        for (sym, &l) in lengths.iter().enumerate() {
            if l as u32 == len {
                codes[sym] = code;
                code += 1;
            }
        }
        code <<= 1;
    }
    codes
}

/// Encoder: symbol → (code, length).
pub struct HuffmanEncoder {
    codes: Vec<u32>,
    lengths: Vec<u8>,
}

impl HuffmanEncoder {
    pub fn new(lengths: &[u8]) -> Self {
        HuffmanEncoder {
            codes: canonical_codes(lengths),
            lengths: lengths.to_vec(),
        }
    }

    /// Append the code for `sym`. Panics on a symbol with no code —
    /// encoders must only emit symbols they counted.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, sym: u16) {
        let len = self.lengths[sym as usize] as u32;
        debug_assert!(len > 0, "symbol {sym} has no code");
        w.write_bits(self.codes[sym as usize], len);
    }
}

/// Canonical decoder using per-length first-code/first-index tables.
pub struct HuffmanDecoder {
    /// `first_code[l]` = canonical code value of the first code of length l.
    first_code: Vec<u32>,
    /// `first_index[l]` = index into `symbols` of that code.
    first_index: Vec<u32>,
    /// count of codes per length
    count: Vec<u32>,
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u16>,
    max_len: u32,
}

impl HuffmanDecoder {
    pub fn new(lengths: &[u8]) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as u32;
        let mut count = vec![0u32; (max_len + 1) as usize];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut symbols = Vec::new();
        for len in 1..=max_len {
            for (sym, &l) in lengths.iter().enumerate() {
                if l as u32 == len {
                    symbols.push(sym as u16);
                }
            }
        }
        let mut first_code = vec![0u32; (max_len + 2) as usize];
        let mut first_index = vec![0u32; (max_len + 2) as usize];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=max_len {
            first_code[len as usize] = code;
            first_index[len as usize] = index;
            code = (code + count[len as usize]) << 1;
            index += count[len as usize];
        }
        HuffmanDecoder {
            first_code,
            first_index,
            count,
            symbols,
            max_len,
        }
    }

    /// Decode one symbol; `None` on truncated input or invalid code.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Option<u16> {
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = (code << 1) | r.read_bit()?;
            let fc = self.first_code[len as usize];
            let cnt = self.count[len as usize];
            if cnt > 0 && code >= fc && code < fc + cnt {
                let idx = self.first_index[len as usize] + (code - fc);
                return Some(self.symbols[idx as usize]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(symbols: &[u16], alphabet: usize) {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        let lengths = build_code_lengths(&freqs);
        let enc = HuffmanEncoder::new(&lengths);
        let mut w = BitWriter::new();
        for &s in symbols {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let dec = HuffmanDecoder::new(&lengths);
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(dec.read(&mut r), Some(s));
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (0..50).map(|i| (i * i + 1) as u64).collect();
        let lengths = build_code_lengths(&freqs);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
        // Huffman is complete: equality.
        assert!((kraft - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimality_on_known_distribution() {
        // freqs 1,1,2,4: depths 3,3,2,1 (classic).
        let lengths = build_code_lengths(&[1, 1, 2, 4]);
        assert_eq!(lengths, vec![3, 3, 2, 1]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lengths = build_code_lengths(&[0, 42, 0]);
        assert_eq!(lengths, vec![0, 1, 0]);
        round_trip(&[1, 1, 1, 1], 3);
    }

    #[test]
    fn empty_freqs() {
        let lengths = build_code_lengths(&[0, 0, 0]);
        assert_eq!(lengths, vec![0, 0, 0]);
    }

    #[test]
    fn two_symbols() {
        round_trip(&[0, 1, 0, 1, 1, 0], 2);
    }

    #[test]
    fn skewed_distribution_round_trips() {
        let mut syms = vec![7u16; 1000];
        syms.extend_from_slice(&[1, 2, 3, 4, 5, 6, 8, 9, 10]);
        round_trip(&syms, 11);
    }

    #[test]
    fn large_alphabet_round_trips() {
        // 259-symbol alphabet like the bzip pipeline's RLE2 output.
        let symbols: Vec<u16> = (0..259u16).cycle().take(5000).collect();
        round_trip(&symbols, 259);
    }

    #[test]
    fn depth_limit_enforced_on_fibonacci_freqs() {
        // Fibonacci frequencies force maximal skew → unbounded depth
        // without the halving trick.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs);
        assert!(lengths.iter().all(|&l| (l as u32) <= MAX_CODE_LEN));
        // Still decodable.
        let syms: Vec<u16> = (0..40u16).collect();
        let enc = HuffmanEncoder::new(&lengths);
        let dec = HuffmanDecoder::new(&lengths);
        let mut w = BitWriter::new();
        for &s in &syms {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &syms {
            assert_eq!(dec.read(&mut r), Some(s));
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free_and_ordered() {
        let lengths = vec![2u8, 2, 2, 3, 3, 0];
        let codes = canonical_codes(&lengths);
        // Length-2 codes: 00, 01, 10; length-3: 110, 111.
        assert_eq!(codes[0], 0b00);
        assert_eq!(codes[1], 0b01);
        assert_eq!(codes[2], 0b10);
        assert_eq!(codes[3], 0b110);
        assert_eq!(codes[4], 0b111);
    }

    #[test]
    fn decoder_rejects_truncated_stream() {
        let lengths = build_code_lengths(&[5, 5, 5, 5]);
        let enc = HuffmanEncoder::new(&lengths);
        let mut w = BitWriter::new();
        enc.write(&mut w, 0);
        let bytes = w.finish();
        let dec = HuffmanDecoder::new(&lengths);
        let mut r = BitReader::new(&bytes[..0]);
        assert_eq!(dec.read(&mut r), None);
    }

    #[test]
    fn compresses_skewed_better_than_uniform() {
        let mut freqs = vec![0u64; 4];
        let skewed: Vec<u16> = std::iter::repeat_n(0u16, 900)
            .chain(std::iter::repeat_n(1u16, 50))
            .chain(std::iter::repeat_n(2u16, 30))
            .chain(std::iter::repeat_n(3u16, 20))
            .collect();
        for &s in &skewed {
            freqs[s as usize] += 1;
        }
        let lengths = build_code_lengths(&freqs);
        let enc = HuffmanEncoder::new(&lengths);
        let mut w = BitWriter::new();
        for &s in &skewed {
            enc.write(&mut w, s);
        }
        let bits = w.bit_len();
        assert!(
            bits < skewed.len() as u64 * 2,
            "skewed input must beat the 2-bit flat code: {bits} bits"
        );
    }
}
