//! MSB-first bit-level I/O used by the Huffman coder.

/// Accumulates bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits pending in `acc` (top `nbits` of the u64's low 8·k positions).
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Write the low `n` bits of `value`, MSB first. `n ≤ 57` per call.
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || value < (1u32 << n));
        self.acc = (self.acc << n) | value as u64;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Flush (zero-padding the final byte) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.buf.push(self.acc as u8);
            self.nbits = 0;
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next bit index.
    pos: u64,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        self.data.len() as u64 * 8 - self.pos
    }

    /// Read one bit; `None` past the end.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u32> {
        let byte = self.data.get((self.pos / 8) as usize)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit as u32)
    }

    /// Read `n` bits MSB-first; `None` if fewer remain.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u32> {
        debug_assert!(n <= 32);
        if self.remaining() < n as u64 {
            return None;
        }
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()?;
        }
        Some(v)
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [1u32, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.write_bits(b, 1);
        }
        assert_eq!(w.bit_len(), 11);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        let values = [
            (0b101u32, 3u32),
            (0xFFFF, 16),
            (0, 1),
            (0b11001, 5),
            (12345, 20),
        ];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n), Some(v), "{v}:{n}");
        }
    }

    #[test]
    fn byte_alignment() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0xCD, 8);
        assert_eq!(w.finish(), vec![0xAB, 0xCD]);
    }

    #[test]
    fn padding_is_zero() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        assert_eq!(w.finish(), vec![0b1000_0000]);
    }

    #[test]
    fn read_past_end_is_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
        let mut r2 = BitReader::new(&[0xFF]);
        assert_eq!(r2.read_bits(9), None, "partial reads refused");
        assert_eq!(r2.bit_pos(), 0, "failed read consumes nothing");
    }

    #[test]
    fn empty_writer() {
        assert!(BitWriter::new().finish().is_empty());
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn thirty_two_bit_write() {
        let mut w = BitWriter::new();
        w.write_bits(u32::MAX, 32);
        w.write_bits(0x1234_5678, 32);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(32), Some(u32::MAX));
        assert_eq!(r.read_bits(32), Some(0x1234_5678));
    }
}
