//! Statistical profiles for the synthetic datasets.
//!
//! The paper evaluates on three chemical libraries we cannot redistribute:
//! GDB-17 (exhaustively enumerated small organic molecules — very
//! homogeneous), MEDIATE (drug-like ligands from commercial vendors and
//! natural products — diverse) and EXSCALATE (a production virtual-screening
//! deck — diverse, decorated, multi-component). The cross-dictionary
//! experiment (Table II) only depends on those libraries having *different
//! statistics* along axes a substring dictionary can feel: molecule size,
//! element palette, ring/aromatic content, decorations (stereo, charge,
//! isotopes, salts). Each [`Profile`] here pins down one such distribution;
//! `MIXED` is produced by concatenating samples of the three, exactly like
//! the paper's mixed training set.

/// Weighted element palette entry: (symbol, weight). Symbols must be
/// organic-subset elements; everything else enters via decorations.
pub type PaletteEntry = (&'static str, f64);

/// All knobs of a synthetic dataset. Probabilities are per-opportunity
/// (per atom or per fragment decision), not per molecule.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    pub name: &'static str,
    /// Inclusive range of heavy-atom counts to target.
    pub heavy_atoms: (usize, usize),
    /// Expected number of rings per molecule (Poisson-ish via attach loop).
    pub mean_rings: f64,
    /// Probability that a generated ring is aromatic.
    pub aromatic_ring_prob: f64,
    /// Probability that a ring position is substituted by a heteroatom.
    pub ring_hetero_prob: f64,
    /// Probability that a new ring fuses onto an existing one instead of
    /// hanging off a linker.
    pub fused_ring_prob: f64,
    /// Probability of branching at a chain atom.
    pub branch_prob: f64,
    /// Probability that a chain bond is double.
    pub double_bond_prob: f64,
    /// Probability that a chain bond is triple.
    pub triple_bond_prob: f64,
    /// Probability that an eligible chain double bond gets `/`/`\` marks.
    pub stereo_bond_prob: f64,
    /// Probability that an eligible sp3 CH becomes a `[C@H]`/`[C@@H]` center.
    pub chiral_center_prob: f64,
    /// Probability that an eligible terminal atom is charged (`[O-]`, `[NH3+]`).
    pub charge_prob: f64,
    /// Probability that a carbon carries an isotope label.
    pub isotope_prob: f64,
    /// Probability that the line gains an extra dot-separated counter-ion.
    pub salt_prob: f64,
    /// Probability that a substituent is a halogen.
    pub halogen_prob: f64,
    /// Chain-atom element palette.
    pub palette: &'static [PaletteEntry],
    /// Probability of attaching a functional group instead of a plain chain.
    pub functional_group_prob: f64,
    /// Size of the reusable scaffold pool. Real chemical libraries are
    /// combinatorial: a limited set of core scaffolds decorated many ways.
    /// Every generated molecule starts from one of `scaffold_pool` shared
    /// cores (0 disables reuse and grows fully random structures). Smaller
    /// pools mean more repeated substrings — the axis that separates the
    /// homogeneous GDB-17 from the diverse screening decks in Table II.
    pub scaffold_pool: usize,
}

/// GDB-17-like: small (≤17 heavy atoms), narrow palette {C,N,O,F}, ring-rich
/// but undecorated — the homogeneity is the point: a dictionary trained here
/// transfers poorly (paper Table II, GDB-17 row).
pub const GDB17: Profile = Profile {
    name: "GDB-17",
    heavy_atoms: (8, 17),
    mean_rings: 1.4,
    aromatic_ring_prob: 0.45,
    ring_hetero_prob: 0.25,
    fused_ring_prob: 0.35,
    branch_prob: 0.30,
    double_bond_prob: 0.12,
    triple_bond_prob: 0.04,
    stereo_bond_prob: 0.0,
    chiral_center_prob: 0.0,
    charge_prob: 0.0,
    isotope_prob: 0.0,
    salt_prob: 0.0,
    halogen_prob: 0.05,
    palette: &[("C", 0.80), ("N", 0.10), ("O", 0.09), ("F", 0.01)],
    functional_group_prob: 0.10,
    scaffold_pool: 40,
};

/// MEDIATE-like: drug-like ligands, 15–45 heavy atoms, wide palette, stereo
/// and charge decorations, occasional salts.
pub const MEDIATE: Profile = Profile {
    name: "MEDIATE",
    heavy_atoms: (15, 45),
    mean_rings: 2.8,
    aromatic_ring_prob: 0.70,
    ring_hetero_prob: 0.30,
    fused_ring_prob: 0.30,
    branch_prob: 0.35,
    double_bond_prob: 0.10,
    triple_bond_prob: 0.02,
    stereo_bond_prob: 0.15,
    chiral_center_prob: 0.10,
    charge_prob: 0.06,
    isotope_prob: 0.0,
    salt_prob: 0.04,
    halogen_prob: 0.10,
    palette: &[("C", 0.80), ("N", 0.09), ("O", 0.08), ("S", 0.03)],
    functional_group_prob: 0.30,
    scaffold_pool: 120,
};

/// EXSCALATE-like: production screening deck — widest size range, longest
/// linkers, most decorations, most multi-component lines.
pub const EXSCALATE: Profile = Profile {
    name: "EXSCALATE",
    heavy_atoms: (10, 60),
    mean_rings: 2.2,
    aromatic_ring_prob: 0.60,
    ring_hetero_prob: 0.35,
    fused_ring_prob: 0.25,
    branch_prob: 0.40,
    double_bond_prob: 0.14,
    triple_bond_prob: 0.03,
    stereo_bond_prob: 0.10,
    chiral_center_prob: 0.08,
    charge_prob: 0.08,
    isotope_prob: 0.01,
    salt_prob: 0.10,
    halogen_prob: 0.12,
    palette: &[
        ("C", 0.76),
        ("N", 0.10),
        ("O", 0.09),
        ("S", 0.04),
        ("P", 0.01),
    ],
    functional_group_prob: 0.35,
    scaffold_pool: 200,
};

/// The three source profiles in the order the paper lists them.
pub const ALL_SOURCE_PROFILES: [&Profile; 3] = [&GDB17, &MEDIATE, &EXSCALATE];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palettes_are_normalized_enough() {
        for p in ALL_SOURCE_PROFILES {
            let total: f64 = p.palette.iter().map(|(_, w)| w).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{} palette sums to {total}",
                p.name
            );
        }
    }

    #[test]
    fn probabilities_in_range() {
        for p in ALL_SOURCE_PROFILES {
            for (label, v) in [
                ("aromatic", p.aromatic_ring_prob),
                ("hetero", p.ring_hetero_prob),
                ("fused", p.fused_ring_prob),
                ("branch", p.branch_prob),
                ("double", p.double_bond_prob),
                ("triple", p.triple_bond_prob),
                ("stereo", p.stereo_bond_prob),
                ("chiral", p.chiral_center_prob),
                ("charge", p.charge_prob),
                ("isotope", p.isotope_prob),
                ("salt", p.salt_prob),
                ("halogen", p.halogen_prob),
                ("fg", p.functional_group_prob),
            ] {
                assert!((0.0..=1.0).contains(&v), "{}.{label} = {v}", p.name);
            }
            assert!(p.heavy_atoms.0 <= p.heavy_atoms.1);
            assert!(p.heavy_atoms.0 >= 2, "need room for at least a bond");
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // profile constants are the test subject
    fn profiles_are_distinct_along_key_axes() {
        // GDB-17 must be smaller and cleaner than the other two.
        assert!(GDB17.heavy_atoms.1 < MEDIATE.heavy_atoms.1);
        assert!(GDB17.salt_prob == 0.0 && MEDIATE.salt_prob > 0.0);
        assert!(GDB17.stereo_bond_prob == 0.0 && EXSCALATE.stereo_bond_prob > 0.0);
        // EXSCALATE is the most decorated.
        assert!(EXSCALATE.salt_prob > MEDIATE.salt_prob);
    }
}
