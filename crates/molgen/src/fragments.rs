//! Graph-level fragment builders.
//!
//! Every function here mutates a [`Molecule`] under construction and keeps
//! it structurally valid: bonds only consume free valence, aromatic rings
//! are only built in aromatizable shapes, and bracket atoms carry explicit
//! hydrogen counts consistent with their degree.

use rand::Rng;
use smiles::element::Element;
use smiles::graph::{AtomKind, Molecule};
use smiles::token::{BareAtom, BondSym, BracketAtom, Chirality};

/// Shorthand: a bare atom of `sym`.
pub fn bare(sym: &str, aromatic: bool) -> AtomKind {
    AtomKind::Bare(BareAtom {
        element: Element::from_symbol(sym.as_bytes()).expect("known element"),
        aromatic,
    })
}

/// Free valence of an atom: how many more single bonds it can accept.
pub fn free_valence(mol: &Molecule, atom: u32) -> u32 {
    match mol.atom(atom) {
        AtomKind::Bracket(_) => 0, // bracket atoms are sealed once written
        AtomKind::Bare(a) => {
            let used = mol.degree_valence(atom) + if a.aromatic { 1 } else { 0 };
            // Aromatic atoms are held to their lowest normal valence so the
            // generator never builds pyridinium-like oddities; aliphatic
            // atoms may use their highest (e.g. S(=O)(=O)).
            let vals = a.element.default_valences();
            let max = if a.aromatic {
                vals.first().copied().unwrap_or(0) as u32
            } else {
                vals.last().copied().unwrap_or(0) as u32
            };
            max.saturating_sub(used)
        }
    }
}

/// Atoms that can accept at least `need` more bond order.
pub fn attachment_points(mol: &Molecule, need: u32) -> Vec<u32> {
    (0..mol.atom_count() as u32)
        .filter(|&a| free_valence(mol, a) >= need)
        .collect()
}

/// Build an isolated ring of `size` atoms and return its atom indices.
///
/// Aromatic rings are 5- or 6-membered. Six-membered aromatic rings may
/// substitute C→N (pyridine-like); five-membered ones get exactly one O/S/
/// `[nH]` so they stay chemically plausible. Saturated rings may substitute
/// O/N/S at `hetero_prob` per position.
pub fn add_ring<R: Rng>(
    mol: &mut Molecule,
    rng: &mut R,
    size: usize,
    aromatic: bool,
    hetero_prob: f64,
) -> Vec<u32> {
    debug_assert!((3..=8).contains(&size));
    let mut atoms = Vec::with_capacity(size);
    if aromatic {
        debug_assert!(size == 5 || size == 6);
        if size == 6 {
            for _ in 0..6 {
                let kind = if rng.gen_bool(hetero_prob * 0.6) {
                    bare("N", true)
                } else {
                    bare("C", true)
                };
                atoms.push(mol.add_atom(kind));
            }
        } else {
            // One mandatory heteroatom at position 0.
            let hetero = match rng.gen_range(0..3) {
                0 => bare("O", true),
                1 => bare("S", true),
                _ => {
                    // Pyrrole nitrogen needs its explicit H.
                    AtomKind::Bracket(BracketAtom {
                        isotope: None,
                        element: Element::from_symbol(b"N").unwrap(),
                        aromatic: true,
                        chirality: Chirality::None,
                        hcount: 1,
                        charge: 0,
                        class: None,
                    })
                }
            };
            atoms.push(mol.add_atom(hetero));
            for _ in 1..5 {
                atoms.push(mol.add_atom(bare("C", true)));
            }
        }
        for i in 0..size {
            mol.add_bond(atoms[i], atoms[(i + 1) % size], None, i + 1 == size);
        }
    } else {
        for _ in 0..size {
            let kind = if rng.gen_bool(hetero_prob) {
                match rng.gen_range(0..3) {
                    0 => bare("O", false),
                    1 => bare("N", false),
                    _ => bare("S", false),
                }
            } else {
                bare("C", false)
            };
            atoms.push(mol.add_atom(kind));
        }
        for i in 0..size {
            mol.add_bond(atoms[i], atoms[(i + 1) % size], None, i + 1 == size);
        }
    }
    atoms
}

/// Fuse a new aromatic 6-ring onto an existing aromatic bond (naphthalene
/// style): the new ring shares atoms `a`–`b`. Returns the four new atoms, or
/// `None` if `a`/`b` cannot take another ring bond.
pub fn fuse_aromatic_ring<R: Rng>(
    mol: &mut Molecule,
    rng: &mut R,
    a: u32,
    b: u32,
    hetero_prob: f64,
) -> Option<Vec<u32>> {
    // Each fusion atom needs one free slot (aromatic C has 4 = 3 ring
    // bonds + the aromatic adjustment... in practice degree ≤ 2 works).
    if free_valence(mol, a) < 1 || free_valence(mol, b) < 1 {
        return None;
    }
    let mut new_atoms = Vec::with_capacity(4);
    for _ in 0..4 {
        let kind = if rng.gen_bool(hetero_prob * 0.5) {
            bare("N", true)
        } else {
            bare("C", true)
        };
        new_atoms.push(mol.add_atom(kind));
    }
    mol.add_bond(a, new_atoms[0], None, false);
    for w in new_atoms.windows(2) {
        mol.add_bond(w[0], w[1], None, false);
    }
    mol.add_bond(*new_atoms.last().unwrap(), b, None, true);
    Some(new_atoms)
}

/// Functional groups the generator can bolt onto a free-valence atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionalGroup {
    Carboxyl,        // C(=O)O
    Amide,           // C(=O)N
    Methoxy,         // OC
    Nitrile,         // C#N
    Nitro,           // [N+](=O)[O-]
    Sulfonyl,        // S(=O)(=O)C
    Trifluoromethyl, // C(F)(F)F
    Hydroxyl,        // O
    Amine,           // N
    Ketone,          // C(=O)C
}

pub const ALL_GROUPS: [FunctionalGroup; 10] = [
    FunctionalGroup::Carboxyl,
    FunctionalGroup::Amide,
    FunctionalGroup::Methoxy,
    FunctionalGroup::Nitrile,
    FunctionalGroup::Nitro,
    FunctionalGroup::Sulfonyl,
    FunctionalGroup::Trifluoromethyl,
    FunctionalGroup::Hydroxyl,
    FunctionalGroup::Amine,
    FunctionalGroup::Ketone,
];

impl FunctionalGroup {
    /// Heavy atoms this group adds.
    pub fn size(&self) -> usize {
        match self {
            FunctionalGroup::Carboxyl | FunctionalGroup::Amide | FunctionalGroup::Nitro => 3,
            FunctionalGroup::Methoxy | FunctionalGroup::Nitrile | FunctionalGroup::Ketone => 2,
            FunctionalGroup::Sulfonyl | FunctionalGroup::Trifluoromethyl => 4,
            FunctionalGroup::Hydroxyl | FunctionalGroup::Amine => 1,
        }
    }

    /// Attach this group to `at` (which must have ≥1 free valence).
    pub fn attach(&self, mol: &mut Molecule, at: u32) {
        match self {
            FunctionalGroup::Carboxyl => {
                let c = mol.add_atom(bare("C", false));
                let o1 = mol.add_atom(bare("O", false));
                let o2 = mol.add_atom(bare("O", false));
                mol.add_bond(at, c, None, false);
                mol.add_bond(c, o1, Some(BondSym::Double), false);
                mol.add_bond(c, o2, None, false);
            }
            FunctionalGroup::Amide => {
                let c = mol.add_atom(bare("C", false));
                let o = mol.add_atom(bare("O", false));
                let n = mol.add_atom(bare("N", false));
                mol.add_bond(at, c, None, false);
                mol.add_bond(c, o, Some(BondSym::Double), false);
                mol.add_bond(c, n, None, false);
            }
            FunctionalGroup::Methoxy => {
                let o = mol.add_atom(bare("O", false));
                let c = mol.add_atom(bare("C", false));
                mol.add_bond(at, o, None, false);
                mol.add_bond(o, c, None, false);
            }
            FunctionalGroup::Nitrile => {
                let c = mol.add_atom(bare("C", false));
                let n = mol.add_atom(bare("N", false));
                mol.add_bond(at, c, None, false);
                mol.add_bond(c, n, Some(BondSym::Triple), false);
            }
            FunctionalGroup::Nitro => {
                let n = mol.add_atom(AtomKind::Bracket(BracketAtom {
                    isotope: None,
                    element: Element::from_symbol(b"N").unwrap(),
                    aromatic: false,
                    chirality: Chirality::None,
                    hcount: 0,
                    charge: 1,
                    class: None,
                }));
                let o1 = mol.add_atom(bare("O", false));
                let o2 = mol.add_atom(AtomKind::Bracket(BracketAtom {
                    isotope: None,
                    element: Element::from_symbol(b"O").unwrap(),
                    aromatic: false,
                    chirality: Chirality::None,
                    hcount: 0,
                    charge: -1,
                    class: None,
                }));
                mol.add_bond(at, n, None, false);
                mol.add_bond(n, o1, Some(BondSym::Double), false);
                mol.add_bond(n, o2, None, false);
            }
            FunctionalGroup::Sulfonyl => {
                let s = mol.add_atom(bare("S", false));
                let o1 = mol.add_atom(bare("O", false));
                let o2 = mol.add_atom(bare("O", false));
                let c = mol.add_atom(bare("C", false));
                mol.add_bond(at, s, None, false);
                mol.add_bond(s, o1, Some(BondSym::Double), false);
                mol.add_bond(s, o2, Some(BondSym::Double), false);
                mol.add_bond(s, c, None, false);
            }
            FunctionalGroup::Trifluoromethyl => {
                let c = mol.add_atom(bare("C", false));
                mol.add_bond(at, c, None, false);
                for _ in 0..3 {
                    let f = mol.add_atom(bare("F", false));
                    mol.add_bond(c, f, None, false);
                }
            }
            FunctionalGroup::Hydroxyl => {
                let o = mol.add_atom(bare("O", false));
                mol.add_bond(at, o, None, false);
            }
            FunctionalGroup::Amine => {
                let n = mol.add_atom(bare("N", false));
                mol.add_bond(at, n, None, false);
            }
            FunctionalGroup::Ketone => {
                let c = mol.add_atom(bare("C", false));
                let o = mol.add_atom(bare("O", false));
                mol.add_bond(at, c, None, false);
                mol.add_bond(c, o, Some(BondSym::Double), false);
            }
        }
    }
}

/// Counter-ion fragments for salt lines, as disconnected components.
pub fn add_counter_ion<R: Rng>(mol: &mut Molecule, rng: &mut R) {
    let charged = |sym: &str, charge: i8, hcount: u8| {
        AtomKind::Bracket(BracketAtom {
            isotope: None,
            element: Element::from_symbol(sym.as_bytes()).unwrap(),
            aromatic: false,
            chirality: Chirality::None,
            hcount,
            charge,
            class: None,
        })
    };
    match rng.gen_range(0..5) {
        0 => {
            mol.add_atom(charged("Cl", -1, 0));
        }
        1 => {
            mol.add_atom(charged("Na", 1, 0));
        }
        2 => {
            mol.add_atom(charged("K", 1, 0));
        }
        3 => {
            mol.add_atom(charged("Br", -1, 0));
        }
        _ => {
            // Water of crystallization.
            mol.add_atom(bare("O", false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smiles::parser::parse;
    use smiles::writer::{to_smiles, WriteOptions};

    fn check_valid(mol: &Molecule) -> String {
        let s = to_smiles(mol, &WriteOptions::default()).unwrap();
        parse(&s).unwrap_or_else(|e| panic!("{e} in {}", String::from_utf8_lossy(&s)));
        String::from_utf8(s).unwrap()
    }

    #[test]
    fn benzene_like_ring() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mol = Molecule::new();
        let ring = add_ring(&mut mol, &mut rng, 6, true, 0.0);
        assert_eq!(ring.len(), 6);
        assert_eq!(mol.ring_count(), 1);
        let s = check_valid(&mol);
        assert_eq!(s, "c1ccccc1");
    }

    #[test]
    fn five_ring_has_heteroatom() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut mol = Molecule::new();
            add_ring(&mut mol, &mut rng, 5, true, 0.3);
            let s = check_valid(&mol);
            assert!(
                s.contains('o') || s.contains('s') || s.contains("[nH]"),
                "5-ring needs hetero: {s}"
            );
        }
    }

    #[test]
    fn saturated_rings_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        for size in 3..=8 {
            let mut mol = Molecule::new();
            add_ring(&mut mol, &mut rng, size, false, 0.3);
            check_valid(&mol);
        }
    }

    #[test]
    fn fused_ring_makes_naphthalene_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mol = Molecule::new();
        let ring = add_ring(&mut mol, &mut rng, 6, true, 0.0);
        let fused = fuse_aromatic_ring(&mut mol, &mut rng, ring[0], ring[1], 0.0).unwrap();
        assert_eq!(fused.len(), 4);
        assert_eq!(mol.ring_count(), 2);
        assert_eq!(mol.atom_count(), 10);
        check_valid(&mol);
    }

    #[test]
    fn all_functional_groups_attach_validly() {
        for g in ALL_GROUPS {
            let mut mol = Molecule::new();
            let c = mol.add_atom(bare("C", false));
            g.attach(&mut mol, c);
            assert_eq!(mol.atom_count(), 1 + g.size(), "{g:?}");
            let s = check_valid(&mol);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn nitro_group_serialization() {
        let mut mol = Molecule::new();
        let c = mol.add_atom(bare("C", false));
        FunctionalGroup::Nitro.attach(&mut mol, c);
        let s = check_valid(&mol);
        assert!(s.contains("[N+]") && s.contains("[O-]"), "{s}");
    }

    #[test]
    fn free_valence_accounting() {
        let mut mol = Molecule::new();
        let c = mol.add_atom(bare("C", false));
        assert_eq!(free_valence(&mol, c), 4);
        let n = mol.add_atom(bare("N", false));
        mol.add_bond(c, n, Some(BondSym::Triple), false);
        assert_eq!(free_valence(&mol, c), 1);
        // N default max valence 5; used 3 -> 2 free. (We allow the higher
        // normal valence; the generator only uses the first slot anyway.)
        assert_eq!(free_valence(&mol, n), 2);
    }

    #[test]
    fn counter_ions_are_single_atoms() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let mut mol = Molecule::new();
            let c = mol.add_atom(bare("C", false));
            let o = mol.add_atom(bare("O", false));
            mol.add_bond(c, o, None, false);
            add_counter_ion(&mut mol, &mut rng);
            assert_eq!(mol.components().len(), 2);
            let s = check_valid(&mol);
            assert!(s.contains('.'), "{s}");
        }
    }

    #[test]
    fn attachment_points_respect_valence() {
        let mut mol = Molecule::new();
        let c = mol.add_atom(bare("C", false));
        let f = mol.add_atom(bare("F", false));
        mol.add_bond(c, f, None, false);
        let pts = attachment_points(&mol, 1);
        assert!(pts.contains(&c));
        assert!(!pts.contains(&f), "F is saturated");
    }
}
