//! Dataset container and `.smi` file I/O.
//!
//! A dataset is a flat byte buffer of newline-separated SMILES plus a line
//! index — the same layout the compressor works on, so a 10⁶-line deck costs
//! one allocation, not a million.

use crate::generator::Generator;
use crate::profiles::Profile;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// A set of SMILES lines in a flat buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dataset {
    /// All lines concatenated, each terminated by `\n`.
    data: Vec<u8>,
    /// Byte offset of the start of each line.
    starts: Vec<u32>,
}

impl Dataset {
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Total payload bytes *excluding* newlines — the paper's compression
    /// ratios are payload-to-payload.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() - self.len()
    }

    /// Total bytes including newlines (on-disk footprint).
    pub fn total_bytes(&self) -> usize {
        self.data.len()
    }

    /// Line `i`, without its newline.
    pub fn line(&self, i: usize) -> &[u8] {
        let start = self.starts[i] as usize;
        let end = self
            .starts
            .get(i + 1)
            .map(|&s| s as usize - 1)
            .unwrap_or(self.data.len() - 1);
        &self.data[start..end]
    }

    /// Append one line (no newline in `line`).
    pub fn push(&mut self, line: &[u8]) {
        debug_assert!(!line.contains(&b'\n'));
        self.starts.push(self.data.len() as u32);
        self.data.extend_from_slice(line);
        self.data.push(b'\n');
    }

    /// Iterate lines (without newlines).
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.len()).map(move |i| self.line(i))
    }

    /// The raw newline-separated buffer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Build from a newline-separated buffer. Empty trailing line ignored.
    pub fn from_bytes(buf: &[u8]) -> Self {
        let mut ds = Dataset::new();
        for line in buf.split(|&b| b == b'\n') {
            if !line.is_empty() {
                ds.push(line);
            }
        }
        ds
    }

    /// Generate `n` molecules from `profile` with the given seed.
    pub fn generate(profile: Profile, n: usize, seed: u64) -> Self {
        let mut g = Generator::new(profile, seed);
        let mut ds = Dataset::new();
        for _ in 0..n {
            let line = g.next_smiles();
            ds.push(&line);
        }
        ds
    }

    /// The paper's MIXED dataset: equal parts of the three profiles,
    /// interleaved (the paper concatenates the first million of each; the
    /// statistics are what matter, not the order — interleaving keeps any
    /// prefix representative, which the sampling experiments rely on).
    pub fn generate_mixed(n: usize, seed: u64) -> Self {
        use crate::profiles::{EXSCALATE, GDB17, MEDIATE};
        let mut gens = [
            Generator::new(GDB17, seed),
            Generator::new(MEDIATE, seed.wrapping_add(1)),
            Generator::new(EXSCALATE, seed.wrapping_add(2)),
        ];
        let mut ds = Dataset::new();
        for i in 0..n {
            let line = gens[i % 3].next_smiles();
            ds.push(&line);
        }
        ds
    }

    /// Random sample of `k` lines (without replacement), deterministic in
    /// `seed`. Order follows the original dataset.
    pub fn sample(&self, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(k.min(self.len()));
        idx.sort_unstable();
        let mut out = Dataset::new();
        for i in idx {
            out.push(self.line(i));
        }
        out
    }

    /// First `k` lines.
    pub fn head(&self, k: usize) -> Self {
        let mut out = Dataset::new();
        for i in 0..k.min(self.len()) {
            out.push(self.line(i));
        }
        out
    }

    /// Remove duplicate molecules by canonical form (the same molecule
    /// written two ways counts as one). Lines that fail to parse are kept
    /// verbatim and deduplicated by raw bytes.
    pub fn dedup_canonical(&self) -> Self {
        let mut seen = std::collections::HashSet::new();
        let mut out = Dataset::new();
        for line in self.iter() {
            let key = match smiles::parser::parse(line) {
                Ok(mol) => smiles::canon::canonical_smiles(&mol),
                Err(_) => line.to_vec(),
            };
            if seen.insert(key) {
                out.push(line);
            }
        }
        out
    }

    /// Concatenate datasets — the "cut and combine" workflow the paper's
    /// separability requirement exists for.
    pub fn concat(parts: &[&Dataset]) -> Self {
        let mut out = Dataset::new();
        for p in parts {
            for line in p.iter() {
                out.push(line);
            }
        }
        out
    }

    /// Write as a `.smi` file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.data)
    }

    /// Read a `.smi` file (one SMILES per line; blank lines skipped; a
    /// trailing tab-separated name column, common in real decks, is kept).
    pub fn load(path: &Path) -> io::Result<Self> {
        let f = std::fs::File::open(path)?;
        Self::from_reader(BufReader::new(f))
    }

    pub fn from_reader<R: Read>(reader: BufReader<R>) -> io::Result<Self> {
        let mut ds = Dataset::new();
        for line in reader.lines() {
            let line = line?;
            if !line.is_empty() {
                ds.push(line.as_bytes());
            }
        }
        Ok(ds)
    }
}

impl FromIterator<Vec<u8>> for Dataset {
    fn from_iter<T: IntoIterator<Item = Vec<u8>>>(iter: T) -> Self {
        let mut ds = Dataset::new();
        for line in iter {
            ds.push(&line);
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::GDB17;

    #[test]
    fn push_and_line_access() {
        let mut ds = Dataset::new();
        ds.push(b"CCO");
        ds.push(b"c1ccccc1");
        ds.push(b"N");
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.line(0), b"CCO");
        assert_eq!(ds.line(1), b"c1ccccc1");
        assert_eq!(ds.line(2), b"N");
        assert_eq!(ds.payload_bytes(), 3 + 8 + 1);
        assert_eq!(ds.total_bytes(), 3 + 8 + 1 + 3);
    }

    #[test]
    fn bytes_round_trip() {
        let mut ds = Dataset::new();
        ds.push(b"CCO");
        ds.push(b"CC(=O)O");
        let again = Dataset::from_bytes(ds.as_bytes());
        assert_eq!(ds, again);
    }

    #[test]
    fn iter_matches_line() {
        let ds = Dataset::generate(GDB17, 20, 3);
        let collected: Vec<&[u8]> = ds.iter().collect();
        assert_eq!(collected.len(), 20);
        for (i, line) in collected.iter().enumerate() {
            assert_eq!(*line, ds.line(i));
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = Dataset::generate(GDB17, 50, 7);
        let b = Dataset::generate(GDB17, 50, 7);
        assert_eq!(a, b);
        let c = Dataset::generate(GDB17, 50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn mixed_interleaves_profiles() {
        let ds = Dataset::generate_mixed(30, 1);
        assert_eq!(ds.len(), 30);
        // GDB-17 lines (i % 3 == 0) are short; MEDIATE/EXSCALATE longer on
        // average. Just verify all lines are valid and nonempty.
        for line in ds.iter() {
            assert!(!line.is_empty());
            smiles::validate::full_check(line).unwrap();
        }
    }

    #[test]
    fn sample_is_subset_and_deterministic() {
        let ds = Dataset::generate(GDB17, 100, 2);
        let s1 = ds.sample(10, 99);
        let s2 = ds.sample(10, 99);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 10);
        let all: std::collections::HashSet<&[u8]> = ds.iter().collect();
        for line in s1.iter() {
            assert!(all.contains(line));
        }
        // Oversampling clamps.
        assert_eq!(ds.sample(1000, 1).len(), 100);
    }

    #[test]
    fn dedup_canonical_removes_respellings() {
        let mut ds = Dataset::new();
        ds.push(b"CCO");
        ds.push(b"OCC"); // same molecule, different spelling
        ds.push(b"C(O)C"); // again
        ds.push(b"CCN"); // different molecule
        ds.push(b"not!valid"); // unparsable, kept by raw bytes
        ds.push(b"not!valid"); // duplicate raw bytes, dropped
        let d = ds.dedup_canonical();
        assert_eq!(d.len(), 3);
        assert_eq!(d.line(0), b"CCO");
        assert_eq!(d.line(1), b"CCN");
        assert_eq!(d.line(2), b"not!valid");
    }

    #[test]
    fn generated_decks_have_low_duplicate_rate() {
        let ds = Dataset::generate(crate::profiles::MEDIATE, 500, 11);
        let d = ds.dedup_canonical();
        assert!(
            d.len() * 10 >= ds.len() * 9,
            "duplicate rate above 10%: {} of {}",
            ds.len() - d.len(),
            ds.len()
        );
    }

    #[test]
    fn concat_and_head() {
        let a = Dataset::generate(GDB17, 10, 1);
        let b = Dataset::generate(GDB17, 5, 2);
        let joined = Dataset::concat(&[&a, &b]);
        assert_eq!(joined.len(), 15);
        assert_eq!(joined.line(12), b.line(2));
        let h = joined.head(10);
        assert_eq!(h, a);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("zsmiles_molgen_test.smi");
        let ds = Dataset::generate(GDB17, 25, 5);
        ds.save(&path).unwrap();
        let back = Dataset::load(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_bytes_skips_blank_lines() {
        let ds = Dataset::from_bytes(b"CCO\n\nCC\n");
        assert_eq!(ds.len(), 2);
    }
}
