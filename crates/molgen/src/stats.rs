//! Dataset statistics: the quantitative evidence that the synthetic
//! profiles really are different along the axes Table II probes.

use crate::dataset::Dataset;

/// Per-dataset statistics summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub lines: usize,
    pub payload_bytes: usize,
    pub mean_line_len: f64,
    pub min_line_len: usize,
    pub max_line_len: usize,
    /// Shannon entropy of the byte distribution, bits per byte.
    pub entropy_bits: f64,
    /// Number of distinct bytes used.
    pub alphabet_size: usize,
    /// Fraction of lines containing a `.` (multi-component / salt lines).
    pub salt_fraction: f64,
    /// Fraction of lines containing a bracket atom.
    pub bracket_fraction: f64,
    /// Fraction of bytes that are ring digits.
    pub ring_digit_fraction: f64,
    /// Fraction of letter bytes that are lower-case (aromaticity proxy).
    pub aromatic_fraction: f64,
    /// Raw byte histogram.
    pub histogram: [u64; 256],
}

/// Compute statistics over a dataset.
pub fn stats(ds: &Dataset) -> DatasetStats {
    let mut histogram = [0u64; 256];
    let mut min_len = usize::MAX;
    let mut max_len = 0usize;
    let mut salt_lines = 0usize;
    let mut bracket_lines = 0usize;
    let mut ring_digits = 0u64;
    let mut lower_letters = 0u64;
    let mut letters = 0u64;

    for line in ds.iter() {
        min_len = min_len.min(line.len());
        max_len = max_len.max(line.len());
        let mut in_bracket = false;
        let mut has_dot = false;
        let mut has_bracket = false;
        for (i, &b) in line.iter().enumerate() {
            histogram[b as usize] += 1;
            match b {
                b'[' => {
                    in_bracket = true;
                    has_bracket = true;
                }
                b']' => in_bracket = false,
                b'.' => has_dot = true,
                b'0'..=b'9' if !in_bracket => {
                    // A digit outside brackets is a ring ID unless it
                    // follows '%'— which is also ring machinery.
                    let _ = i;
                    ring_digits += 1;
                }
                _ => {}
            }
            if b.is_ascii_alphabetic() {
                letters += 1;
                if b.is_ascii_lowercase() {
                    lower_letters += 1;
                }
            }
        }
        if has_dot {
            salt_lines += 1;
        }
        if has_bracket {
            bracket_lines += 1;
        }
    }

    let payload: u64 = histogram.iter().sum();
    let mut entropy = 0.0f64;
    let mut alphabet = 0usize;
    for &count in &histogram {
        if count > 0 {
            alphabet += 1;
            let p = count as f64 / payload as f64;
            entropy -= p * p.log2();
        }
    }

    let n = ds.len().max(1);
    DatasetStats {
        lines: ds.len(),
        payload_bytes: ds.payload_bytes(),
        mean_line_len: ds.payload_bytes() as f64 / n as f64,
        min_line_len: if ds.is_empty() { 0 } else { min_len },
        max_line_len: max_len,
        entropy_bits: entropy,
        alphabet_size: alphabet,
        salt_fraction: salt_lines as f64 / n as f64,
        bracket_fraction: bracket_lines as f64 / n as f64,
        ring_digit_fraction: ring_digits as f64 / payload.max(1) as f64,
        aromatic_fraction: if letters == 0 {
            0.0
        } else {
            lower_letters as f64 / letters as f64
        },
        histogram,
    }
}

impl DatasetStats {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} lines, {:.1} B/line (min {}, max {}), H={:.2} bits/B, |Σ|={}, \
             salts {:.1}%, brackets {:.1}%, aromatic letters {:.1}%",
            self.lines,
            self.mean_line_len,
            self.min_line_len,
            self.max_line_len,
            self.entropy_bits,
            self.alphabet_size,
            self.salt_fraction * 100.0,
            self.bracket_fraction * 100.0,
            self.aromatic_fraction * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{EXSCALATE, GDB17, MEDIATE};

    #[test]
    fn stats_on_tiny_dataset() {
        let mut ds = Dataset::new();
        ds.push(b"CCO");
        ds.push(b"c1ccccc1");
        let st = stats(&ds);
        assert_eq!(st.lines, 2);
        assert_eq!(st.min_line_len, 3);
        assert_eq!(st.max_line_len, 8);
        assert_eq!(st.payload_bytes, 11);
        assert!(st.entropy_bits > 0.0);
        assert_eq!(st.histogram[b'c' as usize], 6);
        assert_eq!(st.histogram[b'1' as usize], 2);
        assert!((st.ring_digit_fraction - 2.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_does_not_panic() {
        let st = stats(&Dataset::new());
        assert_eq!(st.lines, 0);
        assert_eq!(st.entropy_bits, 0.0);
    }

    #[test]
    fn profiles_differ_measurably() {
        let n = 400;
        let g = stats(&Dataset::generate(GDB17, n, 1));
        let m = stats(&Dataset::generate(MEDIATE, n, 1));
        let e = stats(&Dataset::generate(EXSCALATE, n, 1));

        // Size separation.
        assert!(
            g.mean_line_len < m.mean_line_len,
            "GDB-17 lines ({:.1}) should be shorter than MEDIATE ({:.1})",
            g.mean_line_len,
            m.mean_line_len
        );
        // Decoration separation.
        assert_eq!(stats(&Dataset::generate(GDB17, n, 2)).salt_fraction, 0.0);
        assert!(
            e.salt_fraction > 0.02,
            "EXSCALATE salts: {}",
            e.salt_fraction
        );
        // Alphabet separation: EXSCALATE uses more distinct bytes.
        assert!(e.alphabet_size > g.alphabet_size);
    }

    #[test]
    fn entropy_bounded_by_alphabet() {
        let ds = Dataset::generate(MEDIATE, 200, 3);
        let st = stats(&ds);
        assert!(st.entropy_bits <= (st.alphabet_size as f64).log2() + 1e-9);
        assert!(
            st.entropy_bits > 2.0,
            "SMILES text should carry > 2 bits/byte"
        );
    }

    #[test]
    fn summary_formats() {
        let ds = Dataset::generate(GDB17, 10, 4);
        let s = stats(&ds).summary();
        assert!(s.contains("10 lines"));
        assert!(s.contains("bits/B"));
    }
}
