//! Synthetic SMILES dataset generation.
//!
//! The ZSMILES paper evaluates on three chemical libraries (GDB-17,
//! MEDIATE, EXSCALATE) that are tens of terabytes and/or not
//! redistributable. This crate substitutes seeded synthetic datasets whose
//! *statistical profiles* reproduce the axes the paper's experiments
//! actually probe — molecule size, element palette, ring/aromatic content
//! and decoration density. See DESIGN.md §2 for the substitution argument.
//!
//! Every generated line is valid SMILES (validated against the `smiles`
//! parser by construction and by tests) and uses *sequential* ring-ID
//! numbering, the exporter style that gives the paper's pre-processing
//! optimization something to do.
//!
//! # Example
//!
//! ```
//! use molgen::{Dataset, profiles};
//!
//! let deck = Dataset::generate(profiles::GDB17, 100, 42);
//! assert_eq!(deck.len(), 100);
//! for line in deck.iter() {
//!     smiles::validate::full_check(line).unwrap();
//! }
//! ```

pub mod dataset;
pub mod fragments;
pub mod generator;
pub mod profiles;
pub mod stats;

pub use dataset::Dataset;
pub use generator::Generator;
pub use profiles::Profile;
pub use stats::{stats, DatasetStats};
