//! Seeded random molecule generation.
//!
//! The generator assembles a molecular graph fragment-by-fragment (rings,
//! chains, functional groups), applies profile-driven decorations (stereo
//! bonds, chiral centers, charges, isotopes, salts), and serializes it with
//! *sequential* ring-ID allocation — the exporter style whose redundant ring
//! digits the paper's pre-processing step exists to fix.

use crate::fragments::{
    add_counter_ion, add_ring, attachment_points, bare, free_valence, fuse_aromatic_ring,
    ALL_GROUPS,
};
use crate::profiles::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smiles::element::Element;
use smiles::graph::{AtomKind, Molecule};
use smiles::token::{BondSym, BracketAtom, Chirality};
use smiles::writer::{write, RingAlloc, StartAtom, WriteOptions};

/// Molecule generator for one profile. Deterministic given the seed.
pub struct Generator {
    profile: Profile,
    rng: StdRng,
    write_opts: WriteOptions,
    /// Shared molecular cores (see [`Profile::scaffold_pool`]); cloned as
    /// the starting point of most molecules, combinatorial-library style.
    scaffolds: Vec<Molecule>,
}

impl Generator {
    pub fn new(profile: Profile, seed: u64) -> Self {
        let mut gen = Generator {
            profile,
            rng: StdRng::seed_from_u64(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x5EED),
            ),
            write_opts: WriteOptions {
                ring_alloc: RingAlloc::Sequential,
                start: StartAtom::Terminal,
            },
            scaffolds: Vec::new(),
        };
        for _ in 0..profile.scaffold_pool {
            let core = gen.build_scaffold();
            gen.scaffolds.push(core);
        }
        gen
    }

    /// Build one reusable core: ring systems and linkers only, sized to
    /// roughly 60% of the profile's smallest molecule, undecorated (the
    /// per-molecule growth pass adds the variety).
    fn build_scaffold(&mut self) -> Molecule {
        let p = self.profile;
        let rng = &mut self.rng;
        let target = (p.heavy_atoms.0 * 3 / 5).max(4);
        let mut mol = Molecule::new();
        let want_rings = sample_ring_count(rng, p.mean_rings).max(1);
        let aromatic = rng.gen_bool(p.aromatic_ring_prob);
        let size = ring_size(rng, aromatic);
        add_ring(&mut mol, rng, size, aromatic, p.ring_hetero_prob);
        let mut rings_built = 1usize;
        let mut guard = 0;
        while mol.atom_count() < target && guard < 50 {
            guard += 1;
            let points = attachment_points(&mol, 1);
            if points.is_empty() {
                break;
            }
            let at = points[rng.gen_range(0..points.len())];
            if rings_built < want_rings {
                rings_built += 1;
                let aromatic = rng.gen_bool(p.aromatic_ring_prob);
                if aromatic && rng.gen_bool(p.fused_ring_prob) {
                    if let Some((a, b)) = pick_aromatic_bond(&mol, rng) {
                        if fuse_aromatic_ring(&mut mol, rng, a, b, p.ring_hetero_prob).is_some() {
                            continue;
                        }
                    }
                }
                let size = ring_size(rng, aromatic);
                let ring = add_ring(&mut mol, rng, size, aromatic, p.ring_hetero_prob);
                let candidates: Vec<u32> = ring
                    .iter()
                    .copied()
                    .filter(|&a| free_valence(&mol, a) >= 1)
                    .collect();
                if !candidates.is_empty() && free_valence(&mol, at) >= 1 {
                    let entry = candidates[rng.gen_range(0..candidates.len())];
                    let sym = if mol.atom(at).aromatic() && mol.atom(entry).aromatic() {
                        Some(BondSym::Single)
                    } else {
                        None
                    };
                    mol.add_bond(at, entry, sym, false);
                }
            } else {
                grow_chain(&mut mol, rng, &p, Some(at), 2);
            }
        }
        mol
    }

    /// Generate the next molecule as a SMILES line (no newline).
    pub fn next_smiles(&mut self) -> Vec<u8> {
        let mol = self.next_molecule();
        write(&mol, &self.write_opts)
            .expect("generated molecules stay within ring-ID limits")
            .smiles
    }

    /// Generate the next molecule as a graph.
    pub fn next_molecule(&mut self) -> Molecule {
        let p = self.profile;
        let rng = &mut self.rng;
        let target = rng.gen_range(p.heavy_atoms.0..=p.heavy_atoms.1);

        // Start from a shared scaffold when the profile has a pool —
        // combinatorial-library structure — otherwise grow from scratch.
        let mut mol;
        let mut want_rings;
        if self.scaffolds.is_empty() {
            mol = Molecule::new();
            want_rings = sample_ring_count(rng, p.mean_rings);
            if want_rings > 0 {
                let aromatic = rng.gen_bool(p.aromatic_ring_prob);
                let size = ring_size(rng, aromatic);
                add_ring(&mut mol, rng, size, aromatic, p.ring_hetero_prob);
            } else {
                let len = rng.gen_range(2..=4.min(target));
                grow_chain(&mut mol, rng, &p, None, len);
            }
        } else {
            mol = self.scaffolds[rng.gen_range(0..self.scaffolds.len())].clone();
            // The scaffold already carries its ring systems; only
            // occasionally add one more.
            want_rings = if rng.gen_bool(0.15) { usize::MAX } else { 0 };
            if want_rings == usize::MAX {
                want_rings = 1;
            }
        }

        // Keep attaching fragments until the target size is reached.
        let mut rings_built = if self.scaffolds.is_empty() {
            1.min(want_rings)
        } else {
            0
        };
        let mut guard = 0;
        while mol.atom_count() < target && guard < 200 {
            guard += 1;
            let points = attachment_points(&mol, 1);
            if points.is_empty() {
                break;
            }
            let at = points[rng.gen_range(0..points.len())];
            let remaining = target - mol.atom_count();

            if rings_built < want_rings && remaining >= 4 {
                rings_built += 1;
                let aromatic = rng.gen_bool(p.aromatic_ring_prob);
                // Try ring fusion first when allowed and an aromatic bond
                // exists to fuse onto.
                if aromatic && rng.gen_bool(p.fused_ring_prob) {
                    if let Some((a, b)) = pick_aromatic_bond(&mol, rng) {
                        if fuse_aromatic_ring(&mut mol, rng, a, b, p.ring_hetero_prob).is_some() {
                            continue;
                        }
                    }
                }
                let size = ring_size(rng, aromatic);
                let ring = add_ring(&mut mol, rng, size, aromatic, p.ring_hetero_prob);
                // Link the new ring to the scaffold. A plain single bond;
                // explicit `-` is unnecessary because one side is usually
                // aliphatic, but aromatic-aromatic links need it spelled out
                // — the writer handles that via the bond symbol we set.
                // Link through a ring atom that can still bond (aromatic O/S
                // and [nH] pyrrole nitrogens are sealed).
                let candidates: Vec<u32> = ring
                    .iter()
                    .copied()
                    .filter(|&a| free_valence(&mol, a) >= 1)
                    .collect();
                if !candidates.is_empty() {
                    let entry = candidates[rng.gen_range(0..candidates.len())];
                    let sym = if mol.atom(at).aromatic() && mol.atom(entry).aromatic() {
                        Some(BondSym::Single)
                    } else {
                        None
                    };
                    if free_valence(&mol, at) >= 1 {
                        mol.add_bond(at, entry, sym, false);
                    }
                }
                continue;
            }

            if rng.gen_bool(p.functional_group_prob) {
                let g = ALL_GROUPS[rng.gen_range(0..ALL_GROUPS.len())];
                if g.size() <= remaining && free_valence(&mol, at) >= 1 {
                    g.attach(&mut mol, at);
                    continue;
                }
            }

            if rng.gen_bool(p.halogen_prob) && free_valence(&mol, at) >= 1 {
                let hal = ["F", "Cl", "Br", "I"][rng.gen_range(0..4)];
                let h = mol.add_atom(bare(hal, false));
                mol.add_bond(at, h, None, false);
                continue;
            }

            // Default: grow a short chain.
            let len = rng.gen_range(1..=3.min(remaining.max(1)));
            grow_chain(&mut mol, rng, &p, Some(at), len);
        }

        self.decorate(&mut mol);
        if self.rng.gen_bool(p.salt_prob) {
            add_counter_ion(&mut mol, &mut self.rng);
        }
        mol
    }

    /// Post-pass decorations: chiral centers, charges, isotopes, stereo
    /// bond marks. All operate on the finished skeleton so valence
    /// arithmetic stays simple.
    fn decorate(&mut self, mol: &mut Molecule) {
        let p = self.profile;
        decorate_chiral_centers(mol, &mut self.rng, p.chiral_center_prob);
        decorate_charges(mol, &mut self.rng, p.charge_prob);
        decorate_isotopes(mol, &mut self.rng, p.isotope_prob);
        decorate_stereo_bonds(mol, &mut self.rng, p.stereo_bond_prob);
    }
}

fn sample_ring_count<R: Rng>(rng: &mut R, mean: f64) -> usize {
    // Cheap Poisson-ish sampler: floor(mean) guaranteed, fractional part as
    // a Bernoulli extra, plus one more with small probability for spread.
    let base = mean.floor() as usize;
    let frac = mean - mean.floor();
    let mut k = base;
    if rng.gen_bool(frac.clamp(0.0, 1.0)) {
        k += 1;
    }
    if k > 0 && rng.gen_bool(0.15) {
        k -= 1;
    }
    k
}

fn ring_size<R: Rng>(rng: &mut R, aromatic: bool) -> usize {
    if aromatic {
        if rng.gen_bool(0.8) {
            6
        } else {
            5
        }
    } else {
        *[3usize, 4, 5, 5, 6, 6, 6, 7]
            .get(rng.gen_range(0..8))
            .unwrap()
    }
}

fn pick_aromatic_bond<R: Rng>(mol: &Molecule, rng: &mut R) -> Option<(u32, u32)> {
    let candidates: Vec<(u32, u32)> = mol
        .bonds()
        .iter()
        .filter(|b| {
            b.is_aromatic(mol.atoms()) && free_valence(mol, b.a) >= 1 && free_valence(mol, b.b) >= 1
        })
        .map(|b| (b.a, b.b))
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// Grow a chain of `len` atoms from `from` (or as a fresh component).
fn grow_chain<R: Rng>(mol: &mut Molecule, rng: &mut R, p: &Profile, from: Option<u32>, len: usize) {
    let mut prev = from;
    for _ in 0..len {
        // Stop before orphaning an atom: the previous one may have
        // saturated (e.g. it just took a double bond).
        if let Some(pr) = prev {
            if free_valence(mol, pr) == 0 {
                break;
            }
        }
        let sym = pick_palette_element(rng, p.palette);
        let atom = mol.add_atom(bare(sym, false));
        if let Some(pr) = prev {
            let bond = chain_bond(mol, rng, p, pr, atom);
            mol.add_bond(pr, atom, bond, false);
        }
        prev = Some(atom);
        // Occasional branch point: also hang a methyl off this atom.
        if rng.gen_bool(p.branch_prob) && free_valence(mol, atom) >= 2 {
            let m = mol.add_atom(bare("C", false));
            mol.add_bond(atom, m, None, false);
        }
    }
}

fn chain_bond<R: Rng>(mol: &Molecule, rng: &mut R, p: &Profile, a: u32, b: u32) -> Option<BondSym> {
    let fva = free_valence(mol, a);
    let fvb = free_valence(mol, b);
    if fva >= 3 && fvb >= 3 && rng.gen_bool(p.triple_bond_prob) {
        // Triple bonds only between carbons keeps things plausible.
        if mol.atom(a).element().symbol() == "C" && mol.atom(b).element().symbol() == "C" {
            return Some(BondSym::Triple);
        }
    }
    if fva >= 2 && fvb >= 2 && rng.gen_bool(p.double_bond_prob) {
        return Some(BondSym::Double);
    }
    None
}

fn pick_palette_element<R: Rng>(rng: &mut R, palette: &[(&'static str, f64)]) -> &'static str {
    let total: f64 = palette.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for (sym, w) in palette {
        if x < *w {
            return sym;
        }
        x -= w;
    }
    palette.last().unwrap().0
}

/// Convert eligible sp3 CH carbons (exactly 3 single-bond heavy neighbors,
/// not aromatic, not in a bracket) into `[C@H]` / `[C@@H]`.
fn decorate_chiral_centers<R: Rng>(mol: &mut Molecule, rng: &mut R, prob: f64) {
    if prob == 0.0 {
        return;
    }
    for i in 0..mol.atom_count() as u32 {
        let eligible = match mol.atom(i) {
            AtomKind::Bare(a) => {
                !a.aromatic
                    && a.element.symbol() == "C"
                    && mol.adjacent(i).len() == 3
                    && mol.degree_valence(i) == 3
            }
            _ => false,
        };
        if eligible && rng.gen_bool(prob) {
            let chir = if rng.gen_bool(0.5) {
                Chirality::Ccw
            } else {
                Chirality::Cw
            };
            replace_atom(
                mol,
                i,
                AtomKind::Bracket(BracketAtom {
                    isotope: None,
                    element: Element::from_symbol(b"C").unwrap(),
                    aromatic: false,
                    chirality: chir,
                    hcount: 1,
                    charge: 0,
                    class: None,
                }),
            );
        }
    }
}

/// Charge terminal O (→ [O-]) or terminal N (→ [NH3+]).
fn decorate_charges<R: Rng>(mol: &mut Molecule, rng: &mut R, prob: f64) {
    if prob == 0.0 {
        return;
    }
    for i in 0..mol.atom_count() as u32 {
        if mol.adjacent(i).len() != 1 || mol.degree_valence(i) != 1 {
            continue;
        }
        let (sym, charge, hcount) = match mol.atom(i) {
            AtomKind::Bare(a) if !a.aromatic => match a.element.symbol() {
                "O" => ("O", -1i8, 0u8),
                "N" => ("N", 1, 3),
                _ => continue,
            },
            _ => continue,
        };
        if rng.gen_bool(prob) {
            replace_atom(
                mol,
                i,
                AtomKind::Bracket(BracketAtom {
                    isotope: None,
                    element: Element::from_symbol(sym.as_bytes()).unwrap(),
                    aromatic: false,
                    chirality: Chirality::None,
                    hcount,
                    charge,
                    class: None,
                }),
            );
        }
    }
}

/// Label some carbons with 13C / 14C.
fn decorate_isotopes<R: Rng>(mol: &mut Molecule, rng: &mut R, prob: f64) {
    if prob == 0.0 {
        return;
    }
    for i in 0..mol.atom_count() as u32 {
        let eligible = match mol.atom(i) {
            AtomKind::Bare(a) => !a.aromatic && a.element.symbol() == "C",
            _ => false,
        };
        if eligible && rng.gen_bool(prob) {
            let iso = if rng.gen_bool(0.7) { 13 } else { 14 };
            let h = mol.implicit_hydrogens(i);
            replace_atom(
                mol,
                i,
                AtomKind::Bracket(BracketAtom {
                    isotope: Some(iso),
                    element: Element::from_symbol(b"C").unwrap(),
                    aromatic: false,
                    chirality: Chirality::None,
                    hcount: h,
                    charge: 0,
                    class: None,
                }),
            );
        }
    }
}

/// Put `/` and `\` marks on single bonds flanking eligible chain C=C bonds.
fn decorate_stereo_bonds<R: Rng>(mol: &mut Molecule, rng: &mut R, prob: f64) {
    if prob == 0.0 {
        return;
    }
    let double_bonds: Vec<(u32, u32)> = mol
        .bonds()
        .iter()
        .filter(|b| b.sym == Some(BondSym::Double) && !b.ring)
        .map(|b| (b.a, b.b))
        .collect();
    for (a, b) in double_bonds {
        if !rng.gen_bool(prob) {
            continue;
        }
        // Need a plain single bond on each side that is not itself part of
        // another stereo specification.
        let side = |mol: &Molecule, center: u32, exclude: u32| -> Option<u32> {
            mol.adjacent(center).iter().copied().find(|&bi| {
                let bd = &mol.bonds()[bi as usize];
                bd.sym.is_none() && !bd.ring && bd.other(center) != exclude
            })
        };
        let (Some(ba), Some(bb)) = (side(mol, a, b), side(mol, b, a)) else {
            continue;
        };
        let up_first = rng.gen_bool(0.5);
        set_bond_sym(mol, ba, if up_first { BondSym::Up } else { BondSym::Down });
        set_bond_sym(mol, bb, if up_first { BondSym::Up } else { BondSym::Down });
    }
}

fn replace_atom(mol: &mut Molecule, i: u32, kind: AtomKind) {
    // Molecule has no public mutator for atom kinds; rebuild in place via
    // the dedicated helper below.
    mol.set_atom_kind(i, kind);
}

fn set_bond_sym(mol: &mut Molecule, bond_idx: u32, sym: BondSym) {
    mol.set_bond_sym(bond_idx, Some(sym));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{EXSCALATE, GDB17, MEDIATE};
    use smiles::parser::parse;
    use smiles::validate::full_check;

    #[test]
    fn generator_is_deterministic() {
        let mut g1 = Generator::new(GDB17, 42);
        let mut g2 = Generator::new(GDB17, 42);
        for _ in 0..50 {
            assert_eq!(g1.next_smiles(), g2.next_smiles());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut g1 = Generator::new(GDB17, 1);
        let mut g2 = Generator::new(GDB17, 2);
        let a: Vec<_> = (0..20).map(|_| g1.next_smiles()).collect();
        let b: Vec<_> = (0..20).map(|_| g2.next_smiles()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn all_profiles_generate_valid_smiles() {
        for (profile, seed) in [(GDB17, 10u64), (MEDIATE, 11), (EXSCALATE, 12)] {
            let mut g = Generator::new(profile, seed);
            for i in 0..300 {
                let s = g.next_smiles();
                full_check(&s).unwrap_or_else(|e| {
                    panic!(
                        "{} molecule {i}: {e}: {}",
                        profile.name,
                        String::from_utf8_lossy(&s)
                    )
                });
            }
        }
    }

    #[test]
    fn sizes_respect_profile_bounds() {
        let mut g = Generator::new(GDB17, 99);
        for _ in 0..100 {
            let m = g.next_molecule();
            // Counter-ions could add atoms beyond target, but GDB17 has
            // salt_prob = 0, so the bound holds strictly.
            assert!(
                m.atom_count() <= GDB17.heavy_atoms.1 + 4,
                "atom count {} exceeds bound",
                m.atom_count()
            );
            assert!(m.atom_count() >= 2);
        }
    }

    #[test]
    fn gdb17_has_no_decorations() {
        let mut g = Generator::new(GDB17, 5);
        for _ in 0..200 {
            let s = g.next_smiles();
            let txt = String::from_utf8_lossy(&s).to_string();
            assert!(!txt.contains('@'), "no chirality in GDB-17: {txt}");
            assert!(!txt.contains('/'), "no stereo bonds: {txt}");
            assert!(!txt.contains("[13"), "no isotopes: {txt}");
            assert!(!txt.contains('.'), "no salts / stray fragments: {txt}");
            // ('+' can legitimately appear via nitro groups.)
        }
    }

    #[test]
    fn mediate_eventually_shows_decorations() {
        let mut g = Generator::new(MEDIATE, 7);
        let mut saw_chiral = false;
        let mut saw_ring = false;
        for _ in 0..500 {
            let s = String::from_utf8(g.next_smiles()).unwrap();
            saw_chiral |= s.contains('@');
            saw_ring |= s.contains('1');
        }
        assert!(
            saw_chiral,
            "chirality should appear in 500 MEDIATE molecules"
        );
        assert!(saw_ring);
    }

    #[test]
    fn exscalate_produces_salts() {
        let mut g = Generator::new(EXSCALATE, 13);
        let mut dots = 0;
        for _ in 0..300 {
            let s = g.next_smiles();
            if s.contains(&b'.') {
                dots += 1;
            }
        }
        assert!(
            dots > 5,
            "~10% of EXSCALATE lines should be salts, saw {dots}/300"
        );
    }

    #[test]
    fn generated_ring_ids_are_sequential_style() {
        // The generator uses Sequential allocation, so a molecule with two
        // rings must use digits 1 and 2 (not reuse 1).
        let mut g = Generator::new(MEDIATE, 21);
        let mut found = false;
        for _ in 0..300 {
            let s = String::from_utf8(g.next_smiles()).unwrap();
            if s.contains('2') && s.matches('1').count() >= 2 {
                found = true;
                break;
            }
        }
        assert!(found, "expected multi-ring molecules with sequential IDs");
    }

    #[test]
    fn generated_molecules_reparse_to_same_graph() {
        let mut g = Generator::new(MEDIATE, 31);
        for _ in 0..100 {
            let m = g.next_molecule();
            let w = write(&m, &WriteOptions::default()).unwrap();
            let re = parse(&w.smiles).unwrap();
            let mut perm = vec![0u32; m.atom_count()];
            for (new_idx, &orig) in w.emit_order.iter().enumerate() {
                perm[orig as usize] = new_idx as u32;
            }
            assert!(
                m.eq_under_permutation(&re, &perm),
                "{}",
                String::from_utf8_lossy(&w.smiles)
            );
        }
    }
}
