//! `zsmiles` CLI as a library: argument parsing and subcommand
//! implementations, exposed so integration tests can drive the exact code
//! the binary runs.

pub mod args;
pub mod commands;

pub use commands::run;
