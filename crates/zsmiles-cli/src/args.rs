//! Minimal flag–value argument parsing.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--flag value` / `--flag` pairs.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &[
    "--postprocess",
    "--no-preprocess",
    "--index",
    "--quiet",
    "--verbose",
    "--verify",
    "--train",
    "--dict-stats",
    "--stats",
    "--shutdown",
    "--repair",
    "--quarantine",
    "--health",
    "--degraded",
];

impl Args {
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if !a.starts_with('-') {
                return Err(format!("unexpected positional argument '{a}'"));
            }
            let key = canonical(a);
            if BOOL_FLAGS.contains(&key.as_str()) {
                flags.insert(key, "true".to_string());
                i += 1;
            } else {
                let v = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("flag '{a}' needs a value"))?;
                flags.insert(key, v.clone());
                i += 2;
            }
        }
        Ok(Args { flags })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag '{key}'"))
    }

    pub fn get_bool(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }

    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag '{key}': bad number '{v}'")),
        }
    }

    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag '{key}': bad number '{v}'")),
        }
    }
}

/// Map short flags to long ones.
fn canonical(flag: &str) -> String {
    match flag {
        "-i" => "--input".into(),
        "-o" => "--output".into(),
        "-d" => "--dict".into(),
        "-n" => "--count".into(),
        _ => flag.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_values_and_shorts() {
        let a = Args::parse(&argv(&["-i", "in.smi", "--seed", "7", "--postprocess"])).unwrap();
        assert_eq!(a.get("--input"), Some("in.smi"));
        assert_eq!(a.get_u64("--seed", 0).unwrap(), 7);
        assert!(a.get_bool("--postprocess"));
        assert!(!a.get_bool("--index"));
        assert_eq!(a.get_usize("--threads", 4).unwrap(), 4);
    }

    #[test]
    fn errors() {
        assert!(Args::parse(&argv(&["positional"])).is_err());
        assert!(Args::parse(&argv(&["--input"])).is_err());
        let a = Args::parse(&argv(&["--seed", "x"])).unwrap();
        assert!(a.get_u64("--seed", 0).is_err());
        assert!(a.require("--output").is_err());
    }
}
