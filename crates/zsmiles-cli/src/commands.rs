//! Subcommand implementations.

use crate::args::Args;
use molgen::{profiles, stats, Dataset};
use std::path::Path;
use std::time::Instant;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::serve::{Executor, QueryClient, ServeOptions, Server};
use zsmiles_core::shard::{is_manifest, ShardPolicy, ShardedReader, ShardedWriter};
use zsmiles_core::train::{BaseBuilder, DictBuilder as _, TrainCorpus, WideBuilder};
use zsmiles_core::{
    check_deck, quarantine_shards, repair_deck, ArchiveReader, ArchiveWriter, AtomicFileSink,
    BlockCache, CountingSource, Decompressor, FileSource, LineIndex, Prepopulation, RankStrategy,
    Selection, TrainOptions, WriterOptions,
};

const USAGE: &str =
    "usage: zsmiles <gen|train|compress|decompress|pack|unpack|check|get|serve|query|screen|stats|inspect> [flags]
  gen        --profile gdb17|mediate|exscalate|mixed -n N [--seed S] -o out.smi
  train      -i train.smi|- -o dict.dct [--flavor base|wide] [--wide N]
             [--max-symbols N] [--sample-lines N] [--seed S]
             [--select cost|paper] [--lmin 2] [--lmax 12] [--min-count 4]
             [--prepopulation none|smiles-alphabet|printable-ascii] [--no-preprocess]
             (streams the corpus — '-' reads stdin — through seeded
              reservoir sampling, selects patterns by the actual
              shortest-path encode cost, and writes the magic-tagged .dct;
              --select paper keeps the paper's Algorithm-1 ranking;
              --wide N implies --flavor wide with N two-byte codes)
  compress   -i in.smi -d dict.dct -o out.zsmi [--threads N] [--index]
  decompress -i in.zsmi -d dict.dct -o out.smi [--threads N] [--postprocess]
  pack       -i in.smi (-d dict.dct | --train) -o out.zsa [--threads N]
             [--shard-lines N | --shard-bytes N] [--generation G]
             [--dict-out fitted.dct and the train flags above, with --train]
             (streams the input — '-' reads stdin — through the out-of-core
              writer in bounded memory; with a shard budget, -o names a .zsm
              manifest and shards land beside it as <stem>.NNNNN.zsa, and
              --threads N compresses N complete shards concurrently with
              byte-identical output;
              --train first fits the embedded dictionary to the deck being
              packed, so the input must be a re-readable file, not stdin;
              --generation G stamps a dataset generation onto the .zsm
              manifest — the serve command's flip requires each new deck
              to be newer than the one it replaces)
  unpack     -i in.zsa|in.zsm -o out.smi [--threads N] [--verify] [--verbose]
  check      --archive in.zsa|in.zsm [--repair] [--quarantine]
             (deep-verifies every container — header, dictionary, index,
              streaming CRC, a decode of every line, and each shard's
              manifest row — and prints a JSON report naming each finding;
              exits nonzero while any shard stays bad. --repair rewrites
              stale manifest rows from internally-sound shard files
              (metadata only, never invents payload); --quarantine moves
              damaged shards aside to <name>.quarantined so `serve
              --degraded` keeps answering for the rest of the deck)
  get        -i in.zsmi -d dict.dct --line K
  get        --archive in.zsa|in.zsm --line K [--count N] [--verify] [--verbose]
             (no dictionary or sidecar needed; reads only metadata + the
              lines asked for; archives are mmapped where the platform
              allows, else read through the shared block cache — --verbose
              reports bytes mapped, or the cache hit rate and evictions)
  serve      --archive in.zsa|in.zsm [--addr HOST:PORT] [--max-conns N] [--degraded]
             [--executor pooled|threaded] [--workers N] [--depth K]
             (holds the deck open and answers concurrent get/get_range/
              get_many/stats/top_hits clients over a length-prefixed
              binary TCP protocol; --addr defaults to 127.0.0.1:0 — an
              ephemeral port, printed on startup; a wire flip atomically
              swaps to a new dataset generation and a wire shutdown stops
              serving; --degraded tolerates quarantined shards — the rest
              of the deck serves and health reports degraded; the default
              pooled executor drives pipelined connections through one
              poll(2) loop plus --workers threads (0 = min(cores, 8)),
              keeping up to --depth requests in flight per connection;
              --executor threaded restores thread-per-connection)
  query      --addr HOST:PORT (--line K [--count N] | --many i,j,k [--depth K]
             | --top-hits N --pattern SEED | --stats | --health
             | --flip newdeck.zsm | --shutdown)
             (one request against a running serve process; --many with
              --depth K > 1 pipelines the fetches, K frames in flight;
              --top-hits ranks the whole served deck against pocket SEED
              server-side and prints index, score and SMILES per hit —
              byte-identical to a local screen over the same deck;
              --flip names a server-local archive path; --health exits
              nonzero when the served deck is degraded — a ready-made
              readiness probe)
  screen     -i deck.smi [--pocket-seed S] [--top K] [--threads N] [--scores out.tsv]
  stats      -i file.smi
  inspect    -d dict.dct [-i corpus.smi] [--dict-stats]
             (--dict-stats adds the symbol count, a pattern length
              histogram and — with -i — per-symbol hit coverage measured
              over the sample deck, for either flavour)
  inspect    --archive in.zsa|in.zsm [--verbose] [--verify]
Archive commands stream through the out-of-core reader and writer: a
multi-GB deck is never loaded into memory, packing or reading; pass
--verify to force a full CRC pass first. Wherever an archive path is
accepted, a .zsm shard manifest works too (sniffed by magic, lines
numbered globally across shards).
Dictionary files are sniffed by magic: both the paper's one-byte format and
the wide extension work everywhere a -d flag is accepted.";

pub fn run(argv: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(USAGE.to_string());
    };
    let args = Args::parse(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "train" => cmd_train(&args),
        "compress" => cmd_compress(&args),
        "decompress" => cmd_decompress(&args),
        "pack" => cmd_pack(&args),
        "unpack" => cmd_unpack(&args),
        "check" => cmd_check(&args),
        "get" => cmd_get(&args),
        "serve" => cmd_serve(&args),
        "query" => cmd_query(&args),
        "screen" => cmd_screen(&args),
        "stats" => cmd_stats(&args),
        "inspect" => cmd_inspect(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let n = args.get_usize("--count", 10_000)?;
    let seed = args.get_u64("--seed", 42)?;
    let out = args.require("--output")?;
    let profile = args.get("--profile").unwrap_or("mixed");
    let ds = match profile {
        "gdb17" => Dataset::generate(profiles::GDB17, n, seed),
        "mediate" => Dataset::generate(profiles::MEDIATE, n, seed),
        "exscalate" => Dataset::generate(profiles::EXSCALATE, n, seed),
        "mixed" => Dataset::generate_mixed(n, seed),
        other => return Err(format!("unknown profile '{other}'")),
    };
    ds.save(Path::new(out)).map_err(|e| e.to_string())?;
    if !args.get_bool("--quiet") {
        println!(
            "wrote {} lines ({} bytes) to {}",
            ds.len(),
            ds.total_bytes(),
            out
        );
    }
    Ok(())
}

/// Training configuration shared by `train` and `pack --train`.
fn train_options(args: &Args) -> Result<TrainOptions, String> {
    let name = args.get("--prepopulation").unwrap_or("smiles-alphabet");
    let prepopulation =
        Prepopulation::from_name(name).ok_or_else(|| format!("unknown prepopulation '{name}'"))?;
    let defaults = TrainOptions::default();
    let selection = match args.get("--select").unwrap_or("cost") {
        "cost" => Selection::CostGuided,
        "paper" => Selection::PaperRank(RankStrategy::PaperOverlap),
        other => return Err(format!("unknown selection '{other}' (cost|paper)")),
    };
    // `--dict-size` stays accepted as the historical spelling of
    // `--max-symbols`.
    let max_symbols = args
        .get("--max-symbols")
        .or_else(|| args.get("--dict-size"))
        .map(|v| {
            v.parse::<usize>()
                .map_err(|_| format!("bad symbol budget '{v}'"))
        })
        .transpose()?
        .filter(|&v| v > 0);
    Ok(TrainOptions {
        lmin: args.get_usize("--lmin", defaults.lmin)?,
        lmax: args.get_usize("--lmax", defaults.lmax)?,
        prepopulation,
        preprocess: !args.get_bool("--no-preprocess"),
        max_symbols,
        min_count: args.get_usize("--min-count", defaults.min_count as usize)? as u32,
        sample_lines: args.get_usize("--sample-lines", defaults.sample_lines)?,
        seed: args.get_u64("--seed", defaults.seed)?,
        selection,
        ..defaults
    })
}

/// Stream the training corpus — a file or stdin (`-`) — through seeded
/// reservoir sampling. Memory is bounded by `--sample-lines`, never the
/// deck.
fn sample_corpus(input: &str, opts: &TrainOptions) -> Result<TrainCorpus, String> {
    let corpus = if input == "-" {
        TrainCorpus::sample(std::io::stdin().lock(), opts.sample_lines, opts.seed)
    } else {
        let f = std::fs::File::open(input).map_err(|e| e.to_string())?;
        TrainCorpus::sample(std::io::BufReader::new(f), opts.sample_lines, opts.seed)
    };
    corpus.map_err(|e| e.to_string())
}

/// Train a dictionary of the requested flavour on a sampled corpus.
fn train_dictionary(args: &Args, corpus: &TrainCorpus) -> Result<AnyDictionary, String> {
    let opts = train_options(args)?;
    let wide = args.get_usize("--wide", 0)?;
    let flavor = args
        .get("--flavor")
        .unwrap_or(if wide > 0 { "wide" } else { "base" });
    let model = match flavor {
        "base" => BaseBuilder { opts }.train(corpus),
        "wide" => WideBuilder {
            opts,
            wide_size: if wide > 0 { wide } else { 512 },
        }
        .train(corpus),
        other => return Err(format!("unknown flavor '{other}' (base|wide)")),
    }
    .map_err(|e| e.to_string())?;
    Ok(model
        .into_dictionary()
        .expect("ZSMILES builders produce dictionaries"))
}

fn describe_dict(dict: &AnyDictionary) -> String {
    match dict {
        AnyDictionary::Base(d) => format!(
            "{} patterns (+{} identity codes)",
            d.pattern_entries().count(),
            d.prepopulation().identity_bytes().len()
        ),
        AnyDictionary::Wide(d) => format!(
            "{} one-byte + {} two-byte codes",
            d.base_len(),
            d.wide_len()
        ),
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let output = args.require("--output")?;
    let opts = train_options(args)?;
    let t0 = Instant::now();
    let corpus = sample_corpus(input, &opts)?;
    let dict = train_dictionary(args, &corpus)?;
    dict.save(Path::new(output)).map_err(|e| e.to_string())?;
    if !args.get_bool("--quiet") {
        println!(
            "trained {} from {} of {} lines ({} selection, seed {}) in {:.2?} -> {}",
            describe_dict(&dict),
            corpus.len(),
            corpus.seen_lines(),
            opts.selection.name(),
            opts.seed,
            t0.elapsed(),
            output
        );
    }
    Ok(())
}

fn load_dict(args: &Args) -> Result<AnyDictionary, String> {
    let path = args.require("--dict")?;
    AnyDictionary::load(Path::new(path)).map_err(|e| e.to_string())
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let output = args.require("--output")?;
    let dict = load_dict(args)?;
    let threads = args.get_usize("--threads", 1)?;
    let data = std::fs::read(input).map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    let (out, cstats) = dict.compress_parallel(&data, threads);
    let dt = t0.elapsed();
    std::fs::write(output, &out).map_err(|e| e.to_string())?;
    if args.get_bool("--index") {
        let idx = LineIndex::build(&out);
        idx.save(Path::new(&format!("{output}.zsx")))
            .map_err(|e| e.to_string())?;
    }
    if !args.get_bool("--quiet") {
        println!(
            "{} lines, {} -> {} bytes (ratio {:.3}) in {:.2?} [{} pp-failures]",
            cstats.lines,
            cstats.in_bytes,
            cstats.out_bytes,
            cstats.ratio(),
            dt,
            cstats.preprocess_failures
        );
    }
    Ok(())
}

fn cmd_decompress(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let output = args.require("--output")?;
    let dict = load_dict(args)?;
    let threads = args.get_usize("--threads", 1)?;
    let data = std::fs::read(input).map_err(|e| e.to_string())?;
    let t0 = Instant::now();
    let out = match &dict {
        AnyDictionary::Base(d) if args.get_bool("--postprocess") => {
            // Post-processing path is line-by-line (serial; the renumber
            // is cheap next to I/O).
            let mut dc = Decompressor::new(d).with_postprocess(true);
            let mut out = Vec::with_capacity(data.len() * 3);
            dc.decompress_buffer(&data, &mut out)
                .map_err(|e| e.to_string())?;
            out
        }
        AnyDictionary::Wide(_) if args.get_bool("--postprocess") => {
            return Err("--postprocess is not supported with wide dictionaries".into());
        }
        dict => {
            let (out, _) = dict
                .decompress_parallel(&data, threads)
                .map_err(|e| e.to_string())?;
            out
        }
    };
    let dt = t0.elapsed();
    std::fs::write(output, &out).map_err(|e| e.to_string())?;
    if !args.get_bool("--quiet") {
        println!("{} -> {} bytes in {:.2?}", data.len(), out.len(), dt);
    }
    Ok(())
}

/// Open the deck to pack (a file, or stdin for `-`). Opened *before* the
/// output is created, so a bad input path never truncates an existing
/// archive.
fn open_input(input: &str) -> Result<Box<dyn std::io::Read>, String> {
    if input == "-" {
        Ok(Box::new(std::io::stdin().lock()))
    } else {
        Ok(Box::new(
            std::fs::File::open(input).map_err(|e| e.to_string())?,
        ))
    }
}

/// Pump an opened input into `write` in bounded chunks — pack never holds
/// the deck.
fn stream_input(
    mut reader: Box<dyn std::io::Read>,
    mut write: impl FnMut(&[u8]) -> Result<(), String>,
) -> Result<(), String> {
    let mut buf = vec![0u8; 1 << 20];
    loop {
        let n = reader.read(&mut buf).map_err(|e| e.to_string())?;
        if n == 0 {
            return Ok(());
        }
        write(&buf[..n])?;
    }
}

/// Whether two CLI paths name the same existing file (both must resolve;
/// a not-yet-existing output cannot clash).
fn same_file(a: &str, b: &str) -> bool {
    match (std::fs::canonicalize(a), std::fs::canonicalize(b)) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

fn cmd_pack(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let output = args.require("--output")?;
    if input != "-" && same_file(input, output) {
        return Err(format!(
            "refusing to pack '{input}' onto itself: input and output are the same file"
        ));
    }
    // --train fits the embedded dictionary to the deck being packed: one
    // sampling pass over the input, then the normal streaming pack. Two
    // passes need a re-readable input, so stdin is refused.
    let dict = if args.get_bool("--train") {
        if input == "-" {
            return Err(
                "--train reads the input twice (sample, then pack); pipe the deck to a file \
                 or pass a path instead of '-'"
                    .into(),
            );
        }
        if args.get("--dict").is_some() {
            return Err("--train and --dict are mutually exclusive: \
                        the trained dictionary is the one embedded"
                .into());
        }
        let opts = train_options(args)?;
        let corpus = sample_corpus(input, &opts)?;
        let dict = train_dictionary(args, &corpus)?;
        if let Some(path) = args.get("--dict-out") {
            dict.save(Path::new(path)).map_err(|e| e.to_string())?;
        }
        if !args.get_bool("--quiet") {
            println!(
                "fitted {} to the deck ({} of {} lines sampled, seed {})",
                describe_dict(&dict),
                corpus.len(),
                corpus.seen_lines(),
                opts.seed,
            );
        }
        dict
    } else {
        load_dict(args)?
    };
    let reader = open_input(input)?;
    let flavor = dict.flavor();
    let opts = WriterOptions {
        threads: args.get_usize("--threads", 1)?,
        ..Default::default()
    };
    let shard_lines = args.get_u64("--shard-lines", 0)?;
    let shard_bytes = args.get_u64("--shard-bytes", 0)?;
    let generation = args.get_u64("--generation", 0)?;
    if generation > 0 && shard_lines == 0 && shard_bytes == 0 {
        return Err(
            "--generation is stored on the .zsm manifest; add a --shard-lines or \
             --shard-bytes budget (single .zsa files carry no generation row)"
                .into(),
        );
    }
    let t0 = Instant::now();

    // Sharded layout: -o names the .zsm manifest, shards land beside it.
    if shard_lines > 0 || shard_bytes > 0 {
        let policy = ShardPolicy {
            max_lines: (shard_lines > 0).then_some(shard_lines),
            max_bytes: (shard_bytes > 0).then_some(shard_bytes),
        };
        let mut w = ShardedWriter::create(Path::new(output), dict, policy, opts)
            .map_err(|e| e.to_string())?;
        w.set_generation(generation);
        stream_input(reader, |chunk| w.write(chunk).map_err(|e| e.to_string()))?;
        let info = w.finish().map_err(|e| e.to_string())?;
        if !args.get_bool("--quiet") {
            let on_disk: u64 = info.shards.iter().map(|s| s.file_bytes).sum();
            println!(
                "packed {} lines, {} -> {} payload bytes (ratio {:.3}) into {} shard(s), \
                 {} bytes on disk ({} dictionary) in {:.2?}",
                info.stats.lines,
                info.stats.in_bytes,
                info.stats.out_bytes,
                info.stats.ratio(),
                info.shards.len(),
                on_disk,
                flavor.name(),
                t0.elapsed(),
            );
        }
        return Ok(());
    }

    // Single-file layout, still streaming: bounded memory however large
    // the deck is. The archive builds under a temp name and is renamed
    // into place only after a durable finish — a killed pack leaves the
    // previous output (or nothing), never a half-written container.
    let sink = AtomicFileSink::create(Path::new(output)).map_err(|e| e.to_string())?;
    let mut w = ArchiveWriter::with_options(sink, dict, opts).map_err(|e| e.to_string())?;
    stream_input(reader, |chunk| w.write(chunk).map_err(|e| e.to_string()))?;
    let (sink, info) = w.finish().map_err(|e| e.to_string())?;
    sink.commit().map_err(|e| e.to_string())?;
    if !args.get_bool("--quiet") {
        println!(
            "packed {} lines, {} -> {} payload bytes (ratio {:.3}), {} bytes on disk \
             ({} dictionary) in {:.2?}",
            info.stats.lines,
            info.stats.in_bytes,
            info.stats.out_bytes,
            info.stats.ratio(),
            info.container_bytes,
            flavor.name(),
            t0.elapsed(),
        );
    }
    Ok(())
}

fn cmd_unpack(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let output = args.require("--output")?;
    let threads = args.get_usize("--threads", 1)?;
    let t0 = Instant::now();
    // Out-of-core: payload is read in bounded chunks straight from disk,
    // so unpacking a multi-GB archive never holds it in memory. A .zsm
    // manifest streams shard by shard through the same call.
    let reader = zsmiles_core::DeckReader::open(Path::new(input)).map_err(|e| e.to_string())?;
    if args.get_bool("--verify") {
        reader.verify().map_err(|e| e.to_string())?;
    }
    let f = std::fs::File::create(output).map_err(|e| e.to_string())?;
    let dstats = reader
        .unpack_to(
            std::io::BufWriter::new(f),
            threads,
            zsmiles_core::fileio::DEFAULT_CHUNK,
        )
        .map_err(|e| e.to_string())?;
    if !args.get_bool("--quiet") {
        println!(
            "unpacked {} lines, {} -> {} bytes in {:.2?}",
            dstats.lines,
            dstats.in_bytes,
            dstats.out_bytes,
            t0.elapsed()
        );
    }
    if args.get_bool("--verbose") {
        eprintln!(
            "{}",
            read_path_report(reader.bytes_mapped(), reader.cache_counters())
        );
    }
    Ok(())
}

/// `check`: deep-verify a deck, print the machine-readable report, and
/// optionally repair manifest metadata or quarantine damaged shards.
/// Exits nonzero while any shard stays bad, so orchestration can gate on
/// the exit code alone.
fn cmd_check(args: &Args) -> Result<(), String> {
    let path = Path::new(args.require("--archive")?);
    let mut report = check_deck(path).map_err(|e| e.to_string())?;
    if args.get_bool("--repair") && !report.is_ok() {
        let outcome = repair_deck(path, &report).map_err(|e| e.to_string())?;
        for file in &outcome.rows_rewritten {
            eprintln!("repaired: manifest row for {file} rewritten from the shard file");
        }
        for file in &outcome.unrepairable {
            eprintln!("unrepairable: {file} has payload damage (quarantine or re-pack)");
        }
        if !outcome.rows_rewritten.is_empty() {
            report = check_deck(path).map_err(|e| e.to_string())?;
        }
    }
    if args.get_bool("--quarantine") && !report.is_ok() {
        for file in quarantine_shards(path, &report).map_err(|e| e.to_string())? {
            eprintln!("quarantined: {file} -> {file}.quarantined");
        }
    }
    println!("{}", report.to_json());
    if report.is_ok() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} shard(s) failed verification",
            report.bad_count(),
            report.shards.len()
        ))
    }
}

/// One-line `--verbose` description of how an archive's bytes were
/// served: an mmap (zero-copy, nothing to cache) or positioned file I/O
/// through the shared block cache, with this workload's hit/miss split
/// and the pool's eviction pressure.
fn read_path_report(bytes_mapped: u64, counters: Option<(u64, u64)>) -> String {
    match counters {
        None => format!("read path: mmap, {bytes_mapped} bytes mapped (zero-copy, no block cache)"),
        Some((hits, misses)) => {
            let total = hits + misses;
            let rate = if total > 0 {
                100.0 * hits as f64 / total as f64
            } else {
                0.0
            };
            let pool = BlockCache::global().stats();
            format!(
                "read path: cached file I/O, {hits} hit(s) / {misses} miss(es) ({rate:.1}% hit \
                 rate) | shared pool: {} block(s) resident, {} eviction(s), {} failed load(s)",
                pool.resident_blocks, pool.evictions, pool.load_failures
            )
        }
    }
}

fn cmd_get(args: &Args) -> Result<(), String> {
    let line_no = args.get_usize("--line", 0)?;

    // Sharded layout: the manifest routes global line numbers across
    // shards; only the owning shard's metadata + line ranges are read.
    if let Some(path) = args.get("--archive") {
        if is_manifest(Path::new(path)).map_err(|e| e.to_string())? {
            let reader = ShardedReader::open(Path::new(path)).map_err(|e| e.to_string())?;
            if args.get_bool("--verify") {
                reader.verify().map_err(|e| e.to_string())?;
            }
            let count = args.get_usize("--count", 1)?.max(1);
            let end = line_no
                .checked_add(count)
                .ok_or_else(|| "line number overflows".to_string())?;
            let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
            use std::io::Write;
            // A consecutive run is a batched per-shard range fetch.
            for smiles in reader.get_range(line_no..end).map_err(|e| e.to_string())? {
                writeln!(stdout, "{}", String::from_utf8_lossy(&smiles))
                    .map_err(|e| e.to_string())?;
            }
            stdout.flush().map_err(|e| e.to_string())?;
            if args.get_bool("--verbose") {
                eprintln!(
                    "sharded deck: {} lines across {} shard(s)",
                    reader.len(),
                    reader.shard_count(),
                );
                eprintln!(
                    "{}",
                    read_path_report(reader.bytes_mapped(), reader.cache_counters())
                );
            }
            return Ok(());
        }
    }

    // Single-file path: everything needed is inside the container, and
    // the reader fetches only metadata plus the requested byte ranges — a
    // probe into a multi-GB archive never allocates the payload. The
    // archive is mmapped where the platform allows (each fetch is a
    // zero-syscall copy from the mapping); otherwise positioned reads go
    // through the shared block cache, which turns a `--count` loop of
    // per-line fetches into one block transfer per neighbourhood.
    if let Some(path) = args.get("--archive") {
        let reader = ArchiveReader::open_auto(Path::new(path)).map_err(|e| e.to_string())?;
        if args.get_bool("--verify") {
            // Opt-in integrity pass: one sequential CRC scan of the file.
            // Without it a fetch touches only metadata + the lines read.
            reader.verify().map_err(|e| e.to_string())?;
        }
        let count = args.get_usize("--count", 1)?.max(1);
        // Snapshot after open/verify so the report covers line fetches
        // only, not the metadata reads (or the CRC scan).
        let base = reader.source().cache_counters();
        let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
        use std::io::Write;
        for k in 0..count {
            let i = line_no
                .checked_add(k)
                .ok_or_else(|| "line number overflows".to_string())?;
            let smiles = reader.get(i).map_err(|e| e.to_string())?;
            writeln!(stdout, "{}", String::from_utf8_lossy(&smiles)).map_err(|e| e.to_string())?;
        }
        stdout.flush().map_err(|e| e.to_string())?;
        if args.get_bool("--verbose") {
            let fetched = match (base, reader.source().cache_counters()) {
                (Some((h0, m0)), Some((h, m))) => Some((h - h0, m - m0)),
                _ => None,
            };
            eprintln!(
                "{} over {count} line fetch(es)",
                read_path_report(reader.source().bytes_mapped(), fetched)
            );
        }
        return Ok(());
    }

    let input = args.require("--input")?;
    let dict = load_dict(args)?;
    let data = std::fs::read(input).map_err(|e| e.to_string())?;
    // Use the sidecar if present, else index on the fly.
    let sidecar = format!("{input}.zsx");
    let idx = if Path::new(&sidecar).exists() {
        LineIndex::load(Path::new(&sidecar)).map_err(|e| e.to_string())?
    } else {
        LineIndex::build(&data)
    };
    if line_no >= idx.len() {
        return Err(format!(
            "line {line_no} out of range (file has {})",
            idx.len()
        ));
    }
    let mut smiles = Vec::new();
    dict.decompress_line(idx.line(&data, line_no), &mut smiles)
        .map_err(|e| e.to_string())?;
    println!("{}", String::from_utf8_lossy(&smiles));
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("--archive") {
        if is_manifest(Path::new(path)).map_err(|e| e.to_string())? {
            let reader = ShardedReader::open(Path::new(path)).map_err(|e| e.to_string())?;
            if args.get_bool("--verify") {
                reader.verify().map_err(|e| e.to_string())?;
            }
            println!(
                "sharded archive: {} lines | {} payload bytes | {} shard(s) | {} dictionary \
                 | preprocess {}",
                reader.len(),
                reader.payload_bytes(),
                reader.shard_count(),
                reader.flavor().name(),
                reader.dictionary().preprocessed(),
            );
            if args.get_bool("--verbose") {
                println!(
                    "  {:<24} {:>10} {:>12} {:>9}",
                    "shard", "lines", "bytes", "crc32"
                );
                for s in reader.manifest().shards() {
                    println!(
                        "  {:<24} {:>10} {:>12} {:>9}",
                        s.file,
                        s.lines,
                        s.file_bytes,
                        format!("{:08x}", s.crc32),
                    );
                }
                println!(
                    "  open transferred {} metadata bytes, payload untouched",
                    reader.metadata_bytes(),
                );
            }
            return Ok(());
        }
        // Metered out-of-core open: the counting source records exactly
        // what inspecting costs (metadata only, payload untouched).
        let source =
            CountingSource::new(FileSource::open(Path::new(path)).map_err(|e| e.to_string())?);
        let file_bytes = zsmiles_core::ArchiveSource::len(&source);
        let reader = ArchiveReader::from_source(source).map_err(|e| e.to_string())?;
        if args.get_bool("--verify") {
            reader.verify().map_err(|e| e.to_string())?;
        }
        println!(
            "archive: {} lines | {} payload bytes | {} dictionary | preprocess {}",
            reader.len(),
            reader.payload_bytes(),
            reader.flavor().name(),
            reader.dictionary().preprocessed(),
        );
        if args.get_bool("--verbose") {
            println!(
                "reads: {} bytes of {} transferred in {} read(s) ({} bytes of metadata)",
                reader.source().bytes_read(),
                file_bytes,
                reader.source().reads(),
                reader.metadata_bytes(),
            );
        }
        return Ok(());
    }
    let dict = load_dict(args)?;
    match &dict {
        AnyDictionary::Base(dict) => {
            println!(
                "dictionary: {} patterns + {} identity codes | prepopulation {} | \
                 preprocess {} | Lmin {} Lmax {} | longest pattern {}",
                dict.pattern_entries().count(),
                dict.prepopulation().identity_bytes().len(),
                dict.prepopulation().name(),
                dict.preprocessed(),
                dict.lmin(),
                dict.lmax(),
                dict.max_pattern_len(),
            );
            if let Some(input) = args.get("--input") {
                if !args.get_bool("--dict-stats") {
                    let data = std::fs::read(input).map_err(|e| e.to_string())?;
                    let report = zsmiles_core::dict::analysis::analyze(dict, &data);
                    print!("{}", report.summary(dict));
                }
            }
        }
        AnyDictionary::Wide(dict) => {
            println!(
                "wide dictionary: {} one-byte + {} two-byte codes | prepopulation {} | \
                 preprocess {} | Lmin {} Lmax {} | longest pattern {}",
                dict.base_len(),
                dict.wide_len(),
                dict.prepopulation().name(),
                dict.preprocessed(),
                dict.lmin(),
                dict.lmax(),
                dict.max_pattern_len(),
            );
        }
    }
    if args.get_bool("--dict-stats") {
        print_dict_stats(args, &dict)?;
    }
    Ok(())
}

/// The `--dict-stats` block: symbol count, pattern length histogram, and
/// (given `-i sample.smi`) per-symbol hit coverage over the sample deck.
/// Works for either flavour.
fn print_dict_stats(args: &Args, dict: &AnyDictionary) -> Result<(), String> {
    use zsmiles_core::dict::analysis;
    let stats = analysis::dict_stats(dict);
    println!(
        "symbols: {} ({} identity + {} patterns) | longest pattern {}",
        stats.symbols(),
        stats.identity,
        stats.patterns,
        stats.max_len,
    );
    println!("pattern length histogram:");
    let peak = stats.histogram_rows().map(|(_, n)| n).max().unwrap_or(1);
    for (len, n) in stats.histogram_rows() {
        let bar = "#".repeat((n * 40).div_ceil(peak.max(1)));
        println!("  len {len:>2} {n:>5}  {bar}");
    }
    println!("matcher layouts:");
    for layout in analysis::matcher_layouts(dict) {
        println!(
            "  {:<13} {:>6} states x {:>3} classes | {:>9} bytes ({:.1} B/state)",
            layout.name,
            layout.states,
            layout.classes,
            layout.memory_bytes,
            layout.bytes_per_state(),
        );
    }
    let Some(input) = args.get("--input") else {
        return Ok(());
    };
    let data = std::fs::read(input).map_err(|e| e.to_string())?;
    let cov = analysis::coverage(dict, &data).map_err(|e| e.to_string())?;
    println!(
        "coverage over {input}: {} lines, {} -> {} bytes (ratio {:.3}), {} escapes",
        cov.lines,
        cov.in_bytes,
        cov.out_bytes,
        cov.ratio(),
        cov.escapes,
    );
    println!(
        "patterns used: {} of {} ({} dead on this deck)",
        cov.total_patterns - cov.dead_patterns,
        cov.total_patterns,
        cov.dead_patterns,
    );
    println!("top symbols by input bytes covered:");
    for (code, pat, uses, covered) in cov.hits.iter().take(10) {
        let code_hex: String = code.iter().map(|b| format!("{b:02x}")).collect();
        let printable: String = pat
            .iter()
            .map(|&b| if b.is_ascii_graphic() { b as char } else { '?' })
            .collect();
        println!("  0x{code_hex:<4} {printable:<16} {uses:>9} uses {covered:>11} B");
    }
    Ok(())
}

/// `serve`: hold a deck open and answer wire clients until a wire
/// shutdown arrives. The bound address is printed (and flushed) first so
/// callers that requested an ephemeral port can read it from stdout.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let path = args.require("--archive")?;
    let addr = args.get("--addr").unwrap_or("127.0.0.1:0");
    let executor = match args.get("--executor").unwrap_or("pooled") {
        "pooled" => Executor::Pooled,
        "threaded" => Executor::Threaded,
        other => return Err(format!("--executor: '{other}' is not pooled|threaded")),
    };
    let opts = ServeOptions {
        max_connections: args.get_usize("--max-conns", 64)?,
        degraded: args.get_bool("--degraded"),
        executor,
        workers: args.get_usize("--workers", 0)?,
        pipeline_depth: args.get_usize("--depth", 64)?.max(1),
        screener: Some(std::sync::Arc::new(vscreen::PocketScreener)),
        ..Default::default()
    };
    let handle = Server::start(Path::new(path), addr, opts).map_err(|e| e.to_string())?;
    let health = handle.health();
    println!(
        "serving {path} ({} lines, generation {}) on {}{}",
        handle.stats().lines,
        handle.generation(),
        handle.addr(),
        if health.ok {
            String::new()
        } else {
            format!(
                " [degraded: {} of {} shard(s) quarantined, {} line(s) unavailable]",
                health.quarantined_shards, health.total_shards, health.unavailable_lines
            )
        }
    );
    use std::io::Write;
    std::io::stdout().flush().ok();
    handle.wait();
    if !args.get_bool("--quiet") {
        println!("server stopped");
    }
    Ok(())
}

/// `query`: one request against a running `serve` process.
fn cmd_query(args: &Args) -> Result<(), String> {
    let addr = args.require("--addr")?;
    let mut client = QueryClient::connect(addr).map_err(|e| e.to_string())?;
    if args.get_bool("--stats") {
        let s = client.stats().map_err(|e| e.to_string())?;
        println!(
            "generation {} | {} lines | {} shard(s) | {} request(s) served | {} flip(s) | \
             {} active connection(s) | {} retired block(s)",
            s.generation,
            s.lines,
            s.shards,
            s.requests,
            s.flips,
            s.active_connections,
            s.retired_blocks,
        );
        return Ok(());
    }
    if args.get_bool("--health") {
        let h = client.health().map_err(|e| e.to_string())?;
        println!(
            "{} | generation {} | {} shard(s), {} quarantined | {} line(s) unavailable",
            if h.ok { "ok" } else { "degraded" },
            h.generation,
            h.total_shards,
            h.quarantined_shards,
            h.unavailable_lines,
        );
        // A degraded deck is a nonzero exit so readiness probes can
        // just run `query --health`.
        return if h.ok {
            Ok(())
        } else {
            Err(format!(
                "deck is degraded: {} shard(s) quarantined",
                h.quarantined_shards
            ))
        };
    }
    if let Some(path) = args.get("--flip") {
        let generation = client.flip(path).map_err(|e| e.to_string())?;
        println!("flipped to generation {generation}");
        return Ok(());
    }
    if args.get_bool("--shutdown") {
        client.shutdown().map_err(|e| e.to_string())?;
        if !args.get_bool("--quiet") {
            println!("server shutting down");
        }
        return Ok(());
    }
    if let Some(k) = args.get("--top-hits") {
        let k: u32 = k
            .parse()
            .map_err(|_| format!("--top-hits: bad count '{k}'"))?;
        let pattern = args.require("--pattern")?;
        let hits = client.top_hits(k, pattern).map_err(|e| e.to_string())?;
        let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
        use std::io::Write;
        for h in &hits {
            writeln!(
                stdout,
                "{}\t{}\t{}",
                h.index,
                h.score(),
                String::from_utf8_lossy(&h.smiles)
            )
            .map_err(|e| e.to_string())?;
        }
        return stdout.flush().map_err(|e| e.to_string());
    }
    let depth = args.get_usize("--depth", 1)?.max(1);
    let lines = if let Some(list) = args.get("--many") {
        let wanted: Vec<u64> = list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("--many: bad line number '{s}'"))
            })
            .collect::<Result<_, String>>()?;
        if depth > 1 {
            client
                .get_many_pipelined(&wanted, depth)
                .map_err(|e| e.to_string())?
        } else {
            client.get_many(&wanted).map_err(|e| e.to_string())?
        }
    } else {
        let line = args.get_u64("--line", 0)?;
        let count = args.get_u64("--count", 1)?.max(1);
        let end = line
            .checked_add(count)
            .ok_or_else(|| "line number overflows".to_string())?;
        client.get_range(line, end).map_err(|e| e.to_string())?
    };
    let mut stdout = std::io::BufWriter::new(std::io::stdout().lock());
    use std::io::Write;
    for smiles in lines {
        writeln!(stdout, "{}", String::from_utf8_lossy(&smiles)).map_err(|e| e.to_string())?;
    }
    stdout.flush().map_err(|e| e.to_string())
}

fn cmd_screen(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let ds = Dataset::load(Path::new(input)).map_err(|e| e.to_string())?;
    let pocket = vscreen::Pocket::from_seed(args.get_u64("--pocket-seed", 0xD0C5EED)?);
    let threads = args.get_usize("--threads", 2)?;
    let top = args.get_usize("--top", 10)?;
    let t0 = Instant::now();
    let scores = vscreen::screen_parallel(&ds, &pocket, threads);
    let dt = t0.elapsed();
    if let Some(path) = args.get("--scores") {
        let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        scores
            .write_tsv(std::io::BufWriter::new(f))
            .map_err(|e| e.to_string())?;
    }
    if !args.get_bool("--quiet") {
        println!(
            "screened {} ligands against pocket {:#x} in {:.2?} (mean score {:.2})",
            ds.len(),
            pocket.seed(),
            dt,
            scores.mean()
        );
        for (i, s) in scores.top_k(top) {
            println!("#{i:>8}  {s:9.2}  {}", String::from_utf8_lossy(ds.line(i)));
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let input = args.require("--input")?;
    let ds = Dataset::load(Path::new(input)).map_err(|e| e.to_string())?;
    println!("{}", stats(&ds).summary());
    Ok(())
}

/// Round-trip one deck through every CLI stage, used by the integration
/// test below (kept here so the binary logic is what gets tested).
#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_cli_round_trip() {
        let smi = tmp("zcli_deck.smi");
        let dct = tmp("zcli_dict.dct");
        let zsmi = tmp("zcli_deck.zsmi");
        let back = tmp("zcli_back.smi");

        run(&argv(&[
            "gen",
            "--profile",
            "gdb17",
            "-n",
            "300",
            "--seed",
            "9",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&["train", "-i", &smi, "-o", &dct, "--quiet"])).unwrap();
        run(&argv(&[
            "compress", "-i", &smi, "-d", &dct, "-o", &zsmi, "--index", "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "decompress",
            "-i",
            &zsmi,
            "-d",
            &dct,
            "-o",
            &back,
            "--quiet",
        ]))
        .unwrap();

        let original = Dataset::load(Path::new(&smi)).unwrap();
        let restored = Dataset::load(Path::new(&back)).unwrap();
        assert_eq!(original.len(), restored.len());
        // Training preprocessed, so restored lines are the renumbered form;
        // they must still be valid SMILES for the same molecules.
        for (a, b) in original.iter().zip(restored.iter()) {
            let ma = smiles::parser::parse(a).unwrap();
            let mb = smiles::parser::parse(b).unwrap();
            assert_eq!(ma.signature(), mb.signature());
        }
        // The compressed file must be smaller.
        let z = std::fs::metadata(&zsmi).unwrap().len();
        let o = std::fs::metadata(&smi).unwrap().len();
        assert!(z < o, "{z} < {o}");
        // Random access via the sidecar.
        run(&argv(&["get", "-i", &zsmi, "-d", &dct, "--line", "42"])).unwrap();

        for f in [&smi, &dct, &zsmi, &back, &format!("{zsmi}.zsx")] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn wide_cli_round_trip() {
        let smi = tmp("zcli_wide.smi");
        let dct = tmp("zcli_wide.wdct");
        let zsmi = tmp("zcli_wide.zsmi");
        let back = tmp("zcli_wide_back.smi");

        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "400",
            "--seed",
            "3",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "train", "-i", &smi, "-o", &dct, "--wide", "64", "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "compress", "-i", &smi, "-d", &dct, "-o", &zsmi, "--index", "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "decompress",
            "-i",
            &zsmi,
            "-d",
            &dct,
            "-o",
            &back,
            "--quiet",
        ]))
        .unwrap();

        let original = Dataset::load(Path::new(&smi)).unwrap();
        let restored = Dataset::load(Path::new(&back)).unwrap();
        assert_eq!(original.len(), restored.len());
        for (a, b) in original.iter().zip(restored.iter()) {
            assert_eq!(
                smiles::parser::parse(a).unwrap().signature(),
                smiles::parser::parse(b).unwrap().signature()
            );
        }
        let z = std::fs::metadata(&zsmi).unwrap().len();
        let o = std::fs::metadata(&smi).unwrap().len();
        assert!(z < o, "{z} < {o}");
        // Random access and inspect against the wide dictionary.
        run(&argv(&["get", "-i", &zsmi, "-d", &dct, "--line", "7"])).unwrap();
        run(&argv(&["inspect", "-d", &dct])).unwrap();
        // Postprocess is a base-only feature; the wide path must refuse.
        assert!(run(&argv(&[
            "decompress",
            "-i",
            &zsmi,
            "-d",
            &dct,
            "-o",
            &back,
            "--postprocess",
            "--quiet"
        ]))
        .is_err());

        for f in [&smi, &dct, &zsmi, &back, &format!("{zsmi}.zsx")] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn pack_unpack_archive_round_trip() {
        for (tag, wide) in [("base", false), ("wide", true)] {
            let smi = tmp(&format!("zcli_pack_{tag}.smi"));
            let dct = tmp(&format!("zcli_pack_{tag}.dct"));
            let zsa = tmp(&format!("zcli_pack_{tag}.zsa"));
            let back = tmp(&format!("zcli_pack_{tag}_back.smi"));

            run(&argv(&[
                "gen",
                "--profile",
                "mixed",
                "-n",
                "250",
                "--seed",
                "17",
                "-o",
                &smi,
                "--quiet",
            ]))
            .unwrap();
            let mut train = vec![
                "train",
                "-i",
                &smi,
                "-o",
                &dct,
                "--no-preprocess",
                "--quiet",
            ];
            if wide {
                train.extend(["--wide", "48"]);
            }
            run(&argv(&train)).unwrap();
            run(&argv(&[
                "pack",
                "-i",
                &smi,
                "-d",
                &dct,
                "-o",
                &zsa,
                "--threads",
                "3",
                "--quiet",
            ]))
            .unwrap();
            run(&argv(&["unpack", "-i", &zsa, "-o", &back, "--quiet"])).unwrap();

            // Preprocess was off, so the round trip is byte-identical.
            assert_eq!(
                std::fs::read(&smi).unwrap(),
                std::fs::read(&back).unwrap(),
                "{tag}: unpack(pack(x)) == x"
            );
            // Random access needs only the single archive file.
            run(&argv(&["get", "--archive", &zsa, "--line", "42"])).unwrap();
            // A consecutive-line loop through the read-ahead cache.
            run(&argv(&[
                "get",
                "--archive",
                &zsa,
                "--line",
                "40",
                "--count",
                "20",
                "--verbose",
            ]))
            .unwrap();
            // The loop must not run past the end of the deck.
            assert!(run(&argv(&[
                "get",
                "--archive",
                &zsa,
                "--line",
                "245",
                "--count",
                "10",
            ]))
            .is_err());
            run(&argv(&[
                "get",
                "--archive",
                &zsa,
                "--line",
                "42",
                "--verify",
            ]))
            .unwrap();
            run(&argv(&["inspect", "--archive", &zsa])).unwrap();
            run(&argv(&["inspect", "--archive", &zsa, "--verbose"])).unwrap();
            // Out-of-range line is an error, not a panic.
            assert!(run(&argv(&["get", "--archive", &zsa, "--line", "9999"])).is_err());

            for f in [&smi, &dct, &zsa, &back] {
                std::fs::remove_file(f).ok();
            }
        }
    }

    #[test]
    fn sharded_pack_round_trip_through_the_manifest() {
        let dir = std::env::temp_dir().join(format!("zcli_shard_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let smi = p("deck.smi");
        let dct = p("deck.dct");
        let zsm = p("deck.zsm");
        let zsa = p("single.zsa");
        let back = p("back.smi");

        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "500",
            "--seed",
            "23",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "train",
            "-i",
            &smi,
            "-o",
            &dct,
            "--no-preprocess",
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "pack",
            "-i",
            &smi,
            "-d",
            &dct,
            "-o",
            &zsm,
            "--shard-lines",
            "150",
            "--threads",
            "2",
            "--quiet",
        ]))
        .unwrap();
        // 500 lines at 150/shard = 4 shard files beside the manifest.
        assert!(std::fs::read_to_string(&zsm)
            .unwrap()
            .starts_with("#zsmiles-shards"));
        for k in 0..4 {
            assert!(dir.join(format!("deck.{k:05}.zsa")).exists(), "shard {k}");
        }

        // get across a shard boundary, with --count spanning two shards.
        run(&argv(&["get", "--archive", &zsm, "--line", "149"])).unwrap();
        run(&argv(&[
            "get",
            "--archive",
            &zsm,
            "--line",
            "145",
            "--count",
            "10",
            "--verbose",
        ]))
        .unwrap();
        run(&argv(&[
            "get",
            "--archive",
            &zsm,
            "--line",
            "0",
            "--verify",
        ]))
        .unwrap();
        assert!(run(&argv(&["get", "--archive", &zsm, "--line", "500"])).is_err());
        assert!(run(&argv(&[
            "get",
            "--archive",
            &zsm,
            "--line",
            "495",
            "--count",
            "10",
        ]))
        .is_err());
        run(&argv(&["inspect", "--archive", &zsm, "--verbose"])).unwrap();

        // Byte-identical unpack, and identical to the single-file layout.
        run(&argv(&[
            "unpack", "-i", &zsm, "-o", &back, "--verify", "--quiet",
        ]))
        .unwrap();
        assert_eq!(std::fs::read(&smi).unwrap(), std::fs::read(&back).unwrap());
        run(&argv(&[
            "pack", "-i", &smi, "-d", &dct, "-o", &zsa, "--quiet",
        ]))
        .unwrap();
        run(&argv(&["unpack", "-i", &zsa, "-o", &back, "--quiet"])).unwrap();
        assert_eq!(std::fs::read(&smi).unwrap(), std::fs::read(&back).unwrap());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_query_over_tcp() {
        let dir = std::env::temp_dir().join(format!("zcli_serve_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let smi = p("deck.smi");
        let dct = p("deck.dct");
        let zsm = p("deck.zsm");
        let next = p("next.zsm");

        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "300",
            "--seed",
            "41",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "train",
            "-i",
            &smi,
            "-o",
            &dct,
            "--no-preprocess",
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "pack",
            "-i",
            &smi,
            "-d",
            &dct,
            "-o",
            &zsm,
            "--shard-lines",
            "100",
            "--quiet",
        ]))
        .unwrap();
        // A generation-stamped deck to flip to (v2 manifest).
        run(&argv(&[
            "pack",
            "-i",
            &smi,
            "-d",
            &dct,
            "-o",
            &next,
            "--shard-lines",
            "100",
            "--generation",
            "7",
            "--quiet",
        ]))
        .unwrap();
        // --generation without a shard budget is refused (nothing to
        // stamp it on).
        assert!(run(&argv(&[
            "pack",
            "-i",
            &smi,
            "-d",
            &dct,
            "-o",
            &p("x.zsa"),
            "--generation",
            "3",
            "--quiet",
        ]))
        .is_err());

        let handle = Server::start(
            Path::new(&zsm),
            "127.0.0.1:0",
            zsmiles_core::ServeOptions::default(),
        )
        .unwrap();
        let addr = handle.addr().to_string();
        run(&argv(&[
            "query", "--addr", &addr, "--line", "5", "--count", "3",
        ]))
        .unwrap();
        run(&argv(&["query", "--addr", &addr, "--many", "0, 99, 299"])).unwrap();
        run(&argv(&["query", "--addr", &addr, "--stats"])).unwrap();
        // Flip to the generation-7 deck, then read through it.
        run(&argv(&["query", "--addr", &addr, "--flip", &next])).unwrap();
        assert_eq!(handle.generation(), 7);
        run(&argv(&["query", "--addr", &addr, "--line", "0"])).unwrap();
        // Flipping back to the unstamped deck assigns generation 8.
        run(&argv(&["query", "--addr", &addr, "--flip", &zsm])).unwrap();
        assert_eq!(handle.generation(), 8);
        // A line past the end is a typed error, not a hang.
        assert!(run(&argv(&["query", "--addr", &addr, "--line", "300"])).is_err());
        run(&argv(&["query", "--addr", &addr, "--shutdown", "--quiet"])).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_preserves_existing_output_on_bad_input_and_refuses_self_pack() {
        let dir = std::env::temp_dir().join(format!("zcli_packsafe_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let smi = p("deck.smi");
        let dct = p("deck.dct");
        let zsa = p("deck.zsa");

        run(&argv(&[
            "gen",
            "--profile",
            "gdb17",
            "-n",
            "80",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&["train", "-i", &smi, "-o", &dct, "--quiet"])).unwrap();
        run(&argv(&[
            "pack", "-i", &smi, "-d", &dct, "-o", &zsa, "--quiet",
        ]))
        .unwrap();
        let archive_bytes = std::fs::read(&zsa).unwrap();

        // A bad input path must not touch the existing archive.
        let missing = p("nope.smi");
        assert!(run(&argv(&[
            "pack", "-i", &missing, "-d", &dct, "-o", &zsa, "--quiet"
        ]))
        .is_err());
        assert_eq!(
            std::fs::read(&zsa).unwrap(),
            archive_bytes,
            "failed pack left the previous archive intact"
        );

        // Packing a file onto itself is refused before any truncation.
        let err = run(&argv(&[
            "pack", "-i", &smi, "-d", &dct, "-o", &smi, "--quiet",
        ]))
        .unwrap_err();
        assert!(err.contains("same file"), "got: {err}");
        assert!(
            std::fs::metadata(&smi).unwrap().len() > 0,
            "input survived the refused self-pack"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_quarantine_and_degraded_serve_round_trip() {
        let dir = std::env::temp_dir().join(format!("zcli_check_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let smi = p("deck.smi");
        let dct = p("deck.dct");
        let zsm = p("deck.zsm");
        let good = p("good.zsm");

        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "300",
            "--seed",
            "17",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "train",
            "-i",
            &smi,
            "-o",
            &dct,
            "--no-preprocess",
            "--quiet",
        ]))
        .unwrap();
        for (deck, generation) in [(&zsm, "1"), (&good, "9")] {
            run(&argv(&[
                "pack",
                "-i",
                &smi,
                "-d",
                &dct,
                "-o",
                deck,
                "--shard-lines",
                "100",
                "--generation",
                generation,
                "--quiet",
            ]))
            .unwrap();
        }

        // A clean deck checks ok.
        run(&argv(&["check", "--archive", &zsm])).unwrap();

        // Corrupt the middle shard's payload; check must fail and name it.
        let victim = dir.join("deck.00001.zsa");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&victim, &bytes).unwrap();
        let err = run(&argv(&["check", "--archive", &zsm])).unwrap_err();
        assert!(err.contains("1 of 3"), "got: {err}");

        // Quarantine the damage; a strict open now refuses the deck
        // (shard file gone), degraded serving carries on without it.
        assert!(run(&argv(&["check", "--archive", &zsm, "--quarantine"])).is_err());
        assert!(dir.join("deck.00001.zsa.quarantined").exists());
        assert!(Server::start(
            Path::new(&zsm),
            "127.0.0.1:0",
            zsmiles_core::ServeOptions::default()
        )
        .is_err());
        let handle = Server::start(
            Path::new(&zsm),
            "127.0.0.1:0",
            zsmiles_core::ServeOptions {
                degraded: true,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = handle.addr().to_string();
        // Health reports degraded (nonzero exit for probes).
        assert!(run(&argv(&["query", "--addr", &addr, "--health"])).is_err());
        // Healthy-shard lines still answer; quarantined lines are typed
        // errors, not hangs.
        run(&argv(&["query", "--addr", &addr, "--line", "5"])).unwrap();
        run(&argv(&["query", "--addr", &addr, "--line", "250"])).unwrap();
        let err = run(&argv(&["query", "--addr", &addr, "--line", "150"])).unwrap_err();
        assert!(err.contains("Unavailable"), "got: {err}");

        // Flip to the repaired generation restores full health.
        run(&argv(&["query", "--addr", &addr, "--flip", &good])).unwrap();
        run(&argv(&["query", "--addr", &addr, "--health"])).unwrap();
        run(&argv(&["query", "--addr", &addr, "--line", "150"])).unwrap();
        run(&argv(&["query", "--addr", &addr, "--shutdown", "--quiet"])).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_samples_caps_and_is_deterministic() {
        let dir = std::env::temp_dir().join(format!("zcli_train_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let smi = p("deck.smi");
        let d1 = p("a.dct");
        let d2 = p("b.dct");
        let dw = p("w.dct");
        let dp = p("paper.dct");

        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "600",
            "--seed",
            "5",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        // Reservoir-sampled, budget-capped training; fixed seed twice
        // writes byte-identical dictionaries.
        for d in [&d1, &d2] {
            run(&argv(&[
                "train",
                "-i",
                &smi,
                "-o",
                d,
                "--sample-lines",
                "200",
                "--seed",
                "11",
                "--max-symbols",
                "40",
                "--quiet",
            ]))
            .unwrap();
        }
        assert_eq!(
            std::fs::read(&d1).unwrap(),
            std::fs::read(&d2).unwrap(),
            "fixed seed => identical dictionary"
        );
        let dict = AnyDictionary::load(Path::new(&d1)).unwrap();
        let AnyDictionary::Base(base) = &dict else {
            panic!("base flavour expected")
        };
        assert!(base.pattern_entries().count() <= 40);

        // Wide flavour through the same subsystem.
        run(&argv(&[
            "train", "-i", &smi, "-o", &dw, "--flavor", "wide", "--wide", "32", "--quiet",
        ]))
        .unwrap();
        assert!(matches!(
            AnyDictionary::load(Path::new(&dw)).unwrap(),
            AnyDictionary::Wide(_)
        ));

        // The paper's Algorithm-1 ranking stays selectable.
        run(&argv(&[
            "train", "-i", &smi, "-o", &dp, "--select", "paper", "--quiet",
        ]))
        .unwrap();
        assert!(matches!(
            AnyDictionary::load(Path::new(&dp)).unwrap(),
            AnyDictionary::Base(_)
        ));
        assert!(run(&argv(&[
            "train", "-i", &smi, "-o", &dp, "--select", "bogus", "--quiet",
        ]))
        .is_err());

        // The stats surface renders for both flavours, with and without a
        // sample deck.
        run(&argv(&["inspect", "-d", &d1, "--dict-stats", "-i", &smi])).unwrap();
        run(&argv(&["inspect", "-d", &dw, "--dict-stats"])).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pack_train_fits_the_embedded_dictionary() {
        let dir = std::env::temp_dir().join(format!("zcli_packtrain_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
        let smi = p("deck.smi");
        let zsa = p("deck.zsa");
        let fitted = p("fitted.dct");
        let back = p("back.smi");

        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "400",
            "--seed",
            "31",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "pack",
            "-i",
            &smi,
            "-o",
            &zsa,
            "--train",
            "--no-preprocess",
            "--dict-out",
            &fitted,
            "--quiet",
        ]))
        .unwrap();
        // The fitted dictionary was saved and is loadable.
        let dict = AnyDictionary::load(Path::new(&fitted)).unwrap();
        assert!(!dict.preprocessed());
        // The archive embeds the same trained dictionary and round-trips.
        run(&argv(&["unpack", "-i", &zsa, "-o", &back, "--quiet"])).unwrap();
        assert_eq!(std::fs::read(&smi).unwrap(), std::fs::read(&back).unwrap());
        run(&argv(&["get", "--archive", &zsa, "--line", "123"])).unwrap();

        // stdin cannot be read twice; --dict conflicts with --train.
        assert!(run(&argv(&[
            "pack", "-i", "-", "-o", &zsa, "--train", "--quiet",
        ]))
        .is_err());
        assert!(run(&argv(&[
            "pack", "-i", &smi, "-o", &zsa, "--train", "-d", &fitted, "--quiet",
        ]))
        .is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_archive_is_rejected() {
        let smi = tmp("zcli_corrupt.smi");
        let dct = tmp("zcli_corrupt.dct");
        let zsa = tmp("zcli_corrupt.zsa");
        run(&argv(&[
            "gen",
            "--profile",
            "gdb17",
            "-n",
            "50",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&["train", "-i", &smi, "-o", &dct, "--quiet"])).unwrap();
        run(&argv(&[
            "pack", "-i", &smi, "-d", &dct, "-o", &zsa, "--quiet",
        ]))
        .unwrap();
        let mut blob = std::fs::read(&zsa).unwrap();
        let mid = blob.len() / 2;
        blob[mid] ^= 0x40;
        std::fs::write(&zsa, &blob).unwrap();
        // The out-of-core reader does not touch the payload unless asked;
        // --verify forces the full CRC pass and must catch the flip.
        let err = run(&argv(&[
            "get",
            "--archive",
            &zsa,
            "--line",
            "0",
            "--verify",
        ]))
        .unwrap_err();
        assert!(
            err.contains("CRC"),
            "corruption detected via CRC, got: {err}"
        );
        // A truncated file fails structurally even without --verify.
        std::fs::write(&zsa, &blob[..blob.len() - 5]).unwrap();
        assert!(run(&argv(&["get", "--archive", &zsa, "--line", "0"])).is_err());
        for f in [&smi, &dct, &zsa] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn inspect_command() {
        let smi = tmp("zcli_inspect.smi");
        let dct = tmp("zcli_inspect.dct");
        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "200",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&["train", "-i", &smi, "-o", &dct, "--quiet"])).unwrap();
        run(&argv(&["inspect", "-d", &dct, "-i", &smi])).unwrap();
        run(&argv(&["inspect", "-d", &dct])).unwrap();
        std::fs::remove_file(&smi).ok();
        std::fs::remove_file(&dct).ok();
    }

    #[test]
    fn stats_command() {
        let smi = tmp("zcli_stats.smi");
        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "50",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&["stats", "-i", &smi])).unwrap();
        std::fs::remove_file(&smi).ok();
    }

    #[test]
    fn screen_command_writes_scores() {
        let smi = tmp("zcli_screen.smi");
        let tsv = tmp("zcli_screen.tsv");
        run(&argv(&[
            "gen",
            "--profile",
            "mixed",
            "-n",
            "120",
            "-o",
            &smi,
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "screen",
            "-i",
            &smi,
            "--pocket-seed",
            "7",
            "--top",
            "3",
            "--scores",
            &tsv,
            "--quiet",
        ]))
        .unwrap();
        let table = vscreen::ScoreTable::read_tsv(std::fs::File::open(&tsv).unwrap()).unwrap();
        assert_eq!(table.len(), 120);
        // Deterministic: re-screening in process gives the same table.
        let ds = Dataset::load(Path::new(&smi)).unwrap();
        let again = vscreen::screen(&ds, &vscreen::Pocket::from_seed(7));
        assert_eq!(table, again);
        std::fs::remove_file(&smi).ok();
        std::fs::remove_file(&tsv).ok();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv(&["bogus"])).is_err());
        assert!(run(&argv(&[
            "gen",
            "--profile",
            "nope",
            "-o",
            "/tmp/x",
            "-n",
            "1"
        ]))
        .is_err());
        assert!(run(&argv(&["train", "-i", "/nonexistent", "-o", "/tmp/x"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&argv(&["help"])).is_ok());
    }

    #[test]
    fn postprocess_flag_renumbers() {
        let smi = tmp("zcli_pp.smi");
        let dct = tmp("zcli_pp.dct");
        let zsmi = tmp("zcli_pp.zsmi");
        let back = tmp("zcli_pp_back.smi");
        std::fs::write(&smi, "C1CC1C2CC2\n").unwrap();
        run(&argv(&["train", "-i", &smi, "-o", &dct, "--quiet"])).unwrap();
        run(&argv(&[
            "compress", "-i", &smi, "-d", &dct, "-o", &zsmi, "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "decompress",
            "-i",
            &zsmi,
            "-d",
            &dct,
            "-o",
            &back,
            "--postprocess",
            "--quiet",
        ]))
        .unwrap();
        let restored = std::fs::read_to_string(&back).unwrap();
        assert_eq!(
            restored.trim(),
            "C1CC1C1CC1",
            "conventional outermost-from-1 IDs"
        );
        for f in [&smi, &dct, &zsmi, &back] {
            std::fs::remove_file(f).ok();
        }
    }
}
