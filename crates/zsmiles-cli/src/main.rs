//! `zsmiles` — command-line interface to the ZSMILES toolkit.
//!
//! ```text
//! zsmiles gen        --profile mixed -n 50000 --seed 42 -o deck.smi
//! zsmiles train      -i deck.smi -o deck.dct [--lmin 2 --lmax 8]
//! zsmiles compress   -i deck.smi -d deck.dct -o deck.zsmi [--threads 8]
//! zsmiles decompress -i deck.zsmi -d deck.dct -o back.smi [--postprocess]
//! zsmiles pack       -i deck.smi -d deck.dct -o deck.zsa [--threads 8]
//! zsmiles unpack     -i deck.zsa -o back.smi
//! zsmiles get        -i deck.zsmi -d deck.dct --line 12345
//! zsmiles get        --archive deck.zsa --line 12345
//! zsmiles stats      -i deck.smi
//! ```
//!
//! Argument parsing is hand-rolled (one less dependency; the grammar is
//! trivially flag–value pairs).

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match zsmiles_cli::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("zsmiles: {e}");
            ExitCode::FAILURE
        }
    }
}
