//! Property tests for the warp primitives: every collective must agree
//! with its scalar reference on arbitrary lane values and masks.

use proptest::prelude::*;
use simt::{launch, Mask, WarpCtx, WarpVec, WARP_SIZE};

fn arb_lanes() -> impl Strategy<Value = [u32; WARP_SIZE]> {
    proptest::array::uniform32(0u32..1000)
}

fn arb_mask() -> impl Strategy<Value = u32> {
    any::<u32>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scan_matches_scalar_prefix_sum(lanes in arb_lanes()) {
        let mut ctx = WarpCtx::new();
        let v = WarpVec(lanes);
        let scanned = ctx.inclusive_scan_add(&v, Mask::ALL);
        let mut acc = 0u32;
        for (i, &lane) in lanes.iter().enumerate() {
            acc += lane;
            prop_assert_eq!(scanned.lane(i), acc, "lane {}", i);
        }
    }

    #[test]
    fn reductions_match_scalar(lanes in arb_lanes(), mask_bits in arb_mask()) {
        let mut ctx = WarpCtx::new();
        let v = WarpVec(lanes);
        let mask = Mask(mask_bits);
        let active: Vec<u32> = (0..WARP_SIZE).filter(|&i| mask.lane(i)).map(|i| lanes[i]).collect();
        prop_assert_eq!(ctx.reduce_add(&v, mask), active.iter().sum::<u32>());
        prop_assert_eq!(ctx.reduce_max(&v, mask), active.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(
            ctx.reduce_min(&v, mask),
            active.iter().copied().min().unwrap_or(u32::MAX)
        );
    }

    #[test]
    fn ballot_matches_predicate(lanes in arb_lanes(), mask_bits in arb_mask(), cut in 0u32..1000) {
        let mut ctx = WarpCtx::new();
        let v = WarpVec(lanes);
        let mask = Mask(mask_bits);
        let m = ctx.ballot(&v, mask, |x| x >= cut);
        for (i, &lane) in lanes.iter().enumerate() {
            prop_assert_eq!(m.lane(i), mask.lane(i) && lane >= cut, "lane {}", i);
        }
    }

    #[test]
    fn shfl_is_a_permutation_read(lanes in arb_lanes(), srcs in proptest::array::uniform32(0u32..64)) {
        let mut ctx = WarpCtx::new();
        let v = WarpVec(lanes);
        let src = WarpVec(srcs);
        let r = ctx.shfl(&v, &src, Mask::ALL);
        for i in 0..WARP_SIZE {
            prop_assert_eq!(r.lane(i), lanes[(srcs[i] as usize) % WARP_SIZE]);
        }
    }

    #[test]
    fn coalescing_counts_are_bounded(offsets in proptest::array::uniform32(0u32..4096)) {
        // Transactions per warp access are between 1 and 32.
        let mut ctx = WarpCtx::new();
        let buf = vec![0u8; 8192];
        let offs = WarpVec(offsets);
        ctx.global_read::<u8>(&buf, &offs, Mask::ALL, |b, o| b[o]);
        let t = ctx.cost.load_transactions;
        prop_assert!((1..=32).contains(&t), "transactions {}", t);
        prop_assert_eq!(ctx.cost.bytes_read, 32);
    }

    /// Grid results and cost accounting are independent of worker count.
    #[test]
    fn launch_determinism(blocks in 1usize..40, seed in any::<u32>()) {
        let run = |workers: usize| {
            launch(blocks, workers, move |ctx, b| {
                let v = WarpVec::from_fn(|i| (i as u32).wrapping_mul(seed) ^ b as u32);
                let s = ctx.warp.inclusive_scan_add(&v, Mask::ALL);
                ctx.warp.reduce_add(&s, Mask::ALL)
            })
        };
        let (r1, c1) = run(1);
        let (r3, c3) = run(3);
        prop_assert_eq!(r1, r3);
        prop_assert_eq!(c1, c3);
    }
}
