//! SIMT execution simulator — the CUDA substitute for this reproduction.
//!
//! No GPU is available in the reproduction environment, so the paper's
//! CUDA implementation (§IV-E) runs on this simulator instead. Two things
//! make the substitution faithful where it matters:
//!
//! 1. **Functional fidelity** — kernels are written warp-synchronously
//!    ([`warp::WarpVec`] vectors, shuffles, ballots, divergence masks) and
//!    produce *byte-identical* output to the serial CPU engine, which the
//!    `zsmiles-gpu` tests pin down.
//! 2. **Cost fidelity** — every warp instruction, shuffle and coalesced
//!    memory transaction is counted ([`cost::CostCounter`]) and priced on
//!    an A100-like roofline ([`device::DeviceProfile`]), including the
//!    host↔device link and the storage bandwidths that the paper
//!    identifies as the real bottleneck ("ZSMILES is memory-bound").
//!
//! The modeled numbers regenerate Fig. 5's *shape* (≈7× compression, ≈2×
//! decompression speedup, flat in Lmax) rather than its absolute
//! milliseconds, exactly as DESIGN.md §2 argues.

pub mod block;
pub mod cost;
pub mod device;
pub mod grid;
pub mod warp;

/// Lanes per warp.
pub const WARP_SIZE: usize = 32;

/// Bytes per coalesced global-memory transaction (a DRAM sector).
pub const TRANSACTION_BYTES: usize = 32;

pub use block::{BlockCtx, SharedMem};
pub use cost::{CostCounter, CostReport};
pub use device::{
    CpuProfile, DeviceProfile, KernelTime, PipelineTime, StorageProfile, A100_LIKE, EPYC_CORE_LIKE,
    SCRATCH_FS,
};
pub use grid::launch;
pub use warp::{Mask, WarpCtx, WarpVec};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_vector_sum() {
        // Sum 0..4096 with 128 blocks of 32 lanes.
        let data: Vec<u32> = (0..4096).collect();
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        let (partials, report) = launch(128, 4, |ctx, b| {
            let base = (b * WARP_SIZE * 4) as u32;
            let offs = WarpVec::from_fn(|i| base + (i * 4) as u32);
            let vals = ctx
                .warp
                .global_read::<u32>(&bytes, &offs, Mask::ALL, |buf, o| {
                    u32::from_le_bytes(buf[o..o + 4].try_into().unwrap())
                });
            ctx.warp.reduce_add(&vals, Mask::ALL)
        });
        let total: u64 = partials.iter().map(|&p| p as u64).sum();
        assert_eq!(total, (0..4096u64).sum::<u64>());
        assert_eq!(report.blocks, 128);
        // 32 lanes × 4 bytes = 128 bytes = 4 sectors per block, coalesced.
        assert_eq!(report.total.load_transactions, 128 * 4);
        // Pricing it on the A100 profile: this is trivially memory-bound.
        let kt = A100_LIKE.kernel_time(&report);
        assert!(kt.is_memory_bound());
    }
}
