//! Block context: one warp plus its shared memory.
//!
//! The paper sets block size = warp size (32), so a block *is* a warp with
//! a scratchpad. Shared memory here is a bump arena reset between blocks;
//! accesses are modeled as ordinary instructions (shared memory runs at
//! register-adjacent latency when, as in these kernels, there are no bank
//! conflicts worth modeling).

use crate::warp::WarpCtx;

/// Shared-memory arena. Typed bump allocation, reset per block.
#[derive(Debug, Default)]
pub struct SharedMem {
    u32_pool: Vec<u32>,
    u8_pool: Vec<u8>,
    u32_used: usize,
    u8_used: usize,
}

impl SharedMem {
    pub fn new() -> Self {
        SharedMem::default()
    }

    /// Allocate `n` zeroed u32 words.
    pub fn alloc_u32(&mut self, n: usize) -> &mut [u32] {
        let start = self.u32_used;
        self.u32_used += n;
        if self.u32_pool.len() < self.u32_used {
            self.u32_pool.resize(self.u32_used, 0);
        }
        let s = &mut self.u32_pool[start..start + n];
        s.fill(0);
        s
    }

    /// Allocate `n` zeroed bytes.
    pub fn alloc_u8(&mut self, n: usize) -> &mut [u8] {
        let start = self.u8_used;
        self.u8_used += n;
        if self.u8_pool.len() < self.u8_used {
            self.u8_pool.resize(self.u8_used, 0);
        }
        let s = &mut self.u8_pool[start..start + n];
        s.fill(0);
        s
    }

    /// Bytes currently allocated (capacity planning: an SM has 164 kB).
    pub fn used_bytes(&self) -> usize {
        self.u32_used * 4 + self.u8_used
    }

    fn reset(&mut self) {
        self.u32_used = 0;
        self.u8_used = 0;
    }
}

/// Execution context handed to a kernel for one block.
#[derive(Debug, Default)]
pub struct BlockCtx {
    pub warp: WarpCtx,
    pub shared: SharedMem,
}

impl BlockCtx {
    pub fn new() -> Self {
        BlockCtx::default()
    }

    /// Reset for the next block: costs zeroed, shared memory recycled.
    pub fn reset(&mut self) {
        self.warp.cost = Default::default();
        self.shared.reset();
    }

    /// Block-level barrier (`__syncthreads`). With one warp per block it
    /// only costs the instruction, but kernels still mark their phases
    /// with it — the cost model charges it and the code documents itself.
    pub fn sync(&mut self) {
        self.warp.cost.syncs += 1;
        self.warp.cost.instructions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_alloc_zeroed_and_reusable() {
        let mut ctx = BlockCtx::new();
        {
            let a = ctx.shared.alloc_u32(8);
            a[0] = 42;
            a[7] = 7;
        }
        let used = ctx.shared.used_bytes();
        assert_eq!(used, 32);
        {
            let b = ctx.shared.alloc_u8(16);
            assert!(b.iter().all(|&x| x == 0));
        }
        assert_eq!(ctx.shared.used_bytes(), 48);
        ctx.reset();
        assert_eq!(ctx.shared.used_bytes(), 0);
        // Fresh allocation after reset is zeroed even though the pool was
        // dirtied before.
        let c = ctx.shared.alloc_u32(8);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn sync_counts() {
        let mut ctx = BlockCtx::new();
        ctx.sync();
        ctx.sync();
        assert_eq!(ctx.warp.cost.syncs, 2);
        ctx.reset();
        assert_eq!(ctx.warp.cost.syncs, 0);
    }
}
