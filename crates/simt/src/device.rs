//! Device profiles: turning cost counters into modeled time.
//!
//! The paper's experimental machine is an AMD EPYC 7282 host with NVIDIA
//! A100 GPUs; [`A100_LIKE`] and [`EPYC_CORE_LIKE`] model those at the
//! granularity the memory-bound analysis needs — peak instruction issue
//! and the three bandwidths that dominate: device DRAM, host↔device link,
//! and the storage the paper identifies as the real bottleneck.

use crate::cost::CostReport;

/// A modeled accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock, GHz.
    pub clock_ghz: f64,
    /// Warp instructions issued per SM per cycle (sustained).
    pub warp_ipc: f64,
    /// Device memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Host↔device transfer bandwidth, GB/s (PCIe/NVLink, effective).
    pub link_bw_gbs: f64,
    /// Fixed kernel-launch overhead, microseconds.
    pub launch_overhead_us: f64,
}

/// NVIDIA A100-like profile (SXM4 40 GB: 108 SMs @ ~1.41 GHz, 1 555 GB/s
/// HBM2e, PCIe 4.0 ×16 effective ~12 GB/s on the paper's host).
pub const A100_LIKE: DeviceProfile = DeviceProfile {
    name: "A100-like",
    sm_count: 108,
    clock_ghz: 1.41,
    warp_ipc: 1.0,
    mem_bw_gbs: 1555.0,
    link_bw_gbs: 12.0,
    launch_overhead_us: 10.0,
};

/// A modeled CPU core (for the serial C++ reference point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuProfile {
    pub name: &'static str,
    pub clock_ghz: f64,
    /// Scalar instructions per cycle (sustained, branchy byte code).
    pub ipc: f64,
    /// Single-core effective memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
}

/// One core of an EPYC-7282-like host (2.8 GHz base, Zen 2).
pub const EPYC_CORE_LIKE: CpuProfile = CpuProfile {
    name: "EPYC-core-like",
    clock_ghz: 2.8,
    ipc: 2.0,
    mem_bw_gbs: 20.0,
};

/// Cold-storage / parallel-filesystem profile. The paper's conclusion —
/// "the bottlenecks are the read-and-write operations on storage" — makes
/// these two numbers the ones every pipeline time shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageProfile {
    pub name: &'static str,
    pub read_bw_gbs: f64,
    pub write_bw_gbs: f64,
}

/// Cold-storage tier of an HPC parallel filesystem, single-stream
/// effective bandwidth. The paper stores screening decks on CINECA
/// Marconi100's project/cold areas; per-stream GPFS throughput there is
/// hundreds of MB/s, not the multi-GB/s aggregate figure — and this is
/// the number that makes ZSMILES "memory-bound" end to end.
pub const SCRATCH_FS: StorageProfile = StorageProfile {
    name: "cold-storage",
    read_bw_gbs: 0.25,
    write_bw_gbs: 0.22,
};

/// Kernel-only time breakdown, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTime {
    pub compute_s: f64,
    pub memory_s: f64,
    pub launch_s: f64,
}

impl KernelTime {
    /// Roofline-style total: compute and memory overlap; launch does not.
    pub fn total_s(&self) -> f64 {
        self.compute_s.max(self.memory_s) + self.launch_s
    }

    pub fn is_memory_bound(&self) -> bool {
        self.memory_s >= self.compute_s
    }
}

/// Full device pipeline: storage → host → device → kernel → device → host
/// → storage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineTime {
    pub read_s: f64,
    pub h2d_s: f64,
    pub kernel_s: f64,
    pub d2h_s: f64,
    pub write_s: f64,
}

impl PipelineTime {
    pub fn total_s(&self) -> f64 {
        self.read_s + self.h2d_s + self.kernel_s + self.d2h_s + self.write_s
    }

    /// Fraction of time spent moving bytes rather than computing.
    pub fn io_fraction(&self) -> f64 {
        let io = self.read_s + self.h2d_s + self.d2h_s + self.write_s;
        if self.total_s() == 0.0 {
            0.0
        } else {
            io / self.total_s()
        }
    }
}

impl DeviceProfile {
    /// Modeled kernel execution time for a cost report.
    ///
    /// Compute: total warp instructions spread over `sm_count` SMs, bounded
    /// below by the single slowest block (tail effect). Memory: DRAM
    /// traffic at transaction granularity over the device bandwidth.
    pub fn kernel_time(&self, report: &CostReport) -> KernelTime {
        let issue_rate = self.sm_count as f64 * self.warp_ipc * self.clock_ghz * 1e9;
        let parallel_s = report.total.instructions as f64 / issue_rate;
        let tail_s = report.max_block_instructions as f64 / (self.warp_ipc * self.clock_ghz * 1e9);
        let compute_s = parallel_s.max(tail_s);
        let memory_s = report.total.dram_bytes() as f64 / (self.mem_bw_gbs * 1e9);
        KernelTime {
            compute_s,
            memory_s,
            launch_s: self.launch_overhead_us * 1e-6,
        }
    }

    /// Modeled end-to-end pipeline time: read `in_bytes` from storage,
    /// ship to the device, run the kernel, ship `out_bytes` back, write.
    pub fn pipeline_time(
        &self,
        report: &CostReport,
        in_bytes: u64,
        out_bytes: u64,
        storage: &StorageProfile,
    ) -> PipelineTime {
        let kt = self.kernel_time(report);
        PipelineTime {
            read_s: in_bytes as f64 / (storage.read_bw_gbs * 1e9),
            h2d_s: in_bytes as f64 / (self.link_bw_gbs * 1e9),
            kernel_s: kt.total_s(),
            d2h_s: out_bytes as f64 / (self.link_bw_gbs * 1e9),
            write_s: out_bytes as f64 / (storage.write_bw_gbs * 1e9),
        }
    }
}

impl CpuProfile {
    /// Modeled serial pipeline: read, compute (measured or modeled
    /// seconds supplied by the caller), write.
    pub fn pipeline_time(
        &self,
        compute_s: f64,
        in_bytes: u64,
        out_bytes: u64,
        storage: &StorageProfile,
    ) -> PipelineTime {
        PipelineTime {
            read_s: in_bytes as f64 / (storage.read_bw_gbs * 1e9),
            h2d_s: 0.0,
            kernel_s: compute_s,
            d2h_s: 0.0,
            write_s: out_bytes as f64 / (storage.write_bw_gbs * 1e9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostCounter, CostReport};

    fn report(instructions: u64, loads: u64, stores: u64, blocks: u64) -> CostReport {
        let mut r = CostReport::default();
        for _ in 0..blocks {
            r.merge_block(&CostCounter {
                instructions: instructions / blocks,
                load_transactions: loads / blocks,
                store_transactions: stores / blocks,
                ..Default::default()
            });
        }
        r
    }

    #[test]
    fn compute_bound_kernel() {
        // Many instructions, no memory traffic.
        let r = report(1_000_000_000, 0, 0, 1000);
        let kt = A100_LIKE.kernel_time(&r);
        assert!(!kt.is_memory_bound());
        assert!(kt.compute_s > 0.0);
        assert_eq!(kt.memory_s, 0.0);
    }

    #[test]
    fn memory_bound_kernel() {
        // Light compute, heavy traffic — the paper's regime.
        let r = report(1_000, 10_000_000, 10_000_000, 1000);
        let kt = A100_LIKE.kernel_time(&r);
        assert!(kt.is_memory_bound());
    }

    #[test]
    fn tail_block_bounds_compute() {
        // One monster block can't be split across SMs.
        let mut r = CostReport::default();
        r.merge_block(&CostCounter {
            instructions: 1_000_000,
            ..Default::default()
        });
        let kt = A100_LIKE.kernel_time(&r);
        let single_sm_s = 1_000_000.0 / (1.41e9);
        assert!((kt.compute_s - single_sm_s).abs() / single_sm_s < 1e-9);
    }

    #[test]
    fn pipeline_io_dominates_small_kernels() {
        let r = report(1_000, 100, 100, 10);
        let pt = A100_LIKE.pipeline_time(&r, 1 << 30, 300 << 20, &SCRATCH_FS);
        assert!(
            pt.io_fraction() > 0.9,
            "storage + PCIe dominate: {}",
            pt.io_fraction()
        );
        // 1 GiB at the profile's read bandwidth.
        let expect = (1u64 << 30) as f64 / (SCRATCH_FS.read_bw_gbs * 1e9);
        assert!((pt.read_s - expect).abs() < 1e-9);
    }

    #[test]
    fn cpu_pipeline_has_no_link_terms() {
        let pt = EPYC_CORE_LIKE.pipeline_time(2.0, 1 << 30, 1 << 28, &SCRATCH_FS);
        assert_eq!(pt.h2d_s, 0.0);
        assert_eq!(pt.d2h_s, 0.0);
        assert!(pt.total_s() > 2.0);
    }

    #[test]
    fn gpu_beats_cpu_when_cpu_compute_dominates() {
        // The Fig. 5 shape: when serial compute is several times the I/O
        // time, the GPU pipeline (compute ≈ 0) wins by about that factor.
        let in_b = 1u64 << 30;
        let out_b = 350u64 << 20;
        let r = report(1_000_000, 1 << 20, 1 << 19, 1 << 15);
        let gpu = A100_LIKE.pipeline_time(&r, in_b, out_b, &SCRATCH_FS);
        let io_s = gpu.read_s + gpu.write_s;
        let cpu = EPYC_CORE_LIKE.pipeline_time(6.0 * io_s, in_b, out_b, &SCRATCH_FS);
        let speedup = cpu.total_s() / gpu.total_s();
        assert!(speedup > 3.0 && speedup < 9.0, "speedup {speedup}");
    }
}
