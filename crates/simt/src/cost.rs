//! Execution cost accounting.
//!
//! Every warp-level operation the simulator executes increments these
//! counters; the [`crate::device`] profiles then convert counts into
//! modeled time. Keeping counting separate from modeling means one
//! simulated run can be priced on several device profiles.

/// Per-warp (= per-block, the paper uses 32-thread blocks) cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounter {
    /// Warp-wide instructions issued (one vector op = one instruction,
    /// regardless of how many lanes are active — SIMT lockstep).
    pub instructions: u64,
    /// Shuffle/ballot-class instructions (a subset of `instructions`,
    /// tracked separately because they execute on the SM's shuffle unit).
    pub shuffles: u64,
    /// Coalesced global-memory load transactions (32-byte sectors).
    pub load_transactions: u64,
    /// Coalesced global-memory store transactions.
    pub store_transactions: u64,
    /// Payload bytes actually read from global memory.
    pub bytes_read: u64,
    /// Payload bytes actually written.
    pub bytes_written: u64,
    /// Block-level barriers.
    pub syncs: u64,
}

impl CostCounter {
    pub fn add(&mut self, other: &CostCounter) {
        self.instructions += other.instructions;
        self.shuffles += other.shuffles;
        self.load_transactions += other.load_transactions;
        self.store_transactions += other.store_transactions;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.syncs += other.syncs;
    }

    /// Total global-memory traffic in bytes, at transaction granularity
    /// (what the DRAM actually moves).
    pub fn dram_bytes(&self) -> u64 {
        (self.load_transactions + self.store_transactions) * crate::TRANSACTION_BYTES as u64
    }
}

/// Aggregated cost of a kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostReport {
    /// Sum over all blocks.
    pub total: CostCounter,
    /// The most expensive single block (bounds the tail).
    pub max_block_instructions: u64,
    /// Number of blocks launched.
    pub blocks: u64,
}

impl CostReport {
    pub fn merge_block(&mut self, c: &CostCounter) {
        self.total.add(c);
        self.max_block_instructions = self.max_block_instructions.max(c.instructions);
        self.blocks += 1;
    }

    pub fn merge(&mut self, other: &CostReport) {
        self.total.add(&other.total);
        self.max_block_instructions = self
            .max_block_instructions
            .max(other.max_block_instructions);
        self.blocks += other.blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add() {
        let mut a = CostCounter {
            instructions: 10,
            shuffles: 2,
            ..Default::default()
        };
        let b = CostCounter {
            instructions: 5,
            load_transactions: 3,
            bytes_read: 96,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.shuffles, 2);
        assert_eq!(a.load_transactions, 3);
        assert_eq!(a.dram_bytes(), 3 * crate::TRANSACTION_BYTES as u64);
    }

    #[test]
    fn report_tracks_max_block() {
        let mut r = CostReport::default();
        r.merge_block(&CostCounter {
            instructions: 10,
            ..Default::default()
        });
        r.merge_block(&CostCounter {
            instructions: 50,
            ..Default::default()
        });
        r.merge_block(&CostCounter {
            instructions: 20,
            ..Default::default()
        });
        assert_eq!(r.blocks, 3);
        assert_eq!(r.total.instructions, 80);
        assert_eq!(r.max_block_instructions, 50);

        let mut r2 = CostReport::default();
        r2.merge_block(&CostCounter {
            instructions: 70,
            ..Default::default()
        });
        r.merge(&r2);
        assert_eq!(r.blocks, 4);
        assert_eq!(r.max_block_instructions, 70);
    }
}
