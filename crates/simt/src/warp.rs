//! Warp-synchronous execution: 32-lane vectors, lockstep operations,
//! shuffles and ballots — the programming model of the paper's CUDA
//! kernels, minus the GPU.
//!
//! Kernels are written in *vector form*: every operation acts on all 32
//! lanes at once under an active-lane mask, exactly how a warp executes.
//! Each [`WarpCtx`] method counts its cost, so a kernel run doubles as a
//! cost-model trace.

use crate::cost::CostCounter;
use crate::{TRANSACTION_BYTES, WARP_SIZE};

/// A per-lane value vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpVec<T>(pub [T; WARP_SIZE]);

impl<T: Copy + Default> Default for WarpVec<T> {
    fn default() -> Self {
        WarpVec([T::default(); WARP_SIZE])
    }
}

impl<T: Copy> WarpVec<T> {
    pub fn splat(v: T) -> Self {
        WarpVec([v; WARP_SIZE])
    }

    pub fn from_fn(f: impl FnMut(usize) -> T) -> Self {
        WarpVec(std::array::from_fn(f))
    }

    pub fn lane(&self, i: usize) -> T {
        self.0[i]
    }
}

/// Active-lane mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask(pub u32);

impl Mask {
    pub const ALL: Mask = Mask(u32::MAX);
    pub const NONE: Mask = Mask(0);

    #[inline]
    pub fn lane(&self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    pub fn any(&self) -> bool {
        self.0 != 0
    }

    pub fn all(&self) -> bool {
        self.0 == u32::MAX
    }

    pub fn and(&self, other: Mask) -> Mask {
        Mask(self.0 & other.0)
    }

    pub fn not(&self) -> Mask {
        Mask(!self.0)
    }

    pub fn from_fn(f: impl FnMut(usize) -> bool) -> Mask {
        let mut m = 0u32;
        for (i, bit) in (0..WARP_SIZE).map(f).enumerate() {
            m |= (bit as u32) << i;
        }
        Mask(m)
    }
}

/// Warp execution context: issues lockstep operations and accounts their
/// cost.
#[derive(Debug, Default)]
pub struct WarpCtx {
    pub cost: CostCounter,
}

impl WarpCtx {
    pub fn new() -> Self {
        WarpCtx::default()
    }

    /// The lane-index vector (0..32). Free, like `threadIdx.x`.
    pub fn lane_id(&self) -> WarpVec<u32> {
        WarpVec::from_fn(|i| i as u32)
    }

    /// One lockstep ALU instruction over one input vector. Inactive lanes
    /// keep their value from `a`.
    #[inline]
    pub fn map<T: Copy, U: Copy + Default>(
        &mut self,
        a: &WarpVec<T>,
        mask: Mask,
        mut f: impl FnMut(T) -> U,
    ) -> WarpVec<U> {
        self.cost.instructions += 1;
        WarpVec::from_fn(|i| {
            if mask.lane(i) {
                f(a.lane(i))
            } else {
                U::default()
            }
        })
    }

    /// One lockstep ALU instruction over two input vectors.
    #[inline]
    pub fn zip<A: Copy, B: Copy, U: Copy + Default>(
        &mut self,
        a: &WarpVec<A>,
        b: &WarpVec<B>,
        mask: Mask,
        mut f: impl FnMut(A, B) -> U,
    ) -> WarpVec<U> {
        self.cost.instructions += 1;
        WarpVec::from_fn(|i| {
            if mask.lane(i) {
                f(a.lane(i), b.lane(i))
            } else {
                U::default()
            }
        })
    }

    /// Predicate evaluation (one instruction) producing a mask — the
    /// `__ballot_sync` idiom.
    pub fn ballot<T: Copy>(
        &mut self,
        a: &WarpVec<T>,
        mask: Mask,
        mut pred: impl FnMut(T) -> bool,
    ) -> Mask {
        self.cost.instructions += 1;
        self.cost.shuffles += 1;
        Mask::from_fn(|i| mask.lane(i) && pred(a.lane(i)))
    }

    /// `__shfl_sync`: every lane reads the value of an arbitrary source
    /// lane.
    pub fn shfl<T: Copy + Default>(
        &mut self,
        v: &WarpVec<T>,
        src: &WarpVec<u32>,
        mask: Mask,
    ) -> WarpVec<T> {
        self.cost.instructions += 1;
        self.cost.shuffles += 1;
        WarpVec::from_fn(|i| {
            if mask.lane(i) {
                v.lane((src.lane(i) as usize) % WARP_SIZE)
            } else {
                T::default()
            }
        })
    }

    /// `__shfl_up_sync`: lane i reads lane i-delta (lanes < delta keep
    /// their own value).
    pub fn shfl_up<T: Copy>(&mut self, v: &WarpVec<T>, delta: usize, mask: Mask) -> WarpVec<T> {
        self.cost.instructions += 1;
        self.cost.shuffles += 1;
        WarpVec::from_fn(|i| {
            if mask.lane(i) && i >= delta {
                v.lane(i - delta)
            } else {
                v.lane(i)
            }
        })
    }

    /// Warp-wide inclusive prefix sum via log₂(32) shuffle-add steps —
    /// the textbook scan the paper's decompression kernel uses to find
    /// per-lane output offsets.
    pub fn inclusive_scan_add(&mut self, v: &WarpVec<u32>, mask: Mask) -> WarpVec<u32> {
        let mut acc = *v;
        let mut delta = 1usize;
        while delta < WARP_SIZE {
            let shifted = self.shfl_up(&acc, delta, mask);
            acc = WarpVec::from_fn(|i| {
                if i >= delta {
                    // u32 adds wrap on the device; mirror that here.
                    acc.lane(i).wrapping_add(shifted.lane(i))
                } else {
                    acc.lane(i)
                }
            });
            self.cost.instructions += 1; // the add
            delta <<= 1;
        }
        acc
    }

    /// Warp-wide reduction (sum) via butterfly shuffles.
    pub fn reduce_add(&mut self, v: &WarpVec<u32>, mask: Mask) -> u32 {
        // 5 shuffle+add steps on hardware.
        self.cost.instructions += 10;
        self.cost.shuffles += 5;
        (0..WARP_SIZE)
            .filter(|&i| mask.lane(i))
            .map(|i| v.lane(i))
            .fold(0u32, u32::wrapping_add)
    }

    /// Warp-wide minimum (u32::MAX when no lane is active).
    pub fn reduce_min(&mut self, v: &WarpVec<u32>, mask: Mask) -> u32 {
        self.cost.instructions += 10;
        self.cost.shuffles += 5;
        (0..WARP_SIZE)
            .filter(|&i| mask.lane(i))
            .map(|i| v.lane(i))
            .min()
            .unwrap_or(u32::MAX)
    }

    /// Warp-wide maximum.
    pub fn reduce_max(&mut self, v: &WarpVec<u32>, mask: Mask) -> u32 {
        self.cost.instructions += 10;
        self.cost.shuffles += 5;
        (0..WARP_SIZE)
            .filter(|&i| mask.lane(i))
            .map(|i| v.lane(i))
            .max()
            .unwrap_or(0)
    }

    /// Coalesced gather from global memory: each active lane loads
    /// `width` bytes at its own byte offset. Transactions are counted per
    /// distinct 32-byte sector touched — adjacent lanes reading adjacent
    /// bytes coalesce into few transactions, scattered reads do not.
    pub fn global_read<T: Copy + Default>(
        &mut self,
        buf: &[u8],
        offsets: &WarpVec<u32>,
        mask: Mask,
        mut load: impl FnMut(&[u8], usize) -> T,
    ) -> WarpVec<T> {
        let width = std::mem::size_of::<T>().max(1);
        self.count_transactions(offsets, width, mask, false);
        self.cost.instructions += 1;
        WarpVec::from_fn(|i| {
            if mask.lane(i) {
                let off = offsets.lane(i) as usize;
                self.cost.bytes_read += width as u64;
                load(buf, off)
            } else {
                T::default()
            }
        })
    }

    /// Coalesced scatter to global memory, mirroring [`Self::global_read`].
    pub fn global_write<T: Copy>(
        &mut self,
        buf: &mut [u8],
        offsets: &WarpVec<u32>,
        values: &WarpVec<T>,
        mask: Mask,
        mut store: impl FnMut(&mut [u8], usize, T),
    ) {
        let width = std::mem::size_of::<T>().max(1);
        self.count_transactions(offsets, width, mask, true);
        self.cost.instructions += 1;
        for i in 0..WARP_SIZE {
            if mask.lane(i) {
                store(buf, offsets.lane(i) as usize, values.lane(i));
                self.cost.bytes_written += width as u64;
            }
        }
    }

    fn count_transactions(
        &mut self,
        offsets: &WarpVec<u32>,
        width: usize,
        mask: Mask,
        store: bool,
    ) {
        // Distinct 32-byte sectors across all active lanes.
        let mut sectors: Vec<u64> = (0..WARP_SIZE)
            .filter(|&i| mask.lane(i))
            .flat_map(|i| {
                let start = offsets.lane(i) as u64;
                let end = start + width as u64;
                (start / TRANSACTION_BYTES as u64)
                    ..=((end.max(start + 1) - 1) / TRANSACTION_BYTES as u64)
            })
            .collect();
        sectors.sort_unstable();
        sectors.dedup();
        let n = sectors.len() as u64;
        if store {
            self.cost.store_transactions += n;
        } else {
            self.cost.load_transactions += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_from_fn() {
        let v = WarpVec::splat(7u32);
        assert_eq!(v.lane(0), 7);
        assert_eq!(v.lane(31), 7);
        let id = WarpVec::from_fn(|i| i as u32 * 2);
        assert_eq!(id.lane(5), 10);
    }

    #[test]
    fn mask_basics() {
        assert!(Mask::ALL.all());
        assert!(!Mask::NONE.any());
        let m = Mask::from_fn(|i| i < 4);
        assert_eq!(m.count(), 4);
        assert!(m.lane(3) && !m.lane(4));
        assert_eq!(m.and(Mask::from_fn(|i| i >= 2)).count(), 2);
        assert_eq!(m.not().count(), 28);
    }

    #[test]
    fn map_zip_respect_mask_and_count() {
        let mut ctx = WarpCtx::new();
        let a = WarpVec::from_fn(|i| i as u32);
        let m = Mask::from_fn(|i| i % 2 == 0);
        let doubled = ctx.map(&a, m, |x| x * 2);
        assert_eq!(doubled.lane(4), 8);
        assert_eq!(doubled.lane(5), 0, "inactive lane defaults");
        let b = WarpVec::splat(10u32);
        let s = ctx.zip(&a, &b, Mask::ALL, |x, y| x + y);
        assert_eq!(s.lane(3), 13);
        assert_eq!(ctx.cost.instructions, 2);
    }

    #[test]
    fn ballot_builds_mask() {
        let mut ctx = WarpCtx::new();
        let a = WarpVec::from_fn(|i| i as u32);
        let m = ctx.ballot(&a, Mask::ALL, |x| x >= 30);
        assert_eq!(m.count(), 2);
        assert!(m.lane(30) && m.lane(31));
        assert_eq!(ctx.cost.shuffles, 1);
    }

    #[test]
    fn shfl_permutes() {
        let mut ctx = WarpCtx::new();
        let v = WarpVec::from_fn(|i| i as u32 * 100);
        let src = WarpVec::splat(3u32); // all lanes read lane 3
        let r = ctx.shfl(&v, &src, Mask::ALL);
        assert!(
            (0..WARP_SIZE).all(|i| r.lane(i) == 300),
            "broadcast from lane 3"
        );
    }

    #[test]
    fn inclusive_scan_matches_reference() {
        let mut ctx = WarpCtx::new();
        let v = WarpVec::from_fn(|i| (i % 3) as u32 + 1);
        let scanned = ctx.inclusive_scan_add(&v, Mask::ALL);
        let mut expect = 0u32;
        for i in 0..WARP_SIZE {
            expect += v.lane(i);
            assert_eq!(scanned.lane(i), expect, "lane {i}");
        }
        assert_eq!(ctx.cost.shuffles, 5, "log2(32) shuffle steps");
    }

    #[test]
    fn reductions() {
        let mut ctx = WarpCtx::new();
        let v = WarpVec::from_fn(|i| i as u32);
        assert_eq!(ctx.reduce_add(&v, Mask::ALL), (0..32).sum::<u32>());
        assert_eq!(ctx.reduce_max(&v, Mask::ALL), 31);
        let m = Mask::from_fn(|i| i < 3);
        assert_eq!(ctx.reduce_add(&v, m), 3);
        assert_eq!(ctx.reduce_max(&v, Mask::NONE), 0);
        assert_eq!(ctx.reduce_min(&v, Mask::ALL), 0);
        assert_eq!(ctx.reduce_min(&v, m), 0);
        assert_eq!(ctx.reduce_min(&v, Mask::NONE), u32::MAX);
    }

    #[test]
    fn coalesced_read_counts_few_transactions() {
        let mut ctx = WarpCtx::new();
        let buf = vec![7u8; 256];
        // Adjacent lanes read adjacent bytes: 32 bytes = 1 sector.
        let offs = WarpVec::from_fn(|i| i as u32);
        ctx.global_read::<u8>(&buf, &offs, Mask::ALL, |b, o| b[o]);
        assert_eq!(ctx.cost.load_transactions, 1, "fully coalesced");
        assert_eq!(ctx.cost.bytes_read, 32);

        // Strided reads: 32 distinct sectors.
        let mut ctx2 = WarpCtx::new();
        let big = vec![0u8; 32 * 64];
        let strided = WarpVec::from_fn(|i| (i * 64) as u32);
        ctx2.global_read::<u8>(&big, &strided, Mask::ALL, |b, o| b[o]);
        assert_eq!(ctx2.cost.load_transactions, 32, "fully scattered");
    }

    #[test]
    fn write_scatter_counts_and_stores() {
        let mut ctx = WarpCtx::new();
        let mut buf = vec![0u8; 64];
        let offs = WarpVec::from_fn(|i| i as u32);
        let vals = WarpVec::from_fn(|i| i as u8);
        ctx.global_write(
            &mut buf,
            &offs,
            &vals,
            Mask::from_fn(|i| i < 8),
            |b, o, v| b[o] = v,
        );
        assert_eq!(&buf[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(buf[8], 0);
        assert_eq!(ctx.cost.bytes_written, 8);
        assert_eq!(ctx.cost.store_transactions, 1);
    }

    #[test]
    fn shfl_up_boundary_lanes_keep_value() {
        let mut ctx = WarpCtx::new();
        let v = WarpVec::from_fn(|i| i as u32);
        let r = ctx.shfl_up(&v, 4, Mask::ALL);
        assert_eq!(r.lane(0), 0);
        assert_eq!(r.lane(3), 3, "lanes < delta keep their own value");
        assert_eq!(r.lane(4), 0);
        assert_eq!(r.lane(31), 27);
    }
}
