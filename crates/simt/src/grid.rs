//! Kernel launch: a grid of independent 32-lane blocks executed across a
//! CPU worker pool, with per-block cost aggregation.
//!
//! The paper's kernels use one warp-sized block per SMILES, so the launch
//! API hands each block its index and a [`BlockCtx`] (warp context plus
//! shared memory); blocks return their own output, which keeps the
//! simulator free of cross-block synchronization — exactly the
//! embarrassing parallelism the workload has.

use crate::block::BlockCtx;
use crate::cost::CostReport;

/// Launch `blocks` blocks of one warp each, running `kernel` for every
/// block, spread over `workers` OS threads. Returns per-block results in
/// block order plus the aggregated cost report.
///
/// Determinism: results and costs are independent of `workers`.
pub fn launch<R, F>(blocks: usize, workers: usize, kernel: F) -> (Vec<R>, CostReport)
where
    R: Send,
    F: Fn(&mut BlockCtx, usize) -> R + Sync,
{
    let workers = workers.max(1);
    if blocks == 0 {
        return (Vec::new(), CostReport::default());
    }
    if workers == 1 || blocks == 1 {
        let mut report = CostReport::default();
        let mut results = Vec::with_capacity(blocks);
        let mut ctx = BlockCtx::new();
        for b in 0..blocks {
            ctx.reset();
            results.push(kernel(&mut ctx, b));
            report.merge_block(&ctx.warp.cost);
        }
        return (results, report);
    }

    // Static chunking: worker w takes blocks [w*chunk, ...). Each worker
    // produces (ordered results, local report); merge in worker order so
    // the aggregate is deterministic.
    let chunk = blocks.div_ceil(workers);
    let mut slots: Vec<Option<(Vec<R>, CostReport)>> = Vec::new();
    for _ in 0..workers {
        slots.push(None);
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let kernel = &kernel;
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(blocks);
            handles.push(scope.spawn(move || {
                let mut report = CostReport::default();
                let mut results = Vec::with_capacity(end.saturating_sub(start));
                let mut ctx = BlockCtx::new();
                for b in start..end {
                    ctx.reset();
                    results.push(kernel(&mut ctx, b));
                    report.merge_block(&ctx.warp.cost);
                }
                (results, report)
            }));
        }
        for (w, h) in handles.into_iter().enumerate() {
            slots[w] = Some(h.join().expect("kernel panicked"));
        }
    });

    let mut results = Vec::with_capacity(blocks);
    let mut report = CostReport::default();
    for slot in slots.into_iter().flatten() {
        let (rs, rep) = slot;
        results.extend(rs);
        report.merge(&rep);
    }
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::{Mask, WarpVec};

    #[test]
    fn empty_grid() {
        let (r, rep) = launch(0, 4, |_ctx, b| b);
        assert!(r.is_empty());
        assert_eq!(rep.blocks, 0);
    }

    #[test]
    fn results_in_block_order() {
        let (r, rep) = launch(100, 7, |_ctx, b| b * 2);
        assert_eq!(r.len(), 100);
        for (i, v) in r.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
        assert_eq!(rep.blocks, 100);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let run = |workers| {
            launch(64, workers, |ctx, b| {
                let v = WarpVec::splat(b as u32);
                let doubled = ctx.warp.map(&v, Mask::ALL, |x| x * 2);
                ctx.warp.reduce_add(&doubled, Mask::ALL)
            })
        };
        let (r1, rep1) = run(1);
        let (r4, rep4) = run(4);
        let (r9, rep9) = run(9);
        assert_eq!(r1, r4);
        assert_eq!(r1, r9);
        assert_eq!(rep1, rep4);
        assert_eq!(rep1, rep9);
    }

    #[test]
    fn cost_aggregates_per_block() {
        let (_, rep) = launch(10, 3, |ctx, b| {
            let v = WarpVec::splat(b as u32);
            // b+1 map instructions in block b.
            for _ in 0..=b {
                ctx.warp.map(&v, Mask::ALL, |x| x + 1);
            }
        });
        // total = 1+2+…+10 = 55; max block = 10.
        assert_eq!(rep.total.instructions, 55);
        assert_eq!(rep.max_block_instructions, 10);
    }

    #[test]
    fn block_ctx_resets_between_blocks() {
        let (r, _) = launch(3, 1, |ctx, _b| {
            ctx.shared.alloc_u32(4)[0] = 7;
            ctx.warp.cost.instructions
        });
        // Cost must start at 0 for each block (reset works).
        assert!(r.iter().all(|&c| c == 0));
    }
}
