//! Shared experiment harness: fixed datasets, option parsing, table
//! rendering.
//!
//! Every table/figure binary uses the same seeded datasets so results are
//! reproducible run-to-run and comparable across experiments. The default
//! scale (20 000 lines per dataset) keeps a full harness run under a
//! minute in release mode; pass `--lines 50000` to match the paper's
//! sample size exactly.

use molgen::{profiles, Dataset};
use zsmiles_core::{CompressStats, Compressor, Dictionary};

/// Common experiment configuration parsed from argv.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Lines per dataset.
    pub lines: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            lines: 20_000,
            seed: 0xC0FFEE,
        }
    }
}

impl ExpConfig {
    /// Parse `--lines N --seed S` (both optional) from argv.
    pub fn from_args() -> ExpConfig {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut cfg = ExpConfig::default();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--lines" => {
                    if let Some(v) = argv.get(i + 1).and_then(|v| v.parse().ok()) {
                        cfg.lines = v;
                    }
                    i += 2;
                }
                "--seed" => {
                    if let Some(v) = argv.get(i + 1).and_then(|v| v.parse().ok()) {
                        cfg.seed = v;
                    }
                    i += 2;
                }
                _ => i += 1,
            }
        }
        cfg
    }
}

/// The four datasets of the paper's evaluation, freshly generated with
/// profile-specific seeds derived from the master seed.
pub struct Decks {
    pub gdb17: Dataset,
    pub mediate: Dataset,
    pub exscalate: Dataset,
    pub mixed: Dataset,
}

impl Decks {
    pub fn generate(cfg: &ExpConfig) -> Decks {
        Decks {
            gdb17: Dataset::generate(profiles::GDB17, cfg.lines, cfg.seed),
            mediate: Dataset::generate(profiles::MEDIATE, cfg.lines, cfg.seed.wrapping_add(1)),
            exscalate: Dataset::generate(profiles::EXSCALATE, cfg.lines, cfg.seed.wrapping_add(2)),
            // Distinct seed space so MIXED is not the union of the above
            // (matching the paper, where MIXED takes the first million of
            // each library while tests sample elsewhere).
            mixed: Dataset::generate_mixed(cfg.lines, cfg.seed.wrapping_add(100)),
        }
    }

    pub fn by_name(&self, name: &str) -> &Dataset {
        match name {
            "GDB-17" => &self.gdb17,
            "MEDIATE" => &self.mediate,
            "EXSCALATE" => &self.exscalate,
            "MIXED" => &self.mixed,
            _ => panic!("unknown deck {name}"),
        }
    }

    pub const NAMES: [&'static str; 4] = ["GDB-17", "MEDIATE", "EXSCALATE", "MIXED"];
}

/// Compress a whole dataset with a dictionary; returns the stats.
pub fn compress_dataset(dict: &Dictionary, ds: &Dataset) -> CompressStats {
    let mut out = Vec::with_capacity(ds.total_bytes() / 2);
    Compressor::new(dict).compress_buffer(ds.as_bytes(), &mut out)
}

/// Render one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// An ASCII bar for figure-style output, scaled to `width` chars at 1.0.
pub fn bar(value: f64, width: usize) -> String {
    let n = (value.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!(
        "{:#<n$}{:.<rest$}",
        "",
        "",
        n = n,
        rest = width.saturating_sub(n)
    )
}

/// Machine-readable result line (consumed when updating EXPERIMENTS.md).
pub fn emit_datum(experiment: &str, key: &str, value: f64) {
    println!("@DATA {experiment} {key} {value:.4}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decks_generate_and_differ() {
        let cfg = ExpConfig { lines: 50, seed: 7 };
        let d = Decks::generate(&cfg);
        assert_eq!(d.gdb17.len(), 50);
        assert_eq!(d.mixed.len(), 50);
        assert_ne!(d.gdb17.as_bytes(), d.mediate.as_bytes());
        for name in Decks::NAMES {
            assert_eq!(d.by_name(name).len(), 50);
        }
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(0.0, 10).len(), 10);
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
