//! **Ablation** — dictionary selection strategy (DESIGN.md §4): the
//! paper's Eq. (1) rank (`occ × (len − overlap)`) vs naive `occ × len` vs
//! coverage re-counting, across training times and achieved ratios.

use bench::{compress_dataset, emit_datum, row, Decks, ExpConfig};
use std::time::Instant;
use zsmiles_core::{DictBuilder, RankStrategy};

fn main() {
    let cfg = ExpConfig::from_args();
    let decks = Decks::generate(&cfg);
    let deck = &decks.mixed;

    println!(
        "Ablation: rank strategy for dictionary selection (MIXED, {} lines)\n",
        deck.len()
    );
    let widths = [18usize, 10, 12, 12];
    println!(
        "{}",
        row(
            &[
                "strategy".into(),
                "ratio".into(),
                "train time".into(),
                "patterns".into()
            ],
            &widths
        )
    );

    for rank in [
        RankStrategy::PaperOverlap,
        RankStrategy::FreqTimesLen,
        RankStrategy::CoverageRecount,
    ] {
        let builder = DictBuilder {
            rank,
            ..Default::default()
        };
        let t0 = Instant::now();
        let dict = builder.train(deck.iter()).expect("training succeeds");
        let train_s = t0.elapsed().as_secs_f64();
        let stats = compress_dataset(&dict, deck);
        println!(
            "{}",
            row(
                &[
                    rank.name().into(),
                    format!("{:.3}", stats.ratio()),
                    format!("{train_s:.2}s"),
                    dict.pattern_entries().count().to_string(),
                ],
                &widths
            )
        );
        emit_datum("ablation_rank", rank.name(), stats.ratio());
    }
}
