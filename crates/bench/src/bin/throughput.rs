//! Throughput harness: the recorded trajectory every perf PR appends to.
//!
//! Times the paper's Fig. 3 fast path end to end on a seeded molgen deck —
//! serial encode through *all three* matchers (the byte-class
//! `CompactAutomaton` hot path — per-line and through the fused batched
//! DP — the flat `DenseAutomaton`, and the node-`Trie` reference,
//! measured in the same run so every speedup is an observation, not a
//! claim — on the base *and* wide flavours), worker-pool parallel encode
//! and decode, serial decode,
//! streaming pack through the out-of-core `ArchiveWriter` (single-file,
//! sharded-serial, and sharded-parallel — cross-shard jobs on the worker
//! pool, byte-identical to the serial pack, against real files), and
//! random `get()` against a real on-disk `.zsa` through all three read
//! paths: plain file I/O, zero-copy `MmapSource`, and the shared sharded
//! `BlockCache` — plus the *served* read path: a live `zsmiles-serve`
//! process on a loopback TCP socket, random gets from 1 / 8 / 64
//! concurrent clients with throughput and p50/p99 tail latency per
//! level — plus the robustness paths: the `check` deep verify (open +
//! CRC + full decode of every shard) as an MB/s rate, and the served
//! random-get rate with one shard quarantined (degraded mode) next to
//! the healthy rate on the same surviving lines, so degraded dispatch
//! overhead is a measured number — and writes the numbers (MB/s and
//! ns/op) as JSON. It also records the *dictionary fitting* story: the
//! compression ratio of the shipped `default.dct` on this deck next to a
//! dictionary trained on the deck itself through `train::BaseBuilder`
//! (cost-guided selection on a seeded reservoir sample), asserting the
//! trained dictionary never loses on its own corpus.
//!
//! ```text
//! cargo run --release -p bench --bin throughput -- \
//!     [--lines 50000] [--seed 12648430] [--threads N] [--reps 3] \
//!     [--gets 20000] [--out BENCH_10.json]
//! ```
//!
//! Every measurement is best-of-`reps` wall time (per-rep byte counts are
//! identical by construction, so best-of is the least-noise estimator).
//! The run also *asserts* the identities the numbers depend on: both
//! matchers emit byte-identical streams on both flavours, parallel output
//! equals serial output, decode restores the deck, mmap-backed and
//! cache-backed reads return exactly the file-backed bytes, and the
//! parallel sharded pack's files are byte-identical to the serial pack's.

use molgen::Dataset;
use std::sync::Arc;
use std::time::Instant;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::serve::{Executor, QueryClient, Request, ServeOptions, Server};
use zsmiles_core::train::{BaseBuilder, DictBuilder as _, TrainCorpus};
use zsmiles_core::{
    compress_parallel_dyn, decompress_parallel_dyn, ArchiveReader, ArchiveWriter, BlockCache,
    CachedSource, Compressor, Decompressor, DictBuilder, Dictionary, FileSink, FileSource,
    MatcherKind, MmapSource, ShardPolicy, ShardedReader, ShardedWriter, TrainOptions,
    WideCompressor, WideDictBuilder, WriterOptions,
};

struct Opts {
    lines: usize,
    seed: u64,
    threads: usize,
    reps: usize,
    gets: usize,
    out: String,
}

fn parse_opts() -> Opts {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut o = Opts {
        lines: 50_000,
        seed: 0xC0FFEE,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        reps: 3,
        gets: 20_000,
        out: "BENCH_10.json".to_string(),
    };
    let mut i = 0;
    while i < argv.len() {
        let val = argv.get(i + 1);
        match argv[i].as_str() {
            "--lines" => o.lines = val.and_then(|v| v.parse().ok()).unwrap_or(o.lines),
            "--seed" => o.seed = val.and_then(|v| v.parse().ok()).unwrap_or(o.seed),
            "--threads" => o.threads = val.and_then(|v| v.parse().ok()).unwrap_or(o.threads),
            "--reps" => o.reps = val.and_then(|v| v.parse().ok()).unwrap_or(o.reps),
            "--gets" => o.gets = val.and_then(|v| v.parse().ok()).unwrap_or(o.gets),
            "--out" => o.out = val.cloned().unwrap_or(o.out),
            _ => {
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    o.reps = o.reps.max(1);
    o
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// One measurement: throughput relative to `bytes` payload over `lines`.
struct Rate {
    mb_per_s: f64,
    ns_per_line: f64,
}

fn rate(bytes: usize, lines: usize, secs: f64) -> Rate {
    Rate {
        mb_per_s: bytes as f64 / 1e6 / secs,
        ns_per_line: secs * 1e9 / lines.max(1) as f64,
    }
}

fn json_rate(name: &str, r: &Rate) -> String {
    format!(
        "  \"{name}\": {{ \"mb_per_s\": {:.2}, \"ns_per_line\": {:.1} }}",
        r.mb_per_s, r.ns_per_line
    )
}

fn main() {
    let o = parse_opts();
    eprintln!(
        "throughput: {} lines, seed {:#x}, {} threads, best of {} rep(s)",
        o.lines, o.seed, o.threads, o.reps
    );

    let deck = Dataset::generate_mixed(o.lines, o.seed);
    let input = deck.as_bytes().to_vec();
    let payload: usize = deck.payload_bytes();

    // Preprocessing off: the harness times the codec (matcher walk + DP +
    // emit / table expand), not the SMILES ring renumberer.
    let dict = DictBuilder {
        preprocess: false,
        ..Default::default()
    }
    .train(deck.iter())
    .expect("training the base dictionary");
    let wide = WideDictBuilder {
        base: DictBuilder {
            preprocess: false,
            ..Default::default()
        },
        wide_size: 64,
    }
    .train(deck.iter())
    .expect("training the wide dictionary");

    // ---- identity assertions the measurements rely on --------------------
    // The default encoder is the compact automaton through the fused
    // batched DP; pin its bytes against the dense automaton and the node
    // trie in this run, so the speedup rows below compare identical work.
    let mut z_enc = Vec::new();
    let stats = Compressor::new(&dict).compress_buffer(&input, &mut z_enc);
    let mut z_dense = Vec::new();
    Compressor::new(&dict)
        .with_matcher(MatcherKind::DenseAutomaton)
        .compress_buffer(&input, &mut z_dense);
    assert_eq!(z_enc, z_dense, "compact automaton ≠ dense automaton output");
    let mut z_node = Vec::new();
    Compressor::new(&dict)
        .with_matcher(MatcherKind::NodeTrie)
        .compress_buffer(&input, &mut z_node);
    assert_eq!(z_enc, z_node, "compact automaton ≠ node trie output");

    let any = AnyDictionary::Base(Box::new(dict.clone()));
    let (z_par, _) = compress_parallel_dyn(&any, &input, o.threads);
    assert_eq!(z_par, z_enc, "parallel ≠ serial (base)");

    let any_wide = AnyDictionary::Wide(Box::new(wide));
    let mut zw_serial = Vec::new();
    {
        let mut enc = zsmiles_core::WideCompressor::new(match &any_wide {
            AnyDictionary::Wide(w) => w,
            _ => unreachable!(),
        });
        enc.compress_buffer(&input, &mut zw_serial);
    }
    let (zw_par, _) = compress_parallel_dyn(&any_wide, &input, o.threads);
    assert_eq!(zw_par, zw_serial, "parallel ≠ serial (wide)");

    // The wide flavour walks its own compact automaton now; the dense
    // automaton and the node trie stay the references it is pinned
    // against.
    for kind in [MatcherKind::DenseAutomaton, MatcherKind::NodeTrie] {
        let AnyDictionary::Wide(w) = &any_wide else {
            unreachable!()
        };
        let mut zw_other = Vec::new();
        WideCompressor::new(w)
            .with_matcher(kind)
            .compress_buffer(&input, &mut zw_other);
        assert_eq!(zw_other, zw_serial, "wide compact automaton ≠ {kind:?}");
    }

    let mut back = Vec::new();
    Decompressor::new(&dict)
        .decompress_buffer(&z_enc, &mut back)
        .expect("decode");
    assert_eq!(back, input, "decode does not restore the deck");

    // ---- measurements ----------------------------------------------------
    let mut out_buf = Vec::with_capacity(z_enc.len() + 16);
    let enc_node = time_best(o.reps, || {
        out_buf.clear();
        Compressor::new(&dict)
            .with_matcher(MatcherKind::NodeTrie)
            .compress_buffer(&input, &mut out_buf);
    });
    let enc_dense = time_best(o.reps, || {
        out_buf.clear();
        Compressor::new(&dict)
            .with_matcher(MatcherKind::DenseAutomaton)
            .compress_buffer(&input, &mut out_buf);
    });
    // The compact matcher through the one-line entry point — same table,
    // fusion off — so the batched DP's own contribution is a measured
    // delta, not folded into the layout's.
    let enc_compact_lines = time_best(o.reps, || {
        out_buf.clear();
        let mut c = Compressor::new(&dict);
        for line in input.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            c.compress_line(line, &mut out_buf);
            out_buf.push(b'\n');
        }
    });
    // The production default: compact matcher + fused batched DP.
    let enc_batched = time_best(o.reps, || {
        out_buf.clear();
        Compressor::new(&dict).compress_buffer(&input, &mut out_buf);
    });
    let enc_par = time_best(o.reps, || {
        let _ = compress_parallel_dyn(&any, &input, o.threads);
    });
    let wide_enc_batched = time_best(o.reps, || {
        let AnyDictionary::Wide(w) = &any_wide else {
            unreachable!()
        };
        out_buf.clear();
        WideCompressor::new(w).compress_buffer(&input, &mut out_buf);
    });
    let wide_enc_dense = time_best(o.reps, || {
        let AnyDictionary::Wide(w) = &any_wide else {
            unreachable!()
        };
        out_buf.clear();
        WideCompressor::new(w)
            .with_matcher(MatcherKind::DenseAutomaton)
            .compress_buffer(&input, &mut out_buf);
    });
    let wide_enc_node = time_best(o.reps, || {
        let AnyDictionary::Wide(w) = &any_wide else {
            unreachable!()
        };
        out_buf.clear();
        WideCompressor::new(w)
            .with_matcher(MatcherKind::NodeTrie)
            .compress_buffer(&input, &mut out_buf);
    });
    let mut back_buf = Vec::with_capacity(input.len() + 16);
    let dec_serial = time_best(o.reps, || {
        back_buf.clear();
        Decompressor::new(&dict)
            .decompress_buffer(&z_enc, &mut back_buf)
            .expect("decode");
    });
    let dec_par = time_best(o.reps, || {
        let _ = decompress_parallel_dyn(&any, &z_enc, o.threads).expect("decode");
    });

    // Streaming pack through the out-of-core writer, single-file and
    // sharded, against real files — the end-to-end "deck to container"
    // rate (compress + index + write), what a pack job actually sustains.
    let tmp = std::env::temp_dir().join(format!("zsmiles_throughput_pack_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("creating the pack scratch dir");
    let single_path = tmp.join("deck.zsa");
    let pack_single = time_best(o.reps, || {
        let sink = FileSink::create(&single_path).expect("creating the pack sink");
        let mut w = ArchiveWriter::with_options(
            sink,
            any.clone(),
            WriterOptions {
                threads: o.threads,
                ..Default::default()
            },
        )
        .expect("starting the streaming writer");
        w.write(&input).expect("streaming the deck");
        let (_, info) = w.finish().expect("finalizing the container");
        assert_eq!(info.lines, o.lines, "streamed pack stores every line");
    });
    // Sharded pack, serial (threads = 1 streams one shard at a time) and
    // parallel (cross-shard jobs on the worker pool) — each into its own
    // directory so the outputs can be compared file-for-file.
    let shard_lines = (o.lines / 8).max(1) as u64;
    let serial_dir = tmp.join("serial");
    let par_dir = tmp.join("par");
    std::fs::create_dir_all(&serial_dir).expect("creating the serial shard dir");
    std::fs::create_dir_all(&par_dir).expect("creating the parallel shard dir");
    let manifest_path = serial_dir.join("deck.zsm");
    let par_manifest_path = par_dir.join("deck.zsm");
    let pack_shards = |manifest: &std::path::Path, threads: usize| {
        let mut w = ShardedWriter::create(
            manifest,
            any.clone(),
            ShardPolicy::by_lines(shard_lines),
            WriterOptions {
                threads,
                ..Default::default()
            },
        )
        .expect("starting the sharded writer");
        w.write(&input).expect("streaming the deck");
        let info = w.finish().expect("finalizing the shards");
        assert_eq!(
            info.lines as usize, o.lines,
            "sharded pack stores every line"
        );
        info
    };
    let par_threads = o.threads.max(4);
    let pack_sharded = time_best(o.reps, || {
        pack_shards(&manifest_path, 1);
    });
    let mut par_info = None;
    let pack_sharded_par = time_best(o.reps, || {
        par_info = Some(pack_shards(&par_manifest_path, par_threads));
    });
    let par_info = par_info.expect("at least one parallel rep ran");
    // The parallel pack is byte-identical to the serial pack: same
    // manifest, same shard files, bit for bit.
    assert_eq!(
        std::fs::read(&manifest_path).expect("serial manifest"),
        std::fs::read(&par_manifest_path).expect("parallel manifest"),
        "parallel sharded manifest ≠ serial"
    );
    for shard in &par_info.shards {
        assert_eq!(
            std::fs::read(serial_dir.join(&shard.file)).expect("serial shard"),
            std::fs::read(par_dir.join(&shard.file)).expect("parallel shard"),
            "parallel shard {} ≠ serial",
            shard.file
        );
    }
    // The sharded layout must read back identically to the single file.
    {
        let single = ArchiveReader::open(&single_path).expect("opening the single pack");
        let sharded = ShardedReader::open(&manifest_path).expect("opening the manifest");
        assert_eq!(single.len(), sharded.len());
        for i in [0usize, o.lines / 2, o.lines - 1] {
            assert_eq!(
                single.get(i).expect("single get"),
                sharded.get(i).expect("sharded get"),
                "sharded ≠ single at line {i}"
            );
        }
    }

    // ---- dictionary fitting: shipped default vs trained-on-deck ----------
    // The paper's shared-dictionary story says one `.dct` serves any deck;
    // the train subsystem's story is that fitting it to *this* deck can
    // only help. Record both ratios (same deck, each dictionary with its
    // own preprocessing setting) and hold the trained one to it.
    let t_train = Instant::now();
    let sample = TrainCorpus::sample(&input[..], 2048, o.seed).expect("sampling the deck");
    let trained_any = BaseBuilder {
        opts: TrainOptions {
            sample_lines: 2048,
            seed: o.seed,
            ..TrainOptions::default()
        },
    }
    .train(&sample)
    .expect("training on the deck")
    .into_dictionary()
    .expect("base model");
    let train_secs = t_train.elapsed().as_secs_f64();
    let AnyDictionary::Base(trained_dict) = &trained_any else {
        unreachable!()
    };
    let mut z_default = Vec::new();
    let default_stats =
        Compressor::new(Dictionary::builtin()).compress_buffer(&input, &mut z_default);
    let mut z_trained = Vec::new();
    let trained_stats = Compressor::new(trained_dict).compress_buffer(&input, &mut z_trained);
    assert!(
        trained_stats.ratio() <= default_stats.ratio() + 1e-9,
        "trained dictionary ({:.4}) must not lose to default.dct ({:.4}) on its own corpus",
        trained_stats.ratio(),
        default_stats.ratio()
    );

    // Random access against a real file through the out-of-core reader.
    let zsa = std::env::temp_dir().join(format!("zsmiles_throughput_{}.zsa", std::process::id()));
    zsmiles_core::Archive::pack(any.clone(), &input, o.threads)
        .save(&zsa)
        .expect("packing the archive");
    let reader = ArchiveReader::open(&zsa).expect("opening the archive");
    // Seeded xorshift so the access pattern is reproducible.
    let mut state = o.seed | 1;
    let mut order = Vec::with_capacity(o.gets);
    for _ in 0..o.gets {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.push((state % deck.len().max(1) as u64) as usize);
    }
    let get_secs = time_best(o.reps, || {
        for &i in &order {
            let line = reader.get(i).expect("random get");
            std::hint::black_box(&line);
        }
    });

    // The same access pattern through the zero-copy mmap read path. On
    // platforms without the mmap binding this transparently measures the
    // file-backed fallback (bytes_mapped reports 0 there).
    let mmap_reader = ArchiveReader::from_source(MmapSource::open(&zsa).expect("mapping the file"))
        .expect("opening the mapped archive");
    for &i in order.iter().take(512) {
        assert_eq!(
            mmap_reader.get(i).expect("mmap get"),
            reader.get(i).expect("file get"),
            "mmap read ≠ file read at line {i}"
        );
    }
    let mmap_get_secs = time_best(o.reps, || {
        for &i in &order {
            let line = mmap_reader.get(i).expect("mmap random get");
            std::hint::black_box(&line);
        }
    });
    let bytes_mapped = mmap_reader.source().bytes_mapped();
    drop(mmap_reader);

    // And through the shared sharded block cache (a private pool so the
    // hit/miss numbers are this run's alone). After the first sweep the
    // archive is resident, so the steady-state rate is mostly hits.
    let cache = Arc::new(BlockCache::new(64 << 10, 32 << 20));
    let cached_reader = ArchiveReader::from_source(CachedSource::with_cache(
        FileSource::open(&zsa).expect("reopening the archive"),
        Arc::clone(&cache),
    ))
    .expect("opening the cached archive");
    for &i in order.iter().take(512) {
        assert_eq!(
            cached_reader.get(i).expect("cached get"),
            reader.get(i).expect("file get"),
            "cached read ≠ file read at line {i}"
        );
    }
    let cached_get_secs = time_best(o.reps, || {
        for &i in &order {
            let line = cached_reader.get(i).expect("cached random get");
            std::hint::black_box(&line);
        }
    });
    let (cache_hits, cache_misses) = (
        cached_reader.source().hits(),
        cached_reader.source().misses(),
    );
    let cache_hit_rate = cache.stats().hit_rate().unwrap_or(0.0);
    drop(cached_reader);

    // ---- concurrent serving: random gets over loopback TCP ---------------
    // The same access pattern through a live `zsmiles-serve` process:
    // throughput and tail latency at 1 / 8 / 64 / 256 concurrent
    // clients, under both executors (the poll(2)+worker-pool event loop
    // and the legacy thread-per-connection model), at pipeline depth 1
    // (one request in flight per connection — the PR 9 protocol) and
    // depth 16 (pipelined). Every cell splits the same total op budget,
    // so the rows compare aggregate service rates at equal work.
    // Pipelined latency is measured submission-to-response, so it
    // includes time queued in the client's own window.
    let serve_rows = {
        let mut rows: Vec<(&str, usize, usize, usize, f64, u64, u64)> = Vec::new();
        for (exec_name, executor) in [
            ("threaded", Executor::Threaded),
            ("pooled", Executor::Pooled),
        ] {
            let handle = Server::start(
                &zsa,
                "127.0.0.1:0",
                ServeOptions {
                    max_connections: 300,
                    executor,
                    ..Default::default()
                },
            )
            .expect("starting the query server");
            let addr = handle.addr();
            // Byte-identity spot check: served reads are direct reads,
            // sequentially and pipelined.
            {
                let mut c = QueryClient::connect(addr).expect("connecting the check client");
                for &i in order.iter().take(256) {
                    assert_eq!(
                        c.get(i as u64).expect("served get"),
                        reader.get(i).expect("file get"),
                        "served read ≠ direct read at line {i} ({exec_name})"
                    );
                }
                let picks: Vec<u64> = order.iter().take(256).map(|&i| i as u64).collect();
                let piped = c
                    .get_many_pipelined(&picks, 16)
                    .expect("pipelined spot check");
                for (&i, bytes) in picks.iter().zip(&piped) {
                    assert_eq!(
                        *bytes,
                        reader.get(i as usize).expect("file get"),
                        "pipelined read ≠ direct read at line {i} ({exec_name})"
                    );
                }
            }
            for &clients in &[1usize, 8, 64, 256] {
                for &depth in &[1usize, 16] {
                    let per_client = (o.gets / clients).max(1);
                    let total_ops = per_client * clients;
                    let mut best_wall = f64::INFINITY;
                    let mut latencies: Vec<u64> = Vec::new();
                    for _ in 0..o.reps {
                        let t0 = Instant::now();
                        let mut rep_lat: Vec<u64> = Vec::with_capacity(total_ops);
                        std::thread::scope(|scope| {
                            let workers: Vec<_> = (0..clients)
                                .map(|w| {
                                    let order = &order;
                                    scope.spawn(move || {
                                        let mut c = QueryClient::connect(addr)
                                            .expect("bench client connect");
                                        let mut pipe = c.pipeline(depth);
                                        let mut lat = Vec::with_capacity(per_client);
                                        let mut submitted =
                                            std::collections::VecDeque::with_capacity(depth);
                                        for k in 0..per_client {
                                            let i = order[(w * per_client + k) % order.len()];
                                            submitted.push_back(Instant::now());
                                            if let Some(resp) = pipe
                                                .send(&Request::Get { line: i as u64 })
                                                .expect("pipelined send")
                                            {
                                                let t: Instant =
                                                    submitted.pop_front().expect("submit time");
                                                lat.push(t.elapsed().as_nanos() as u64);
                                                std::hint::black_box(&resp);
                                            }
                                        }
                                        while let Some(resp) = pipe.recv().expect("pipelined drain")
                                        {
                                            let t: Instant =
                                                submitted.pop_front().expect("submit time");
                                            lat.push(t.elapsed().as_nanos() as u64);
                                            std::hint::black_box(&resp);
                                        }
                                        lat
                                    })
                                })
                                .collect();
                            for w in workers {
                                rep_lat.extend(w.join().expect("bench client thread"));
                            }
                        });
                        let wall = t0.elapsed().as_secs_f64();
                        if wall < best_wall {
                            best_wall = wall;
                            latencies = rep_lat;
                        }
                    }
                    latencies.sort_unstable();
                    let pct = |p: usize| latencies[(latencies.len() - 1) * p / 100];
                    rows.push((
                        exec_name,
                        clients,
                        depth,
                        total_ops,
                        total_ops as f64 / best_wall,
                        pct(50),
                        pct(99),
                    ));
                }
            }
            handle.shutdown();
        }
        rows
    };

    // ---- deep verify: the fsck walk as a rate -----------------------------
    // What `zsmiles check` performs per shard: open, CRC sweep, and a
    // full decode of every line — the cost of trusting a deck again.
    let verify_secs = time_best(o.reps, || {
        let report = zsmiles_core::check_deck(&manifest_path).expect("checking the deck");
        assert!(report.is_ok(), "bench deck is sound");
    });
    let r_verify = rate(payload, o.lines, verify_secs);

    // ---- degraded-mode dispatch overhead ----------------------------------
    // Quarantine the last shard of the serial sharded deck and re-measure
    // the single-client served random-get rate on the *surviving* lines,
    // against the healthy rate on the same lines: the ratio is the cost
    // of the degraded routing (the quarantined-shard bounds check plus
    // the Option indirection), not of the missing data.
    let shards = &par_info.shards;
    assert!(
        shards.len() >= 2,
        "degraded bench needs at least two shards"
    );
    let cut = o.lines - shards.last().expect("last shard").lines as usize;
    let survivors: Vec<usize> = order.iter().copied().filter(|&i| i < cut).collect();
    let run_gets = |addr: std::net::SocketAddr, survivors: &[usize]| {
        let mut c = QueryClient::connect(addr).expect("degraded bench client");
        let secs = time_best(o.reps, || {
            for &i in survivors {
                let line = c.get(i as u64).expect("served get on a healthy shard");
                std::hint::black_box(&line);
            }
        });
        survivors.len() as f64 / secs
    };
    let handle = Server::start(&manifest_path, "127.0.0.1:0", ServeOptions::default())
        .expect("starting the healthy server");
    let healthy_ops_per_s = run_gets(handle.addr(), &survivors);
    handle.shutdown();
    let last_file = serial_dir.join(&shards.last().expect("last shard").file);
    std::fs::rename(&last_file, last_file.with_extension("zsa.quarantined"))
        .expect("quarantining the last shard");
    let handle = Server::start(
        &manifest_path,
        "127.0.0.1:0",
        ServeOptions {
            degraded: true,
            ..Default::default()
        },
    )
    .expect("starting the degraded server");
    {
        let mut c = QueryClient::connect(handle.addr()).expect("degraded probe client");
        let h = c.health().expect("health probe");
        assert!(
            !h.ok && h.quarantined_shards == 1,
            "the deck serves degraded"
        );
        assert!(
            c.get((o.lines - 1) as u64).is_err(),
            "a quarantined line is a typed error"
        );
    }
    let degraded_ops_per_s = run_gets(handle.addr(), &survivors);
    handle.shutdown();
    let degraded_overhead = healthy_ops_per_s / degraded_ops_per_s;
    std::fs::remove_dir_all(&tmp).ok();

    let serve_json = serve_rows
        .iter()
        .map(|(executor, clients, depth, ops, ops_per_s, p50, p99)| {
            format!(
                "    {{ \"executor\": \"{executor}\", \"clients\": {clients}, \
                 \"depth\": {depth}, \"ops\": {ops}, \"ops_per_s\": {ops_per_s:.0}, \
                 \"p50_ns\": {p50}, \"p99_ns\": {p99} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    drop(reader);
    std::fs::remove_file(&zsa).ok();

    let r_node = rate(payload, o.lines, enc_node);
    let r_dense = rate(payload, o.lines, enc_dense);
    let r_compact = rate(payload, o.lines, enc_compact_lines);
    let r_batched = rate(payload, o.lines, enc_batched);
    let r_par = rate(payload, o.lines, enc_par);
    let r_wide_node = rate(payload, o.lines, wide_enc_node);
    let r_wide_dense = rate(payload, o.lines, wide_enc_dense);
    let r_wide_batched = rate(payload, o.lines, wide_enc_batched);
    let r_dec = rate(payload, o.lines, dec_serial);
    let r_dec_par = rate(payload, o.lines, dec_par);
    let r_pack_single = rate(payload, o.lines, pack_single);
    let r_pack_sharded = rate(payload, o.lines, pack_sharded);
    let r_pack_sharded_par = rate(payload, o.lines, pack_sharded_par);
    let get_ns = get_secs * 1e9 / o.gets.max(1) as f64;
    let mmap_get_ns = mmap_get_secs * 1e9 / o.gets.max(1) as f64;
    let cached_get_ns = cached_get_secs * 1e9 / o.gets.max(1) as f64;
    let speedup = enc_node / enc_batched;
    let compact_vs_dense = enc_dense / enc_batched;
    let wide_speedup = wide_enc_node / wide_enc_batched;

    let json = format!
    (
        "{{\n  \"bench\": \"throughput\",\n  \"pr\": 10,\n  \"deck\": \"mixed\",\n  \"lines\": {},\n  \"seed\": {},\n  \"payload_bytes\": {},\n  \"compressed_bytes\": {},\n  \"ratio\": {:.4},\n  \"threads\": {},\n  \"reps\": {},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n  \"parallel_pack_threads\": {},\n  \"shard_lines\": {},\n  \"random_access_get\": {{ \"ns_per_op\": {:.1}, \"ops\": {} }},\n  \"mmap_random_get\": {{ \"ns_per_op\": {:.1}, \"ops\": {}, \"bytes_mapped\": {} }},\n  \"cached_random_get\": {{ \"ns_per_op\": {:.1}, \"ops\": {}, \"hits\": {}, \"misses\": {}, \"pool_hit_rate\": {:.4} }},\n  \"concurrent_serve\": [\n{}\n  ],\n  \"served_degraded\": {{ \"healthy_ops_per_s\": {:.0}, \"degraded_ops_per_s\": {:.0}, \"overhead\": {:.3}, \"survivor_ops\": {} }},\n  \"encode_speedup_compact_vs_node_trie\": {:.3},\n  \"encode_speedup_compact_vs_dense\": {:.3},\n  \"wide_encode_speedup_compact_vs_node_trie\": {:.3},\n  \"dict_fitting\": {{ \"ratio_default_dict\": {:.4}, \"ratio_trained_dict\": {:.4}, \"train_sample_lines\": {}, \"train_secs\": {:.3} }}\n}}\n",
        o.lines,
        o.seed,
        payload,
        z_enc.len(),
        stats.ratio(),
        o.threads,
        o.reps,
        json_rate("serial_encode_node_trie", &r_node),
        json_rate("serial_encode_dense", &r_dense),
        json_rate("serial_encode_compact", &r_compact),
        json_rate("batched_encode", &r_batched),
        json_rate("serial_encode", &r_batched),
        json_rate("parallel_encode", &r_par),
        json_rate("wide_serial_encode_node_trie", &r_wide_node),
        json_rate("wide_serial_encode_dense", &r_wide_dense),
        json_rate("wide_serial_encode_compact", &r_wide_batched),
        json_rate("wide_serial_encode", &r_wide_batched),
        json_rate("serial_decode", &r_dec),
        json_rate("parallel_decode", &r_dec_par),
        json_rate("streaming_pack_single", &r_pack_single),
        json_rate("streaming_pack_sharded", &r_pack_sharded),
        json_rate("streaming_pack_sharded_parallel", &r_pack_sharded_par),
        json_rate("deep_verify", &r_verify),
        par_threads,
        shard_lines,
        get_ns,
        o.gets,
        mmap_get_ns,
        o.gets,
        bytes_mapped,
        cached_get_ns,
        o.gets,
        cache_hits,
        cache_misses,
        cache_hit_rate,
        serve_json,
        healthy_ops_per_s,
        degraded_ops_per_s,
        degraded_overhead,
        survivors.len(),
        speedup,
        compact_vs_dense,
        wide_speedup,
        default_stats.ratio(),
        trained_stats.ratio(),
        sample.len(),
        train_secs,
    );
    std::fs::write(&o.out, &json).expect("writing the result file");
    print!("{json}");
    eprintln!(
        "encode {:.1} MB/s batched-compact (per-line compact {:.1}, dense {:.1}, node trie {:.1}; {:.2}x vs node, {:.2}x vs dense), wide {:.1} MB/s ({:.2}x), parallel {:.1} MB/s; decode {:.1} MB/s; pack {:.1} MB/s single / {:.1} MB/s sharded / {:.1} MB/s sharded-parallel; get {:.0} ns/op file, {:.0} ns/op mmap, {:.0} ns/op cached ({:.1}% pool hits); ratio default {:.4} vs trained {:.4} -> {}",
        r_batched.mb_per_s, r_compact.mb_per_s, r_dense.mb_per_s, r_node.mb_per_s, speedup,
        compact_vs_dense, r_wide_batched.mb_per_s, wide_speedup,
        r_par.mb_per_s, r_dec.mb_per_s, r_pack_single.mb_per_s, r_pack_sharded.mb_per_s,
        r_pack_sharded_par.mb_per_s, get_ns, mmap_get_ns, cached_get_ns, cache_hit_rate * 100.0,
        default_stats.ratio(), trained_stats.ratio(), o.out
    );
    for (executor, clients, depth, _, ops_per_s, p50, p99) in &serve_rows {
        eprintln!(
            "serve[{executor}]: {clients:>3} client(s) depth {depth:>2} -> {ops_per_s:.0} ops/s, \
             p50 {p50} ns, p99 {p99} ns"
        );
    }
    eprintln!(
        "deep verify {:.1} MB/s; degraded serve {degraded_ops_per_s:.0} ops/s vs healthy \
         {healthy_ops_per_s:.0} ops/s ({degraded_overhead:.3}x overhead, {} survivor gets)",
        r_verify.mb_per_s,
        survivors.len()
    );
    if speedup < 1.5 {
        eprintln!("WARNING: compact-automaton speedup vs node trie below the 1.5x floor");
    }
    if compact_vs_dense < 1.0 {
        eprintln!("WARNING: batched compact encode slower than the dense automaton");
    }
}
