//! **Ablation** — encoding engine choices:
//!
//! * shortest path via backward DP vs the paper's Dijkstra (identical
//!   bytes, different constant factors);
//! * optimal shortest-path encoding vs greedy longest-match (what a
//!   simpler implementation would do, and what FSST does);
//! * order-preserving multi-threaded CPU scaling.

use bench::{emit_datum, row, Decks, ExpConfig};
use std::time::Instant;
use zsmiles_core::{compress_parallel, Compressor, DictBuilder, SpAlgorithm, ESCAPE};

fn main() {
    let cfg = ExpConfig::from_args();
    let decks = Decks::generate(&cfg);
    let deck = &decks.mixed;
    let input = deck.as_bytes();
    let dict = DictBuilder::default().train(deck.iter()).expect("train");

    println!("Ablation: encoding engines (MIXED, {} lines)\n", deck.len());

    // ---- DP vs Dijkstra --------------------------------------------------
    let widths = [14usize, 10, 14];
    println!(
        "{}",
        row(
            &["engine".into(), "ratio".into(), "throughput".into()],
            &widths
        )
    );
    let mut outputs = Vec::new();
    for (name, algo) in [
        ("backward-dp", SpAlgorithm::BackwardDp),
        ("dijkstra", SpAlgorithm::Dijkstra),
    ] {
        let t0 = Instant::now();
        let mut out = Vec::with_capacity(input.len() / 2);
        let stats = Compressor::new(&dict)
            .with_algorithm(algo)
            .compress_buffer(input, &mut out);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{:.3}", stats.ratio()),
                    format!("{:.1} MB/s", stats.in_bytes as f64 / dt / 1e6),
                ],
                &widths
            )
        );
        emit_datum("ablation_engine", name, stats.in_bytes as f64 / dt / 1e6);
        outputs.push(out);
    }
    assert_eq!(outputs[0], outputs[1], "engines must agree byte-for-byte");
    println!("byte-identical outputs: yes\n");

    // ---- optimal vs greedy ------------------------------------------------
    let mut greedy_out_bytes = 0usize;
    let mut in_bytes = 0usize;
    let mut pp = smiles::Preprocessor::new();
    let mut ppbuf = Vec::new();
    for line in deck.iter() {
        ppbuf.clear();
        if pp
            .process_into(line, smiles::RingRenumber::Innermost, 0, &mut ppbuf)
            .is_err()
        {
            ppbuf.clear();
            ppbuf.extend_from_slice(line);
        }
        in_bytes += line.len();
        greedy_out_bytes += greedy_encode_len(&dict, &ppbuf);
    }
    let greedy_ratio = greedy_out_bytes as f64 / in_bytes as f64;
    let mut opt_out = Vec::new();
    let opt_stats = Compressor::new(&dict).compress_buffer(input, &mut opt_out);
    println!(
        "greedy longest-match ratio {:.3} vs shortest-path optimal {:.3} \
         (optimality gain {:.1}%)",
        greedy_ratio,
        opt_stats.ratio(),
        (greedy_ratio / opt_stats.ratio() - 1.0) * 100.0
    );
    emit_datum("ablation_greedy", "greedy", greedy_ratio);
    emit_datum("ablation_greedy", "optimal", opt_stats.ratio());

    // ---- thread scaling ---------------------------------------------------
    println!("\norder-preserving parallel compression scaling");
    let widths = [8usize, 14, 10];
    println!(
        "{}",
        row(
            &["threads".into(), "throughput".into(), "speedup".into()],
            &widths
        )
    );
    let mut t1 = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let (out, _) = compress_parallel(&dict, input, SpAlgorithm::BackwardDp, threads);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(out, opt_out, "parallel output identical");
        if threads == 1 {
            t1 = dt;
        }
        println!(
            "{}",
            row(
                &[
                    threads.to_string(),
                    format!("{:.1} MB/s", input.len() as f64 / dt / 1e6),
                    format!("{:.2}x", t1 / dt),
                ],
                &widths
            )
        );
        emit_datum("ablation_threads", &threads.to_string(), t1 / dt);
    }
}

/// Greedy longest-match encoding cost (bytes), the non-optimal baseline.
fn greedy_encode_len(dict: &zsmiles_core::Dictionary, line: &[u8]) -> usize {
    let trie = dict.trie();
    let mut i = 0usize;
    let mut out = 0usize;
    while i < line.len() {
        match trie.longest_match_at(line, i) {
            Some((_, len)) => {
                out += 1;
                i += len;
            }
            None => {
                out += 2; // ESCAPE + literal
                let _ = ESCAPE;
                i += 1;
            }
        }
    }
    out
}
