//! **Figure 4** — compression-ratio comparison on the MIXED dataset:
//! ZSMILES vs SHOCO vs FSST (short-string, random-access tools) vs Bzip2
//! (file-based) vs ZSMILES + Bzip2.
//!
//! Like the paper, every tool gets to adapt to the test input (FSST builds
//! its table per input, so ZSMILES trains its dictionary on the same data
//! to keep the comparison fair), and ZSMILES is the only codec whose
//! output stays readable and line-separable.

use bench::{bar, emit_datum, Decks, ExpConfig};
use textcomp::{bzip, fsst::Fsst, line_codec_ratio, shoco::ShocoModel, smaz::Smaz, LineCodec};
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::{Compressor, DictBuilder, DynCodec, WideDictBuilder};

fn main() {
    let cfg = ExpConfig::from_args();
    let decks = Decks::generate(&cfg);
    let input = decks.mixed.as_bytes();
    let payload = decks.mixed.payload_bytes();

    println!(
        "Figure 4: compression ratios on MIXED ({} lines, {} payload bytes)\n",
        decks.mixed.len(),
        payload
    );

    // --- ZSMILES: dictionary trained on the same input (FSST-fair), then
    //     driven through the exact per-line interface (LineCodec) the
    //     other short-string tools use, dictionary bytes charged the way
    //     FSST's symbol table is. Both flavours go through the dyn-safe
    //     DynEngine facade -- the harness never matches on the flavour.
    let dict = DictBuilder::default()
        .train(decks.mixed.iter())
        .expect("train");
    let any = AnyDictionary::Base(Box::new(dict.clone()));
    let zcodec = DynCodec::new(any.as_dyn());
    let (z_out, z_in) = line_codec_ratio(&zcodec, input);
    let zsmiles_charged_ratio = z_out as f64 / z_in as f64;
    let mut zout = Vec::with_capacity(payload / 2);
    let zstats = Compressor::new(&dict).compress_buffer(input, &mut zout);
    let zsmiles_ratio = zstats.ratio();

    // --- ZSMILES wide codes, same LineCodec interface. --------------------
    let wide_dict = WideDictBuilder {
        base: DictBuilder::default(),
        wide_size: 512,
    }
    .train(decks.mixed.iter())
    .expect("train wide");
    let wide_any = AnyDictionary::Wide(Box::new(wide_dict));
    let wcodec = DynCodec::new(wide_any.as_dyn());
    let (w_out, w_in) = line_codec_ratio(&wcodec, input);
    let zsmiles_wide_ratio = w_out as f64 / w_in as f64;

    // --- SHOCO: model trained on the input. ------------------------------
    let shoco = ShocoModel::train(input);
    let (s_out, s_in) = line_codec_ratio(&shoco, input);
    let shoco_ratio = s_out as f64 / s_in as f64;

    // --- FSST: per-input symbol table. ------------------------------------
    let fsst = Fsst::train(input);
    let (f_out, f_in) = line_codec_ratio(&fsst, input);
    let fsst_ratio = f_out as f64 / f_in as f64;

    // --- Bzip2-like: whole-file, stateful. --------------------------------
    let bz = bzip::compress(input);
    let bzip_ratio = bz.len() as f64 / input.len() as f64;

    // --- LZ77+Huffman (deflate-like): the other general-purpose family
    //     the paper's related work names. Extension row, not in Fig. 4.
    let lz = textcomp::lz::compress(input);
    let lz_ratio = lz.len() as f64 / input.len() as f64;

    // --- SMAZ: the third short-string tool the related work names.
    //     Both flavours are extension rows: the static English codebook
    //     (why the paper dismisses it) and a SMILES-trained one (fair).
    let smaz_classic = Smaz::classic();
    let (sc_out, sc_in) = line_codec_ratio(&smaz_classic, input);
    let smaz_classic_ratio = sc_out as f64 / sc_in as f64;
    let smaz_trained = Smaz::train(input);
    let (st_out, st_in) = line_codec_ratio(&smaz_trained, input);
    let smaz_trained_ratio = st_out as f64 / st_in as f64;

    // --- ZSMILES + Bzip2: archive the readable output. --------------------
    let bz_of_z = bzip::compress(&zout);
    let combo_ratio = bz_of_z.len() as f64 / input.len() as f64;

    let rows: [(&str, f64, &str); 10] = [
        (
            "ZSMILES",
            zsmiles_ratio,
            "short-string, readable, random access",
        ),
        (
            "ZSMILES+dict",
            zsmiles_charged_ratio,
            "same, dictionary bytes charged (FSST-fair)",
        ),
        (
            "ZSMILES-wide",
            zsmiles_wide_ratio,
            "two-byte codes, dictionary charged (extension row)",
        ),
        ("SHOCO", shoco_ratio, "short-string"),
        ("FSST", fsst_ratio, "short-string, random access"),
        ("Bzip2", bzip_ratio, "file-based, stateful"),
        (
            "ZSMILES+Bzip2",
            combo_ratio,
            "file-based archive of ZSMILES output",
        ),
        (
            "LZ77+Huffman",
            lz_ratio,
            "file-based, stateful (extension row)",
        ),
        (
            "SMAZ-classic",
            smaz_classic_ratio,
            "short-string, English codebook (extension row)",
        ),
        (
            "SMAZ-trained",
            smaz_trained_ratio,
            "short-string, trained codebook (extension row)",
        ),
    ];
    for (name, ratio, class) in rows {
        println!("{name:>14}  {:.3}  |{}|  {class}", ratio, bar(ratio, 40));
        emit_datum("fig4", name, ratio);
    }

    println!();
    let improvement = fsst_ratio / zsmiles_ratio;
    println!(
        "ZSMILES vs FSST: ×{improvement:.2} better ratio (paper: ×1.13 over state of \
         the art in similar scenarios)"
    );
    println!(
        "ordering check: Bzip2 ({bzip_ratio:.3}) best single tool: {}; \
         ZSMILES+Bzip2 ({combo_ratio:.3}) best overall: {}",
        bzip_ratio < zsmiles_ratio && bzip_ratio < fsst_ratio && bzip_ratio < shoco_ratio,
        combo_ratio <= bzip_ratio
    );
    println!(
        "random-access tools: ZSMILES ({zsmiles_ratio:.3}) < FSST ({fsst_ratio:.3}) < \
         SHOCO ({shoco_ratio:.3}): {}",
        zsmiles_ratio < fsst_ratio && fsst_ratio < shoco_ratio
    );

    // Round-trip sanity for every codec while we're here.
    verify_roundtrips(&decks, &dict, &shoco, &fsst, &bz, input);
    println!("round-trips verified for all five configurations");
}

fn verify_roundtrips(
    decks: &Decks,
    dict: &zsmiles_core::Dictionary,
    shoco: &ShocoModel,
    fsst: &Fsst,
    bz: &[u8],
    input: &[u8],
) {
    // ZSMILES round trip (preprocessed form re-parses to same molecules),
    // driven through the same dyn interface as the baselines.
    let line = decks.mixed.line(0);
    let any = AnyDictionary::Base(Box::new(dict.clone()));
    let zcodec = DynCodec::new(any.as_dyn());
    let mut z = Vec::new();
    (&zcodec as &dyn LineCodec).compress_line(line, &mut z);
    let mut back = Vec::new();
    (&zcodec as &dyn LineCodec)
        .decompress_line(&z, &mut back)
        .unwrap();
    assert_eq!(
        smiles::parser::parse(line).unwrap().signature(),
        smiles::parser::parse(&back).unwrap().signature()
    );
    // SHOCO / FSST exact line round trips.
    for codec in [shoco as &dyn LineCodec, fsst as &dyn LineCodec] {
        let mut zz = Vec::new();
        codec.compress_line(line, &mut zz);
        let mut bb = Vec::new();
        codec.decompress_line(&zz, &mut bb).unwrap();
        assert_eq!(bb, line, "{}", codec.name());
    }
    // Bzip2 exact file round trip.
    assert_eq!(bzip::decompress(bz).unwrap(), input);
    // LZ77 exact file round trip.
    let lz = textcomp::lz::compress(input);
    assert_eq!(textcomp::lz::decompress(&lz).unwrap(), input);
}
