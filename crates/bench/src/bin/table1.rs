//! **Table I** — ZSMILES compression ratios with different dictionary
//! optimizations: {pre-processing on/off} × {pre-population printable /
//! SMILES alphabet / none}.
//!
//! Setup mirrors the paper (§V-B "Dictionary Optimizations"): the
//! dictionary is trained on a random 50 000-SMILES sample of the MIXED
//! dataset and tested on the same sample. Run with `--lines 50000` for the
//! paper's exact scale.

use bench::{compress_dataset, emit_datum, row, Decks, ExpConfig};
use zsmiles_core::{DictBuilder, Prepopulation};

fn main() {
    let cfg = ExpConfig::from_args();
    let decks = Decks::generate(&cfg);
    let sample = &decks.mixed;

    println!(
        "Table I: ZSMILES compression ratio, dictionary trained and tested on \
         a {}-line MIXED sample\n",
        sample.len()
    );
    let widths = [14usize, 18, 18];
    println!(
        "{}",
        row(
            &[
                "Pre-processing".into(),
                "Pre-population".into(),
                "Compression Ratio".into()
            ],
            &widths
        )
    );

    // Paper row order: (preproc, prepop) with printable first.
    let combos = [
        (true, Prepopulation::PrintableAscii),
        (false, Prepopulation::PrintableAscii),
        (true, Prepopulation::SmilesAlphabet),
        (false, Prepopulation::SmilesAlphabet),
        (true, Prepopulation::None),
        (false, Prepopulation::None),
    ];

    let mut results = Vec::new();
    for (preprocess, prepopulation) in combos {
        let builder = DictBuilder {
            preprocess,
            prepopulation,
            ..Default::default()
        };
        let dict = builder.train(sample.iter()).expect("training succeeds");
        let stats = compress_dataset(&dict, sample);
        let ratio = stats.ratio();
        println!(
            "{}",
            row(
                &[
                    if preprocess { "Yes" } else { "No" }.into(),
                    prepop_label(prepopulation).into(),
                    format!("{ratio:.3}"),
                ],
                &widths
            )
        );
        emit_datum(
            "table1",
            &format!(
                "{}_{}",
                if preprocess { "pre" } else { "raw" },
                prepopulation.name()
            ),
            ratio,
        );
        results.push((preprocess, prepopulation, ratio));
    }

    // The two qualitative claims of Table I, checked on the spot.
    println!();
    for pp in [
        Prepopulation::PrintableAscii,
        Prepopulation::SmilesAlphabet,
        Prepopulation::None,
    ] {
        let with = results.iter().find(|r| r.0 && r.1 == pp).unwrap().2;
        let without = results.iter().find(|r| !r.0 && r.1 == pp).unwrap().2;
        println!(
            "pre-processing gain with {:>16}: {:.3} -> {:.3} ({})",
            prepop_label(pp),
            without,
            with,
            if with <= without {
                "improves, as in the paper"
            } else {
                "REGRESSION"
            }
        );
    }
    let best = results
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .unwrap();
    println!(
        "\nbest ratio {:.3} with pre-processing={} pre-population={} (paper: 0.29, \
         preprocessing + SMILES alphabet)",
        best.2,
        best.0,
        prepop_label(best.1)
    );
}

fn prepop_label(p: Prepopulation) -> &'static str {
    match p {
        Prepopulation::PrintableAscii => "Printable",
        Prepopulation::SmilesAlphabet => "SMILES alphabet",
        Prepopulation::None => "None",
    }
}
