//! **Scale study** (extension) — the paper's motivating arithmetic: a
//! virtual-screening campaign stores tens of TB of SMILES (72 TB on
//! Marconi100, §I). This harness checks that the compression ratio is
//! *size-intensive* (stable as decks grow, so laptop-scale measurements
//! extrapolate), shows dictionary-transfer stability across deck sizes,
//! and runs the negative control: a shared SMILES dictionary on
//! non-SMILES text.

use bench::{emit_datum, row, ExpConfig};
use molgen::Dataset;
use zsmiles_core::{Compressor, DictBuilder};

fn main() {
    let cfg = ExpConfig::from_args();

    // One dictionary, trained once at modest scale.
    let train = Dataset::generate_mixed(10_000, cfg.seed);
    let dict = DictBuilder::default().train(train.iter()).expect("train");

    println!("Scale study: ratio stability under deck growth (shared dictionary)\n");
    let widths = [10usize, 14, 10];
    println!(
        "{}",
        row(&["lines".into(), "payload".into(), "ratio".into()], &widths)
    );
    let mut ratios = Vec::new();
    for &n in &[1_000usize, 5_000, 20_000, 80_000] {
        let deck = Dataset::generate_mixed(n, cfg.seed.wrapping_add(7));
        let mut out = Vec::with_capacity(deck.total_bytes() / 2);
        let stats = Compressor::new(&dict).compress_buffer(deck.as_bytes(), &mut out);
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    format!("{} B", stats.in_bytes),
                    format!("{:.4}", stats.ratio()),
                ],
                &widths
            )
        );
        emit_datum("scale", &n.to_string(), stats.ratio());
        ratios.push(stats.ratio());
    }
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        - ratios.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\nratio spread across 80× size growth: {:.4} — {}",
        spread,
        if spread < 0.01 {
            "size-intensive; laptop numbers extrapolate to campaign scale"
        } else {
            "size-dependent (unexpected)"
        }
    );

    // The paper's arithmetic, applied.
    let r = ratios.last().copied().unwrap_or(1.0);
    println!(
        "a 72 TB campaign (paper §I) would occupy {:.1} TB compressed — {:.1} TB saved",
        72.0 * r,
        72.0 * (1.0 - r)
    );

    // Negative control: the shared dictionary on non-SMILES text. Domain
    // specificity means it should do much worse (mostly escapes/identity).
    let english: Vec<u8> = b"the quick brown fox jumps over the lazy dog \
while the virtual screening campaign compresses molecules at scale\n"
        .iter()
        .copied()
        .cycle()
        .take(200_000)
        .collect();
    let mut out = Vec::new();
    let stats = Compressor::new(&dict)
        .with_preprocess(false)
        .compress_buffer(&english, &mut out);
    println!(
        "\nnegative control — English text under the SMILES dictionary: ratio {:.3} \
         (vs {:.3} on SMILES): domain knowledge is where the win comes from",
        stats.ratio(),
        r
    );
    emit_datum("scale", "english_control", stats.ratio());
}
