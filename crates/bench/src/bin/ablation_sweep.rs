//! **Ablation** — dictionary size `T` and maximum pattern length `Lmax`
//! sweeps (the two capacity knobs of Algorithm 1), on the MIXED deck.
//!
//! The paper fixes `T` to the free code space and sweeps `Lmax` only for
//! runtime (Fig. 5); this harness shows what both knobs do to the *ratio*,
//! which is the design headroom discussion DESIGN.md promises.

use bench::{compress_dataset, emit_datum, row, Decks, ExpConfig};
use zsmiles_core::DictBuilder;

fn main() {
    let cfg = ExpConfig::from_args();
    let decks = Decks::generate(&cfg);
    let deck = &decks.mixed;

    println!(
        "Ablation: dictionary capacity sweeps (MIXED, {} lines)\n",
        deck.len()
    );

    let widths = [12usize, 10, 12];
    println!("dictionary size T (Lmax = 8, SMILES-alphabet pre-population: 144 free codes)");
    println!(
        "{}",
        row(&["T".into(), "ratio".into(), "patterns".into()], &widths)
    );
    for t in [8usize, 16, 32, 64, 96, 128, 144] {
        let builder = DictBuilder {
            dict_size: Some(t),
            ..Default::default()
        };
        let dict = builder.train(deck.iter()).expect("train");
        let stats = compress_dataset(&dict, deck);
        println!(
            "{}",
            row(
                &[
                    t.to_string(),
                    format!("{:.3}", stats.ratio()),
                    dict.pattern_entries().count().to_string(),
                ],
                &widths
            )
        );
        emit_datum("ablation_T", &t.to_string(), stats.ratio());
    }

    println!("\nmaximum pattern length Lmax (T = full code space)");
    println!(
        "{}",
        row(&["Lmax".into(), "ratio".into(), "patterns".into()], &widths)
    );
    for lmax in [2usize, 3, 4, 5, 6, 8, 10, 12, 15] {
        let builder = DictBuilder {
            lmax,
            ..Default::default()
        };
        let dict = builder.train(deck.iter()).expect("train");
        let stats = compress_dataset(&dict, deck);
        println!(
            "{}",
            row(
                &[
                    lmax.to_string(),
                    format!("{:.3}", stats.ratio()),
                    dict.pattern_entries().count().to_string(),
                ],
                &widths
            )
        );
        emit_datum("ablation_lmax", &lmax.to_string(), stats.ratio());
    }
}
