//! **Figure 5** — normalized execution times of the serial (the paper's
//! "C++") and device ("CUDA") implementations, compression (5a) and
//! decompression (5b), for Lmax ∈ {5, 8, 15}.
//!
//! Methodology (DESIGN.md §2): the serial engine's compute time is
//! *measured* on this host; the device time is *modeled* from the SIMT
//! simulator's instruction/transaction counts priced on an A100-like
//! profile. Both pipelines share the same storage-bandwidth terms
//! (read the deck, write the archive), which is what makes the whole thing
//! memory-bound — the paper's headline observation. Times are normalized
//! to the serial implementation at the largest Lmax, exactly like the
//! figure.

use bench::{emit_datum, row, Decks, ExpConfig};
use simt::{A100_LIKE, EPYC_CORE_LIKE, SCRATCH_FS};
use std::time::Instant;
use zsmiles_core::{Compressor, Decompressor, DictBuilder};
use zsmiles_gpu::{compress as gpu_compress, decompress as gpu_decompress, GpuOptions};

const LMAX_VALUES: [usize; 3] = [5, 8, 15];

fn main() {
    let mut cfg = ExpConfig::from_args();
    // The simulator executes every warp instruction on the host; cap the
    // deck so a full sweep stays pleasant. Ratios are per-byte, so scale
    // does not change the shape.
    if cfg.lines > 10_000 {
        cfg.lines = 10_000;
    }
    let decks = Decks::generate(&cfg);
    let deck = &decks.mixed;
    let input = deck.as_bytes();

    println!(
        "Figure 5: normalized execution time vs Lmax on MIXED ({} lines)\n\
         serial = measured on this host; device = SIMT-simulated, priced on {} \
         with {} storage\n",
        deck.len(),
        A100_LIKE.name,
        SCRATCH_FS.name
    );

    let mut comp_rows = Vec::new();
    let mut deco_rows = Vec::new();

    for lmax in LMAX_VALUES {
        let dict = DictBuilder {
            lmax,
            ..Default::default()
        }
        .train(deck.iter())
        .expect("training succeeds");

        // ---------- compression ----------
        let t0 = Instant::now();
        let mut zout = Vec::with_capacity(input.len() / 2);
        let cstats = Compressor::new(&dict).compress_buffer(input, &mut zout);
        let cpu_comp_s = t0.elapsed().as_secs_f64();
        let cpu_comp = EPYC_CORE_LIKE.pipeline_time(
            cpu_comp_s,
            cstats.in_bytes as u64,
            cstats.out_bytes as u64,
            &SCRATCH_FS,
        );

        let grun = gpu_compress(&dict, input, &GpuOptions::default());
        assert_eq!(grun.output, zout, "device output must match serial");
        let gpu_comp =
            A100_LIKE.pipeline_time(&grun.report, grun.in_bytes, grun.out_bytes, &SCRATCH_FS);

        // ---------- decompression ----------
        let t0 = Instant::now();
        let mut back = Vec::with_capacity(input.len());
        let dstats = Decompressor::new(&dict)
            .decompress_buffer(&zout, &mut back)
            .unwrap();
        let cpu_deco_s = t0.elapsed().as_secs_f64();
        let cpu_deco = EPYC_CORE_LIKE.pipeline_time(
            cpu_deco_s,
            dstats.in_bytes as u64,
            dstats.out_bytes as u64,
            &SCRATCH_FS,
        );

        let drun = gpu_decompress(&dict, &zout, &GpuOptions::default()).unwrap();
        assert_eq!(drun.output, back, "device decompression must match serial");
        let gpu_deco =
            A100_LIKE.pipeline_time(&drun.report, drun.in_bytes, drun.out_bytes, &SCRATCH_FS);

        comp_rows.push((lmax, cpu_comp, gpu_comp));
        deco_rows.push((lmax, cpu_deco, gpu_deco));
    }

    // Normalize to the serial time at the largest Lmax (the paper's axis).
    let comp_norm = comp_rows.last().unwrap().1.total_s();
    let deco_norm = deco_rows.last().unwrap().1.total_s();

    let widths = [6usize, 12, 12, 10];
    println!("(a) compression — normalized to serial @ Lmax=15");
    println!(
        "{}",
        row(
            &[
                "Lmax".into(),
                "C++ (norm)".into(),
                "CUDA (norm)".into(),
                "speedup".into()
            ],
            &widths
        )
    );
    for (lmax, cpu, gpu) in &comp_rows {
        let c = cpu.total_s() / comp_norm;
        let g = gpu.total_s() / comp_norm;
        println!(
            "{}",
            row(
                &[
                    lmax.to_string(),
                    format!("{c:.3}"),
                    format!("{g:.3}"),
                    format!("{:.1}x", c / g)
                ],
                &widths
            )
        );
        emit_datum("fig5a", &format!("cpu_lmax{lmax}"), c);
        emit_datum("fig5a", &format!("gpu_lmax{lmax}"), g);
    }

    println!("\n(b) decompression — normalized to serial @ Lmax=15");
    println!(
        "{}",
        row(
            &[
                "Lmax".into(),
                "C++ (norm)".into(),
                "CUDA (norm)".into(),
                "speedup".into()
            ],
            &widths
        )
    );
    for (lmax, cpu, gpu) in &deco_rows {
        let c = cpu.total_s() / deco_norm;
        let g = gpu.total_s() / deco_norm;
        println!(
            "{}",
            row(
                &[
                    lmax.to_string(),
                    format!("{c:.3}"),
                    format!("{g:.3}"),
                    format!("{:.1}x", c / g)
                ],
                &widths
            )
        );
        emit_datum("fig5b", &format!("cpu_lmax{lmax}"), c);
        emit_datum("fig5b", &format!("gpu_lmax{lmax}"), g);
    }

    // The memory-bound observation, quantified.
    let (_, cpu, gpu) = &comp_rows[1];
    println!(
        "\nI/O fraction at Lmax=8: serial {:.0}%, device {:.0}% — \"ZSMILES is \
         memory-bound\" (paper §V-C)",
        cpu.io_fraction() * 100.0,
        gpu.io_fraction() * 100.0
    );
    let comp_speedup = comp_rows[1].1.total_s() / comp_rows[1].2.total_s();
    let deco_speedup = deco_rows[1].1.total_s() / deco_rows[1].2.total_s();
    println!(
        "speedup @ Lmax=8: compression {comp_speedup:.1}x (paper: 7x), \
         decompression {deco_speedup:.1}x (paper: 2x)"
    );
}
