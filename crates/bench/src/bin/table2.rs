//! **Table II** — cross-dictionary compression ratios: dictionaries
//! trained on each dataset (rows) compressing every dataset (columns).
//!
//! The paper's takeaways this harness checks:
//! * diagonal entries (train = test) are the best in their column;
//! * the GDB-17-trained dictionary transfers worst (homogeneous corpus);
//! * the MIXED-trained dictionary has the best row average.

use bench::{compress_dataset, emit_datum, row, Decks, ExpConfig};
use zsmiles_core::DictBuilder;

fn main() {
    let cfg = ExpConfig::from_args();
    let decks = Decks::generate(&cfg);

    println!(
        "Table II: cross-dictionary compression ratios ({} lines per deck)\n",
        cfg.lines
    );

    // Train one dictionary per dataset (paper defaults: preprocessing on,
    // SMILES-alphabet pre-population).
    let dicts: Vec<_> = Decks::NAMES
        .iter()
        .map(|name| {
            let ds = decks.by_name(name);
            (
                *name,
                DictBuilder::default()
                    .train(ds.iter())
                    .expect("training succeeds"),
            )
        })
        .collect();

    let widths = [10usize, 8, 8, 10, 8];
    let mut header = vec!["Train\\Test".to_string()];
    header.extend(Decks::NAMES.iter().map(|s| s.to_string()));
    println!("{}", row(&header, &widths));

    let mut matrix = [[0f64; 4]; 4];
    for (i, (train_name, dict)) in dicts.iter().enumerate() {
        let mut cells = vec![train_name.to_string()];
        let mut row_sum = 0.0;
        for (j, test_name) in Decks::NAMES.iter().enumerate() {
            let stats = compress_dataset(dict, decks.by_name(test_name));
            let ratio = stats.ratio();
            matrix[i][j] = ratio;
            row_sum += ratio;
            cells.push(format!("{ratio:.3}"));
            emit_datum("table2", &format!("{train_name}->{test_name}"), ratio);
        }
        println!("{}  | avg {:.3}", row(&cells, &widths), row_sum / 4.0);
    }

    println!();
    // Claim 1: diagonal is best-in-column.
    #[allow(clippy::needless_range_loop)] // j indexes rows and columns alike
    for j in 0..4 {
        let diag = matrix[j][j];
        let best = (0..4).map(|i| matrix[i][j]).fold(f64::INFINITY, f64::min);
        println!(
            "column {:>9}: diagonal {:.3}, best {:.3} ({})",
            Decks::NAMES[j],
            diag,
            best,
            if (diag - best).abs() < 0.02 {
                "self-trained ~ optimal, as in the paper"
            } else {
                "diagonal not optimal"
            }
        );
    }
    // Claim 2: GDB-17 transfers worst; Claim 3: MIXED best average.
    let avgs: Vec<f64> = (0..4)
        .map(|i| (0..4).map(|j| matrix[i][j]).sum::<f64>() / 4.0)
        .collect();
    let worst = (0..4)
        .max_by(|&a, &b| avgs[a].partial_cmp(&avgs[b]).unwrap())
        .unwrap();
    let best = (0..4)
        .min_by(|&a, &b| avgs[a].partial_cmp(&avgs[b]).unwrap())
        .unwrap();
    println!(
        "\nworst transferring dictionary: {} (avg {:.3}; paper: GDB-17)",
        Decks::NAMES[worst],
        avgs[worst]
    );
    println!(
        "best average dictionary:       {} (avg {:.3}; paper: MIXED, 0.32)",
        Decks::NAMES[best],
        avgs[best]
    );
}
