//! Train-and-compare: every codec the workspace can train, fitted to ONE
//! corpus in ONE run through the `zsmiles_core::train::DictBuilder` trait
//! — both ZSMILES flavours next to the trainable `textcomp` baselines
//! (FSST, SMAZ-style), each compressing the deck it just trained on
//! through the uniform `textcomp::LineCodec` interface with its side-band
//! table bytes charged.
//!
//! ```text
//! cargo run --release -p bench --bin train_compare -- \
//!     [--lines 20000] [--seed 12648430] [--sample-lines 2048]
//! ```

use molgen::Dataset;
use std::time::Instant;
use zsmiles_core::train::{
    BaseBuilder, DictBuilder, FsstBuilder, SmazBuilder, TrainCorpus, WideBuilder,
};
use zsmiles_core::{Selection, TrainOptions};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut lines = 20_000usize;
    let mut seed = 0xC0FFEEu64;
    let mut sample_lines = 2_048usize;
    let mut i = 0;
    while i < argv.len() {
        let val = argv.get(i + 1);
        match argv[i].as_str() {
            "--lines" => lines = val.and_then(|v| v.parse().ok()).unwrap_or(lines),
            "--seed" => seed = val.and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--sample-lines" => {
                sample_lines = val.and_then(|v| v.parse().ok()).unwrap_or(sample_lines)
            }
            _ => {
                i += 1;
                continue;
            }
        }
        i += 2;
    }

    let deck = Dataset::generate_mixed(lines, seed);
    let input = deck.as_bytes();
    let payload = deck.payload_bytes();
    let corpus =
        TrainCorpus::sample(input, sample_lines, seed).expect("sampling an in-memory deck");
    println!(
        "train-and-compare on MIXED ({} lines, {} payload bytes; trained on a {}-line sample, seed {seed:#x})\n",
        deck.len(),
        payload,
        corpus.len(),
    );

    let opts = || TrainOptions {
        preprocess: false, // ratio the codecs, not the ring renumberer
        sample_lines,
        seed,
        ..TrainOptions::default()
    };
    let builders: Vec<Box<dyn DictBuilder>> = vec![
        Box::new(BaseBuilder { opts: opts() }),
        Box::new(BaseBuilder {
            opts: TrainOptions {
                selection: Selection::PaperRank(Default::default()),
                ..opts()
            },
        }),
        Box::new(WideBuilder {
            opts: opts(),
            wide_size: 512,
        }),
        Box::new(FsstBuilder::default()),
        Box::new(SmazBuilder::default()),
    ];

    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>10}",
        "codec", "train ms", "table bytes", "ratio", "+table"
    );
    for (k, builder) in builders.iter().enumerate() {
        let t0 = Instant::now();
        let model = builder.train(&corpus).expect("training");
        let train_ms = t0.elapsed().as_secs_f64() * 1e3;
        let codec = model.line_codec();
        let (out, inp) = textcomp::line_codec_ratio(codec.as_ref(), input);
        let overhead = codec.overhead_bytes();
        let ratio = (out - overhead) as f64 / inp as f64;
        let charged = out as f64 / inp as f64;
        let label = match (k, builder.name()) {
            (1, _) => "base (paper rank)".to_string(),
            (_, name) => format!("{name} ({})", model.name()),
        };
        println!("{label:<22} {train_ms:>10.1} {overhead:>12} {ratio:>10.4} {charged:>10.4}");
    }
    println!("\n(lower is better; '+table' charges the serialized dictionary/symbol table)");
}
