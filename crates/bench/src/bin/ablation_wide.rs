//! **Ablation** — does the paper's one-byte code ceiling bind?
//!
//! The paper confines the dictionary to 222 one-byte codes and never asks
//! what a bigger dictionary would buy. The wide-code extension
//! (`zsmiles_core::wide`) reserves eight page-prefix bytes and opens up to
//! 1 776 extra two-byte codes. This harness sweeps the number of wide slots
//! on the MIXED deck and reports ratio, dictionary shape and training time
//! — quantifying the marginal value of code space beyond the paper's
//! design point.
//!
//! Expected shape: wide codes help, but with diminishing returns — each
//! two-byte code only saves `len − 2` bytes per hit, and Algorithm 1 has
//! already spent the best patterns on the one-byte region.

use bench::{emit_datum, row, Decks, ExpConfig};
use std::time::Instant;
use zsmiles_core::{Compressor, DictBuilder, WideCompressor, WideDictBuilder};

fn main() {
    let cfg = ExpConfig::from_args();
    let decks = Decks::generate(&cfg);
    let deck = &decks.mixed;
    let input = deck.as_bytes();

    println!(
        "Ablation: wide (two-byte) dictionary codes on MIXED ({} lines)\n",
        deck.len()
    );

    // Reference: the paper's dictionary over the full one-byte code space
    // (222 codes, no pages reserved).
    let t0 = Instant::now();
    let base_dict = DictBuilder::default()
        .train(deck.iter())
        .expect("train base");
    let base_train = t0.elapsed();
    let mut zb = Vec::with_capacity(input.len() / 2);
    let base_stats = Compressor::new(&base_dict).compress_buffer(input, &mut zb);

    let widths = [10usize, 10, 8, 8, 12];
    println!(
        "{}",
        row(
            &[
                "wide T".into(),
                "ratio".into(),
                "base".into(),
                "wide".into(),
                "train [s]".into()
            ],
            &widths
        )
    );
    println!(
        "{}",
        row(
            &[
                "paper".into(),
                format!("{:.3}", base_stats.ratio()),
                base_dict.len().to_string(),
                "-".into(),
                format!("{:.2}", base_train.as_secs_f64()),
            ],
            &widths
        )
    );
    emit_datum("ablation_wide", "paper", base_stats.ratio());

    for wide_size in [0usize, 64, 128, 256, 512, 1024, 1776] {
        let builder = WideDictBuilder {
            base: DictBuilder::default(),
            wide_size,
        };
        let t0 = Instant::now();
        let dict = builder.train(deck.iter()).expect("train wide");
        let train = t0.elapsed();
        let mut z = Vec::with_capacity(input.len() / 2);
        let stats = WideCompressor::new(&dict).compress_buffer(input, &mut z);
        println!(
            "{}",
            row(
                &[
                    wide_size.to_string(),
                    format!("{:.3}", stats.ratio()),
                    dict.base_len().to_string(),
                    dict.wide_len().to_string(),
                    format!("{:.2}", train.as_secs_f64()),
                ],
                &widths
            )
        );
        emit_datum("ablation_wide", &wide_size.to_string(), stats.ratio());
    }

    println!(
        "\nreading the table: 'paper' is the stock 222-code dictionary; row 0 pays \
         the 8 reserved page bytes for nothing; later rows spend them. The gap \
         between 'paper' and the best wide row is the value of code space beyond \
         the paper's ceiling."
    );
}
