//! Criterion benchmarks for the Fig. 5 pipelines: serial vs
//! multi-threaded CPU vs the simulated device, compression and
//! decompression, across Lmax ∈ {5, 8, 15}.
//!
//! Wall-clock here measures the *simulator's* host cost for the GPU rows —
//! modeled device time comes from the `fig5` harness — but the CPU rows
//! are the real measured engines, and the Lmax trend matches Fig. 5's
//! flat profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use molgen::Dataset;
use std::time::Duration;
use zsmiles_core::{compress_parallel, Compressor, DictBuilder, SpAlgorithm};

fn bench_lmax_sweep(c: &mut Criterion) {
    let deck = Dataset::generate_mixed(2_000, 0xF16);
    let input = deck.as_bytes().to_vec();
    let mut group = c.benchmark_group("fig5_compress");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(deck.payload_bytes() as u64));
    for lmax in [5usize, 8, 15] {
        let dict = DictBuilder {
            lmax,
            ..Default::default()
        }
        .train(deck.iter())
        .expect("train");
        group.bench_function(BenchmarkId::new("serial", lmax), |b| {
            let mut compressor = Compressor::new(&dict);
            let mut out = Vec::with_capacity(input.len());
            b.iter(|| {
                out.clear();
                compressor.compress_buffer(&input, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_lmax_sweep_decompress(c: &mut Criterion) {
    let deck = Dataset::generate_mixed(2_000, 0xF16);
    let input = deck.as_bytes().to_vec();
    let mut group = c.benchmark_group("fig5_decompress");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(deck.payload_bytes() as u64));
    for lmax in [5usize, 8, 15] {
        let dict = DictBuilder {
            lmax,
            ..Default::default()
        }
        .train(deck.iter())
        .expect("train");
        let mut z = Vec::with_capacity(input.len());
        Compressor::new(&dict).compress_buffer(&input, &mut z);
        group.bench_function(BenchmarkId::new("serial", lmax), |b| {
            let mut dc = zsmiles_core::Decompressor::new(&dict);
            let mut out = Vec::with_capacity(input.len());
            b.iter(|| {
                out.clear();
                dc.decompress_buffer(&z, &mut out).unwrap();
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let deck = Dataset::generate_mixed(4_000, 0xF16);
    let input = deck.as_bytes().to_vec();
    let dict = DictBuilder::default().train(deck.iter()).expect("train");
    let mut group = c.benchmark_group("parallel_compress");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(deck.payload_bytes() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                compress_parallel(&dict, &input, SpAlgorithm::BackwardDp, threads)
                    .0
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_gpu_sim(c: &mut Criterion) {
    // Small deck: the simulator executes every warp instruction on the
    // host, so this benchmark tracks simulator overhead, not device time.
    let deck = Dataset::generate_mixed(200, 0xF16);
    let input = deck.as_bytes().to_vec();
    let dict = DictBuilder::default().train(deck.iter()).expect("train");
    let mut group = c.benchmark_group("gpu_simulator");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(deck.payload_bytes() as u64));
    group.sample_size(10);
    group.bench_function("compress_kernel", |b| {
        b.iter(|| {
            zsmiles_gpu::compress(&dict, &input, &zsmiles_gpu::GpuOptions::default()).out_bytes
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lmax_sweep,
    bench_lmax_sweep_decompress,
    bench_parallel_scaling,
    bench_gpu_sim
);
criterion_main!(benches);
