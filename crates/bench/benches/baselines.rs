//! Criterion benchmarks for the Fig. 4 baseline codecs: throughput of
//! the from-scratch bzip-like pipeline, FSST and SHOCO next to ZSMILES.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use molgen::Dataset;
use std::time::Duration;
use textcomp::{bzip, fsst::Fsst, shoco::ShocoModel, smaz::Smaz};
use zsmiles_core::{Compressor, DictBuilder, WideCompressor, WideDictBuilder};

fn bench_baseline_compression(c: &mut Criterion) {
    let deck = Dataset::generate_mixed(2_000, 0xBA5E);
    let input = deck.as_bytes().to_vec();

    let mut group = c.benchmark_group("fig4_tools");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.sample_size(10);

    group.bench_function("bzip_like", |b| b.iter(|| bzip::compress(&input).len()));

    group.bench_function("lz77_huffman", |b| {
        b.iter(|| textcomp::lz::compress(&input).len())
    });

    let fsst = Fsst::train(&input);
    group.bench_function("fsst", |b| {
        let mut out = Vec::with_capacity(input.len());
        b.iter(|| {
            out.clear();
            for line in input.split(|&x| x == b'\n').filter(|l| !l.is_empty()) {
                fsst.compress_line(line, &mut out);
            }
            out.len()
        })
    });

    let shoco = ShocoModel::train(&input);
    group.bench_function("shoco", |b| {
        let mut out = Vec::with_capacity(input.len());
        b.iter(|| {
            out.clear();
            for line in input.split(|&x| x == b'\n').filter(|l| !l.is_empty()) {
                shoco.compress_line(line, &mut out);
            }
            out.len()
        })
    });

    let smaz = Smaz::train(&input);
    group.bench_function("smaz", |b| {
        let mut out = Vec::with_capacity(input.len());
        b.iter(|| {
            out.clear();
            for line in input.split(|&x| x == b'\n').filter(|l| !l.is_empty()) {
                smaz.compress_line(line, &mut out);
            }
            out.len()
        })
    });

    let dict = DictBuilder::default().train(deck.iter()).expect("train");
    group.bench_function("zsmiles", |b| {
        let mut compressor = Compressor::new(&dict);
        let mut out = Vec::with_capacity(input.len());
        b.iter(|| {
            out.clear();
            compressor.compress_buffer(&input, &mut out);
            out.len()
        })
    });

    let wide = WideDictBuilder {
        base: DictBuilder::default(),
        wide_size: 512,
    }
    .train(deck.iter())
    .expect("train wide");
    group.bench_function("zsmiles_wide", |b| {
        let mut compressor = WideCompressor::new(&wide);
        let mut out = Vec::with_capacity(input.len());
        b.iter(|| {
            out.clear();
            compressor.compress_buffer(&input, &mut out);
            out.len()
        })
    });

    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let deck = Dataset::generate_mixed(1_000, 0xBA5E);
    let input = deck.as_bytes().to_vec();
    let mut group = c.benchmark_group("table_construction");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("zsmiles_dictionary", |b| {
        b.iter(|| DictBuilder::default().train(deck.iter()).unwrap().len())
    });
    group.bench_function("fsst_table", |b| b.iter(|| Fsst::train(&input).len()));
    group.bench_function("shoco_model", |b| b.iter(|| ShocoModel::train(&input)));
    group.finish();
}

criterion_group!(benches, bench_baseline_compression, bench_training);
criterion_main!(benches);
