//! Criterion microbenchmarks for the encoding engines — the timing side
//! of the `ablation_engines` harness (DP vs Dijkstra vs greedy, trie
//! matching, preprocessing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use molgen::Dataset;
use std::time::Duration;
use zsmiles_core::sp::{encode_line, SpScratch};
use zsmiles_core::{Compressor, Decompressor, DictBuilder, SpAlgorithm};

fn fixtures() -> (zsmiles_core::Dictionary, Dataset) {
    let deck = Dataset::generate_mixed(2_000, 0xBEEF);
    let dict = DictBuilder::default().train(deck.iter()).expect("train");
    (dict, deck)
}

fn bench_shortest_path(c: &mut Criterion) {
    let (dict, deck) = fixtures();
    let mut group = c.benchmark_group("shortest_path");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(deck.payload_bytes() as u64));
    for (name, algo) in [
        ("backward_dp", SpAlgorithm::BackwardDp),
        ("dijkstra", SpAlgorithm::Dijkstra),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut scratch = SpScratch::new();
            let mut out = Vec::with_capacity(64);
            b.iter(|| {
                let mut total = 0usize;
                for line in deck.iter() {
                    out.clear();
                    total += encode_line(dict.trie(), line, algo, &mut scratch, &mut out);
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    let deck = Dataset::generate_mixed(2_000, 0xBEEF);
    let mut group = c.benchmark_group("preprocess");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(deck.payload_bytes() as u64));
    group.bench_function("ring_renumber", |b| {
        let mut pp = smiles::Preprocessor::new();
        let mut out = Vec::with_capacity(128);
        b.iter(|| {
            let mut n = 0usize;
            for line in deck.iter() {
                out.clear();
                if pp
                    .process_into(line, smiles::RingRenumber::Innermost, 0, &mut out)
                    .is_ok()
                {
                    n += out.len();
                }
            }
            n
        })
    });
    group.finish();
}

fn bench_compress_decompress(c: &mut Criterion) {
    let (dict, deck) = fixtures();
    let input = deck.as_bytes().to_vec();
    let mut z = Vec::new();
    Compressor::new(&dict).compress_buffer(&input, &mut z);

    let mut group = c.benchmark_group("codec");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Bytes(deck.payload_bytes() as u64));
    group.bench_function("compress", |b| {
        let mut compressor = Compressor::new(&dict);
        let mut out = Vec::with_capacity(input.len());
        b.iter(|| {
            out.clear();
            compressor.compress_buffer(&input, &mut out);
            out.len()
        })
    });
    group.bench_function("decompress", |b| {
        let mut dc = Decompressor::new(&dict);
        let mut out = Vec::with_capacity(input.len());
        b.iter(|| {
            out.clear();
            dc.decompress_buffer(&z, &mut out).unwrap();
            out.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shortest_path,
    bench_preprocess,
    bench_compress_decompress
);
criterion_main!(benches);
