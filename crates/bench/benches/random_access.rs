//! Criterion microbenchmarks for the redesigned read path: the paper's
//! random-access workload (fetch k of n lines) through the in-memory
//! [`Archive`] vs the out-of-core [`ArchiveReader`] over a real file,
//! plus the batched `get_range` that campaigns use for hit retrieval.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use molgen::Dataset;
use std::time::Duration;
use zsmiles_core::engine::AnyDictionary;
use zsmiles_core::{Archive, ArchiveReader, DictBuilder};

const PROBES: usize = 1024;

fn bench_random_access(c: &mut Criterion) {
    let deck = Dataset::generate_mixed(20_000, 0xACCE55);
    let dict = DictBuilder {
        preprocess: false,
        ..Default::default()
    }
    .train(deck.iter())
    .expect("train");
    let archive = Archive::pack(AnyDictionary::Base(Box::new(dict)), deck.as_bytes(), 4);
    let path = std::env::temp_dir().join("zsmiles_bench_random_access.zsa");
    archive.save(&path).expect("save archive");
    let reader = ArchiveReader::open(&path).expect("open reader");
    let n = archive.len();

    let mut group = c.benchmark_group("random_access");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(PROBES as u64));

    group.bench_function("archive_get_in_memory", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for k in 0..PROBES {
                total += archive.get((k * 7919) % n).unwrap().len();
            }
            total
        })
    });

    group.bench_function("reader_get_file_backed", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for k in 0..PROBES {
                total += reader.get((k * 7919) % n).unwrap().len();
            }
            total
        })
    });

    group.bench_function("reader_get_range_file_backed", |b| {
        b.iter(|| {
            reader
                .get_range(1000..1000 + PROBES)
                .unwrap()
                .iter()
                .map(Vec::len)
                .sum::<usize>()
        })
    });

    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_random_access);
criterion_main!(benches);
