//! Deterministic RNG for property sampling.

/// SplitMix64 — tiny, fast, and plenty for test-case generation. Seeded
/// from the property's name so every test has its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// FNV-1a over the test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
