//! Hermetic stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its property tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_filter`, integer-range
//! and `any::<T>()` strategies, [`collection::vec`], [`array::uniform32`],
//! [`Just`], [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case number and the
//!   per-test seed; re-running the test reproduces it exactly (the RNG is
//!   seeded from the test name), which is what shrinking mostly buys.
//! * **No persistence files.** Streams are deterministic, so there is no
//!   regression corpus to save.
//!
//! Both trade debugging convenience for a zero-dependency build; the
//! statistical coverage of N random cases per property is unchanged.

pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a test file needs with one glob import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// `prop_oneof![a, b, c]`: sample one of several same-valued strategies,
/// chosen uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}

/// The `proptest!` block: each `#[test] fn name(arg in strategy, ...)`
/// becomes an ordinary test running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let ($($arg,)+) =
                        ($( $crate::strategy::Strategy::sample(&($strat), &mut __rng) ,)+);
                    let __run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    ) {
                        eprintln!(
                            "proptest: property '{}' failed at case {}/{} \
                             (deterministic seed: test name)",
                            stringify!($name), __case + 1, __cfg.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
