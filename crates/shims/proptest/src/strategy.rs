//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A recipe for generating random values of one type. Object-safe so
/// heterogeneous strategies can share a `prop_oneof!` union.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every drawn value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Reject values failing `pred`, resampling (bounded) until one passes.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// Blanket impl so `Box<dyn Strategy>` and `&S` are themselves strategies.
impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// `any::<T>()` — the full value range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 consecutive samples",
            self.reason
        );
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.sample(rng), )+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (0u16..=257).sample(&mut rng);
            assert!(w <= 257);
        }
    }

    #[test]
    fn map_filter_just_union() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u8..10)
            .prop_map(|v| v * 2)
            .prop_filter("even only", |&v| v < 15);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && v < 15);
        }
        assert_eq!(Just(7u8).sample(&mut rng), 7);
        let u = Union::new(vec![
            Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(2u8)),
        ]);
        for _ in 0..50 {
            assert!(matches!(u.sample(&mut rng), 1 | 2));
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = TestRng::from_seed(3);
        let (a, b) = (0u8..4, 10u8..14).sample(&mut rng);
        assert!(a < 4 && (10..14).contains(&b));
    }
}
