//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A random vector length specification: `a..b` or `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// `vec(element_strategy, size_range)` — a vector with random length and
/// independently sampled elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(any::<u8>(), 2..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
        let fixed = vec(any::<u8>(), 4usize);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
    }
}
