//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `uniform32(element)` — a `[T; 32]` with independently sampled elements.
pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
    Uniform32 { element }
}

pub struct Uniform32<S> {
    element: S,
}

impl<S: Strategy> Strategy for Uniform32<S> {
    type Value = [S::Value; 32];
    fn sample(&self, rng: &mut TestRng) -> [S::Value; 32] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform32_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        let arr = uniform32(0u32..1000).sample(&mut rng);
        assert_eq!(arr.len(), 32);
        assert!(arr.iter().all(|&v| v < 1000));
    }
}
