//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small API subset it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ with a
//! SplitMix64 seed expander — not the real `StdRng` (ChaCha12), but a
//! high-quality deterministic PRNG with the same contract: one `u64` seed
//! fully determines the stream.
//!
//! Streams are stable across platforms and releases; seeded tests in this
//! workspace rely on that.

pub mod rngs;
pub mod seq;

/// Sample a value uniformly from a range. Mirrors `rand::Rng`.
pub trait Rng {
    /// The raw generator step.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (`a..b` or `a..=b`). The two-parameter
    /// shape mirrors the real crate so the value type is inferred from the
    /// call site (e.g. a slice index forces `usize`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        f < p
    }
}

/// Seeding interface. Mirrors `rand::SeedableRng` for the one constructor
/// the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type uniform ranges can produce. Mirrors `rand`'s `SampleUniform`;
/// the single blanket [`SampleRange`] impl below is what lets integer
/// literals in `gen_range(0..4)` unify with the call site (e.g. `usize`
/// from a slice index).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: Rng>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        lo + unit * (hi - lo)
    }
}

/// A half-open or inclusive range that can be sampled for `T`. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }
}
