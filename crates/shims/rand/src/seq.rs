//! Sequence helpers. Mirrors `rand::seq::SliceRandom` for the methods the
//! workspace uses.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` on an empty slice.
    fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
