//! Hermetic stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the API subset its benches use: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], per-group `measurement_time` /
//! `warm_up_time` / `throughput` / `sample_size`, [`BenchmarkId`] and
//! [`Bencher::iter`]. Statistics are intentionally simple — warm up, run
//! timed samples, report the median and min with derived throughput — with
//! none of the real crate's outlier analysis or HTML reports. Numbers are
//! comparable run-to-run on an idle machine, which is what the paper-table
//! harness needs.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(id.to_string());
        g.bench_function("default", f);
        g.finish();
        self
    }
}

/// Throughput annotation: per-sample work used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            mode: Mode::WarmUp,
            budget: self.warm_up_time,
        };
        f(&mut b);
        b.samples.clear();
        b.mode = Mode::Measure {
            max_samples: self.sample_size,
        };
        b.budget = self.measurement_time;
        f(&mut b);
        let mut samples = b.samples;
        if samples.is_empty() {
            println!("  {}/{:<28} (no samples)", self.name, id.id);
            return self;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let rate = |d: Duration| match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mibs = n as f64 / d.as_secs_f64() / (1024.0 * 1024.0);
                format!("  {mibs:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / d.as_secs_f64();
                format!("  {eps:10.0} elem/s")
            }
            None => String::new(),
        };
        println!(
            "  {}/{:<28} median {:>12.3?}  min {:>12.3?}{}",
            self.name,
            id.id,
            median,
            min,
            rate(median),
        );
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    WarmUp,
    Measure { max_samples: usize },
}

/// Passed to the closure; `iter` runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    mode: Mode,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let deadline = Instant::now() + self.budget;
        match self.mode {
            Mode::WarmUp => {
                while Instant::now() < deadline {
                    black_box(routine());
                }
            }
            Mode::Measure { max_samples } => {
                for _ in 0..max_samples {
                    let t0 = Instant::now();
                    black_box(routine());
                    self.samples.push(t0.elapsed());
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

/// Opaque value barrier (stable-Rust best effort).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.measurement_time(Duration::from_millis(20));
        g.warm_up_time(Duration::from_millis(5));
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        g.bench_function(BenchmarkId::new("sum", 7), |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
