//! Property tests for the core data structures: the trie against a naive
//! reference matcher, the shortest-path engine against brute force, the
//! dictionary text format, the random-access index, and the wide-code
//! extension against the base codec.

use proptest::prelude::*;
use zsmiles_core::dict::format;
use zsmiles_core::sp::{encode_cost, encode_line, encode_lines_batched, SpScratch};
use zsmiles_core::trie::{CompactAutomaton, CompactLayout, DenseAutomaton, Trie};
use zsmiles_core::wide::{WideCompressor, WideDecompressor, WideDictionary};
use zsmiles_core::{Dictionary, LineIndex, MatcherKind, Prepopulation, SpAlgorithm, LINE_SEP};

/// Small alphabet so patterns actually collide/overlap.
fn arb_pattern() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'A'), Just(b'B'), Just(b'C')], 1..6)
}

fn arb_text() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'B'), Just(b'C'), Just(b'D')],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The trie reports exactly the matches a naive scan finds.
    #[test]
    fn trie_matches_equal_naive(
        patterns in proptest::collection::vec(arb_pattern(), 1..20),
        text in arb_text(),
    ) {
        // Dedup patterns (trie replaces codes on re-insert).
        let mut unique: Vec<Vec<u8>> = Vec::new();
        for p in patterns {
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        let mut trie = Trie::new();
        for (i, p) in unique.iter().enumerate() {
            trie.insert(p, (i % 200) as u8);
        }
        for start in 0..text.len() {
            let mut got: Vec<(u8, usize)> = Vec::new();
            trie.matches_at(&text, start, |c, l| got.push((c, l)));
            let mut want: Vec<(u8, usize)> = unique
                .iter()
                .enumerate()
                .filter(|(_, p)| text[start..].starts_with(p))
                .map(|(i, p)| ((i % 200) as u8, p.len()))
                .collect();
            want.sort_by_key(|&(_, l)| l);
            got.sort_by_key(|&(_, l)| l);
            prop_assert_eq!(got, want, "start {}", start);
        }
    }

    /// DP cost equals brute-force optimal cost on short inputs.
    #[test]
    fn sp_cost_is_optimal(
        patterns in proptest::collection::vec(arb_pattern(), 1..8),
        text in proptest::collection::vec(
            prop_oneof![Just(b'A'), Just(b'B'), Just(b'C')], 0..14),
    ) {
        let mut unique: Vec<Vec<u8>> = Vec::new();
        for p in patterns {
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        let mut trie = Trie::new();
        for (i, p) in unique.iter().enumerate() {
            trie.insert(p, 33 + (i as u8));
        }
        let mut scratch = SpScratch::new();
        let got = encode_cost(&trie, &text, SpAlgorithm::BackwardDp, &mut scratch);

        // Brute force: exhaustive DP with explicit recursion.
        fn brute(text: &[u8], i: usize, pats: &[Vec<u8>], memo: &mut Vec<Option<usize>>) -> usize {
            if i == text.len() {
                return 0;
            }
            if let Some(v) = memo[i] {
                return v;
            }
            let mut best = 2 + brute(text, i + 1, pats, memo);
            for p in pats {
                if text[i..].starts_with(p) {
                    best = best.min(1 + brute(text, i + p.len(), pats, memo));
                }
            }
            memo[i] = Some(best);
            best
        }
        let mut memo = vec![None; text.len() + 1];
        let want = brute(&text, 0, &unique, &mut memo);
        prop_assert_eq!(got, want);
    }

    /// Dictionary text format round-trips arbitrary byte patterns.
    #[test]
    fn dict_format_roundtrip(
        raw_patterns in proptest::collection::vec(
            proptest::collection::vec(any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 1..16),
            0..50),
    ) {
        // Dedup to keep code assignment unambiguous.
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        for p in raw_patterns {
            if !patterns.contains(&p) {
                patterns.push(p);
            }
        }
        let dict = Dictionary::from_patterns(
            Prepopulation::SmilesAlphabet, &patterns, 1, 16, false).unwrap();
        let text = format::to_string(&dict);
        prop_assert!(text.is_ascii());
        let back = format::read_dict(text.as_bytes()).unwrap();
        let a: Vec<_> = dict.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        let b: Vec<_> = back.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        prop_assert_eq!(a, b);
    }

    /// Any wide dictionary round-trips any input line exactly (escaping
    /// covers bytes no pattern matches), and never expands input covered
    /// by identity codes.
    #[test]
    fn wide_codec_roundtrip(
        raw_patterns in proptest::collection::vec(
            proptest::collection::vec(any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 1..16),
            0..300),
        line in proptest::collection::vec(
            any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 0..80),
    ) {
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        for p in raw_patterns {
            if !patterns.contains(&p) {
                patterns.push(p);
            }
        }
        let dict = WideDictionary::from_patterns(
            Prepopulation::SmilesAlphabet, &patterns, 1, 16, false, 1776).unwrap();
        let mut z = Vec::new();
        let (n, _) = WideCompressor::new(&dict)
            .with_preprocess(false)
            .compress_line(&line, &mut z);
        prop_assert_eq!(n, z.len());
        prop_assert!(n <= 2 * line.len(), "worst case is all escapes");
        let mut back = Vec::new();
        WideDecompressor::new(&dict).decompress_line(&z, &mut back).unwrap();
        prop_assert_eq!(back, line);
    }

    /// The wide serialization format round-trips arbitrary dictionaries.
    #[test]
    fn wide_format_roundtrip(
        raw_patterns in proptest::collection::vec(
            proptest::collection::vec(any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 1..16),
            0..260),
    ) {
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        for p in raw_patterns {
            if !patterns.contains(&p) {
                patterns.push(p);
            }
        }
        let dict = WideDictionary::from_patterns(
            Prepopulation::SmilesAlphabet, &patterns, 1, 16, false, 1776).unwrap();
        let mut buf = Vec::new();
        zsmiles_core::wide::write_wide_dict(&dict, &mut buf).unwrap();
        prop_assert!(buf.is_ascii());
        let back = zsmiles_core::wide::read_wide_dict(&buf[..]).unwrap();
        let a: Vec<_> = dict.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        let b: Vec<_> = back.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        prop_assert_eq!(a, b);
    }

    /// With the same patterns, the wide codec never compresses worse than
    /// the base codec on lines the base dictionary already handles — the
    /// extra code space can only help (both engines are optimal per line).
    #[test]
    fn wide_never_loses_to_base_with_same_patterns(
        raw_patterns in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(b'A'), Just(b'B'), Just(b'C')], 1..8),
            0..30),
        line in proptest::collection::vec(
            prop_oneof![Just(b'A'), Just(b'B'), Just(b'C'), Just(b'D')], 0..60),
    ) {
        let mut patterns: Vec<Vec<u8>> = Vec::new();
        for p in raw_patterns {
            if !patterns.contains(&p) {
                patterns.push(p);
            }
        }
        // Few patterns: every pattern fits the base region of both, so the
        // wide engine sees a superset... actually the identical set. Its
        // optimum can only match the base optimum (page bytes unused).
        let base = Dictionary::from_patterns(
            Prepopulation::SmilesAlphabet, &patterns, 1, 16, false).unwrap();
        let wide = WideDictionary::from_patterns(
            Prepopulation::SmilesAlphabet, &patterns, 1, 16, false, 1776).unwrap();
        let mut zb = Vec::new();
        zsmiles_core::Compressor::new(&base)
            .with_preprocess(false)
            .compress_line(&line, &mut zb);
        let mut zw = Vec::new();
        WideCompressor::new(&wide)
            .with_preprocess(false)
            .compress_line(&line, &mut zw);
        prop_assert_eq!(zw.len(), zb.len(), "same patterns, same optimum");
    }

    /// The dense automaton reports byte-for-byte the matches of the node
    /// trie it was compiled from, and the encoder therefore emits
    /// byte-identical streams through either matcher.
    #[test]
    fn dense_automaton_identical_to_node_trie(
        patterns in proptest::collection::vec(arb_pattern(), 1..24),
        text in arb_text(),
    ) {
        let mut unique: Vec<Vec<u8>> = Vec::new();
        for p in patterns {
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        let mut trie = Trie::new();
        for (i, p) in unique.iter().enumerate() {
            trie.insert(p, (i % 200) as u8);
        }
        let auto = DenseAutomaton::compile(&trie);
        prop_assert_eq!(auto.len(), trie.len());
        prop_assert_eq!(auto.max_depth(), trie.max_depth());
        for start in 0..text.len() {
            let mut got: Vec<(u8, usize)> = Vec::new();
            auto.matches_at(&text, start, |c, l| got.push((c, l)));
            let mut want: Vec<(u8, usize)> = Vec::new();
            trie.matches_at(&text, start, |c, l| want.push((c, l)));
            prop_assert_eq!(got, want, "start {}", start);
            prop_assert_eq!(
                auto.longest_match_at(&text, start),
                trie.longest_match_at(&text, start),
                "start {}", start
            );
        }
        for p in &unique {
            prop_assert_eq!(auto.get(p), trie.get(p));
        }
        // Encoder byte-identity through both matchers, both algorithms.
        for algo in [SpAlgorithm::BackwardDp, SpAlgorithm::Dijkstra] {
            let mut s1 = SpScratch::new();
            let mut s2 = SpScratch::new();
            let mut via_trie = Vec::new();
            let mut via_auto = Vec::new();
            let ct = encode_line(&trie, &text, algo, &mut s1, &mut via_trie);
            let ca = encode_line(&auto, &text, algo, &mut s2, &mut via_auto);
            prop_assert_eq!(ct, ca, "{:?} cost", algo);
            prop_assert_eq!(&via_trie, &via_auto, "{:?} bytes", algo);
        }
    }

    /// The wide flavour's dense automaton is pinned against its node trie
    /// exactly like the base one: identical matches at the 16-bit payload
    /// width, and byte-identical streams out of the wide DP through
    /// either matcher.
    #[test]
    fn wide_dense_automaton_identical_to_node_trie(
        patterns in proptest::collection::vec(arb_pattern(), 1..24),
        text in arb_text(),
    ) {
        let mut unique: Vec<Vec<u8>> = Vec::new();
        for p in patterns {
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        let dict = WideDictionary::from_patterns(
            Prepopulation::SmilesAlphabet, &unique, 1, 16, false, 1776).unwrap();
        let trie = dict.trie();
        let auto = dict.automaton();
        prop_assert_eq!(auto.len(), trie.len());
        prop_assert_eq!(auto.max_depth(), trie.max_depth());
        for start in 0..text.len() {
            let mut got: Vec<(u16, usize)> = Vec::new();
            auto.matches_at(&text, start, |c, l| got.push((c, l)));
            let mut want: Vec<(u16, usize)> = Vec::new();
            trie.matches_at(&text, start, |c, l| want.push((c, l)));
            prop_assert_eq!(got, want, "start {}", start);
        }
        let mut via_auto = Vec::new();
        WideCompressor::new(&dict)
            .with_preprocess(false)
            .compress_line(&text, &mut via_auto);
        let mut via_trie = Vec::new();
        WideCompressor::new(&dict)
            .with_preprocess(false)
            .with_matcher(zsmiles_core::MatcherKind::NodeTrie)
            .compress_line(&text, &mut via_trie);
        prop_assert_eq!(&via_auto, &via_trie, "wide DP bytes");
        // And the stream still decodes.
        let mut back = Vec::new();
        WideDecompressor::new(&dict).decompress_line(&via_auto, &mut back).unwrap();
        prop_assert_eq!(&back, &text);
    }

    /// Worker-pool parallel compress/decompress is byte-identical to the
    /// serial engine across odd thread counts, including inputs with
    /// interior blank lines (which the buffer loops skip).
    #[test]
    fn parallel_identical_to_serial_any_thread_count(
        raw_lines in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(b'A'), Just(b'B'), Just(b'C'), Just(b'D')], 0..20),
            0..40),
    ) {
        let dict = Dictionary::from_patterns(
            Prepopulation::SmilesAlphabet,
            [b"AB".as_slice(), b"ABC", b"CCA", b"DD", b"BCD"],
            1, 16, false,
        ).unwrap();
        // Empty inner vecs become interior blank lines.
        let mut input = Vec::new();
        for l in &raw_lines {
            input.extend_from_slice(l);
            input.push(b'\n');
        }
        let mut serial_z = Vec::new();
        let s_stats = zsmiles_core::Compressor::new(&dict)
            .compress_buffer(&input, &mut serial_z);
        let mut serial_back = Vec::new();
        let d_stats = zsmiles_core::Decompressor::new(&dict)
            .decompress_buffer(&serial_z, &mut serial_back).unwrap();
        for threads in [1usize, 3, 7] {
            let (par_z, pc) = zsmiles_core::compress_parallel(
                &dict, &input, SpAlgorithm::BackwardDp, threads);
            prop_assert_eq!(&par_z, &serial_z, "compress threads={}", threads);
            prop_assert_eq!(pc, s_stats, "compress stats threads={}", threads);
            let (par_back, pd) = zsmiles_core::decompress_parallel(
                &dict, &serial_z, threads).unwrap();
            prop_assert_eq!(&par_back, &serial_back, "decompress threads={}", threads);
            prop_assert_eq!(pd, d_stats, "decompress stats threads={}", threads);
        }
    }

    /// The byte-class compact automaton is pinned against both the node
    /// trie and the dense automaton on arbitrary byte text — including
    /// bytes outside the dictionary alphabet, which all share the dead
    /// class — and the encoder emits byte-identical streams through it.
    #[test]
    fn compact_automaton_identical_to_trie_and_dense(
        patterns in proptest::collection::vec(arb_pattern(), 1..24),
        text in proptest::collection::vec(any::<u8>(), 0..60),
    ) {
        let mut unique: Vec<Vec<u8>> = Vec::new();
        for p in patterns {
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        let mut trie = Trie::new();
        for (i, p) in unique.iter().enumerate() {
            trie.insert(p, (i % 200) as u8);
        }
        let dense = DenseAutomaton::compile(&trie);
        let compact = CompactAutomaton::compile(&trie);
        prop_assert!(compact.is_narrow(), "small tries stay u16");
        prop_assert_eq!(compact.states(), dense.states());
        prop_assert_eq!(compact.len(), trie.len());
        prop_assert_eq!(compact.max_depth(), trie.max_depth());
        for start in 0..text.len() {
            let mut got: Vec<(u8, usize)> = Vec::new();
            compact.matches_at(&text, start, |c, l| got.push((c, l)));
            let mut want: Vec<(u8, usize)> = Vec::new();
            trie.matches_at(&text, start, |c, l| want.push((c, l)));
            prop_assert_eq!(got, want, "start {}", start);
            prop_assert_eq!(
                compact.longest_match_at(&text, start),
                trie.longest_match_at(&text, start),
                "start {}", start
            );
        }
        for p in &unique {
            prop_assert_eq!(compact.get(p), trie.get(p));
        }
        // Encoder byte-identity through the monomorphized view dispatch.
        for algo in [SpAlgorithm::BackwardDp, SpAlgorithm::Dijkstra] {
            let mut s1 = SpScratch::new();
            let mut s2 = SpScratch::new();
            let mut via_dense = Vec::new();
            let mut via_compact = Vec::new();
            let cd = encode_line(&dense, &text, algo, &mut s1, &mut via_dense);
            let cc = match compact.view() {
                CompactLayout::Narrow(v) =>
                    encode_line(&v, &text, algo, &mut s2, &mut via_compact),
                CompactLayout::Wide(v) =>
                    encode_line(&v, &text, algo, &mut s2, &mut via_compact),
            };
            prop_assert_eq!(cd, cc, "{:?} cost", algo);
            prop_assert_eq!(&via_dense, &via_compact, "{:?} bytes", algo);
        }
    }

    /// The wide flavour's compact automaton is pinned against its node
    /// trie at the 16-bit payload width, and the wide DP emits
    /// byte-identical streams through every matcher kind.
    #[test]
    fn wide_compact_identical_to_node_trie(
        patterns in proptest::collection::vec(arb_pattern(), 1..24),
        text in proptest::collection::vec(any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 0..60),
    ) {
        let mut unique: Vec<Vec<u8>> = Vec::new();
        for p in patterns {
            if !unique.contains(&p) {
                unique.push(p);
            }
        }
        let dict = WideDictionary::from_patterns(
            Prepopulation::SmilesAlphabet, &unique, 1, 16, false, 1776).unwrap();
        let trie = dict.trie();
        let compact = dict.compact();
        prop_assert_eq!(compact.len(), trie.len());
        for start in 0..text.len() {
            let mut got: Vec<(u16, usize)> = Vec::new();
            compact.matches_at(&text, start, |c, l| got.push((c, l)));
            let mut want: Vec<(u16, usize)> = Vec::new();
            trie.matches_at(&text, start, |c, l| want.push((c, l)));
            prop_assert_eq!(got, want, "start {}", start);
        }
        let mut via_compact = Vec::new();
        WideCompressor::new(&dict)
            .with_preprocess(false)
            .compress_line(&text, &mut via_compact);
        for kind in [MatcherKind::DenseAutomaton, MatcherKind::NodeTrie] {
            let mut via_other = Vec::new();
            WideCompressor::new(&dict)
                .with_preprocess(false)
                .with_matcher(kind)
                .compress_line(&text, &mut via_other);
            prop_assert_eq!(&via_compact, &via_other, "{:?} bytes", kind);
        }
        let mut back = Vec::new();
        WideDecompressor::new(&dict).decompress_line(&via_compact, &mut back).unwrap();
        prop_assert_eq!(&back, &text);
    }

    /// The fused batched DP emits exactly the serial per-line stream at
    /// every group size, including groups holding empty lines.
    #[test]
    fn batched_encode_identical_to_serial_any_group_size(
        raw_lines in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(b'A'), Just(b'B'), Just(b'C'), Just(b'D')], 0..20),
            0..24),
    ) {
        let dict = Dictionary::from_patterns(
            Prepopulation::SmilesAlphabet,
            [b"AB".as_slice(), b"ABC", b"CCA", b"DD", b"BCD"],
            1, 16, false,
        ).unwrap();
        let compact = dict.compact();
        let lines: Vec<&[u8]> = raw_lines.iter().map(|l| l.as_slice()).collect();
        let mut scratch = SpScratch::new();
        let mut serial = Vec::new();
        let mut serial_payload = 0usize;
        for line in &lines {
            serial_payload += match compact.view() {
                CompactLayout::Narrow(v) =>
                    encode_line(&v, line, SpAlgorithm::BackwardDp, &mut scratch, &mut serial),
                CompactLayout::Wide(v) =>
                    encode_line(&v, line, SpAlgorithm::BackwardDp, &mut scratch, &mut serial),
            };
            serial.push(LINE_SEP);
        }
        for k in [1usize, 3, 8] {
            let mut batched = Vec::new();
            let mut payload = 0usize;
            for group in lines.chunks(k) {
                payload += match compact.view() {
                    CompactLayout::Narrow(v) =>
                        encode_lines_batched(&v, group, &mut scratch, &mut batched),
                    CompactLayout::Wide(v) =>
                        encode_lines_batched(&v, group, &mut scratch, &mut batched),
                };
            }
            prop_assert_eq!(&batched, &serial, "group size {}", k);
            prop_assert_eq!(payload, serial_payload, "group size {}", k);
        }
        // And the full pipeline: the default (compact, batched) buffer
        // path is byte-identical to the serial node-trie path, interior
        // blank lines included.
        let mut input = Vec::new();
        for l in &raw_lines {
            input.extend_from_slice(l);
            input.push(b'\n');
        }
        let mut z_compact = Vec::new();
        let s_compact = zsmiles_core::Compressor::new(&dict)
            .compress_buffer(&input, &mut z_compact);
        for kind in [MatcherKind::DenseAutomaton, MatcherKind::NodeTrie] {
            let mut z_other = Vec::new();
            let s_other = zsmiles_core::Compressor::new(&dict)
                .with_matcher(kind)
                .compress_buffer(&input, &mut z_other);
            prop_assert_eq!(&z_compact, &z_other, "{:?} buffer bytes", kind);
            prop_assert_eq!(s_compact, s_other, "{:?} buffer stats", kind);
        }
    }

    /// LineIndex finds exactly the lines a split() does.
    #[test]
    fn line_index_equals_split(
        lines in proptest::collection::vec(
            proptest::collection::vec(
                any::<u8>().prop_filter("no nl", |&b| b != b'\n'), 1..30),
            0..30),
    ) {
        let mut buf = Vec::new();
        for l in &lines {
            buf.extend_from_slice(l);
            buf.push(b'\n');
        }
        let idx = LineIndex::build(&buf);
        prop_assert_eq!(idx.len(), lines.len());
        for (i, l) in lines.iter().enumerate() {
            prop_assert_eq!(idx.line(&buf, i), l.as_slice(), "line {}", i);
        }
    }
}

/// A synthetic wide-payload trie big enough to overflow u16 state ids
/// forces the u32 fallback layout — and stays match- and byte-identical
/// to the node trie there. (Not a proptest: the ~77k-state compile is
/// too heavy to repeat per case, and the interesting property is the
/// single layout cliff.)
#[test]
fn compact_u32_fallback_identical_to_trie() {
    let mut trie: Trie<u16> = Trie::new();
    let mut id = 0u16;
    for a in 0..50u8 {
        for b in 0..50u8 {
            for c in 0..30u8 {
                trie.insert(&[a, b.wrapping_add(100), c.wrapping_add(200)], id);
                id = id.wrapping_add(1);
            }
        }
    }
    let compact = CompactAutomaton::compile(&trie);
    assert!(!compact.is_narrow(), "state count must overflow u16");
    assert!(compact.states() > u16::MAX as usize + 1);
    // A text walking real patterns, near-misses, and out-of-alphabet
    // bytes (50..100 are never first bytes; 0xF0+ never appear at all).
    let mut text = Vec::new();
    for i in 0..400u32 {
        text.push((i % 50) as u8);
        text.push(100 + (i % 50) as u8);
        text.push(200 + (i % 30) as u8);
        if i % 7 == 0 {
            text.push(0xF3);
        }
        if i % 11 == 0 {
            text.push(60);
        }
    }
    for start in 0..text.len() {
        let mut got: Vec<(u16, usize)> = Vec::new();
        compact.matches_at(&text, start, |c, l| got.push((c, l)));
        let mut want: Vec<(u16, usize)> = Vec::new();
        trie.matches_at(&text, start, |c, l| want.push((c, l)));
        assert_eq!(got, want, "start {start}");
        assert_eq!(
            compact.longest_match_at(&text, start),
            trie.longest_match_at(&text, start),
            "start {start}"
        );
    }
}
