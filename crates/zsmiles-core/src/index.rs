//! Line-offset index for O(1) random access into `.zsmi` (or `.smi`)
//! buffers — the use case the whole design serves: domain experts sample a
//! small subset of a huge archive without decompressing it.
//!
//! The index is a sidecar (`.zsx`): a small binary table of per-line
//! `(start, end)` byte ranges. The archive itself stays readable text;
//! only the *optional* accelerator is binary (rebuilding it is a single
//! scan, so it can always be regenerated from the archive).
//!
//! Range ends are stored **exactly** (newline excluded), so
//! [`LineIndex::line_range`] is authoritative on its own: a reader that
//! has only the index — the out-of-core [`crate::reader::ArchiveReader`]
//! path — can issue a byte-range read for precisely one line without ever
//! scanning the buffer for the newline. Earlier wire versions derived
//! interior ends from the next line's start, which overshot across blank
//! lines and forced a defensive re-trim in `line()`.

use crate::decompress::Decompressor;
use crate::dict::Dictionary;
use crate::error::ZsmilesError;
use std::io::{Read, Write};
use std::path::Path;

/// Version 1 wire format: starts only, no trailing-newline flag (readers
/// must assume the buffer ended with a newline). Still accepted on read.
const MAGIC_V1: &[u8; 8] = b"ZSXIDX01";
/// Version 2 wire format: starts plus one flag byte recording whether the
/// indexed buffer ended with a newline. Still accepted on read.
const MAGIC_V2: &[u8; 8] = b"ZSXIDX02";
/// Version 3 wire format: exact `(start, end)` pairs per line, so every
/// line's range — interior or final, blank neighbours or not — is stored
/// rather than derived.
const MAGIC_V3: &[u8; 8] = b"ZSXIDX03";

/// Exact byte ranges of non-empty lines in a newline-separated buffer.
#[derive(Debug, Clone, Default)]
pub struct LineIndex {
    starts: Vec<u64>,
    /// End (exclusive, newline excluded) of each line.
    ends: Vec<u64>,
    /// Total buffer length the index describes.
    total: u64,
    /// Whether `ends` are exact (built by scan or read from a v3 file) or
    /// derived from starts by a legacy v1/v2 reader. Derived ends can be
    /// wrong for buffers with interior blank lines or a missing trailing
    /// newline, so [`LineIndex::line`] keeps the old defensive re-trim
    /// for them — and only for them.
    exact_ends: bool,
}

/// Equality is over the described ranges, not over how they were learned:
/// an index read from a legacy sidecar equals a freshly built one whenever
/// they agree on every line's range.
impl PartialEq for LineIndex {
    fn eq(&self, other: &Self) -> bool {
        self.starts == other.starts && self.ends == other.ends && self.total == other.total
    }
}

impl Eq for LineIndex {}

impl LineIndex {
    /// Scan a buffer and index every non-empty line with exact ends.
    pub fn build(buf: &[u8]) -> LineIndex {
        let mut starts = Vec::new();
        let mut ends = Vec::new();
        let mut in_line = false;
        for (i, &b) in buf.iter().enumerate() {
            if b == b'\n' {
                if in_line {
                    ends.push(i as u64);
                    in_line = false;
                }
            } else if !in_line {
                starts.push(i as u64);
                in_line = true;
            }
        }
        if in_line {
            ends.push(buf.len() as u64);
        }
        LineIndex {
            starts,
            ends,
            total: buf.len() as u64,
            exact_ends: true,
        }
    }

    /// Extend the index with one more scanned chunk of the buffer it
    /// describes — the incremental form of [`LineIndex::build`] for
    /// writers that stream the payload and never hold it whole
    /// ([`crate::writer::ArchiveWriter`]). Chunks must arrive in order
    /// and **end on a line boundary** (the last byte is a newline, or the
    /// chunk is the final one): a line may not straddle two calls.
    ///
    /// Building `LineIndex::build(a ‖ b)` and
    /// `{ i.append_scan(a); i.append_scan(b) }` agree whenever `a` ends
    /// with a newline — the invariant every compressed chunk satisfies
    /// (the encoder terminates every line it emits).
    pub fn append_scan(&mut self, chunk: &[u8]) {
        debug_assert!(
            self.exact_ends || self.is_empty(),
            "cannot append to an index with derived (legacy v1/v2) ends"
        );
        self.exact_ends = true;
        let base = self.total;
        let mut in_line = false;
        let mut start = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            if b == b'\n' {
                if in_line {
                    self.starts.push(base + start);
                    self.ends.push(base + i as u64);
                    in_line = false;
                }
            } else if !in_line {
                start = i as u64;
                in_line = true;
            }
        }
        if in_line {
            self.starts.push(base + start);
            self.ends.push(base + chunk.len() as u64);
        }
        self.total += chunk.len() as u64;
    }

    /// Number of indexed lines.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Length in bytes of the buffer the index describes.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Exact byte range of line `i` (newline excluded).
    pub fn line_range(&self, i: usize) -> std::ops::Range<usize> {
        self.starts[i] as usize..self.ends[i] as usize
    }

    /// Slice line `i` out of the buffer the index was built from. With
    /// exact ends (built, or read from a v3 file) this is a plain slice —
    /// no newline scan. Indexes loaded from legacy v1/v2 sidecars carry
    /// *derived* ends, which can disagree with the buffer (interior blank
    /// lines, missing trailing newline), so they keep the historical
    /// defensive re-trim.
    pub fn line<'a>(&self, buf: &'a [u8], i: usize) -> &'a [u8] {
        let r = self.line_range(i);
        if self.exact_ends {
            return &buf[r];
        }
        let s = &buf[r.start..];
        match s.iter().position(|&b| b == b'\n') {
            Some(n) => &s[..n],
            None => s,
        }
    }

    /// Decompress exactly one line of a compressed archive.
    pub fn decompress_line_at(
        &self,
        dict: &Dictionary,
        buf: &[u8],
        i: usize,
    ) -> Result<Vec<u8>, ZsmilesError> {
        let mut out = Vec::new();
        Decompressor::new(dict).decompress_line(self.line(buf, i), &mut out)?;
        Ok(out)
    }

    /// Serialize as a `.zsx` sidecar (version 3 format: exact ranges).
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(MAGIC_V3)?;
        w.write_all(&(self.starts.len() as u64).to_le_bytes())?;
        w.write_all(&self.total.to_le_bytes())?;
        for (&s, &e) in self.starts.iter().zip(&self.ends) {
            w.write_all(&s.to_le_bytes())?;
            w.write_all(&e.to_le_bytes())?;
        }
        Ok(())
    }

    /// Parse a `.zsx` sidecar, any version.
    ///
    /// v1/v2 files carry only line starts; their ends are reconstructed
    /// the way those formats were always interpreted (interior end = next
    /// start minus one separator, final end from the trailing-newline
    /// flag). That reconstruction is exact for buffers without interior
    /// blank lines — the invariant every compressed payload satisfies.
    pub fn read_from<R: Read>(mut r: R) -> Result<LineIndex, ZsmilesError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let version = match &magic {
            m if m == MAGIC_V3 => 3,
            m if m == MAGIC_V2 => 2,
            m if m == MAGIC_V1 => 1,
            _ => {
                return Err(ZsmilesError::DictFormat {
                    line: 0,
                    reason: "not a ZSX index file".into(),
                })
            }
        };
        let mut n8 = [0u8; 8];
        r.read_exact(&mut n8)?;
        let n = u64::from_le_bytes(n8) as usize;
        r.read_exact(&mut n8)?;
        let total = u64::from_le_bytes(n8);

        // `n` is untrusted input: pre-allocating it verbatim lets a
        // corrupted count abort the process before read_exact can fail.
        // Cap the hint — the vectors grow normally past it.
        let cap = n.min(1 << 20);

        if version == 3 {
            let mut starts = Vec::with_capacity(cap);
            let mut ends = Vec::with_capacity(cap);
            let mut prev_end = 0u64;
            for i in 0..n {
                r.read_exact(&mut n8)?;
                let s = u64::from_le_bytes(n8);
                r.read_exact(&mut n8)?;
                let e = u64::from_le_bytes(n8);
                // Ranges are non-empty, in-bounds, and strictly ordered
                // with at least one separator byte between lines; anything
                // else would arm a reversed or out-of-bounds slice.
                if s >= e || e > total || (i > 0 && s <= prev_end) {
                    return Err(ZsmilesError::DictFormat {
                        line: 0,
                        reason: "corrupt index: offsets not monotonic".into(),
                    });
                }
                starts.push(s);
                ends.push(e);
                prev_end = e;
            }
            return Ok(LineIndex {
                starts,
                ends,
                total,
                exact_ends: true,
            });
        }

        let trailing_newline = if version == 2 {
            let mut flag = [0u8; 1];
            r.read_exact(&mut flag)?;
            flag[0] != 0
        } else {
            true
        };
        let mut starts = Vec::with_capacity(cap);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            r.read_exact(&mut n8)?;
            let v = u64::from_le_bytes(n8);
            // Strictly increasing: equal consecutive starts would yield a
            // reversed (or underflowing) line_range downstream.
            if prev.is_some_and(|p| v <= p) || v >= total.max(1) {
                return Err(ZsmilesError::DictFormat {
                    line: 0,
                    reason: "corrupt index: offsets not monotonic".into(),
                });
            }
            starts.push(v);
            prev = Some(v);
        }
        let mut ends = Vec::with_capacity(cap);
        for i in 0..n {
            ends.push(match starts.get(i + 1) {
                Some(&next) => next - 1,
                None => total - trailing_newline as u64,
            });
        }
        Ok(LineIndex {
            starts,
            ends,
            total,
            exact_ends: false,
        })
    }

    pub fn save(&self, path: &Path) -> Result<(), ZsmilesError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))?;
        Ok(())
    }

    pub fn load(path: &Path) -> Result<LineIndex, ZsmilesError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::dict::builder::DictBuilder;

    #[test]
    fn build_and_slice() {
        let buf = b"CCO\nc1ccccc1\nN\n";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.line(buf, 0), b"CCO");
        assert_eq!(idx.line(buf, 1), b"c1ccccc1");
        assert_eq!(idx.line(buf, 2), b"N");
        assert_eq!(idx.total_bytes(), buf.len() as u64);
    }

    #[test]
    fn append_scan_matches_whole_buffer_build() {
        let buf = b"CCO\n\n\nc1ccccc1\nN\nCC(C)O\n";
        let whole = LineIndex::build(buf);
        // Every split into line-aligned chunks agrees with the one-shot
        // scan, including empty chunks and blank-line-only chunks.
        let cuts: &[&[usize]] = &[&[], &[4], &[4, 5, 6], &[15], &[4, 15, 17], &[24]];
        for cut in cuts {
            let mut idx = LineIndex::default();
            let mut prev = 0;
            for &c in cut.iter() {
                idx.append_scan(&buf[prev..c]);
                prev = c;
            }
            idx.append_scan(&buf[prev..]);
            assert_eq!(idx, whole, "cuts={cut:?}");
            assert_eq!(idx.total_bytes(), whole.total_bytes());
            assert_eq!(idx.line(buf, 1), b"c1ccccc1");
        }
        // A final chunk without a trailing newline closes the last line.
        let tail = b"CCO\nCC";
        let mut idx = LineIndex::default();
        idx.append_scan(&tail[..4]);
        idx.append_scan(&tail[4..]);
        assert_eq!(idx, LineIndex::build(tail));
    }

    #[test]
    fn missing_trailing_newline() {
        let buf = b"CCO\nCC";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line(buf, 1), b"CC");
    }

    #[test]
    fn line_range_is_exact_for_final_line_without_newline() {
        // Regression: old code unconditionally trimmed one byte off the
        // last line, dropping its final real byte when the buffer did not
        // end with a newline.
        let buf = b"CCO\nCC";
        let idx = LineIndex::build(buf);
        assert_eq!(
            idx.line_range(1),
            4..6,
            "no newline: range covers the whole tail"
        );
        assert_eq!(&buf[idx.line_range(1)], b"CC");

        let buf_nl = b"CCO\nCC\n";
        let idx_nl = LineIndex::build(buf_nl);
        assert_eq!(idx_nl.line_range(1), 4..6, "newline: range excludes it");
        assert_eq!(&buf_nl[idx_nl.line_range(1)], b"CC");

        // Single line, both ways.
        assert_eq!(LineIndex::build(b"N").line_range(0), 0..1);
        assert_eq!(LineIndex::build(b"N\n").line_range(0), 0..1);
    }

    #[test]
    fn line_range_is_exact_across_interior_blank_lines() {
        // Regression (the ROADMAP open item this format closes): with
        // derived ends, the range for a line followed by blank lines
        // overshot into the separator run; line_range had to be defended
        // by a newline re-scan in line().
        let buf = b"CCO\n\n\nCC\n";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line_range(0), 0..3, "no overshoot into blank run");
        assert_eq!(&buf[idx.line_range(0)], b"CCO");
        assert_eq!(idx.line_range(1), 6..8);

        // And the exactness survives a wire round trip.
        let mut raw = Vec::new();
        idx.write_to(&mut raw).unwrap();
        let back = LineIndex::read_from(raw.as_slice()).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.line_range(0), 0..3);
    }

    #[test]
    fn v3_sidecar_round_trips_trailing_newline_or_not() {
        for buf in [b"CCO\nCC".as_slice(), b"CCO\nCC\n"] {
            let idx = LineIndex::build(buf);
            let mut raw = Vec::new();
            idx.write_to(&mut raw).unwrap();
            let back = LineIndex::read_from(raw.as_slice()).unwrap();
            assert_eq!(back, idx);
            assert_eq!(back.line_range(1), idx.line_range(1));
        }
    }

    #[test]
    fn v3_rejects_malformed_ranges() {
        let head = |n: u64, total: u64| {
            let mut raw = Vec::new();
            raw.extend_from_slice(MAGIC_V3);
            raw.extend_from_slice(&n.to_le_bytes());
            raw.extend_from_slice(&total.to_le_bytes());
            raw
        };
        // Empty range (start == end).
        let mut raw = head(1, 10);
        raw.extend_from_slice(&4u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes());
        assert!(LineIndex::read_from(raw.as_slice()).is_err());
        // End past total.
        let mut raw = head(1, 10);
        raw.extend_from_slice(&4u64.to_le_bytes());
        raw.extend_from_slice(&11u64.to_le_bytes());
        assert!(LineIndex::read_from(raw.as_slice()).is_err());
        // Overlapping lines (second starts before first ends + separator).
        let mut raw = head(2, 10);
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes());
        raw.extend_from_slice(&6u64.to_le_bytes());
        assert!(LineIndex::read_from(raw.as_slice()).is_err());
        // A well-formed pair parses.
        let mut raw = head(2, 10);
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes());
        raw.extend_from_slice(&5u64.to_le_bytes());
        raw.extend_from_slice(&10u64.to_le_bytes());
        assert_eq!(LineIndex::read_from(raw.as_slice()).unwrap().len(), 2);
    }

    #[test]
    fn v2_equal_consecutive_starts_rejected() {
        // Regression: `v < prev` accepted duplicate offsets, arming a
        // reversed line_range (start..start-1) that panics in line().
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC_V2);
        raw.extend_from_slice(&2u64.to_le_bytes());
        raw.extend_from_slice(&10u64.to_le_bytes());
        raw.push(1);
        raw.extend_from_slice(&4u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes()); // duplicate start
        assert!(LineIndex::read_from(raw.as_slice()).is_err());

        // Zero is a valid *first* start, and must stay accepted.
        let mut ok = Vec::new();
        ok.extend_from_slice(MAGIC_V2);
        ok.extend_from_slice(&2u64.to_le_bytes());
        ok.extend_from_slice(&10u64.to_le_bytes());
        ok.push(1);
        ok.extend_from_slice(&0u64.to_le_bytes());
        ok.extend_from_slice(&4u64.to_le_bytes());
        assert_eq!(LineIndex::read_from(ok.as_slice()).unwrap().len(), 2);
    }

    #[test]
    fn v2_sidecar_still_reads_with_derived_ends() {
        // A v2 file (starts + flag) for "CCO\nCC\n".
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC_V2);
        raw.extend_from_slice(&2u64.to_le_bytes()); // count
        raw.extend_from_slice(&7u64.to_le_bytes()); // total
        raw.push(1); // trailing newline
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes());
        let idx = LineIndex::read_from(raw.as_slice()).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line_range(0), 0..3);
        assert_eq!(idx.line_range(1), 4..6);
        assert_eq!(idx, LineIndex::build(b"CCO\nCC\n"));
    }

    #[test]
    fn v1_sidecar_still_reads() {
        // A v1 file (no flag byte) for "CCO\nCC\n".
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC_V1);
        raw.extend_from_slice(&2u64.to_le_bytes()); // count
        raw.extend_from_slice(&7u64.to_le_bytes()); // total
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes());
        let idx = LineIndex::read_from(raw.as_slice()).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line_range(1), 4..6, "v1 assumes newline-terminated");
    }

    #[test]
    fn empty_lines_skipped() {
        let buf = b"\n\nCCO\n\nCC\n\n";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line(buf, 0), b"CCO");
        assert_eq!(idx.line(buf, 1), b"CC");
    }

    #[test]
    fn empty_buffer() {
        let idx = LineIndex::build(b"");
        assert!(idx.is_empty());
    }

    #[test]
    fn random_access_into_compressed_archive() {
        let lines: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
        ]
        .repeat(10);
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(lines.iter().copied())
        .unwrap();
        let mut z = Vec::new();
        let mut c = Compressor::new(&dict);
        for l in &lines {
            c.compress_line(l, &mut z);
            z.push(b'\n');
        }
        let idx = LineIndex::build(&z);
        assert_eq!(idx.len(), 30);
        for i in [0usize, 7, 15, 29] {
            let got = idx.decompress_line_at(&dict, &z, i).unwrap();
            assert_eq!(got, lines[i], "line {i}");
        }
    }

    #[test]
    fn sidecar_round_trip() {
        let buf = b"CCO\nc1ccccc1\nN\n";
        let idx = LineIndex::build(buf);
        let mut raw = Vec::new();
        idx.write_to(&mut raw).unwrap();
        let back = LineIndex::read_from(raw.as_slice()).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn sidecar_rejects_garbage() {
        assert!(LineIndex::read_from(&b"NOTANIDX"[..]).is_err());
        assert!(LineIndex::read_from(&b"ZS"[..]).is_err());
        // Non-monotonic offsets (v2 wire).
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC_V2);
        raw.extend_from_slice(&2u64.to_le_bytes());
        raw.extend_from_slice(&100u64.to_le_bytes());
        raw.push(1); // trailing-newline flag
        raw.extend_from_slice(&50u64.to_le_bytes());
        raw.extend_from_slice(&10u64.to_le_bytes());
        assert!(LineIndex::read_from(raw.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let buf = b"CCO\nCC\n";
        let idx = LineIndex::build(buf);
        let path = std::env::temp_dir().join("zsmiles_test.zsx");
        idx.save(&path).unwrap();
        let back = LineIndex::load(&path).unwrap();
        assert_eq!(idx, back);
        std::fs::remove_file(&path).ok();
    }
}
