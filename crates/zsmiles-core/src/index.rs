//! Line-offset index for O(1) random access into `.zsmi` (or `.smi`)
//! buffers — the use case the whole design serves: domain experts sample a
//! small subset of a huge archive without decompressing it.
//!
//! The index is a sidecar (`.zsx`): a small binary table of line-start
//! offsets. The archive itself stays readable text; only the *optional*
//! accelerator is binary (rebuilding it is a single scan, so it can always
//! be regenerated from the archive).

use crate::decompress::Decompressor;
use crate::dict::Dictionary;
use crate::error::ZsmilesError;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ZSXIDX01";

/// Offsets of line starts in a newline-separated buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineIndex {
    starts: Vec<u64>,
    /// Total buffer length, to bound the last line.
    total: u64,
}

impl LineIndex {
    /// Scan a buffer and index every non-empty line.
    pub fn build(buf: &[u8]) -> LineIndex {
        let mut starts = Vec::new();
        let mut at_line_start = true;
        for (i, &b) in buf.iter().enumerate() {
            if at_line_start && b != b'\n' {
                starts.push(i as u64);
            }
            at_line_start = b == b'\n';
        }
        LineIndex { starts, total: buf.len() as u64 }
    }

    /// Number of indexed lines.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Byte range of line `i` (newline excluded).
    pub fn line_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.starts[i] as usize;
        let end = self
            .starts
            .get(i + 1)
            .map(|&s| s as usize - 1)
            .unwrap_or_else(|| {
                // Last line: trim one trailing newline if present.
                let mut e = self.total as usize;
                if e > start {
                    e -= 1; // this may be the newline — verified by caller slice
                }
                e
            });
        start..end
    }

    /// Slice line `i` out of the buffer the index was built from.
    pub fn line<'a>(&self, buf: &'a [u8], i: usize) -> &'a [u8] {
        let r = self.line_range(i);
        let s = &buf[r.start..];
        // Defensive: recompute the end from the actual newline so an index
        // built on a buffer without a trailing newline still works.
        match s.iter().position(|&b| b == b'\n') {
            Some(n) => &s[..n],
            None => s,
        }
    }

    /// Decompress exactly one line of a compressed archive.
    pub fn decompress_line_at(
        &self,
        dict: &Dictionary,
        buf: &[u8],
        i: usize,
    ) -> Result<Vec<u8>, ZsmilesError> {
        let mut out = Vec::new();
        Decompressor::new(dict).decompress_line(self.line(buf, i), &mut out)?;
        Ok(out)
    }

    /// Serialize as a `.zsx` sidecar.
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.starts.len() as u64).to_le_bytes())?;
        w.write_all(&self.total.to_le_bytes())?;
        for &s in &self.starts {
            w.write_all(&s.to_le_bytes())?;
        }
        Ok(())
    }

    /// Parse a `.zsx` sidecar.
    pub fn read_from<R: Read>(mut r: R) -> Result<LineIndex, ZsmilesError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ZsmilesError::DictFormat {
                line: 0,
                reason: "not a ZSX index file".into(),
            });
        }
        let mut n8 = [0u8; 8];
        r.read_exact(&mut n8)?;
        let n = u64::from_le_bytes(n8) as usize;
        r.read_exact(&mut n8)?;
        let total = u64::from_le_bytes(n8);
        let mut starts = Vec::with_capacity(n);
        let mut prev = 0u64;
        for _ in 0..n {
            r.read_exact(&mut n8)?;
            let v = u64::from_le_bytes(n8);
            if v < prev || v >= total.max(1) {
                return Err(ZsmilesError::DictFormat {
                    line: 0,
                    reason: "corrupt index: offsets not monotonic".into(),
                });
            }
            starts.push(v);
            prev = v;
        }
        Ok(LineIndex { starts, total })
    }

    pub fn save(&self, path: &Path) -> Result<(), ZsmilesError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))?;
        Ok(())
    }

    pub fn load(path: &Path) -> Result<LineIndex, ZsmilesError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::dict::builder::DictBuilder;

    #[test]
    fn build_and_slice() {
        let buf = b"CCO\nc1ccccc1\nN\n";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.line(buf, 0), b"CCO");
        assert_eq!(idx.line(buf, 1), b"c1ccccc1");
        assert_eq!(idx.line(buf, 2), b"N");
    }

    #[test]
    fn missing_trailing_newline() {
        let buf = b"CCO\nCC";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line(buf, 1), b"CC");
    }

    #[test]
    fn empty_lines_skipped() {
        let buf = b"\n\nCCO\n\nCC\n\n";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line(buf, 0), b"CCO");
        assert_eq!(idx.line(buf, 1), b"CC");
    }

    #[test]
    fn empty_buffer() {
        let idx = LineIndex::build(b"");
        assert!(idx.is_empty());
    }

    #[test]
    fn random_access_into_compressed_archive() {
        let lines: Vec<&[u8]> = [b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O"]
        .repeat(10);
        let dict = DictBuilder { min_count: 2, preprocess: false, ..Default::default() }
            .train(lines.iter().copied())
            .unwrap();
        let mut z = Vec::new();
        let mut c = Compressor::new(&dict);
        for l in &lines {
            c.compress_line(l, &mut z);
            z.push(b'\n');
        }
        let idx = LineIndex::build(&z);
        assert_eq!(idx.len(), 30);
        for i in [0usize, 7, 15, 29] {
            let got = idx.decompress_line_at(&dict, &z, i).unwrap();
            assert_eq!(got, lines[i], "line {i}");
        }
    }

    #[test]
    fn sidecar_round_trip() {
        let buf = b"CCO\nc1ccccc1\nN\n";
        let idx = LineIndex::build(buf);
        let mut raw = Vec::new();
        idx.write_to(&mut raw).unwrap();
        let back = LineIndex::read_from(raw.as_slice()).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn sidecar_rejects_garbage() {
        assert!(LineIndex::read_from(&b"NOTANIDX"[..]).is_err());
        assert!(LineIndex::read_from(&b"ZS"[..]).is_err());
        // Non-monotonic offsets.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC);
        raw.extend_from_slice(&2u64.to_le_bytes());
        raw.extend_from_slice(&100u64.to_le_bytes());
        raw.extend_from_slice(&50u64.to_le_bytes());
        raw.extend_from_slice(&10u64.to_le_bytes());
        assert!(LineIndex::read_from(raw.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let buf = b"CCO\nCC\n";
        let idx = LineIndex::build(buf);
        let path = std::env::temp_dir().join("zsmiles_test.zsx");
        idx.save(&path).unwrap();
        let back = LineIndex::load(&path).unwrap();
        assert_eq!(idx, back);
        std::fs::remove_file(&path).ok();
    }
}
