//! Line-offset index for O(1) random access into `.zsmi` (or `.smi`)
//! buffers — the use case the whole design serves: domain experts sample a
//! small subset of a huge archive without decompressing it.
//!
//! The index is a sidecar (`.zsx`): a small binary table of line-start
//! offsets. The archive itself stays readable text; only the *optional*
//! accelerator is binary (rebuilding it is a single scan, so it can always
//! be regenerated from the archive).

use crate::decompress::Decompressor;
use crate::dict::Dictionary;
use crate::error::ZsmilesError;
use std::io::{Read, Write};
use std::path::Path;

/// Version 1 wire format: no trailing-newline flag (readers must assume
/// the buffer ended with a newline). Still accepted on read.
const MAGIC_V1: &[u8; 8] = b"ZSXIDX01";
/// Version 2 wire format: adds one flag byte recording whether the indexed
/// buffer ended with a newline, so the last line's end is exact.
const MAGIC_V2: &[u8; 8] = b"ZSXIDX02";

/// Offsets of line starts in a newline-separated buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineIndex {
    starts: Vec<u64>,
    /// Total buffer length, to bound the last line.
    total: u64,
    /// Whether the indexed buffer ended with a newline. Without this the
    /// last line's range cannot be computed exactly: trimming a newline
    /// that is not there would drop the line's final real byte.
    trailing_newline: bool,
}

impl LineIndex {
    /// Scan a buffer and index every non-empty line.
    pub fn build(buf: &[u8]) -> LineIndex {
        let mut starts = Vec::new();
        let mut at_line_start = true;
        for (i, &b) in buf.iter().enumerate() {
            if at_line_start && b != b'\n' {
                starts.push(i as u64);
            }
            at_line_start = b == b'\n';
        }
        LineIndex {
            starts,
            total: buf.len() as u64,
            trailing_newline: buf.last() == Some(&b'\n'),
        }
    }

    /// Number of indexed lines.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Byte range of line `i` (newline excluded).
    pub fn line_range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.starts[i] as usize;
        let end = self
            .starts
            .get(i + 1)
            .map(|&s| s as usize - 1)
            .unwrap_or_else(|| {
                // Last line: trim the trailing newline only if the buffer
                // actually has one — otherwise the line runs to the end and
                // an unconditional `- 1` would drop its final real byte.
                (self.total as usize) - self.trailing_newline as usize
            });
        start..end
    }

    /// Slice line `i` out of the buffer the index was built from.
    pub fn line<'a>(&self, buf: &'a [u8], i: usize) -> &'a [u8] {
        let r = self.line_range(i);
        let s = &buf[r.start..];
        // Defensive: recompute the end from the actual newline so an index
        // built on a buffer without a trailing newline still works.
        match s.iter().position(|&b| b == b'\n') {
            Some(n) => &s[..n],
            None => s,
        }
    }

    /// Decompress exactly one line of a compressed archive.
    pub fn decompress_line_at(
        &self,
        dict: &Dictionary,
        buf: &[u8],
        i: usize,
    ) -> Result<Vec<u8>, ZsmilesError> {
        let mut out = Vec::new();
        Decompressor::new(dict).decompress_line(self.line(buf, i), &mut out)?;
        Ok(out)
    }

    /// Serialize as a `.zsx` sidecar (version 2 format).
    pub fn write_to<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(MAGIC_V2)?;
        w.write_all(&(self.starts.len() as u64).to_le_bytes())?;
        w.write_all(&self.total.to_le_bytes())?;
        w.write_all(&[self.trailing_newline as u8])?;
        for &s in &self.starts {
            w.write_all(&s.to_le_bytes())?;
        }
        Ok(())
    }

    /// Parse a `.zsx` sidecar (either version; v1 files carry no
    /// trailing-newline flag and are assumed newline-terminated, which is
    /// how they were always interpreted).
    pub fn read_from<R: Read>(mut r: R) -> Result<LineIndex, ZsmilesError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let v2 = &magic == MAGIC_V2;
        if !v2 && &magic != MAGIC_V1 {
            return Err(ZsmilesError::DictFormat {
                line: 0,
                reason: "not a ZSX index file".into(),
            });
        }
        let mut n8 = [0u8; 8];
        r.read_exact(&mut n8)?;
        let n = u64::from_le_bytes(n8) as usize;
        r.read_exact(&mut n8)?;
        let total = u64::from_le_bytes(n8);
        let trailing_newline = if v2 {
            let mut flag = [0u8; 1];
            r.read_exact(&mut flag)?;
            flag[0] != 0
        } else {
            true
        };
        let mut starts = Vec::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            r.read_exact(&mut n8)?;
            let v = u64::from_le_bytes(n8);
            // Strictly increasing: equal consecutive starts would yield a
            // reversed (or underflowing) line_range downstream.
            if prev.is_some_and(|p| v <= p) || v >= total.max(1) {
                return Err(ZsmilesError::DictFormat {
                    line: 0,
                    reason: "corrupt index: offsets not monotonic".into(),
                });
            }
            starts.push(v);
            prev = Some(v);
        }
        Ok(LineIndex {
            starts,
            total,
            trailing_newline,
        })
    }

    pub fn save(&self, path: &Path) -> Result<(), ZsmilesError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))?;
        Ok(())
    }

    pub fn load(path: &Path) -> Result<LineIndex, ZsmilesError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::dict::builder::DictBuilder;

    #[test]
    fn build_and_slice() {
        let buf = b"CCO\nc1ccccc1\nN\n";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.line(buf, 0), b"CCO");
        assert_eq!(idx.line(buf, 1), b"c1ccccc1");
        assert_eq!(idx.line(buf, 2), b"N");
    }

    #[test]
    fn missing_trailing_newline() {
        let buf = b"CCO\nCC";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line(buf, 1), b"CC");
    }

    #[test]
    fn line_range_is_exact_for_final_line_without_newline() {
        // Regression: the old code unconditionally trimmed one byte off
        // the last line, dropping its final real byte when the buffer did
        // not end with a newline.
        let buf = b"CCO\nCC";
        let idx = LineIndex::build(buf);
        assert_eq!(
            idx.line_range(1),
            4..6,
            "no newline: range covers the whole tail"
        );
        assert_eq!(&buf[idx.line_range(1)], b"CC");

        let buf_nl = b"CCO\nCC\n";
        let idx_nl = LineIndex::build(buf_nl);
        assert_eq!(idx_nl.line_range(1), 4..6, "newline: range excludes it");
        assert_eq!(&buf_nl[idx_nl.line_range(1)], b"CC");

        // Single line, both ways.
        assert_eq!(LineIndex::build(b"N").line_range(0), 0..1);
        assert_eq!(LineIndex::build(b"N\n").line_range(0), 0..1);
    }

    #[test]
    fn v2_sidecar_preserves_trailing_newline_flag() {
        for buf in [b"CCO\nCC".as_slice(), b"CCO\nCC\n"] {
            let idx = LineIndex::build(buf);
            let mut raw = Vec::new();
            idx.write_to(&mut raw).unwrap();
            let back = LineIndex::read_from(raw.as_slice()).unwrap();
            assert_eq!(back, idx);
            assert_eq!(back.line_range(1), idx.line_range(1));
        }
    }

    #[test]
    fn equal_consecutive_starts_rejected() {
        // Regression: `v < prev` accepted duplicate offsets, arming a
        // reversed line_range (start..start-1) that panics in line().
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC_V2);
        raw.extend_from_slice(&2u64.to_le_bytes());
        raw.extend_from_slice(&10u64.to_le_bytes());
        raw.push(1);
        raw.extend_from_slice(&4u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes()); // duplicate start
        assert!(LineIndex::read_from(raw.as_slice()).is_err());

        // Zero is a valid *first* start, and must stay accepted.
        let mut ok = Vec::new();
        ok.extend_from_slice(MAGIC_V2);
        ok.extend_from_slice(&2u64.to_le_bytes());
        ok.extend_from_slice(&10u64.to_le_bytes());
        ok.push(1);
        ok.extend_from_slice(&0u64.to_le_bytes());
        ok.extend_from_slice(&4u64.to_le_bytes());
        assert_eq!(LineIndex::read_from(ok.as_slice()).unwrap().len(), 2);
    }

    #[test]
    fn v1_sidecar_still_reads() {
        // A v1 file (no flag byte) for "CCO\nCC\n".
        let mut raw = Vec::new();
        raw.extend_from_slice(b"ZSXIDX01");
        raw.extend_from_slice(&2u64.to_le_bytes()); // count
        raw.extend_from_slice(&7u64.to_le_bytes()); // total
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&4u64.to_le_bytes());
        let idx = LineIndex::read_from(raw.as_slice()).unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line_range(1), 4..6, "v1 assumes newline-terminated");
    }

    #[test]
    fn empty_lines_skipped() {
        let buf = b"\n\nCCO\n\nCC\n\n";
        let idx = LineIndex::build(buf);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.line(buf, 0), b"CCO");
        assert_eq!(idx.line(buf, 1), b"CC");
    }

    #[test]
    fn empty_buffer() {
        let idx = LineIndex::build(b"");
        assert!(idx.is_empty());
    }

    #[test]
    fn random_access_into_compressed_archive() {
        let lines: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
        ]
        .repeat(10);
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(lines.iter().copied())
        .unwrap();
        let mut z = Vec::new();
        let mut c = Compressor::new(&dict);
        for l in &lines {
            c.compress_line(l, &mut z);
            z.push(b'\n');
        }
        let idx = LineIndex::build(&z);
        assert_eq!(idx.len(), 30);
        for i in [0usize, 7, 15, 29] {
            let got = idx.decompress_line_at(&dict, &z, i).unwrap();
            assert_eq!(got, lines[i], "line {i}");
        }
    }

    #[test]
    fn sidecar_round_trip() {
        let buf = b"CCO\nc1ccccc1\nN\n";
        let idx = LineIndex::build(buf);
        let mut raw = Vec::new();
        idx.write_to(&mut raw).unwrap();
        let back = LineIndex::read_from(raw.as_slice()).unwrap();
        assert_eq!(idx, back);
    }

    #[test]
    fn sidecar_rejects_garbage() {
        assert!(LineIndex::read_from(&b"NOTANIDX"[..]).is_err());
        assert!(LineIndex::read_from(&b"ZS"[..]).is_err());
        // Non-monotonic offsets.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC_V2);
        raw.extend_from_slice(&2u64.to_le_bytes());
        raw.extend_from_slice(&100u64.to_le_bytes());
        raw.push(1); // trailing-newline flag
        raw.extend_from_slice(&50u64.to_le_bytes());
        raw.extend_from_slice(&10u64.to_le_bytes());
        assert!(LineIndex::read_from(raw.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let buf = b"CCO\nCC\n";
        let idx = LineIndex::build(buf);
        let path = std::env::temp_dir().join("zsmiles_test.zsx");
        idx.save(&path).unwrap();
        let back = LineIndex::load(&path).unwrap();
        assert_eq!(idx, back);
        std::fs::remove_file(&path).ok();
    }
}
