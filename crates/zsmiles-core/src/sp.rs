//! Optimal per-line encoding as a shortest-path problem (paper §IV-D1).
//!
//! Each character position of the input line is a node; a dictionary
//! pattern matching at position `i` with length `ℓ` is an edge `i → i+ℓ`
//! of cost 1 (one output code); the escape fallback is an edge `i → i+1` of
//! cost 2 (escape marker + literal). The cheapest path from 0 to `n` is the
//! smallest possible compressed size for this dictionary.
//!
//! The paper runs Dijkstra. Because every edge points forward, the graph is
//! a DAG over positions, so a backward DP computes the same optimum in one
//! linear sweep without a priority queue. Both are implemented — Dijkstra
//! for paper fidelity, DP as the default engine — and property tests pin
//! them to identical costs (see `ablation_sp` for the speed difference).
//!
//! Both engines resolve cost ties identically (prefer a dictionary code
//! over an escape, then the longest pattern, then the smallest code), so
//! they emit byte-identical streams. The GPU kernels reuse the same rule,
//! which is what makes CPU/GPU outputs comparable bit-for-bit.

use crate::codec::{ESCAPE, LINE_SEP};
use crate::trie::{Matcher, RelaxKey};

/// Which shortest-path engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpAlgorithm {
    /// Backward dynamic program over the position DAG (default).
    #[default]
    BackwardDp,
    /// The paper's Dijkstra, minus the heap its position DAG never needs
    /// (see the comment in the implementation).
    Dijkstra,
}

/// One DP cell, packed so the relax tie-break is a single integer
/// compare: `cost << 16 | (0xFF - len) << 8 | code`. Minimizing the key
/// lexicographically is exactly the decision rule — smallest cost first,
/// then (via the complemented length) a dictionary code over an escape
/// and a longer pattern over a shorter one, then the smallest code.
/// `len == 0` (stored as `0xFF`) means escape.
type Cell = u64;

const CELL_COST_SHIFT: u32 = 16;
/// Escape tag: complemented length 0 in the length field, code 0.
const CELL_ESCAPE_TAG: Cell = 0xFF00;

#[inline]
fn cell_cost(cell: Cell) -> u64 {
    cell >> CELL_COST_SHIFT
}

#[inline]
fn cell_len(cell: Cell) -> usize {
    0xFF - ((cell >> 8) & 0xFF) as usize
}

#[inline]
fn cell_code(cell: Cell) -> u8 {
    (cell & 0xFF) as u8
}

/// Retired scratch allocations parked per thread, so re-minting an
/// encoder on the same thread reuses warmed buffers instead of growing
/// fresh ones. The encoder object itself cannot outlive its dictionary
/// borrow, so this is what "reusing minted encoders across parallel
/// calls" soundly means: the persistent [`crate::parallel::WorkerPool`]
/// threads keep their scratch hot, and every
/// `compress_parallel_dyn` call — e.g. each batch an
/// [`crate::writer::ArchiveWriter`] submits — re-mints into recycled
/// capacity at the cost of a thread-local pop.
const SCRATCH_STASH_CAP: usize = 8;

thread_local! {
    static SCRATCH_STASH: std::cell::RefCell<Vec<Vec<Cell>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Reusable scratch buffer; compressing a deck allocates once, and the
/// allocation is recycled through a capped thread-local stash when the
/// compressor is dropped.
#[derive(Debug, Default)]
pub struct SpScratch {
    cells: Vec<Cell>,
}

impl SpScratch {
    pub fn new() -> Self {
        SCRATCH_STASH
            .with(|s| s.borrow_mut().pop())
            .map(|cells| SpScratch { cells })
            .unwrap_or_default()
    }

    /// Ensure `n + 1` cells and zero the sink cell `n` (cost 0). The
    /// other cells are *not* cleared: the backward sweep writes cell `i`
    /// before anything reads it, so stale values from a previous line are
    /// never observed and the per-line memset is skipped.
    fn reset(&mut self, n: usize) {
        if self.cells.len() < n + 1 {
            self.cells.resize(n + 1, 0);
        }
        self.cells[n] = 0;
    }
}

impl Drop for SpScratch {
    fn drop(&mut self) {
        if self.cells.capacity() == 0 {
            return;
        }
        let entry = std::mem::take(&mut self.cells);
        // The cap keeps pathological mint/drop churn from hoarding memory.
        SCRATCH_STASH.with(|s| {
            let mut stash = s.borrow_mut();
            if stash.len() < SCRATCH_STASH_CAP {
                stash.push(entry);
            }
        });
    }
}

/// Encode `line` against `matcher` (the dictionary's [`Matcher`] — the
/// flat [`crate::trie::DenseAutomaton`] on the hot path, or the node
/// [`crate::trie::Trie`] as the reference), appending code bytes to
/// `out`. Returns the path cost (= number of appended bytes).
pub fn encode_line<M: Matcher<Code = u8>>(
    matcher: &M,
    line: &[u8],
    algo: SpAlgorithm,
    scratch: &mut SpScratch,
    out: &mut Vec<u8>,
) -> usize {
    if line.is_empty() {
        return 0;
    }
    match algo {
        SpAlgorithm::BackwardDp => backward_dp(matcher, line, scratch),
        SpAlgorithm::Dijkstra => dijkstra(matcher, line, scratch),
    }
    emit(line, scratch, out)
}

/// Cost of the optimal encoding without emitting it.
pub fn encode_cost<M: Matcher<Code = u8>>(
    matcher: &M,
    line: &[u8],
    algo: SpAlgorithm,
    scratch: &mut SpScratch,
) -> usize {
    if line.is_empty() {
        return 0;
    }
    match algo {
        SpAlgorithm::BackwardDp => backward_dp(matcher, line, scratch),
        SpAlgorithm::Dijkstra => dijkstra(matcher, line, scratch),
    }
    cell_cost(scratch.cells[0]) as usize
}

/// Lines per group of the fused encode path (see [`encode_lines_batched`]).
/// Callers stage a group's preprocessed sources at a time, so the group
/// size bounds staging-buffer growth; eight keeps that footprint small
/// while amortizing the per-call dispatch.
pub const BATCH_LINES: usize = 8;

/// Encode a batch of lines through the fused backward DP: each line's
/// match harvest and DP relaxation run in one walk (the matcher's
/// transition table stays cache-resident across the whole group).
/// The per-line decisions are exactly [`encode_line`]'s — same positions,
/// same tie-breaking — so the output is byte-identical to the serial
/// loop. (An interleaved round-robin variant that walks K DPs in lockstep
/// was measured and retired: with the compact table L1-resident there is
/// no load latency to hide, and mixing K match walks through one branch
/// predictor cost 2× on a single-core box.)
///
/// Appends each line's code bytes followed by a [`LINE_SEP`] (an empty
/// line still yields its separator — callers filter blanks, as
/// [`crate::engine::encode_buffer`] does). Returns the total payload bytes
/// appended, separators excluded. Backward-DP only: callers wanting
/// Dijkstra fall back to the per-line loop.
pub fn encode_lines_batched<M: Matcher<Code = u8>>(
    matcher: &M,
    lines: &[&[u8]],
    scratch: &mut SpScratch,
    out: &mut Vec<u8>,
) -> usize {
    let mut payload = 0;
    for line in lines {
        if !line.is_empty() {
            backward_dp(matcher, line, scratch);
            payload += emit(line, scratch, out);
        }
        out.push(LINE_SEP);
    }
    payload
}

/// The base codec's relax-key shape: a code edge costs one output byte, so
/// the candidate is `(suffix_cost + 1) << 16 | accept_word` — comparable
/// against the escape key by plain `<` (see the `Cell` ordering).
struct BaseKey;

impl RelaxKey for BaseKey {
    #[inline]
    fn key(cell: u64, acc: u32) -> u64 {
        ((1 + cell_cost(cell)) << CELL_COST_SHIFT) | acc as u64
    }
}

fn backward_dp<M: Matcher<Code = u8>>(matcher: &M, line: &[u8], s: &mut SpScratch) {
    let n = line.len();
    s.reset(n);
    for i in (0..n).rev() {
        // Escape fallback is always available. Any dictionary match packs
        // a smaller key at equal cost (see the `Cell` ordering), so the
        // relax is a plain min, folded inside the matcher's fused walk.
        let escape = ((2 + cell_cost(s.cells[i + 1])) << CELL_COST_SHIFT) | CELL_ESCAPE_TAG;
        s.cells[i] = matcher.best_relax::<BaseKey>(line, i, &s.cells[..n + 1], escape);
    }
}

fn dijkstra<M: Matcher<Code = u8>>(matcher: &M, line: &[u8], s: &mut SpScratch) {
    let n = line.len();
    s.reset(n);
    // For identical tie-breaking with the DP we run Dijkstra *backward*:
    // settle nodes from n toward 0, relaxing reverse edges, which makes the
    // per-node decision identical to the DP's.
    //
    // The paper describes a binary-heap Dijkstra, but on this graph the
    // heap is unnecessary: every edge points forward (i → j, j > i), so
    // the graph is a DAG over positions and the settle order is simply
    // n, n-1, …, 0 — each node's distance-to-sink depends only on
    // already-settled successors. A heap would pop nodes in exactly that
    // order while costing O(n log n) pushes, so no heap is kept; what
    // remains of "Dijkstra" is the settle-and-relax structure.
    for i in (0..n).rev() {
        // The escape edge is the first relax; the matcher folds the rest.
        let escape = ((2 + cell_cost(s.cells[i + 1])) << CELL_COST_SHIFT) | CELL_ESCAPE_TAG;
        s.cells[i] = matcher.best_relax::<BaseKey>(line, i, &s.cells[..n + 1], escape);
    }
}

/// Walk the line's choice chain out of the packed DP cells.
fn emit(line: &[u8], s: &SpScratch, out: &mut Vec<u8>) -> usize {
    let before = out.len();
    let mut i = 0;
    while i < line.len() {
        let cell = s.cells[i];
        let len = cell_len(cell);
        if len == 0 {
            out.push(ESCAPE);
            out.push(line[i]);
            i += 1;
        } else {
            out.push(cell_code(cell));
            i += len;
        }
    }
    out.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::{DenseAutomaton, Trie};

    fn trie(patterns: &[(&[u8], u8)]) -> Trie {
        let mut t = Trie::new();
        for (p, c) in patterns {
            t.insert(p, *c);
        }
        t
    }

    fn encode(t: &Trie, line: &[u8], algo: SpAlgorithm) -> (Vec<u8>, usize) {
        let mut scratch = SpScratch::new();
        let mut out = Vec::new();
        let cost = encode_line(t, line, algo, &mut scratch, &mut out);
        assert_eq!(cost, out.len());
        (out, cost)
    }

    #[test]
    fn empty_line_costs_nothing() {
        let t = trie(&[(b"C", 1)]);
        let (out, cost) = encode(&t, b"", SpAlgorithm::BackwardDp);
        assert!(out.is_empty());
        assert_eq!(cost, 0);
    }

    #[test]
    fn dropped_scratch_capacity_is_recycled_on_the_same_thread() {
        // Warm a scratch on a fresh thread (the shared test thread may
        // already hold stash entries), drop it, and re-mint: the new
        // scratch must inherit the warmed capacity without allocating.
        std::thread::spawn(|| {
            let mut s = SpScratch::new();
            s.reset(5_000);
            let warmed = s.cells.capacity();
            assert!(warmed >= 5_001);
            drop(s);
            let s2 = SpScratch::new();
            assert!(
                s2.cells.capacity() >= warmed,
                "re-mint reuses the retired buffer"
            );
            // The stash caps out instead of hoarding.
            let many: Vec<SpScratch> = (0..2 * SCRATCH_STASH_CAP)
                .map(|_| {
                    let mut s = SpScratch::new();
                    s.reset(16);
                    s
                })
                .collect();
            drop(many);
            SCRATCH_STASH.with(|st| assert!(st.borrow().len() <= SCRATCH_STASH_CAP));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn identity_codes_give_passthrough() {
        let t = trie(&[(b"C", b'C'), (b"O", b'O')]);
        let (out, cost) = encode(&t, b"COC", SpAlgorithm::BackwardDp);
        assert_eq!(out, b"COC");
        assert_eq!(cost, 3);
    }

    #[test]
    fn escape_when_no_match() {
        let t = trie(&[(b"C", b'C')]);
        let (out, _) = encode(&t, b"CXC", SpAlgorithm::BackwardDp);
        assert_eq!(out, b"C XC", "escape = space + literal");
    }

    #[test]
    fn longer_pattern_wins() {
        let t = trie(&[(b"C", b'C'), (b"CC", 1), (b"CCC", 2)]);
        let (out, cost) = encode(&t, b"CCC", SpAlgorithm::BackwardDp);
        assert_eq!(out, vec![2]);
        assert_eq!(cost, 1);
    }

    #[test]
    fn optimal_beats_greedy() {
        // Greedy longest-match takes "AB" then must escape "C" twice:
        // AB|C|C = 1+2+2 = 5 with dict {AB, BCC}. Optimal: A escaped + BCC
        // = 2 + 1 = 3.
        let t = trie(&[(b"AB", 1), (b"BCC", 2)]);
        let (out, cost) = encode(&t, b"ABCC", SpAlgorithm::BackwardDp);
        assert_eq!(cost, 3);
        assert_eq!(out, vec![ESCAPE, b'A', 2]);
    }

    #[test]
    fn dijkstra_equals_dp_cost_and_bytes() {
        let t = trie(&[
            (b"C", b'C'),
            (b"c", b'c'),
            (b"1", b'1'),
            (b"(", b'('),
            (b")", b')'),
            (b"=", b'='),
            (b"O", b'O'),
            (b"CC", 0x80),
            (b"c1ccccc1", 0x81),
            (b"C(=O)", 0x82),
            (b"cc", 0x83),
            (b"C(", 0x84),
        ]);
        for line in [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"c1ccccc1",
            b"CCCCCCCC",
            b"C(=O)C(=O)",
            b"XYZ",
            b"C",
            b"",
            b"CCXc1ccccc1(=O)ZZ",
        ] {
            let (a, ca) = encode(&t, line, SpAlgorithm::BackwardDp);
            let (b, cb) = encode(&t, line, SpAlgorithm::Dijkstra);
            assert_eq!(ca, cb, "cost differs on {}", String::from_utf8_lossy(line));
            assert_eq!(a, b, "bytes differ on {}", String::from_utf8_lossy(line));
        }
    }

    #[test]
    fn deterministic_tie_break_prefers_longer_then_smaller_code() {
        // "AB" via code 5 vs "AB" is impossible (one code per pattern), so
        // construct a tie between two decompositions: patterns "AB"(1) and
        // "A"(2),"B"(3): cost 1 vs 2 — no tie. Tie case: "AX"(7) at i=0 len 2
        // vs "A"(2) then "X"(4): cost 1 vs 2. For a real tie use two
        // single-byte codes at the same position — impossible. So the only
        // reachable tie is between patterns of different lengths with equal
        // downstream cost; longer must win:
        let t = trie(&[(b"A", 1), (b"AA", 2), (b"AAA", 3)]);
        // "AAAA": [AAA][A] = 2 codes; [AA][AA] = 2 codes. Longer-first picks
        // AAA at position 0.
        let (out, cost) = encode(&t, b"AAAA", SpAlgorithm::BackwardDp);
        assert_eq!(cost, 2);
        assert_eq!(out, vec![3, 1]);
        let (out2, _) = encode(&t, b"AAAA", SpAlgorithm::Dijkstra);
        assert_eq!(out, out2);
    }

    #[test]
    fn dense_automaton_encodes_identically_to_node_trie() {
        let t = trie(&[
            (b"C", b'C'),
            (b"c", b'c'),
            (b"1", b'1'),
            (b"O", b'O'),
            (b"CC", 0x80),
            (b"c1ccccc1", 0x81),
            (b"C(=O)", 0x82),
            (b"cc", 0x83),
        ]);
        let auto = DenseAutomaton::compile(&t);
        let mut s1 = SpScratch::new();
        let mut s2 = SpScratch::new();
        for algo in [SpAlgorithm::BackwardDp, SpAlgorithm::Dijkstra] {
            for line in [
                b"COc1cc(C=O)ccc1O".as_slice(),
                b"c1ccccc1",
                b"CCCCCCCC",
                b"XYZ",
                b"",
            ] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                let ca = encode_line(&t, line, algo, &mut s1, &mut a);
                let cb = encode_line(&auto, line, algo, &mut s2, &mut b);
                assert_eq!(ca, cb, "{algo:?} cost on {}", String::from_utf8_lossy(line));
                assert_eq!(a, b, "{algo:?} bytes on {}", String::from_utf8_lossy(line));
            }
        }
    }

    #[test]
    fn all_escape_doubles_length() {
        let t = Trie::new();
        let (out, cost) = encode(&t, b"CCO", SpAlgorithm::BackwardDp);
        assert_eq!(cost, 6);
        assert_eq!(out, b" C C O");
    }

    #[test]
    fn cost_only_api_matches_emit() {
        let t = trie(&[(b"CC", 1), (b"C", b'C')]);
        let mut s = SpScratch::new();
        for line in [b"CCCCC".as_slice(), b"CXXC", b""] {
            let c1 = encode_cost(&t, line, SpAlgorithm::BackwardDp, &mut s);
            let (_, c2) = encode(&t, line, SpAlgorithm::BackwardDp);
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn batched_encode_matches_serial_at_every_group_size() {
        let t = trie(&[
            (b"C", b'C'),
            (b"c", b'c'),
            (b"1", b'1'),
            (b"O", b'O'),
            (b"CC", 0x80),
            (b"c1ccccc1", 0x81),
            (b"C(=O)", 0x82),
            (b"cc", 0x83),
        ]);
        let auto = crate::trie::CompactAutomaton::compile(&t);
        let lines: Vec<&[u8]> = vec![
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"c1ccccc1",
            b"",
            b"CCCCCCCC",
            b"XYZ",
            b"C",
            b"CCXc1ccccc1(=O)ZZ",
            b"c1ccccc1c1ccccc1",
            b"OC",
        ];
        let mut s = SpScratch::new();
        for k in [1, 3, 8, lines.len()] {
            for group in lines.chunks(k) {
                let mut serial = Vec::new();
                let mut serial_payload = 0;
                for line in group {
                    serial_payload +=
                        encode_line(&auto, line, SpAlgorithm::BackwardDp, &mut s, &mut serial);
                    serial.push(LINE_SEP);
                }
                let mut batched = Vec::new();
                let n = encode_lines_batched(&auto, group, &mut s, &mut batched);
                assert_eq!(batched, serial, "K={k}");
                assert_eq!(n, serial_payload, "K={k}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_lines() {
        let t = trie(&[(b"CC", 1)]);
        let mut s = SpScratch::new();
        let mut out = Vec::new();
        encode_line(&t, b"CCCC", SpAlgorithm::BackwardDp, &mut s, &mut out);
        let l1 = out.len();
        encode_line(&t, b"CC", SpAlgorithm::BackwardDp, &mut s, &mut out);
        assert_eq!(out.len(), l1 + 1);
        encode_line(&t, b"", SpAlgorithm::BackwardDp, &mut s, &mut out);
        assert_eq!(out.len(), l1 + 1);
    }
}
