//! Optimal per-line encoding as a shortest-path problem (paper §IV-D1).
//!
//! Each character position of the input line is a node; a dictionary
//! pattern matching at position `i` with length `ℓ` is an edge `i → i+ℓ`
//! of cost 1 (one output code); the escape fallback is an edge `i → i+1` of
//! cost 2 (escape marker + literal). The cheapest path from 0 to `n` is the
//! smallest possible compressed size for this dictionary.
//!
//! The paper runs Dijkstra. Because every edge points forward, the graph is
//! a DAG over positions, so a backward DP computes the same optimum in one
//! linear sweep without a priority queue. Both are implemented — Dijkstra
//! for paper fidelity, DP as the default engine — and property tests pin
//! them to identical costs (see `ablation_sp` for the speed difference).
//!
//! Both engines resolve cost ties identically (prefer a dictionary code
//! over an escape, then the longest pattern, then the smallest code), so
//! they emit byte-identical streams. The GPU kernels reuse the same rule,
//! which is what makes CPU/GPU outputs comparable bit-for-bit.

use crate::codec::ESCAPE;
use crate::trie::Matcher;

/// Which shortest-path engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpAlgorithm {
    /// Backward dynamic program over the position DAG (default).
    #[default]
    BackwardDp,
    /// The paper's Dijkstra, minus the heap its position DAG never needs
    /// (see the comment in the implementation).
    Dijkstra,
}

/// Per-position decision, packed: `len == 0` means escape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Choice {
    code: u8,
    len: u8,
}

const ESCAPE_CHOICE: Choice = Choice { code: 0, len: 0 };

/// Retired scratch allocations parked per thread, so re-minting an
/// encoder on the same thread reuses warmed buffers instead of growing
/// fresh ones. The encoder object itself cannot outlive its dictionary
/// borrow, so this is what "reusing minted encoders across parallel
/// calls" soundly means: the persistent [`crate::parallel::WorkerPool`]
/// threads keep their scratch hot, and every
/// `compress_parallel_dyn` call — e.g. each batch an
/// [`crate::writer::ArchiveWriter`] submits — re-mints into recycled
/// capacity at the cost of a thread-local pop.
const SCRATCH_STASH_CAP: usize = 8;

thread_local! {
    static SCRATCH_STASH: std::cell::RefCell<Vec<(Vec<u32>, Vec<Choice>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Reusable scratch buffers; compressing a deck allocates once, and the
/// allocations are recycled through a capped thread-local stash when the
/// compressor is dropped.
#[derive(Debug, Default)]
pub struct SpScratch {
    dist: Vec<u32>,
    choice: Vec<Choice>,
}

impl SpScratch {
    pub fn new() -> Self {
        SCRATCH_STASH
            .with(|s| s.borrow_mut().pop())
            .map(|(dist, choice)| SpScratch { dist, choice })
            .unwrap_or_default()
    }

    fn reset(&mut self, n: usize) {
        self.dist.clear();
        self.dist.resize(n + 1, u32::MAX);
        self.choice.clear();
        self.choice.resize(n + 1, ESCAPE_CHOICE);
    }
}

impl Drop for SpScratch {
    fn drop(&mut self) {
        if self.dist.capacity() == 0 && self.choice.capacity() == 0 {
            return;
        }
        let entry = (
            std::mem::take(&mut self.dist),
            std::mem::take(&mut self.choice),
        );
        // The cap keeps pathological mint/drop churn from hoarding memory.
        SCRATCH_STASH.with(|s| {
            let mut stash = s.borrow_mut();
            if stash.len() < SCRATCH_STASH_CAP {
                stash.push(entry);
            }
        });
    }
}

/// Encode `line` against `matcher` (the dictionary's [`Matcher`] — the
/// flat [`crate::trie::DenseAutomaton`] on the hot path, or the node
/// [`crate::trie::Trie`] as the reference), appending code bytes to
/// `out`. Returns the path cost (= number of appended bytes).
pub fn encode_line<M: Matcher<Code = u8>>(
    matcher: &M,
    line: &[u8],
    algo: SpAlgorithm,
    scratch: &mut SpScratch,
    out: &mut Vec<u8>,
) -> usize {
    if line.is_empty() {
        return 0;
    }
    match algo {
        SpAlgorithm::BackwardDp => backward_dp(matcher, line, scratch),
        SpAlgorithm::Dijkstra => dijkstra(matcher, line, scratch),
    }
    emit(line, scratch, out)
}

/// Cost of the optimal encoding without emitting it.
pub fn encode_cost<M: Matcher<Code = u8>>(
    matcher: &M,
    line: &[u8],
    algo: SpAlgorithm,
    scratch: &mut SpScratch,
) -> usize {
    if line.is_empty() {
        return 0;
    }
    match algo {
        SpAlgorithm::BackwardDp => backward_dp(matcher, line, scratch),
        SpAlgorithm::Dijkstra => dijkstra(matcher, line, scratch),
    }
    scratch.dist[0] as usize
}

fn backward_dp<M: Matcher<Code = u8>>(matcher: &M, line: &[u8], s: &mut SpScratch) {
    let n = line.len();
    s.reset(n);
    s.dist[n] = 0;
    for i in (0..n).rev() {
        // Escape fallback is always available.
        let mut best_cost = 2 + s.dist[i + 1];
        let mut best = ESCAPE_CHOICE;
        matcher.matches_at(line, i, |code, len| {
            let c = 1 + s.dist[i + len];
            // Ties: prefer code over escape (strict < keeps the first
            // assignment only when cheaper, so compare against escape with
            // <=), then longer length (matches_at visits shortest first, so
            // a later equal-cost match wins with <=), then smaller code.
            if c < best_cost
                || (c == best_cost
                    && (best.len == 0
                        || len as u8 > best.len
                        || (len as u8 == best.len && code < best.code)))
            {
                best_cost = c;
                best = Choice {
                    code,
                    len: len as u8,
                };
            }
        });
        s.dist[i] = best_cost;
        s.choice[i] = best;
    }
}

fn dijkstra<M: Matcher<Code = u8>>(matcher: &M, line: &[u8], s: &mut SpScratch) {
    let n = line.len();
    s.reset(n);
    // For identical tie-breaking with the DP we run Dijkstra *backward*:
    // settle nodes from n toward 0, relaxing reverse edges, which makes the
    // per-node decision identical to the DP's.
    s.dist[n] = 0;
    // The paper describes a binary-heap Dijkstra, but on this graph the
    // heap is unnecessary: every edge points forward (i → j, j > i), so
    // the graph is a DAG over positions and the settle order is simply
    // n, n-1, …, 0 — each node's distance-to-sink depends only on
    // already-settled successors. A heap would pop nodes in exactly that
    // order while costing O(n log n) pushes, so no heap is kept; what
    // remains of "Dijkstra" is the settle-and-relax structure.
    for i in (0..n).rev() {
        let mut best_cost = u32::MAX;
        let mut best = ESCAPE_CHOICE;
        // escape edge
        let c = 2u32.saturating_add(s.dist[i + 1]);
        if c < best_cost {
            best_cost = c;
            best = ESCAPE_CHOICE;
        }
        matcher.matches_at(line, i, |code, len| {
            let c = 1u32.saturating_add(s.dist[i + len]);
            if c < best_cost
                || (c == best_cost
                    && (best.len == 0
                        || len as u8 > best.len
                        || (len as u8 == best.len && code < best.code)))
            {
                best_cost = c;
                best = Choice {
                    code,
                    len: len as u8,
                };
            }
        });
        s.dist[i] = best_cost;
        s.choice[i] = best;
    }
}

fn emit(line: &[u8], s: &SpScratch, out: &mut Vec<u8>) -> usize {
    let before = out.len();
    let mut i = 0;
    while i < line.len() {
        let ch = s.choice[i];
        if ch.len == 0 {
            out.push(ESCAPE);
            out.push(line[i]);
            i += 1;
        } else {
            out.push(ch.code);
            i += ch.len as usize;
        }
    }
    out.len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::{DenseAutomaton, Trie};

    fn trie(patterns: &[(&[u8], u8)]) -> Trie {
        let mut t = Trie::new();
        for (p, c) in patterns {
            t.insert(p, *c);
        }
        t
    }

    fn encode(t: &Trie, line: &[u8], algo: SpAlgorithm) -> (Vec<u8>, usize) {
        let mut scratch = SpScratch::new();
        let mut out = Vec::new();
        let cost = encode_line(t, line, algo, &mut scratch, &mut out);
        assert_eq!(cost, out.len());
        (out, cost)
    }

    #[test]
    fn empty_line_costs_nothing() {
        let t = trie(&[(b"C", 1)]);
        let (out, cost) = encode(&t, b"", SpAlgorithm::BackwardDp);
        assert!(out.is_empty());
        assert_eq!(cost, 0);
    }

    #[test]
    fn dropped_scratch_capacity_is_recycled_on_the_same_thread() {
        // Warm a scratch on a fresh thread (the shared test thread may
        // already hold stash entries), drop it, and re-mint: the new
        // scratch must inherit the warmed capacity without allocating.
        std::thread::spawn(|| {
            let mut s = SpScratch::new();
            s.reset(5_000);
            let warmed = s.dist.capacity();
            assert!(warmed >= 5_001);
            drop(s);
            let s2 = SpScratch::new();
            assert!(
                s2.dist.capacity() >= warmed && s2.choice.capacity() >= 5_001,
                "re-mint reuses the retired buffers"
            );
            // The stash caps out instead of hoarding.
            let many: Vec<SpScratch> = (0..2 * SCRATCH_STASH_CAP)
                .map(|_| {
                    let mut s = SpScratch::new();
                    s.reset(16);
                    s
                })
                .collect();
            drop(many);
            SCRATCH_STASH.with(|st| assert!(st.borrow().len() <= SCRATCH_STASH_CAP));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn identity_codes_give_passthrough() {
        let t = trie(&[(b"C", b'C'), (b"O", b'O')]);
        let (out, cost) = encode(&t, b"COC", SpAlgorithm::BackwardDp);
        assert_eq!(out, b"COC");
        assert_eq!(cost, 3);
    }

    #[test]
    fn escape_when_no_match() {
        let t = trie(&[(b"C", b'C')]);
        let (out, _) = encode(&t, b"CXC", SpAlgorithm::BackwardDp);
        assert_eq!(out, b"C XC", "escape = space + literal");
    }

    #[test]
    fn longer_pattern_wins() {
        let t = trie(&[(b"C", b'C'), (b"CC", 1), (b"CCC", 2)]);
        let (out, cost) = encode(&t, b"CCC", SpAlgorithm::BackwardDp);
        assert_eq!(out, vec![2]);
        assert_eq!(cost, 1);
    }

    #[test]
    fn optimal_beats_greedy() {
        // Greedy longest-match takes "AB" then must escape "C" twice:
        // AB|C|C = 1+2+2 = 5 with dict {AB, BCC}. Optimal: A escaped + BCC
        // = 2 + 1 = 3.
        let t = trie(&[(b"AB", 1), (b"BCC", 2)]);
        let (out, cost) = encode(&t, b"ABCC", SpAlgorithm::BackwardDp);
        assert_eq!(cost, 3);
        assert_eq!(out, vec![ESCAPE, b'A', 2]);
    }

    #[test]
    fn dijkstra_equals_dp_cost_and_bytes() {
        let t = trie(&[
            (b"C", b'C'),
            (b"c", b'c'),
            (b"1", b'1'),
            (b"(", b'('),
            (b")", b')'),
            (b"=", b'='),
            (b"O", b'O'),
            (b"CC", 0x80),
            (b"c1ccccc1", 0x81),
            (b"C(=O)", 0x82),
            (b"cc", 0x83),
            (b"C(", 0x84),
        ]);
        for line in [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"c1ccccc1",
            b"CCCCCCCC",
            b"C(=O)C(=O)",
            b"XYZ",
            b"C",
            b"",
            b"CCXc1ccccc1(=O)ZZ",
        ] {
            let (a, ca) = encode(&t, line, SpAlgorithm::BackwardDp);
            let (b, cb) = encode(&t, line, SpAlgorithm::Dijkstra);
            assert_eq!(ca, cb, "cost differs on {}", String::from_utf8_lossy(line));
            assert_eq!(a, b, "bytes differ on {}", String::from_utf8_lossy(line));
        }
    }

    #[test]
    fn deterministic_tie_break_prefers_longer_then_smaller_code() {
        // "AB" via code 5 vs "AB" is impossible (one code per pattern), so
        // construct a tie between two decompositions: patterns "AB"(1) and
        // "A"(2),"B"(3): cost 1 vs 2 — no tie. Tie case: "AX"(7) at i=0 len 2
        // vs "A"(2) then "X"(4): cost 1 vs 2. For a real tie use two
        // single-byte codes at the same position — impossible. So the only
        // reachable tie is between patterns of different lengths with equal
        // downstream cost; longer must win:
        let t = trie(&[(b"A", 1), (b"AA", 2), (b"AAA", 3)]);
        // "AAAA": [AAA][A] = 2 codes; [AA][AA] = 2 codes. Longer-first picks
        // AAA at position 0.
        let (out, cost) = encode(&t, b"AAAA", SpAlgorithm::BackwardDp);
        assert_eq!(cost, 2);
        assert_eq!(out, vec![3, 1]);
        let (out2, _) = encode(&t, b"AAAA", SpAlgorithm::Dijkstra);
        assert_eq!(out, out2);
    }

    #[test]
    fn dense_automaton_encodes_identically_to_node_trie() {
        let t = trie(&[
            (b"C", b'C'),
            (b"c", b'c'),
            (b"1", b'1'),
            (b"O", b'O'),
            (b"CC", 0x80),
            (b"c1ccccc1", 0x81),
            (b"C(=O)", 0x82),
            (b"cc", 0x83),
        ]);
        let auto = DenseAutomaton::compile(&t);
        let mut s1 = SpScratch::new();
        let mut s2 = SpScratch::new();
        for algo in [SpAlgorithm::BackwardDp, SpAlgorithm::Dijkstra] {
            for line in [
                b"COc1cc(C=O)ccc1O".as_slice(),
                b"c1ccccc1",
                b"CCCCCCCC",
                b"XYZ",
                b"",
            ] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                let ca = encode_line(&t, line, algo, &mut s1, &mut a);
                let cb = encode_line(&auto, line, algo, &mut s2, &mut b);
                assert_eq!(ca, cb, "{algo:?} cost on {}", String::from_utf8_lossy(line));
                assert_eq!(a, b, "{algo:?} bytes on {}", String::from_utf8_lossy(line));
            }
        }
    }

    #[test]
    fn all_escape_doubles_length() {
        let t = Trie::new();
        let (out, cost) = encode(&t, b"CCO", SpAlgorithm::BackwardDp);
        assert_eq!(cost, 6);
        assert_eq!(out, b" C C O");
    }

    #[test]
    fn cost_only_api_matches_emit() {
        let t = trie(&[(b"CC", 1), (b"C", b'C')]);
        let mut s = SpScratch::new();
        for line in [b"CCCCC".as_slice(), b"CXXC", b""] {
            let c1 = encode_cost(&t, line, SpAlgorithm::BackwardDp, &mut s);
            let (_, c2) = encode(&t, line, SpAlgorithm::BackwardDp);
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn scratch_reuse_across_lines() {
        let t = trie(&[(b"CC", 1)]);
        let mut s = SpScratch::new();
        let mut out = Vec::new();
        encode_line(&t, b"CCCC", SpAlgorithm::BackwardDp, &mut s, &mut out);
        let l1 = out.len();
        encode_line(&t, b"CC", SpAlgorithm::BackwardDp, &mut s, &mut out);
        assert_eq!(out.len(), l1 + 1);
        encode_line(&t, b"", SpAlgorithm::BackwardDp, &mut s, &mut out);
        assert_eq!(out.len(), l1 + 1);
    }
}
