//! A process-wide sharded LRU block cache for archive sources.
//!
//! The single-slot readahead that `CachedSource` used through PR 5 kept
//! exactly one block behind one mutex: a second reader with a different
//! access pattern evicted the first reader's block on every fetch, so
//! concurrent `get()` loops degenerated to uncached I/O. [`BlockCache`]
//! replaces it with the shape an archive query service needs:
//!
//! * blocks are **aligned** (`offset / block_size`) and keyed by
//!   `(archive_id, block)`, so any number of sources — and any number of
//!   threads per source — share one pool of resident bytes;
//! * the key space is split across [`SHARD_COUNT`] internal shards, each
//!   behind its own mutex, so concurrent readers rarely contend on the
//!   same lock;
//! * eviction is LRU per shard under a global block budget, with the
//!   decision counters ([`BlockCacheStats`]) exposed for the CLI's
//!   `--verbose` reports and the bench harness;
//! * block loads happen **outside** the shard lock: a miss never blocks
//!   other readers on the loader's I/O (two racing loads of the same
//!   block both succeed; one insert wins — blocks are immutable, so the
//!   race is benign).
//!
//! One process-global instance ([`BlockCache::global`]) backs every
//! [`crate::source::CachedSource`] by default; private instances (for
//! tests, or per-tenant budgets in a service) are ordinary values.

use crate::error::ZsmilesError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independently locked shards. A small power of two: enough
/// that 8 hammering readers rarely collide, small enough that the
/// per-shard LRU scans stay trivial.
pub const SHARD_COUNT: usize = 8;

/// Default total budget for the process-global cache (resident block
/// bytes, across all archives).
pub const DEFAULT_CACHE_CAPACITY: usize = 32 << 20;

/// Snapshot of a cache's counters and residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups served from a resident block.
    pub hits: u64,
    /// Lookups that had to load the block from the inner source.
    pub misses: u64,
    /// Blocks dropped to stay inside the budget.
    pub evictions: u64,
    /// Blocks dropped because their archive was retired
    /// ([`BlockCache::forget_archive`]) — a dataset generation flip, a
    /// source going out of scope.
    pub retired: u64,
    /// Load closures that returned an error (I/O failures, corrupt
    /// media): nothing was cached, the caller saw the error, and the
    /// next lookup retried.
    pub load_failures: u64,
    /// Blocks resident right now.
    pub resident_blocks: u64,
    /// Bytes resident right now.
    pub resident_bytes: u64,
}

impl BlockCacheStats {
    /// Hit rate in `[0, 1]`; `None` before any lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

struct Entry {
    bytes: Arc<Vec<u8>>,
    /// Logical LRU timestamp (per-shard clock at last touch).
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<(u64, u64), Entry>,
    clock: u64,
    resident_bytes: u64,
}

/// The sharded LRU block cache. See the module docs for the design.
pub struct BlockCache {
    block_size: usize,
    /// Per-shard budget, in blocks (the global budget split evenly).
    shard_capacity: usize,
    shards: [Mutex<Shard>; SHARD_COUNT],
    next_archive_id: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    retired: AtomicU64,
    load_failures: AtomicU64,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("block_size", &self.block_size)
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl BlockCache {
    /// A cache holding aligned blocks of `block_size` bytes, keeping at
    /// most ~`capacity_bytes` resident (rounded up so each shard holds at
    /// least one block — a cache that cannot cache would be a bug trap).
    pub fn new(block_size: usize, capacity_bytes: usize) -> BlockCache {
        let block_size = block_size.max(1);
        let total_blocks = capacity_bytes.div_ceil(block_size).max(SHARD_COUNT);
        BlockCache {
            block_size,
            shard_capacity: (total_blocks / SHARD_COUNT).max(1),
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            next_archive_id: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
        }
    }

    /// The process-global instance every [`crate::source::CachedSource`]
    /// shares by default: [`crate::source::DEFAULT_CACHE_BLOCK`]-sized
    /// blocks under a [`DEFAULT_CACHE_CAPACITY`] budget.
    pub fn global() -> &'static Arc<BlockCache> {
        static GLOBAL: OnceLock<Arc<BlockCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Arc::new(BlockCache::new(
                crate::source::DEFAULT_CACHE_BLOCK,
                DEFAULT_CACHE_CAPACITY,
            ))
        })
    }

    /// Aligned block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Mint a fresh archive id. Ids namespace block keys, so two sources
    /// over different files can never alias each other's bytes.
    pub fn register_archive(&self) -> u64 {
        self.next_archive_id.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_for(&self, archive: u64, block: u64) -> &Mutex<Shard> {
        // Fibonacci hashing over the combined key; high bits select the
        // shard so consecutive blocks of one archive spread out.
        let h = (archive ^ block.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 61) as usize % SHARD_COUNT]
    }

    /// Fetch block `block` of archive `archive`, loading it with `load`
    /// on a miss. Returns the resident bytes and whether this was a hit.
    ///
    /// The loader runs outside the shard lock; a failed load caches
    /// nothing (the next lookup retries).
    pub fn get_or_load(
        &self,
        archive: u64,
        block: u64,
        load: impl FnOnce() -> Result<Vec<u8>, ZsmilesError>,
    ) -> Result<(Arc<Vec<u8>>, bool), ZsmilesError> {
        let key = (archive, block);
        let shard = self.shard_for(archive, block);
        {
            let mut s = shard.lock().expect("cache shard poisoned");
            s.clock += 1;
            let stamp = s.clock;
            if let Some(e) = s.map.get_mut(&key) {
                e.stamp = stamp;
                let bytes = Arc::clone(&e.bytes);
                drop(s);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((bytes, true));
            }
        }
        let bytes = Arc::new(load().inspect_err(|_| {
            self.load_failures.fetch_add(1, Ordering::Relaxed);
        })?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut s = shard.lock().expect("cache shard poisoned");
        s.clock += 1;
        let stamp = s.clock;
        // A racing loader may have inserted the same block meanwhile;
        // keep the resident copy and drop ours (identical contents).
        if let Some(e) = s.map.get_mut(&key) {
            e.stamp = stamp;
            return Ok((Arc::clone(&e.bytes), false));
        }
        while s.map.len() >= self.shard_capacity {
            let victim = s
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty shard has an LRU victim");
            if let Some(e) = s.map.remove(&victim) {
                s.resident_bytes -= e.bytes.len() as u64;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        s.resident_bytes += bytes.len() as u64;
        s.map.insert(
            key,
            Entry {
                bytes: Arc::clone(&bytes),
                stamp,
            },
        );
        Ok((bytes, false))
    }

    /// Retire `archive`: drop every one of its resident blocks and
    /// return how many left the pool. Called when a source is dropped —
    /// or when a serving process flips to a new dataset generation — so
    /// a long-lived process does not pin dead archives until eviction
    /// gets around to them. Retired blocks are counted separately from
    /// budget evictions ([`BlockCacheStats::retired`]); calling this
    /// again for the same archive is a harmless no-op that returns 0.
    pub fn forget_archive(&self, archive: u64) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            let dead: Vec<(u64, u64)> = s
                .map
                .keys()
                .filter(|(a, _)| *a == archive)
                .copied()
                .collect();
            for key in dead {
                if let Some(e) = s.map.remove(&key) {
                    s.resident_bytes -= e.bytes.len() as u64;
                    dropped += 1;
                }
            }
        }
        if dropped > 0 {
            self.retired.fetch_add(dropped, Ordering::Relaxed);
        }
        dropped
    }

    /// Counter + residency snapshot. Counters are monotonic for the
    /// cache's lifetime; CLI reports diff them around a workload.
    pub fn stats(&self) -> BlockCacheStats {
        let (mut blocks, mut bytes) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard poisoned");
            blocks += s.map.len() as u64;
            bytes += s.resident_bytes;
        }
        BlockCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
            resident_blocks: blocks,
            resident_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_ok(tag: u8, len: usize) -> impl FnOnce() -> Result<Vec<u8>, ZsmilesError> {
        move || Ok(vec![tag; len])
    }

    #[test]
    fn hit_miss_and_archive_namespacing() {
        let cache = BlockCache::new(16, 16 * SHARD_COUNT * 4);
        let (a, b) = (cache.register_archive(), cache.register_archive());
        assert_ne!(a, b);

        let (bytes, hit) = cache.get_or_load(a, 0, load_ok(1, 16)).unwrap();
        assert!(!hit);
        assert_eq!(*bytes, vec![1; 16]);
        let (bytes, hit) = cache.get_or_load(a, 0, || panic!("resident")).unwrap();
        assert!(hit);
        assert_eq!(*bytes, vec![1; 16]);

        // Same block number, different archive: distinct entry.
        let (bytes, hit) = cache.get_or_load(b, 0, load_ok(2, 16)).unwrap();
        assert!(!hit);
        assert_eq!(*bytes, vec![2; 16]);

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.resident_blocks, 2);
        assert_eq!(stats.resident_bytes, 32);
        assert_eq!(stats.hit_rate(), Some(1.0 / 3.0));
    }

    #[test]
    fn lru_eviction_respects_recency_and_counts() {
        // One block per shard: any two blocks landing in one shard evict.
        let cache = BlockCache::new(8, 8 * SHARD_COUNT);
        let a = cache.register_archive();
        // Fill far past the global budget of SHARD_COUNT blocks.
        for block in 0..(SHARD_COUNT as u64 * 4) {
            cache
                .get_or_load(a, block, load_ok(block as u8, 8))
                .unwrap();
        }
        let stats = cache.stats();
        assert!(
            stats.resident_blocks <= SHARD_COUNT as u64,
            "budget respected: {stats:?}"
        );
        assert_eq!(
            stats.evictions,
            stats.misses - stats.resident_blocks,
            "every over-budget insert evicted exactly one block: {stats:?}"
        );
        // The most recently inserted block is its shard's survivor.
        let last = SHARD_COUNT as u64 * 4 - 1;
        let (_, hit) = cache.get_or_load(a, last, load_ok(last as u8, 8)).unwrap();
        assert!(hit, "most recently inserted block survives");
    }

    #[test]
    fn forget_archive_releases_residency() {
        let cache = BlockCache::new(8, 1 << 20);
        let (a, b) = (cache.register_archive(), cache.register_archive());
        for block in 0..10 {
            cache.get_or_load(a, block, load_ok(0, 8)).unwrap();
            cache.get_or_load(b, block, load_ok(1, 8)).unwrap();
        }
        assert_eq!(cache.stats().resident_blocks, 20);
        assert_eq!(cache.forget_archive(a), 10, "every block of `a` left");
        let stats = cache.stats();
        assert_eq!(stats.resident_blocks, 10);
        assert_eq!(stats.resident_bytes, 80);
        // Retirement is counted apart from budget evictions: nothing here
        // was dropped for space.
        assert_eq!(stats.retired, 10);
        assert_eq!(stats.evictions, 0);
        // `b`'s blocks are untouched.
        let (_, hit) = cache.get_or_load(b, 0, || panic!("resident")).unwrap();
        assert!(hit);
        // A retired archive's blocks are genuinely gone: the next lookup
        // must reload, and retiring again is a counted-as-zero no-op.
        assert_eq!(cache.forget_archive(a), 0);
        let (_, hit) = cache.get_or_load(a, 0, load_ok(0, 8)).unwrap();
        assert!(!hit, "retired block reloads from the source");
        assert_eq!(cache.stats().retired, 10, "no-op retire adds nothing");
    }

    #[test]
    fn failed_loads_cache_nothing_and_retry() {
        let cache = BlockCache::new(8, 1 << 20);
        let a = cache.register_archive();
        let err = cache
            .get_or_load(a, 0, || Err(ZsmilesError::Io("transient".into())))
            .unwrap_err();
        assert!(matches!(err, ZsmilesError::Io(_)));
        assert_eq!(cache.stats().load_failures, 1, "failure is counted");
        let (bytes, hit) = cache.get_or_load(a, 0, load_ok(7, 8)).unwrap();
        assert!(!hit, "error was not cached");
        assert_eq!(*bytes, vec![7; 8]);
        let stats = cache.stats();
        assert_eq!(stats.load_failures, 1, "the retry's success adds nothing");
        assert_eq!(stats.misses, 1, "failed loads are not misses");
    }

    #[test]
    fn concurrent_readers_share_one_cache() {
        let cache = Arc::new(BlockCache::new(64, 1 << 20));
        let a = cache.register_archive();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for round in 0..200u64 {
                        let block = round % 16;
                        let (bytes, _) = cache
                            .get_or_load(a, block, load_ok(block as u8, 64))
                            .unwrap();
                        assert_eq!(*bytes, vec![block as u8; 64]);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
        assert_eq!(stats.resident_blocks, 16);
    }
}
