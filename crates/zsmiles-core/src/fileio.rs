//! Streaming compression for decks that do not fit in memory.
//!
//! The paper's setting is tens of terabytes of SMILES; buffering a whole
//! file is not an option there. These helpers process a `BufRead` →
//! `Write` pair in bounded chunks, cutting at line boundaries, with
//! optional multi-threading per chunk. The output is identical to the
//! in-memory engines' (same per-line encoding; chunking cannot change it).
//!
//! The chunk loop is written once against the dyn-safe
//! [`crate::engine::DynEngine`] facade ([`compress_stream_dyn`] /
//! [`decompress_stream_dyn`]); the [`Engine`]-generic and
//! dictionary-taking functions are thin wrappers.

use crate::compress::CompressStats;
use crate::decompress::DecompressStats;
use crate::dict::Dictionary;
use crate::engine::{decode_buffer, encode_buffer, BaseEngine, DynEngine, Engine};
use crate::error::ZsmilesError;
use crate::parallel::{compress_parallel_dyn, decompress_parallel_dyn};
use crate::sp::SpAlgorithm;
use std::io::{BufRead, Write};

/// Chunk size for streaming (bytes of input buffered at a time).
pub const DEFAULT_CHUNK: usize = 8 << 20;

/// Streaming configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    pub chunk_bytes: usize,
    /// Worker threads per chunk (1 = serial).
    pub threads: usize,
    pub algorithm: SpAlgorithm,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            chunk_bytes: DEFAULT_CHUNK,
            threads: 1,
            algorithm: SpAlgorithm::default(),
        }
    }
}

/// Read a chunk of whole lines (≥ 1 line, ≤ ~chunk_bytes) into `buf`.
/// Returns false at EOF with nothing read.
fn fill_chunk<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    chunk_bytes: usize,
) -> std::io::Result<bool> {
    buf.clear();
    while buf.len() < chunk_bytes {
        let before = buf.len();
        let n = reader.read_until(b'\n', buf)?;
        if n == 0 {
            break;
        }
        // Normalize a missing trailing newline on the final line.
        if buf.last() != Some(&b'\n') {
            buf.push(b'\n');
        }
        let _ = before;
    }
    Ok(!buf.is_empty())
}

/// Stream-compress `reader` into `writer` with any [`DynEngine`] — the
/// single copy of the chunk loop.
pub fn compress_stream_dyn<R: BufRead, W: Write>(
    engine: &dyn DynEngine,
    mut reader: R,
    mut writer: W,
    opts: &StreamOptions,
) -> Result<CompressStats, ZsmilesError> {
    let mut stats = CompressStats::default();
    let mut chunk = Vec::with_capacity(opts.chunk_bytes + 4096);
    let mut out = Vec::with_capacity(opts.chunk_bytes / 2);
    let mut serial = engine.boxed_encoder();
    while fill_chunk(&mut reader, &mut chunk, opts.chunk_bytes)? {
        if opts.threads > 1 {
            let (part, s) = compress_parallel_dyn(engine, &chunk, opts.threads);
            writer.write_all(&part)?;
            stats.merge(&s);
        } else {
            out.clear();
            let s = encode_buffer(&mut *serial, &chunk, &mut out);
            writer.write_all(&out)?;
            stats.merge(&s);
        }
    }
    writer.flush()?;
    Ok(stats)
}

/// Stream-decompress `reader` into `writer` with any [`DynEngine`].
pub fn decompress_stream_dyn<R: BufRead, W: Write>(
    engine: &dyn DynEngine,
    mut reader: R,
    mut writer: W,
    opts: &StreamOptions,
) -> Result<DecompressStats, ZsmilesError> {
    let mut stats = DecompressStats::default();
    let mut chunk = Vec::with_capacity(opts.chunk_bytes + 4096);
    let mut out = Vec::with_capacity(opts.chunk_bytes * 3);
    let mut serial = engine.boxed_decoder();
    while fill_chunk(&mut reader, &mut chunk, opts.chunk_bytes)? {
        if opts.threads > 1 {
            let (part, s) = decompress_parallel_dyn(engine, &chunk, opts.threads)?;
            writer.write_all(&part)?;
            stats.lines += s.lines;
            stats.in_bytes += s.in_bytes;
            stats.out_bytes += s.out_bytes;
        } else {
            out.clear();
            let s = decode_buffer(&mut *serial, &chunk, &mut out)?;
            writer.write_all(&out)?;
            stats.lines += s.lines;
            stats.in_bytes += s.in_bytes;
            stats.out_bytes += s.out_bytes;
        }
    }
    writer.flush()?;
    Ok(stats)
}

/// [`compress_stream_dyn`] for a statically-typed [`Engine`].
pub fn compress_stream_engine<E: Engine, R: BufRead, W: Write>(
    engine: &E,
    reader: R,
    writer: W,
    opts: &StreamOptions,
) -> Result<CompressStats, ZsmilesError> {
    compress_stream_dyn(engine, reader, writer, opts)
}

/// [`decompress_stream_dyn`] for a statically-typed [`Engine`].
pub fn decompress_stream_engine<E: Engine, R: BufRead, W: Write>(
    engine: &E,
    reader: R,
    writer: W,
    opts: &StreamOptions,
) -> Result<DecompressStats, ZsmilesError> {
    decompress_stream_dyn(engine, reader, writer, opts)
}

/// [`compress_stream_engine`] with the one-byte codec.
pub fn compress_stream<R: BufRead, W: Write>(
    dict: &Dictionary,
    reader: R,
    writer: W,
    opts: &StreamOptions,
) -> Result<CompressStats, ZsmilesError> {
    let engine = BaseEngine::new(dict).with_algorithm(opts.algorithm);
    compress_stream_engine(&engine, reader, writer, opts)
}

/// [`decompress_stream_engine`] with the one-byte codec.
pub fn decompress_stream<R: BufRead, W: Write>(
    dict: &Dictionary,
    reader: R,
    writer: W,
    opts: &StreamOptions,
) -> Result<DecompressStats, ZsmilesError> {
    decompress_stream_engine(&BaseEngine::new(dict), reader, writer, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::Compressor;
    use crate::dict::builder::DictBuilder;
    use std::io::BufReader;

    fn fixture() -> (Dictionary, Vec<u8>) {
        let lines: Vec<&[u8]> = [
            b"COc1cc(C=O)ccc1O".as_slice(),
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
        ]
        .repeat(200);
        let dict = DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(lines.iter().copied())
        .unwrap();
        let input: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        (dict, input)
    }

    #[test]
    fn streaming_equals_in_memory() {
        let (dict, input) = fixture();
        let mut whole = Vec::new();
        Compressor::new(&dict).compress_buffer(&input, &mut whole);

        // Tiny chunks force many boundaries.
        for chunk_bytes in [64usize, 1000, 1 << 20] {
            let mut streamed = Vec::new();
            let opts = StreamOptions {
                chunk_bytes,
                ..Default::default()
            };
            let stats = compress_stream(
                &dict,
                BufReader::new(input.as_slice()),
                &mut streamed,
                &opts,
            )
            .unwrap();
            assert_eq!(streamed, whole, "chunk={chunk_bytes}");
            assert_eq!(stats.lines, 600);
        }
    }

    #[test]
    fn streaming_round_trip_multithreaded() {
        let (dict, input) = fixture();
        let mut z = Vec::new();
        let opts = StreamOptions {
            chunk_bytes: 4096,
            threads: 4,
            ..Default::default()
        };
        compress_stream(&dict, BufReader::new(input.as_slice()), &mut z, &opts).unwrap();
        let mut back = Vec::new();
        decompress_stream(&dict, BufReader::new(z.as_slice()), &mut back, &opts).unwrap();

        // Preprocessing on: expect the renumbered forms.
        let mut expect = Vec::new();
        let mut pp = smiles::Preprocessor::new();
        for line in input.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            pp.process_into(line, smiles::RingRenumber::Innermost, 0, &mut expect)
                .unwrap();
            expect.push(b'\n');
        }
        assert_eq!(back, expect);
    }

    #[test]
    fn missing_trailing_newline_handled() {
        let (dict, _) = fixture();
        let input = b"CCO\nCCN".to_vec(); // no trailing newline
        let mut z = Vec::new();
        compress_stream(
            &dict,
            BufReader::new(input.as_slice()),
            &mut z,
            &StreamOptions::default(),
        )
        .unwrap();
        assert_eq!(z.iter().filter(|&&b| b == b'\n').count(), 2);
    }

    #[test]
    fn empty_input_streams_nothing() {
        let (dict, _) = fixture();
        let mut z = Vec::new();
        let stats = compress_stream(
            &dict,
            BufReader::new(&b""[..]),
            &mut z,
            &StreamOptions::default(),
        )
        .unwrap();
        assert!(z.is_empty());
        assert_eq!(stats.lines, 0);
    }

    #[test]
    fn decompress_stream_propagates_errors() {
        let (dict, _) = fixture();
        let bad = b"\x01\x02\n".to_vec();
        let mut out = Vec::new();
        let r = decompress_stream(
            &dict,
            BufReader::new(bad.as_slice()),
            &mut out,
            &StreamOptions::default(),
        );
        assert!(r.is_err());
    }
}
