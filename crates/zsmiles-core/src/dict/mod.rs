//! The compression dictionary: code ↔ pattern tables.
//!
//! A dictionary maps up to 222 one-byte *codes* (see [`crate::codec`]) to
//! byte *patterns*. Identity entries come from pre-population (§IV-B);
//! multi-byte entries come from training (§IV-C, [`builder`]). The shared,
//! input-independent dictionary is the design point that distinguishes
//! ZSMILES from FSST: one `.dct` file compresses any SMILES set, so archives
//! stay mutually compatible and can be cut/recombined.

pub mod analysis;
pub mod builder;
pub mod format;

use crate::codec::{code_space, is_code_byte, Prepopulation};
use crate::decompress::DecodeTable;
use crate::error::ZsmilesError;
use crate::trie::{CompactAutomaton, DenseAutomaton, Trie};

/// Longest pattern length the format supports. Bounded so the trie and the
/// GPU kernels can use fixed-size scratch; the paper's sweeps stop at 16.
pub const MAX_PATTERN_LEN: usize = 16;

/// An immutable compression dictionary.
#[derive(Debug, Clone)]
pub struct Dictionary {
    /// `entries[code]` = the pattern this code expands to.
    entries: Vec<Option<Box<[u8]>>>,
    /// Which codes are pre-population identity entries (as opposed to
    /// trained patterns that may *coincidentally* map a byte to itself).
    identity: Vec<bool>,
    prepopulation: Prepopulation,
    /// Substring length bounds the dictionary was trained with.
    lmin: usize,
    lmax: usize,
    /// Whether training data went through ring-ID pre-processing; decks
    /// compressed with this dictionary should do the same.
    preprocessed: bool,
    trie: Trie,
    /// The flat table-driven matcher the encode hot path walks, compiled
    /// from `trie` on first use. Lazy (and shared across clones) because
    /// its tables run to a few MiB and decode-only paths — `unpack`, the
    /// out-of-core reader — never walk it.
    automaton: std::sync::Arc<std::sync::OnceLock<DenseAutomaton>>,
    /// The byte-class compressed matcher the encode hot path walks by
    /// default ([`crate::MatcherKind::Compact`]); lazy and shared across
    /// clones like `automaton`.
    compact: std::sync::Arc<std::sync::OnceLock<CompactAutomaton>>,
    /// The arena-backed expansion table the decode hot path reads (a few
    /// KiB; built eagerly).
    decode: DecodeTable,
}

impl Dictionary {
    /// Build a dictionary from multi-byte `patterns` (ordered by rank —
    /// order determines code assignment and is preserved by serialization).
    ///
    /// Identity entries for `prepopulation` are installed first; patterns
    /// then claim the remaining codes in order. Patterns that collide with
    /// an identity entry are skipped silently (they add nothing).
    pub fn from_patterns<I, P>(
        prepopulation: Prepopulation,
        patterns: I,
        lmin: usize,
        lmax: usize,
        preprocessed: bool,
    ) -> Result<Dictionary, ZsmilesError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        if lmin < 1 || lmax < lmin || lmax > MAX_PATTERN_LEN {
            return Err(ZsmilesError::BadLengthBounds { lmin, lmax });
        }
        let mut entries: Vec<Option<Box<[u8]>>> = vec![None; 256];
        let mut identity_flags = vec![false; 256];
        let identity = prepopulation.identity_bytes();
        for &b in &identity {
            entries[b as usize] = Some(vec![b].into_boxed_slice());
            identity_flags[b as usize] = true;
        }
        // Codes free for patterns, in code-space order.
        let mut free: Vec<u8> = code_space()
            .filter(|&c| entries[c as usize].is_none())
            .collect();
        free.reverse(); // pop() hands them out in forward order

        let mut installed = 0usize;
        for (seen, pat) in patterns.into_iter().enumerate() {
            let pat = pat.as_ref();
            let requested = seen + 1;
            // Deserialized dictionaries can carry corrupted patterns —
            // refuse typed, don't assert.
            if pat.is_empty() || pat.len() > MAX_PATTERN_LEN {
                return Err(ZsmilesError::DictFormat {
                    line: requested,
                    reason: format!("pattern has length {} (1..={MAX_PATTERN_LEN})", pat.len()),
                });
            }
            // Single-byte identity duplicates add nothing.
            if pat.len() == 1 && entries[pat[0] as usize].is_some() {
                continue;
            }
            let code = match free.pop() {
                Some(c) => c,
                None => {
                    return Err(ZsmilesError::CodeSpaceExhausted {
                        requested,
                        available: installed + identity.len(),
                    })
                }
            };
            entries[code as usize] = Some(pat.to_vec().into_boxed_slice());
            installed += 1;
        }

        let mut trie = Trie::new();
        for (code, entry) in entries.iter().enumerate() {
            if let Some(pat) = entry {
                trie.insert(pat, code as u8);
            }
        }
        let decode = DecodeTable::build(
            entries
                .iter()
                .enumerate()
                .filter_map(|(c, e)| e.as_deref().map(|p| (c as u8, p))),
        );
        Ok(Dictionary {
            entries,
            identity: identity_flags,
            prepopulation,
            lmin,
            lmax,
            preprocessed,
            trie,
            automaton: std::sync::Arc::new(std::sync::OnceLock::new()),
            compact: std::sync::Arc::new(std::sync::OnceLock::new()),
            decode,
        })
    }

    /// The built-in shared dictionary, trained on a 50 000-line mixed deck
    /// and embedded in the library — the paper's "the dictionary is
    /// soft-coded in the ZSMILES executable". Parsed once, then cached.
    pub fn builtin() -> &'static Dictionary {
        static BUILTIN: std::sync::OnceLock<Dictionary> = std::sync::OnceLock::new();
        BUILTIN.get_or_init(|| {
            super::dict::format::read_dict(include_str!("../../assets/default.dct").as_bytes())
                .expect("embedded dictionary is valid")
        })
    }

    /// A dictionary with only its pre-population identity entries — the
    /// degenerate baseline (every line compresses to itself).
    pub fn identity_only(prepopulation: Prepopulation) -> Dictionary {
        Dictionary::from_patterns(
            prepopulation,
            std::iter::empty::<&[u8]>(),
            2,
            MAX_PATTERN_LEN,
            false,
        )
        .expect("no patterns cannot exhaust the code space")
    }

    /// The pattern a code expands to.
    #[inline]
    pub fn entry(&self, code: u8) -> Option<&[u8]> {
        self.entries[code as usize].as_deref()
    }

    /// The matching trie (the build-time / reference structure).
    pub fn trie(&self) -> &Trie {
        &self.trie
    }

    /// The flat table-driven matcher the encode hot path walks — compiled
    /// from [`Dictionary::trie`] on first call (then cached, shared by
    /// clones), byte-identical matches, branch-light loads (see
    /// [`DenseAutomaton`] for the layout trade-off).
    pub fn automaton(&self) -> &DenseAutomaton {
        self.automaton
            .get_or_init(|| DenseAutomaton::compile(&self.trie))
    }

    /// The byte-class compressed matcher the encode hot path walks by
    /// default — compiled from [`Dictionary::trie`] on first call (then
    /// cached, shared by clones). Byte-identical matches to the trie and
    /// [`Dictionary::automaton`]; see [`CompactAutomaton`] for the layout.
    pub fn compact(&self) -> &CompactAutomaton {
        self.compact
            .get_or_init(|| CompactAutomaton::compile(&self.trie))
    }

    /// The arena-backed expansion table shared by every
    /// [`crate::Decompressor`] worker on this dictionary.
    pub fn decode_table(&self) -> &DecodeTable {
        &self.decode
    }

    /// Total entries (identity + patterns).
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Trained pattern entries only (pre-population identity entries
    /// excluded), in code order. Note the filter is by provenance, not by
    /// shape: a trained single-byte pattern that happens to receive its
    /// own byte value as code is still a pattern entry and must survive
    /// serialization.
    pub fn pattern_entries(&self) -> impl Iterator<Item = (u8, &[u8])> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(c, _)| !self.identity[*c])
            .filter_map(|(c, e)| e.as_deref().map(|p| (c as u8, p)))
    }

    /// All entries (identity included), in code order.
    pub fn all_entries(&self) -> impl Iterator<Item = (u8, &[u8])> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(c, e)| e.as_deref().map(|p| (c as u8, p)))
    }

    pub fn prepopulation(&self) -> Prepopulation {
        self.prepopulation
    }

    pub fn lmin(&self) -> usize {
        self.lmin
    }

    pub fn lmax(&self) -> usize {
        self.lmax
    }

    pub fn preprocessed(&self) -> bool {
        self.preprocessed
    }

    /// Longest installed pattern.
    pub fn max_pattern_len(&self) -> usize {
        self.trie.max_depth()
    }

    /// Sanity invariants, used by tests and after deserialization: codes
    /// must be displayable, patterns bounded and newline-free.
    pub fn validate(&self) -> Result<(), ZsmilesError> {
        for (c, e) in self.entries.iter().enumerate() {
            let Some(pat) = e else { continue };
            if !is_code_byte(c as u8) {
                return Err(ZsmilesError::DictFormat {
                    line: 0,
                    reason: format!("code 0x{c:02x} is reserved"),
                });
            }
            if pat.is_empty() || pat.len() > MAX_PATTERN_LEN {
                return Err(ZsmilesError::DictFormat {
                    line: 0,
                    reason: format!("pattern for code 0x{c:02x} has length {}", pat.len()),
                });
            }
            if pat.contains(&b'\n') {
                return Err(ZsmilesError::DictFormat {
                    line: 0,
                    reason: "pattern contains newline".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_dictionary_loads_and_compresses() {
        let d = Dictionary::builtin();
        d.validate().unwrap();
        assert!(d.pattern_entries().count() > 100);
        assert!(d.preprocessed());
        // Compresses a benzene-heavy line well below 1.0.
        let mut c = crate::compress::Compressor::new(d);
        let mut z = Vec::new();
        let (n, _) = c.compress_line(b"COc1cc(C=O)ccc1O", &mut z);
        assert!(n < 16, "builtin dictionary compresses: {n} bytes");
        // Same statics instance on second call.
        assert!(std::ptr::eq(d, Dictionary::builtin()));
    }

    #[test]
    fn identity_only_has_prepopulation_size() {
        let d = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        assert_eq!(d.len(), 78);
        assert_eq!(d.entry(b'C'), Some(&b"C"[..]));
        assert_eq!(d.entry(0x80), None);
        assert_eq!(d.pattern_entries().count(), 0);
        d.validate().unwrap();
    }

    #[test]
    fn patterns_claim_free_codes_in_order() {
        let d = Dictionary::from_patterns(
            Prepopulation::SmilesAlphabet,
            [b"CC".as_slice(), b"c1ccccc1", b"C(=O)"],
            2,
            8,
            true,
        )
        .unwrap();
        assert_eq!(d.len(), 78 + 3);
        let pats: Vec<&[u8]> = d.pattern_entries().map(|(_, p)| p).collect();
        assert!(pats.contains(&b"CC".as_slice()));
        assert!(pats.contains(&b"c1ccccc1".as_slice()));
        // First free printable code (not in the SMILES alphabet) is '!'.
        assert_eq!(d.entry(b'!'), Some(&b"CC"[..]));
        assert!(d.preprocessed());
        d.validate().unwrap();
    }

    #[test]
    fn none_prepopulation_gives_all_codes_to_patterns() {
        let d =
            Dictionary::from_patterns(Prepopulation::None, [b"C".as_slice(), b"CC"], 1, 8, false)
                .unwrap();
        assert_eq!(d.len(), 2);
        // '!' is 0x21, the first code in code-space order.
        assert_eq!(d.entry(b'!'), Some(&b"C"[..]));
        assert_eq!(d.entry(b'"'), Some(&b"CC"[..]));
    }

    #[test]
    fn code_space_exhaustion_detected() {
        let too_many: Vec<Vec<u8>> = (0..223)
            .map(|i| {
                vec![
                    b'a' + (i % 26) as u8,
                    b'a' + ((i / 26) % 26) as u8,
                    (i / 676) as u8 + b'a',
                ]
            })
            .collect();
        let r = Dictionary::from_patterns(Prepopulation::None, &too_many, 2, 8, false);
        assert!(matches!(r, Err(ZsmilesError::CodeSpaceExhausted { .. })));
    }

    #[test]
    fn exactly_filling_code_space_is_fine() {
        let pats: Vec<Vec<u8>> = (0..222u32)
            .map(|i| {
                vec![
                    b'a' + (i % 26) as u8,
                    b'a' + ((i / 26) % 26) as u8,
                    b'0' + (i % 10) as u8,
                ]
            })
            .collect();
        // All distinct? 26*26*… yes for 222 < 676 combos of first two bytes
        let d = Dictionary::from_patterns(Prepopulation::None, &pats, 2, 8, false).unwrap();
        assert_eq!(d.len(), 222);
        d.validate().unwrap();
    }

    #[test]
    fn bad_length_bounds_rejected() {
        for (lmin, lmax) in [(0, 8), (3, 2), (2, 17)] {
            let r = Dictionary::from_patterns(
                Prepopulation::None,
                [b"CC".as_slice()],
                lmin,
                lmax,
                false,
            );
            assert!(
                matches!(r, Err(ZsmilesError::BadLengthBounds { .. })),
                "{lmin},{lmax}"
            );
        }
    }

    #[test]
    fn identity_duplicate_patterns_skipped() {
        let d = Dictionary::from_patterns(
            Prepopulation::SmilesAlphabet,
            [b"C".as_slice(), b"CC"],
            1,
            8,
            false,
        )
        .unwrap();
        // "C" is already an identity entry; only "CC" consumed a free code.
        assert_eq!(d.len(), 79);
    }

    #[test]
    fn trie_contains_identity_and_patterns() {
        let d = Dictionary::from_patterns(
            Prepopulation::SmilesAlphabet,
            [b"CC".as_slice()],
            2,
            8,
            false,
        )
        .unwrap();
        assert_eq!(d.trie().get(b"C"), Some(b'C'));
        assert!(d.trie().get(b"CC").is_some());
        assert_eq!(d.max_pattern_len(), 2);
    }
}
