//! Readable `.dct` dictionary files.
//!
//! The paper's workflow soft-codes the dictionary into the executable; we
//! additionally support a human-inspectable text format so dictionaries are
//! artifacts users can diff, version and share:
//!
//! ```text
//! #zsmiles-dict v1
//! #prepopulation smiles-alphabet
//! #preprocess true
//! #lmin 2
//! #lmax 8
//! !\tC(=O)
//! "\tc1ccccc1
//! \x80\tCC(
//! ```
//!
//! One entry per line: the code byte, a tab, the pattern. Bytes outside
//! printable ASCII (and the literal `\`, tab, newline) are escaped as
//! `\xNN`, so the file itself is pure ASCII. Identity entries implied by the
//! pre-population header are not listed.

use super::Dictionary;
use crate::codec::Prepopulation;
use crate::error::ZsmilesError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

const MAGIC: &str = "#zsmiles-dict v1";

/// Header fields shared by the base and wide dictionary text formats —
/// the one canonical parse both [`read_dict`] and
/// [`crate::wide::read_wide_dict`] go through. Defaults match the values
/// a header-less file is read with.
#[derive(Debug, Clone)]
pub(crate) struct DictHeader {
    pub prepopulation: Prepopulation,
    pub preprocess: bool,
    pub lmin: usize,
    pub lmax: usize,
    /// Wide format only (`#wide-size`); the base parser treats the key as
    /// a forward-compatible unknown.
    pub wide_size: usize,
}

impl Default for DictHeader {
    fn default() -> Self {
        DictHeader {
            prepopulation: Prepopulation::SmilesAlphabet,
            preprocess: true,
            lmin: 2,
            lmax: 8,
            wide_size: 0,
        }
    }
}

/// Write the shared header block: magic line plus the `#key value` fields
/// both formats carry (`wide_size` adds the wide-only `#wide-size`).
pub(crate) fn write_header<W: Write>(
    w: &mut W,
    magic: &str,
    prepopulation: Prepopulation,
    preprocess: bool,
    lmin: usize,
    lmax: usize,
    wide_size: Option<usize>,
) -> std::io::Result<()> {
    writeln!(w, "{magic}")?;
    writeln!(w, "#prepopulation {}", prepopulation.name())?;
    writeln!(w, "#preprocess {preprocess}")?;
    writeln!(w, "#lmin {lmin}")?;
    writeln!(w, "#lmax {lmax}")?;
    if let Some(n) = wide_size {
        writeln!(w, "#wide-size {n}")?;
    }
    Ok(())
}

/// Write one `code\tpattern` entry line, escaped to pure ASCII.
pub(crate) fn write_entry<W: Write>(w: &mut W, code: &[u8], pat: &[u8]) -> std::io::Result<()> {
    let mut line = Vec::with_capacity(pat.len() * 4 + code.len() * 4 + 8);
    escape_into(code, &mut line);
    line.push(b'\t');
    escape_into(pat, &mut line);
    line.push(b'\n');
    w.write_all(&line)
}

/// Parse a dictionary text document: the `magic` line, the shared header
/// fields, and the ordered pattern list (codes are re-derived from
/// pattern order by the installers, which the writers preserve). `wide`
/// selects the wide dialect: two-byte codes in the code column and the
/// `#wide-size` header (otherwise both stay a one-byte check and a
/// forward-compatible unknown key, exactly as before the formats shared
/// this parser).
pub(crate) fn parse_dict_text<R: Read>(
    r: R,
    magic: &str,
    wide: bool,
) -> Result<(DictHeader, Vec<Vec<u8>>), ZsmilesError> {
    let reader = BufReader::new(r);
    let mut header = DictHeader::default();
    let mut patterns: Vec<Vec<u8>> = Vec::new();
    let mut saw_magic = false;

    for (ln, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = ln + 1;
        let bad = |reason: String| ZsmilesError::DictFormat {
            line: lineno,
            reason,
        };
        if ln == 0 {
            if line.trim() != magic {
                return Err(bad(format!("expected magic '{magic}'")));
            }
            saw_magic = true;
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.splitn(2, ' ');
            let key = parts.next().unwrap_or("");
            let value = parts.next().unwrap_or("").trim();
            match key {
                "prepopulation" => {
                    header.prepopulation = Prepopulation::from_name(value)
                        .ok_or_else(|| bad(format!("unknown prepopulation '{value}'")))?;
                }
                "preprocess" => {
                    header.preprocess = value
                        .parse()
                        .map_err(|_| bad(format!("bad bool '{value}'")))?;
                }
                "lmin" => {
                    header.lmin = value
                        .parse()
                        .map_err(|_| bad(format!("bad lmin '{value}'")))?;
                }
                "lmax" => {
                    header.lmax = value
                        .parse()
                        .map_err(|_| bad(format!("bad lmax '{value}'")))?;
                }
                "wide-size" if wide => {
                    header.wide_size = value
                        .parse()
                        .map_err(|_| bad(format!("bad wide-size '{value}'")))?;
                }
                _ => {} // unknown headers are forward-compatible no-ops
            }
            continue;
        }
        let (code_part, pat_part) = line
            .split_once('\t')
            .ok_or_else(|| bad("missing tab separator".into()))?;
        let code = unescape(code_part).map_err(bad)?;
        let max_code = if wide { 2 } else { 1 };
        if code.is_empty() || code.len() > max_code {
            return Err(bad(format!(
                "code must be 1..={max_code} byte(s), got {}",
                code.len()
            )));
        }
        let pat = unescape(pat_part).map_err(bad)?;
        if pat.is_empty() {
            return Err(bad("empty pattern".into()));
        }
        patterns.push(pat);
    }
    if !saw_magic {
        return Err(ZsmilesError::DictFormat {
            line: 0,
            reason: "empty file".into(),
        });
    }
    Ok((header, patterns))
}

/// Serialize to the text format.
pub fn write_dict<W: Write>(dict: &Dictionary, mut w: W) -> std::io::Result<()> {
    write_header(
        &mut w,
        MAGIC,
        dict.prepopulation(),
        dict.preprocessed(),
        dict.lmin(),
        dict.lmax(),
        None,
    )?;
    for (code, pat) in dict.pattern_entries() {
        write_entry(&mut w, &[code], pat)?;
    }
    Ok(())
}

/// Serialize to a `String` (the format is ASCII by construction).
pub fn to_string(dict: &Dictionary) -> String {
    let mut buf = Vec::new();
    write_dict(dict, &mut buf).expect("Vec<u8> write cannot fail");
    String::from_utf8(buf).expect("escaped output is ASCII")
}

/// Save to a file.
pub fn save(dict: &Dictionary, path: &Path) -> Result<(), ZsmilesError> {
    let f = std::fs::File::create(path)?;
    write_dict(dict, std::io::BufWriter::new(f))?;
    Ok(())
}

/// Parse the text format.
pub fn read_dict<R: Read>(r: R) -> Result<Dictionary, ZsmilesError> {
    let (h, patterns) = parse_dict_text(r, MAGIC, false)?;
    // Codes are re-derived from pattern order, which `write_dict` preserves
    // (pattern_entries iterates in code order = assignment order).
    let dict = Dictionary::from_patterns(h.prepopulation, patterns, h.lmin, h.lmax, h.preprocess)?;
    dict.validate()?;
    Ok(dict)
}

/// Load from a file.
pub fn load(path: &Path) -> Result<Dictionary, ZsmilesError> {
    let f = std::fs::File::open(path)?;
    read_dict(f)
}

pub(crate) fn escape_into(bytes: &[u8], out: &mut Vec<u8>) {
    for &b in bytes {
        match b {
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\t' => out.extend_from_slice(b"\\t"),
            b'\n' => out.extend_from_slice(b"\\n"),
            0x21..=0x7E => out.push(b),
            _ => {
                out.extend_from_slice(format!("\\x{b:02x}").as_bytes());
            }
        }
    }
}

pub(crate) fn unescape(s: &str) -> Result<Vec<u8>, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b != b'\\' {
            out.push(b);
            i += 1;
            continue;
        }
        let esc = bytes.get(i + 1).ok_or("dangling backslash")?;
        match esc {
            b'\\' => {
                out.push(b'\\');
                i += 2;
            }
            b't' => {
                out.push(b'\t');
                i += 2;
            }
            b'n' => {
                out.push(b'\n');
                i += 2;
            }
            b'x' => {
                let hex = s
                    .get(i + 2..i + 4)
                    .ok_or_else(|| "truncated \\x escape".to_string())?;
                let v = u8::from_str_radix(hex, 16).map_err(|_| format!("bad hex '{hex}'"))?;
                out.push(v);
                i += 4;
            }
            other => return Err(format!("unknown escape '\\{}'", *other as char)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::builder::DictBuilder;

    fn sample_dict() -> Dictionary {
        Dictionary::from_patterns(
            Prepopulation::SmilesAlphabet,
            [b"C(=O)".as_slice(), b"c1ccccc1", b"CC(", &[0x80, b'Z'][..]],
            2,
            8,
            true,
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = sample_dict();
        let text = to_string(&d);
        let back = read_dict(text.as_bytes()).unwrap();
        assert_eq!(back.prepopulation(), d.prepopulation());
        assert_eq!(back.preprocessed(), d.preprocessed());
        assert_eq!(back.lmin(), d.lmin());
        assert_eq!(back.lmax(), d.lmax());
        let a: Vec<_> = d.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        let b: Vec<_> = back.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        assert_eq!(a, b, "codes and patterns identical after round trip");
    }

    #[test]
    fn output_is_pure_ascii_text() {
        let text = to_string(&sample_dict());
        assert!(text.is_ascii());
        assert!(text.starts_with("#zsmiles-dict v1\n"));
        assert!(text.contains("#prepopulation smiles-alphabet"));
        assert!(text.contains("\\x80"), "high byte escaped: {text}");
    }

    #[test]
    fn trained_dictionary_round_trips() {
        let corpus: Vec<&[u8]> = vec![b"COc1cc(C=O)ccc1O"; 10];
        let d = DictBuilder {
            min_count: 2,
            ..Default::default()
        }
        .train(corpus)
        .unwrap();
        let text = to_string(&d);
        let back = read_dict(text.as_bytes()).unwrap();
        let a: Vec<_> = d.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        let b: Vec<_> = back.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn escape_round_trip_exhaustive() {
        for b in 0u8..=255 {
            let mut esc = Vec::new();
            escape_into(&[b], &mut esc);
            let s = String::from_utf8(esc).unwrap();
            assert_eq!(unescape(&s).unwrap(), vec![b], "byte {b:#x} via '{s}'");
        }
    }

    #[test]
    fn bad_files_rejected_with_line_numbers() {
        // wrong magic
        let r = read_dict("#not-a-dict\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 1, .. })));
        // missing tab
        let r = read_dict("#zsmiles-dict v1\nABC\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
        // bad escape
        let r = read_dict("#zsmiles-dict v1\n!\t\\q\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
        // multi-byte code
        let r = read_dict("#zsmiles-dict v1\nab\tCC\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
        // empty pattern
        let r = read_dict("#zsmiles-dict v1\n!\t\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
        // empty file
        let r = read_dict("".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 0, .. })));
        // bad header values
        let r = read_dict("#zsmiles-dict v1\n#prepopulation martian\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
        let r = read_dict("#zsmiles-dict v1\n#lmin banana\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
    }

    #[test]
    fn unknown_headers_ignored() {
        let d = read_dict("#zsmiles-dict v1\n#future-field xyz\n!\tCC\n".as_bytes()).unwrap();
        assert_eq!(d.pattern_entries().count(), 1);
    }

    #[test]
    fn file_save_load() {
        let d = sample_dict();
        let path = std::env::temp_dir().join("zsmiles_test.dct");
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(
            d.all_entries()
                .map(|(c, p)| (c, p.to_vec()))
                .collect::<Vec<_>>(),
            back.all_entries()
                .map(|(c, p)| (c, p.to_vec()))
                .collect::<Vec<_>>()
        );
        std::fs::remove_file(&path).ok();
    }
}
