//! Dictionary generation — the paper's Algorithm 1.
//!
//! Two phases:
//!
//! 1. **Counting** (Alg. 1 lines 3–7): occurrences of every substring with
//!    length in `[Lmin, Lmax]`. Done level-wise with Apriori-style prefix
//!    pruning — a substring can only reach `min_count` if its
//!    `(len-1)`-prefix did — which bounds memory to the frequent set instead
//!    of every distinct substring of the corpus. The result is exact.
//!
//! 2. **Selection** (lines 8–15): greedily pick the `T` highest-ranked
//!    patterns, re-ranking after each pick with the paper's Eq. (1):
//!    `rank(p, t) = occ(p) × (len(p) − overlap(p, t))`.
//!
//! The paper leaves `overlap(p, t)` loosely specified ("the overlap with
//! patterns selected in the previous iteration"). We interpret it as the
//! largest redundancy between `p` and any already-selected pattern `q`:
//! `len(p)` if one contains the other, otherwise the longest suffix↔prefix
//! overlap in either orientation. This zeroes the rank of fully-contained
//! candidates (pure duplicates) and dampens near-duplicates, which is the
//! effect the formula exists to produce. [`RankStrategy`] exposes the naive
//! `occ × len` rank and a coverage-recount variant so the interpretation is
//! benchmarkable (see the `ablation_rank` harness).

use super::{Dictionary, MAX_PATTERN_LEN};
use crate::codec::Prepopulation;
use crate::error::ZsmilesError;
use smiles::preprocess::{Preprocessor, RingRenumber};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// How candidate patterns are ranked during greedy selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankStrategy {
    /// Paper Eq. (1): `occ × (len − overlap)` with incremental overlap
    /// updates against the selected set.
    #[default]
    PaperOverlap,
    /// Static `occ × len`; no updates. Fast, over-selects near-duplicates.
    FreqTimesLen,
    /// Re-count occurrences on a residual sample after each pick
    /// (occurrences covered by already-selected patterns stop counting).
    /// Closest to true coverage maximization; slowest.
    CoverageRecount,
}

impl RankStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            RankStrategy::PaperOverlap => "paper-overlap",
            RankStrategy::FreqTimesLen => "freq-times-len",
            RankStrategy::CoverageRecount => "coverage-recount",
        }
    }
}

/// Dictionary training configuration. The defaults mirror the paper where
/// it pins a value — `Lmin = 2`, SMILES-alphabet pre-population,
/// pre-processing on, dictionary size = whatever the code space allows —
/// and use `Lmax = 12` where it does not: the paper only sweeps `Lmax` for
/// *runtime* (Fig. 5, values 5/8/15), and 12 is where the ratio curve
/// flattens on our decks (see the `ablation_sweep` harness).
#[derive(Debug, Clone)]
pub struct DictBuilder {
    pub lmin: usize,
    pub lmax: usize,
    pub prepopulation: Prepopulation,
    pub rank: RankStrategy,
    /// Apply ring-ID renumbering to training lines before counting.
    pub preprocess: bool,
    /// Number of multi-byte patterns to select; `None` = fill the free code
    /// space (222 − identity entries).
    pub dict_size: Option<usize>,
    /// Candidates kept for the selection phase (by static rank).
    pub max_candidates: usize,
    /// Minimum occurrences for a substring to be considered at all.
    pub min_count: u32,
    /// Line budget for the residual sample in [`RankStrategy::CoverageRecount`].
    pub recount_sample_lines: usize,
}

impl Default for DictBuilder {
    fn default() -> Self {
        DictBuilder {
            lmin: 2,
            lmax: 12,
            prepopulation: Prepopulation::SmilesAlphabet,
            rank: RankStrategy::PaperOverlap,
            preprocess: true,
            dict_size: None,
            max_candidates: 30_000,
            min_count: 4,
            recount_sample_lines: 2_000,
        }
    }
}

impl DictBuilder {
    /// Train on an iterator of SMILES lines (no newlines).
    pub fn train<'a, I>(&self, lines: I) -> Result<Dictionary, ZsmilesError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let selected = self.train_patterns(lines)?;
        Dictionary::from_patterns(
            self.prepopulation,
            selected,
            self.lmin,
            self.lmax,
            self.preprocess,
        )
    }

    /// Train on an iterator of SMILES lines but return the ranked pattern
    /// list instead of installing it into a [`Dictionary`]. Callers with a
    /// different code space — the wide-code extension installs far more
    /// patterns than the 222 one-byte codes hold — set `dict_size` to the
    /// number of patterns they want and do their own installation.
    pub fn train_patterns<'a, I>(&self, lines: I) -> Result<Vec<Vec<u8>>, ZsmilesError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        if self.lmin < 1 || self.lmax < self.lmin || self.lmax > MAX_PATTERN_LEN {
            return Err(ZsmilesError::BadLengthBounds {
                lmin: self.lmin,
                lmax: self.lmax,
            });
        }

        // Materialize (and optionally pre-process) the training lines once;
        // level-wise counting needs multiple passes.
        let (corpus, n_lines) = materialize_corpus(lines, self.preprocess);
        if n_lines == 0 {
            return Err(ZsmilesError::EmptyTrainingSet);
        }

        let mut candidates =
            count_frequent_substrings(&corpus, self.lmin, self.lmax, self.min_count);
        if candidates.is_empty() {
            return Err(ZsmilesError::EmptyTrainingSet);
        }

        // Keep only the strongest candidates for the O(T·K) selection loop.
        candidates.sort_unstable_by(|a, b| {
            let ra = a.occ as u64 * a.pat.len() as u64;
            let rb = b.occ as u64 * b.pat.len() as u64;
            rb.cmp(&ra).then_with(|| a.pat.cmp(&b.pat))
        });
        candidates.truncate(self.max_candidates);

        let t = self
            .dict_size
            .unwrap_or_else(|| self.prepopulation.free_code_count());
        Ok(match self.rank {
            RankStrategy::PaperOverlap => select_paper_overlap(candidates, t),
            RankStrategy::FreqTimesLen => select_static(candidates, t),
            RankStrategy::CoverageRecount => {
                select_coverage_recount(candidates, t, &corpus, self.recount_sample_lines)
            }
        })
    }
}

/// Concatenate (and optionally ring-ID pre-process) training lines into
/// one newline-separated buffer, the canonical counting input. Shared by
/// the paper's Algorithm 1 here and the cost-guided [`crate::train`]
/// subsystem. Returns `(buffer, line count)`.
pub(crate) fn materialize_corpus<'a, I>(lines: I, preprocess: bool) -> (Vec<u8>, usize)
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut corpus: Vec<u8> = Vec::new();
    let mut pp = Preprocessor::new();
    let mut n_lines = 0usize;
    for line in lines {
        if preprocess {
            let before = corpus.len();
            if pp
                .process_into(line, RingRenumber::Innermost, 0, &mut corpus)
                .is_err()
            {
                // Invalid SMILES still deserve compression; train on the
                // raw bytes.
                corpus.truncate(before);
                corpus.extend_from_slice(line);
            }
        } else {
            corpus.extend_from_slice(line);
        }
        corpus.push(b'\n');
        n_lines += 1;
    }
    (corpus, n_lines)
}

/// Exact frequent-substring harvesting for the [`crate::train`]
/// subsystem: `(pattern, occurrences)` pairs over a newline-separated
/// corpus, Apriori-pruned like Algorithm 1's counting phase.
pub(crate) fn harvest_candidates(
    corpus: &[u8],
    lmin: usize,
    lmax: usize,
    min_count: u32,
) -> Vec<(Vec<u8>, u32)> {
    count_frequent_substrings(corpus, lmin, lmax, min_count)
        .into_iter()
        .map(|c| (c.pat, c.occ))
        .collect()
}

/// A substring candidate during selection.
#[derive(Debug, Clone)]
struct Candidate {
    pat: Vec<u8>,
    occ: u32,
    /// Longest redundancy with the selected set so far (Eq. 1's overlap).
    overlap: u32,
}

impl Candidate {
    #[inline]
    fn rank(&self) -> u64 {
        let effective = (self.pat.len() as u32).saturating_sub(self.overlap);
        self.occ as u64 * effective as u64
    }
}

// ---------------------------------------------------------------------------
// Counting
// ---------------------------------------------------------------------------

/// Pack a substring (≤16 bytes) into a u128 key.
#[inline]
fn pack(s: &[u8]) -> u128 {
    debug_assert!(s.len() <= 16);
    let mut buf = [0u8; 16];
    buf[..s.len()].copy_from_slice(s);
    u128::from_le_bytes(buf)
}

/// Multiply-xor hasher for the packed keys; SipHash is the bottleneck
/// otherwise.
#[derive(Default)]
struct PackHasher(u64);

impl Hasher for PackHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only reached through derived Hash on (u128, u8) tuples.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u128(&mut self, v: u128) {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut h = lo.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hi.rotate_left(29);
        h ^= h >> 32;
        self.0 ^= h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    }
    fn write_u8(&mut self, v: u8) {
        self.0 = (self.0 ^ v as u64).wrapping_mul(0x100_0000_01b3);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u128(v as u128);
    }
}

type PackMap = HashMap<u128, u32, BuildHasherDefault<PackHasher>>;

/// Exact level-wise frequent-substring counting with prefix pruning.
///
/// `corpus` is newline-separated; substrings never cross newlines because
/// `\n` cannot appear in a pattern (and never survives `min_count` anyway —
/// we simply skip windows containing it).
fn count_frequent_substrings(
    corpus: &[u8],
    lmin: usize,
    lmax: usize,
    min_count: u32,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    // Frequent set of the previous level, as packed keys.
    let mut prev_frequent: Option<PackMap> = None;

    for len in 1..=lmax {
        let mut counts: PackMap = PackMap::default();
        if corpus.len() >= len {
            'window: for i in 0..=corpus.len() - len {
                let w = &corpus[i..i + len];
                // Reject windows with newline (line boundary).
                if w.contains(&b'\n') {
                    continue 'window;
                }
                // Apriori: the (len-1)-prefix must have been frequent.
                if let Some(prev) = &prev_frequent {
                    if len > 1 && !prev.contains_key(&pack(&w[..len - 1])) {
                        continue 'window;
                    }
                }
                *counts.entry(pack(w)).or_insert(0) += 1;
            }
        }
        counts.retain(|_, c| *c >= min_count);
        if len >= lmin {
            for (&key, &occ) in &counts {
                let bytes = key.to_le_bytes();
                out.push(Candidate {
                    pat: bytes[..len].to_vec(),
                    occ,
                    overlap: 0,
                });
            }
        }
        if counts.is_empty() {
            break; // no longer substring can be frequent either
        }
        prev_frequent = Some(counts);
    }
    out
}

// ---------------------------------------------------------------------------
// Selection strategies
// ---------------------------------------------------------------------------

/// Largest redundancy between two patterns: containment, else best
/// suffix↔prefix overlap in either orientation.
fn overlap_len(p: &[u8], q: &[u8]) -> usize {
    if contains(q, p) {
        return p.len();
    }
    if contains(p, q) {
        return q.len();
    }
    let lim = p.len().min(q.len());
    let mut best = 0;
    for k in (1..lim).rev() {
        if k <= best {
            break;
        }
        // suffix of p == prefix of q
        if p[p.len() - k..] == q[..k] || q[q.len() - k..] == p[..k] {
            best = k;
        }
    }
    best
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Greedy selection with the paper's rank, updated incrementally: when `q`
/// is selected, each remaining candidate's overlap becomes
/// `max(old, overlap_len(p, q))`.
fn select_paper_overlap(mut cands: Vec<Candidate>, t: usize) -> Vec<Vec<u8>> {
    let mut selected = Vec::with_capacity(t.min(cands.len()));
    for _ in 0..t {
        // argmax by rank; deterministic tie-break: longer pattern, then
        // lexicographic order.
        let Some((best_idx, _)) = cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.rank() > 0)
            .max_by(|(_, a), (_, b)| {
                a.rank()
                    .cmp(&b.rank())
                    .then(a.pat.len().cmp(&b.pat.len()))
                    .then_with(|| b.pat.cmp(&a.pat))
            })
        else {
            break;
        };
        let chosen = cands.swap_remove(best_idx);
        for c in &mut cands {
            let ov = overlap_len(&c.pat, &chosen.pat) as u32;
            if ov > c.overlap {
                c.overlap = ov;
            }
        }
        selected.push(chosen.pat);
    }
    selected
}

/// Static `occ × len` selection: take the top `t` as-is.
fn select_static(mut cands: Vec<Candidate>, t: usize) -> Vec<Vec<u8>> {
    cands.sort_unstable_by(|a, b| {
        b.rank()
            .cmp(&a.rank())
            .then(b.pat.len().cmp(&a.pat.len()))
            .then_with(|| a.pat.cmp(&b.pat))
    });
    cands.truncate(t);
    cands.into_iter().map(|c| c.pat).collect()
}

/// Coverage-recount: after each pick, blank the chosen pattern's
/// occurrences out of a sample and re-count every candidate on the residual
/// text. Quadratic-ish; for ablation studies only.
fn select_coverage_recount(
    cands: Vec<Candidate>,
    t: usize,
    corpus: &[u8],
    sample_lines: usize,
) -> Vec<Vec<u8>> {
    // Take the first `sample_lines` lines as the residual text.
    let mut sample: Vec<u8> = Vec::new();
    for (i, line) in corpus.split(|&b| b == b'\n').enumerate() {
        if i >= sample_lines {
            break;
        }
        sample.extend_from_slice(line);
        sample.push(b'\n');
    }

    let lmax = cands.iter().map(|c| c.pat.len()).max().unwrap_or(0);
    let mut patterns: Vec<Vec<u8>> = cands.into_iter().map(|c| c.pat).collect();
    let mut selected = Vec::new();
    for _ in 0..t {
        // One window-hash pass over the residual sample counts *all*
        // candidates at once; NUL blanks and newlines break windows.
        let mut counts: PackMap = PackMap::default();
        for len in 1..=lmax.min(sample.len()) {
            for win in sample.windows(len) {
                if win.contains(&0) || win.contains(&b'\n') {
                    continue;
                }
                *counts.entry(pack(win)).or_insert(0) += 1;
            }
        }
        let mut best: Option<(u64, usize)> = None;
        for (i, p) in patterns.iter().enumerate() {
            let occ = counts.get(&pack(p)).copied().unwrap_or(0) as u64;
            let rank = occ * p.len() as u64;
            if rank == 0 {
                continue;
            }
            // Ties: longer pattern, then lexicographically smaller.
            let better = match best {
                None => true,
                Some((br, bi)) => {
                    rank > br
                        || (rank == br
                            && (p.len() > patterns[bi].len()
                                || (p.len() == patterns[bi].len() && *p < patterns[bi])))
                }
            };
            if better {
                best = Some((rank, i));
            }
        }
        let Some((_, idx)) = best else { break };
        let chosen = patterns.swap_remove(idx);
        blank_occurrences(&mut sample, &chosen);
        selected.push(chosen);
    }
    selected
}

#[cfg(test)]
fn count_occurrences(text: &[u8], pat: &[u8]) -> usize {
    if pat.is_empty() || text.len() < pat.len() {
        return 0;
    }
    text.windows(pat.len()).filter(|w| *w == pat).count()
}

/// Replace non-overlapping left-to-right occurrences of `pat` with NUL
/// bytes (which never match any pattern).
fn blank_occurrences(text: &mut [u8], pat: &[u8]) {
    let mut i = 0;
    while i + pat.len() <= text.len() {
        if &text[i..i + pat.len()] == pat {
            text[i..i + pat.len()].fill(0);
            i += pat.len();
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(v: &[&str]) -> Vec<Vec<u8>> {
        v.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn train(builder: &DictBuilder, v: &[&str]) -> Dictionary {
        let ls = lines(v);
        builder.train(ls.iter().map(|l| l.as_slice())).unwrap()
    }

    #[test]
    fn counting_finds_repeated_substrings() {
        let cands = count_frequent_substrings(b"CCOCCOCCO\n", 2, 4, 3);
        let pats: Vec<&[u8]> = cands.iter().map(|c| c.pat.as_slice()).collect();
        assert!(pats.contains(&b"CC".as_slice()));
        assert!(pats.contains(&b"CCO".as_slice()));
        let cco = cands.iter().find(|c| c.pat == b"CCO").unwrap();
        assert_eq!(cco.occ, 3);
        let cc = cands.iter().find(|c| c.pat == b"CC").unwrap();
        assert_eq!(cc.occ, 3, "overlapping occurrences all count");
    }

    #[test]
    fn counting_respects_line_boundaries() {
        // "AB" appears twice inside lines; the cross-boundary "B\nA" never
        // counts and neither do windows spanning it.
        let cands = count_frequent_substrings(b"AB\nAB\nAB\nAB\n", 2, 3, 4);
        let pats: Vec<&[u8]> = cands.iter().map(|c| c.pat.as_slice()).collect();
        assert_eq!(pats, vec![b"AB".as_slice()]);
    }

    #[test]
    fn counting_min_count_prunes() {
        let cands = count_frequent_substrings(b"ABCD\nABCE\n", 2, 4, 2);
        let pats: Vec<&[u8]> = cands.iter().map(|c| c.pat.as_slice()).collect();
        assert!(pats.contains(&b"AB".as_slice()));
        assert!(pats.contains(&b"ABC".as_slice()));
        assert!(!pats.contains(&b"ABCD".as_slice()), "count 1 < min 2");
    }

    #[test]
    fn apriori_pruning_is_exact() {
        // Brute-force comparison on a small corpus.
        let corpus = b"COc1cc(C=O)ccc1O\nCOc1cc(C=O)ccc1O\nCC(C)CC\n";
        let got = count_frequent_substrings(corpus, 2, 6, 2);
        // Brute force:
        let mut brute: std::collections::HashMap<Vec<u8>, u32> = Default::default();
        for line in corpus.split(|&b| b == b'\n') {
            for i in 0..line.len() {
                for len in 2..=6.min(line.len() - i) {
                    *brute.entry(line[i..i + len].to_vec()).or_insert(0) += 1;
                }
            }
        }
        brute.retain(|_, c| *c >= 2);
        let mut got_map: std::collections::HashMap<Vec<u8>, u32> = Default::default();
        for c in got {
            got_map.insert(c.pat, c.occ);
        }
        assert_eq!(got_map, brute);
    }

    #[test]
    fn overlap_len_semantics() {
        assert_eq!(overlap_len(b"CC", b"CCO"), 2, "containment");
        assert_eq!(overlap_len(b"CCO", b"CC"), 2, "containment (other way)");
        assert_eq!(overlap_len(b"ABC", b"BCD"), 2, "suffix/prefix: BC");
        assert_eq!(overlap_len(b"BCD", b"ABC"), 2, "orientation-free");
        assert_eq!(overlap_len(b"AB", b"CD"), 0);
        assert_eq!(overlap_len(b"CCO", b"CCO"), 3, "identical = containment");
        assert_eq!(overlap_len(b"XA", b"AX"), 1);
    }

    #[test]
    fn paper_rank_suppresses_contained_duplicates() {
        // "CCO" selected first (rank 3*len3=9 > others); "CC" and "CO" are
        // then fully contained (overlap = their length → rank 0).
        let cands = vec![
            Candidate {
                pat: b"CCO".to_vec(),
                occ: 3,
                overlap: 0,
            },
            Candidate {
                pat: b"CC".to_vec(),
                occ: 3,
                overlap: 0,
            },
            Candidate {
                pat: b"CO".to_vec(),
                occ: 3,
                overlap: 0,
            },
            Candidate {
                pat: b"NN".to_vec(),
                occ: 2,
                overlap: 0,
            },
        ];
        let sel = select_paper_overlap(cands, 4);
        assert_eq!(sel[0], b"CCO");
        assert_eq!(sel[1], b"NN", "contained candidates are skipped");
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn static_rank_keeps_duplicates() {
        let cands = vec![
            Candidate {
                pat: b"CCO".to_vec(),
                occ: 3,
                overlap: 0,
            },
            Candidate {
                pat: b"CC".to_vec(),
                occ: 3,
                overlap: 0,
            },
        ];
        let sel = select_static(cands, 2);
        assert_eq!(sel.len(), 2, "freq×len does not suppress overlap");
    }

    #[test]
    fn coverage_recount_blanks_covered_text() {
        let mut text = b"CCOCCO".to_vec();
        blank_occurrences(&mut text, b"CCO");
        assert_eq!(text, b"\0\0\0\0\0\0");
        let mut text = b"CCCC".to_vec();
        blank_occurrences(&mut text, b"CCC");
        assert_eq!(text, b"\0\0\0C", "non-overlapping, left to right");
        assert_eq!(count_occurrences(b"CCOCCO", b"CCO"), 2);
        assert_eq!(count_occurrences(b"CCCC", b"CC"), 3, "overlapping count");
    }

    #[test]
    fn train_end_to_end() {
        let d = train(
            &DictBuilder {
                min_count: 2,
                ..DictBuilder::default()
            },
            &[
                "COc1cc(C=O)ccc1O",
                "COc1cc(C=O)ccc1O",
                "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
                "C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            ],
        );
        assert!(d.pattern_entries().count() > 0);
        assert!(d.preprocessed());
        d.validate().unwrap();
        // Preprocessing means the dictionary saw ring IDs as 0: patterns
        // containing '0' should exist, and the C0=CC=C prefix the paper
        // calls out should be findable via the trie.
        assert!(
            d.trie()
                .longest_match_at(b"C0=CC=C(C=C0)C(=O)CC(=O)C0=CC=CC=C0", 0)
                .map(|(_, l)| l)
                .unwrap_or(0)
                > 1,
            "expected a multi-byte match on the renumbered ring prefix"
        );
    }

    #[test]
    fn train_without_preprocess_sees_raw_ids() {
        let builder = DictBuilder {
            preprocess: false,
            min_count: 2,
            ..DictBuilder::default()
        };
        let d = train(
            &builder,
            &["C1=CC=C(C=C1)C2=CC=CC=C2", "C1=CC=C(C=C1)C2=CC=CC=C2"],
        );
        assert!(!d.preprocessed());
        let pats: Vec<Vec<u8>> = d.pattern_entries().map(|(_, p)| p.to_vec()).collect();
        assert!(
            pats.iter().any(|p| p.contains(&b'2')),
            "raw training keeps ring ID 2: {pats:?}"
        );
    }

    #[test]
    fn empty_training_set_errors() {
        let b = DictBuilder::default();
        let r = b.train(std::iter::empty());
        assert!(matches!(r, Err(ZsmilesError::EmptyTrainingSet)));
    }

    #[test]
    fn all_unique_lines_with_high_min_count_errors() {
        let b = DictBuilder {
            min_count: 100,
            ..DictBuilder::default()
        };
        let ls = lines(&["CCO", "CNC"]);
        let r = b.train(ls.iter().map(|l| l.as_slice()));
        assert!(matches!(r, Err(ZsmilesError::EmptyTrainingSet)));
    }

    #[test]
    fn dict_size_caps_selection() {
        let b = DictBuilder {
            dict_size: Some(3),
            min_count: 2,
            ..DictBuilder::default()
        };
        let ls = lines(&["CCOCCNCCS", "CCOCCNCCS", "CCOCCNCCS"]);
        let d = b.train(ls.iter().map(|l| l.as_slice())).unwrap();
        assert!(d.pattern_entries().count() <= 3);
    }

    #[test]
    fn strategies_produce_different_dictionaries() {
        let corpus: Vec<&str> = vec!["c1ccccc1CCNC(=O)CC"; 30];
        let mk = |rank| {
            let b = DictBuilder {
                rank,
                min_count: 2,
                dict_size: Some(16),
                ..Default::default()
            };
            let ls = lines(&corpus);
            let d = b.train(ls.iter().map(|l| l.as_slice())).unwrap();
            let mut pats: Vec<Vec<u8>> = d.pattern_entries().map(|(_, p)| p.to_vec()).collect();
            pats.sort();
            pats
        };
        let paper = mk(RankStrategy::PaperOverlap);
        let naive = mk(RankStrategy::FreqTimesLen);
        // Different selection logic should pick visibly different sets on a
        // corpus full of overlapping repeats.
        assert_ne!(paper, naive);
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = ["COc1cc(C=O)ccc1O", "CC(C)Cc1ccc(cc1)C(C)C(=O)O"].repeat(10);
        let b = DictBuilder {
            min_count: 2,
            ..DictBuilder::default()
        };
        let ls = lines(&corpus);
        let d1 = b.train(ls.iter().map(|l| l.as_slice())).unwrap();
        let d2 = b.train(ls.iter().map(|l| l.as_slice())).unwrap();
        let p1: Vec<_> = d1.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        let p2: Vec<_> = d2.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        assert_eq!(p1, p2);
    }
}
