//! Dictionary introspection: how well does a dictionary fit a corpus?
//!
//! A shared dictionary is an artifact teams version and argue about; this
//! module gives the argument numbers — per-code usage, coverage, escape
//! pressure, dead entries — by running the real encoder over a corpus and
//! attributing every output byte.

use crate::codec::{ESCAPE, LINE_SEP};
use crate::compress::Compressor;
use crate::dict::Dictionary;

/// Where the output bytes of a corpus went.
#[derive(Debug, Clone)]
pub struct DictReport {
    /// Output occurrences per code (identity and pattern alike).
    pub uses: [u64; 256],
    /// Input bytes covered per code.
    pub covered: [u64; 256],
    /// Escape sequences emitted (2 output bytes each).
    pub escapes: u64,
    /// Total input payload bytes.
    pub in_bytes: u64,
    /// Total output payload bytes.
    pub out_bytes: u64,
    /// Lines analyzed.
    pub lines: u64,
}

impl DictReport {
    /// Fraction of input bytes covered by multi-byte patterns (as opposed
    /// to identity codes or escapes).
    pub fn pattern_coverage(&self, dict: &Dictionary) -> f64 {
        if self.in_bytes == 0 {
            return 0.0;
        }
        let pattern_bytes: u64 = dict
            .pattern_entries()
            .map(|(c, _)| self.covered[c as usize])
            .sum();
        pattern_bytes as f64 / self.in_bytes as f64
    }

    /// Codes installed but never used on this corpus.
    pub fn dead_codes<'d>(&self, dict: &'d Dictionary) -> Vec<(u8, &'d [u8])> {
        dict.pattern_entries()
            .filter(|(c, _)| self.uses[*c as usize] == 0)
            .collect()
    }

    /// Compression ratio implied by the analysis run.
    pub fn ratio(&self) -> f64 {
        if self.in_bytes == 0 {
            1.0
        } else {
            self.out_bytes as f64 / self.in_bytes as f64
        }
    }

    /// The `k` most productive entries by input bytes covered.
    pub fn top_entries<'d>(&self, dict: &'d Dictionary, k: usize) -> Vec<(u8, &'d [u8], u64)> {
        let mut rows: Vec<(u8, &[u8], u64)> = dict
            .all_entries()
            .map(|(c, p)| (c, p, self.covered[c as usize]))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self, dict: &Dictionary) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} lines, {} -> {} bytes (ratio {:.3})",
            self.lines,
            self.in_bytes,
            self.out_bytes,
            self.ratio()
        );
        let _ = writeln!(
            s,
            "pattern coverage {:.1}% | escapes {} ({:.2}% of output)",
            self.pattern_coverage(dict) * 100.0,
            self.escapes,
            if self.out_bytes == 0 {
                0.0
            } else {
                self.escapes as f64 * 2.0 / self.out_bytes as f64 * 100.0
            }
        );
        let dead = self.dead_codes(dict);
        let _ = writeln!(
            s,
            "dead patterns: {} of {}",
            dead.len(),
            dict.pattern_entries().count()
        );
        let _ = writeln!(s, "top entries by bytes covered:");
        for (code, pat, covered) in self.top_entries(dict, 10) {
            let printable: String = pat
                .iter()
                .map(|&b| if b.is_ascii_graphic() { b as char } else { '?' })
                .collect();
            let _ = writeln!(s, "  0x{code:02x} {printable:<12} {covered:>10} B");
        }
        s
    }
}

/// Run the encoder over a newline-separated corpus and attribute output.
pub fn analyze(dict: &Dictionary, corpus: &[u8]) -> DictReport {
    let mut report = DictReport {
        uses: [0; 256],
        covered: [0; 256],
        escapes: 0,
        in_bytes: 0,
        out_bytes: 0,
        lines: 0,
    };
    let mut compressor = Compressor::new(dict);
    let mut z = Vec::new();
    for line in corpus.split(|&b| b == LINE_SEP).filter(|l| !l.is_empty()) {
        z.clear();
        let (n, _) = compressor.compress_line(line, &mut z);
        report.lines += 1;
        report.in_bytes += line.len() as u64;
        report.out_bytes += n as u64;
        // Walk the code stream and attribute.
        let mut i = 0;
        while i < z.len() {
            let b = z[i];
            if b == ESCAPE {
                report.escapes += 1;
                i += 2;
            } else {
                report.uses[b as usize] += 1;
                report.covered[b as usize] += dict.entry(b).map(|p| p.len() as u64).unwrap_or(0);
                i += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::builder::DictBuilder;
    use crate::Prepopulation;

    fn corpus() -> Vec<u8> {
        let mut v = Vec::new();
        for _ in 0..50 {
            v.extend_from_slice(b"COc1cc(C=O)ccc1O\n");
            v.extend_from_slice(b"CC(C)Cc1ccc(cc1)C(C)C(=O)O\n");
        }
        v
    }

    #[test]
    fn attribution_accounts_every_byte() {
        let data = corpus();
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        let report = analyze(&dict, &data);
        // covered input bytes + escaped bytes == in_bytes
        let covered: u64 = report.covered.iter().sum();
        assert_eq!(covered + report.escapes, report.in_bytes);
        // uses + 2×escapes == out_bytes
        let uses: u64 = report.uses.iter().sum();
        assert_eq!(uses + report.escapes * 2, report.out_bytes);
        assert_eq!(report.lines, 100);
        assert!(report.ratio() < 0.6);
    }

    #[test]
    fn pattern_coverage_dominates_on_trained_corpus() {
        let data = corpus();
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        let report = analyze(&dict, &data);
        assert!(
            report.pattern_coverage(&dict) > 0.7,
            "trained patterns should cover most input: {}",
            report.pattern_coverage(&dict)
        );
        assert_eq!(report.escapes, 0, "compliant SMILES never escape");
    }

    #[test]
    fn identity_dictionary_has_zero_pattern_coverage() {
        let data = corpus();
        let dict = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let report = analyze(&dict, &data);
        assert_eq!(report.pattern_coverage(&dict), 0.0);
        assert!((report.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_codes_detected_on_foreign_corpus() {
        let data = corpus();
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        // A corpus the dictionary has never seen and barely matches.
        let foreign = b"PPPPBBBBIIII\nPPPPBBBBIIII\n";
        let report = analyze(&dict, foreign);
        assert!(!report.dead_codes(&dict).is_empty());
    }

    #[test]
    fn summary_renders() {
        let data = corpus();
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        let report = analyze(&dict, &data);
        let s = report.summary(&dict);
        assert!(s.contains("pattern coverage"));
        assert!(s.contains("top entries"));
    }

    #[test]
    fn empty_corpus() {
        let dict = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let report = analyze(&dict, b"");
        assert_eq!(report.lines, 0);
        assert_eq!(report.ratio(), 1.0);
        assert_eq!(report.pattern_coverage(&dict), 0.0);
    }
}
