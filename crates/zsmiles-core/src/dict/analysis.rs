//! Dictionary introspection: how well does a dictionary fit a corpus?
//!
//! A shared dictionary is an artifact teams version and argue about; this
//! module gives the argument numbers — per-code usage, coverage, escape
//! pressure, dead entries — by running the real encoder over a corpus and
//! attributing every output byte.

use crate::codec::{ESCAPE, LINE_SEP};
use crate::compress::Compressor;
use crate::dict::Dictionary;
use crate::engine::AnyDictionary;
use crate::wide::page_index;

/// Where the output bytes of a corpus went.
#[derive(Debug, Clone)]
pub struct DictReport {
    /// Output occurrences per code (identity and pattern alike).
    pub uses: [u64; 256],
    /// Input bytes covered per code.
    pub covered: [u64; 256],
    /// Escape sequences emitted (2 output bytes each).
    pub escapes: u64,
    /// Total input payload bytes.
    pub in_bytes: u64,
    /// Total output payload bytes.
    pub out_bytes: u64,
    /// Lines analyzed.
    pub lines: u64,
}

impl DictReport {
    /// Fraction of input bytes covered by multi-byte patterns (as opposed
    /// to identity codes or escapes).
    pub fn pattern_coverage(&self, dict: &Dictionary) -> f64 {
        if self.in_bytes == 0 {
            return 0.0;
        }
        let pattern_bytes: u64 = dict
            .pattern_entries()
            .map(|(c, _)| self.covered[c as usize])
            .sum();
        pattern_bytes as f64 / self.in_bytes as f64
    }

    /// Codes installed but never used on this corpus.
    pub fn dead_codes<'d>(&self, dict: &'d Dictionary) -> Vec<(u8, &'d [u8])> {
        dict.pattern_entries()
            .filter(|(c, _)| self.uses[*c as usize] == 0)
            .collect()
    }

    /// Compression ratio implied by the analysis run.
    pub fn ratio(&self) -> f64 {
        if self.in_bytes == 0 {
            1.0
        } else {
            self.out_bytes as f64 / self.in_bytes as f64
        }
    }

    /// The `k` most productive entries by input bytes covered.
    pub fn top_entries<'d>(&self, dict: &'d Dictionary, k: usize) -> Vec<(u8, &'d [u8], u64)> {
        let mut rows: Vec<(u8, &[u8], u64)> = dict
            .all_entries()
            .map(|(c, p)| (c, p, self.covered[c as usize]))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        rows.truncate(k);
        rows
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self, dict: &Dictionary) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} lines, {} -> {} bytes (ratio {:.3})",
            self.lines,
            self.in_bytes,
            self.out_bytes,
            self.ratio()
        );
        let _ = writeln!(
            s,
            "pattern coverage {:.1}% | escapes {} ({:.2}% of output)",
            self.pattern_coverage(dict) * 100.0,
            self.escapes,
            if self.out_bytes == 0 {
                0.0
            } else {
                self.escapes as f64 * 2.0 / self.out_bytes as f64 * 100.0
            }
        );
        let dead = self.dead_codes(dict);
        let _ = writeln!(
            s,
            "dead patterns: {} of {}",
            dead.len(),
            dict.pattern_entries().count()
        );
        let _ = writeln!(s, "top entries by bytes covered:");
        for (code, pat, covered) in self.top_entries(dict, 10) {
            let printable: String = pat
                .iter()
                .map(|&b| if b.is_ascii_graphic() { b as char } else { '?' })
                .collect();
            let _ = writeln!(s, "  0x{code:02x} {printable:<12} {covered:>10} B");
        }
        s
    }
}

/// Run the encoder over a newline-separated corpus and attribute output.
pub fn analyze(dict: &Dictionary, corpus: &[u8]) -> DictReport {
    let mut report = DictReport {
        uses: [0; 256],
        covered: [0; 256],
        escapes: 0,
        in_bytes: 0,
        out_bytes: 0,
        lines: 0,
    };
    let mut compressor = Compressor::new(dict);
    let mut z = Vec::new();
    for line in corpus.split(|&b| b == LINE_SEP).filter(|l| !l.is_empty()) {
        z.clear();
        let (n, _) = compressor.compress_line(line, &mut z);
        report.lines += 1;
        report.in_bytes += line.len() as u64;
        report.out_bytes += n as u64;
        // Walk the code stream and attribute.
        let mut i = 0;
        while i < z.len() {
            let b = z[i];
            if b == ESCAPE {
                report.escapes += 1;
                i += 2;
            } else {
                report.uses[b as usize] += 1;
                report.covered[b as usize] += dict.entry(b).map(|p| p.len() as u64).unwrap_or(0);
                i += 1;
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Flavour-independent stats (the `inspect --dict-stats` surface)
// ---------------------------------------------------------------------------

/// Shape statistics of a dictionary, independent of its code width:
/// entry counts and a pattern-length histogram.
#[derive(Debug, Clone)]
pub struct DictStats {
    /// Pre-population identity entries.
    pub identity: usize,
    /// Trained multi-byte (or single-byte non-identity) pattern entries.
    pub patterns: usize,
    /// `len_histogram[l]` = trained patterns of length `l` (index 0 unused).
    pub len_histogram: Vec<usize>,
    /// Longest installed pattern.
    pub max_len: usize,
}

impl DictStats {
    /// Total entries across identity and patterns.
    pub fn symbols(&self) -> usize {
        self.identity + self.patterns
    }

    /// One histogram row per populated length: `(len, count, bar)`.
    pub fn histogram_rows(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.len_histogram
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &n)| n > 0)
            .map(|(l, &n)| (l, n))
    }
}

/// Shape statistics for either dictionary flavour.
pub fn dict_stats(dict: &AnyDictionary) -> DictStats {
    let mut len_histogram = vec![0usize; crate::dict::MAX_PATTERN_LEN + 1];
    let mut patterns = 0usize;
    let mut max_len = 0usize;
    let mut count = |pat: &[u8]| {
        len_histogram[pat.len()] += 1;
        patterns += 1;
        max_len = max_len.max(pat.len());
    };
    let identity = match dict {
        AnyDictionary::Base(d) => {
            for (_, pat) in d.pattern_entries() {
                count(pat);
            }
            d.len() - d.pattern_entries().count()
        }
        AnyDictionary::Wide(d) => {
            for (_, pat) in d.pattern_entries() {
                count(pat);
            }
            d.len() - d.pattern_entries().count()
        }
    };
    DictStats {
        identity,
        patterns,
        len_histogram,
        max_len,
    }
}

/// Footprint of one compiled matcher layout, for the `inspect
/// --dict-stats` layout comparison.
#[derive(Debug, Clone)]
pub struct MatcherLayoutStats {
    /// Layout name: `"dense"` or `"compact(u16)"` / `"compact(u32)"`.
    pub name: &'static str,
    /// Compiled automaton states (including the dead and root states).
    pub states: usize,
    /// Transition-row width in byte classes (256 for the dense layout).
    pub classes: usize,
    /// Table allocation size.
    pub memory_bytes: usize,
}

impl MatcherLayoutStats {
    /// Average footprint per state — the number the byte-class layout
    /// exists to shrink.
    pub fn bytes_per_state(&self) -> f64 {
        if self.states == 0 {
            0.0
        } else {
            self.memory_bytes as f64 / self.states as f64
        }
    }
}

/// Compile-and-measure both matcher layouts (dense vs byte-class
/// compact) for either dictionary flavour.
pub fn matcher_layouts(dict: &AnyDictionary) -> Vec<MatcherLayoutStats> {
    fn rows<BC>(
        dense_states: usize,
        dense_bytes: usize,
        compact: &crate::trie::CompactAutomaton<BC>,
    ) -> Vec<MatcherLayoutStats>
    where
        BC: crate::trie::CodePayload,
    {
        vec![
            MatcherLayoutStats {
                name: "dense",
                states: dense_states,
                classes: 256,
                memory_bytes: dense_bytes,
            },
            MatcherLayoutStats {
                name: if compact.is_narrow() {
                    "compact(u16)"
                } else {
                    "compact(u32)"
                },
                states: compact.states(),
                classes: compact.class_count(),
                memory_bytes: compact.memory_bytes(),
            },
        ]
    }
    match dict {
        AnyDictionary::Base(d) => {
            let a = d.automaton();
            rows(a.states(), a.memory_bytes(), d.compact())
        }
        AnyDictionary::Wide(d) => {
            let a = d.automaton();
            rows(a.states(), a.memory_bytes(), d.compact())
        }
    }
}

/// Per-symbol hit coverage of either dictionary flavour over a sample
/// deck: the real encoder runs and every output code is attributed, so
/// the numbers are what production compression would do.
#[derive(Debug, Clone)]
pub struct Coverage {
    pub lines: u64,
    pub in_bytes: u64,
    pub out_bytes: u64,
    /// Escape sequences emitted (2 output bytes each).
    pub escapes: u64,
    /// Per used entry, sorted by input bytes covered (descending):
    /// `(emitted code bytes, pattern, uses, covered input bytes)`.
    pub hits: Vec<(Vec<u8>, Vec<u8>, u64, u64)>,
    /// Trained patterns never used on this deck.
    pub dead_patterns: usize,
    /// Trained patterns installed.
    pub total_patterns: usize,
}

impl Coverage {
    /// Compression ratio realized on the sample.
    pub fn ratio(&self) -> f64 {
        if self.in_bytes == 0 {
            1.0
        } else {
            self.out_bytes as f64 / self.in_bytes as f64
        }
    }
}

/// Measure per-symbol coverage by encoding `corpus` (newline-separated)
/// with the dictionary's own encoder and walking the emitted stream.
///
/// Preprocessing is applied here, *before* the encoder, so every counter
/// — `in_bytes`, per-symbol covered bytes, escapes — refers to the same
/// text the matcher actually walked; the accounting identities
/// (`covered + escapes == in_bytes`, `code bytes + 2·escapes ==
/// out_bytes`) hold for preprocessed dictionaries too.
pub fn coverage(dict: &AnyDictionary, corpus: &[u8]) -> Result<Coverage, crate::ZsmilesError> {
    let mut pp = crate::engine::PreprocessStage::new(dict.preprocessed());
    let mut enc: Box<dyn crate::engine::LineEncoder> = match dict {
        AnyDictionary::Base(d) => Box::new(Compressor::new(d).with_preprocess(false)),
        AnyDictionary::Wide(d) => {
            Box::new(crate::wide::WideCompressor::new(d).with_preprocess(false))
        }
    };
    let mut uses: std::collections::HashMap<Vec<u8>, (u64, u64)> = Default::default();
    let mut escapes = 0u64;
    let (mut lines, mut in_bytes, mut out_bytes) = (0u64, 0u64, 0u64);
    let mut z = Vec::new();
    for line in corpus.split(|&b| b == LINE_SEP).filter(|l| !l.is_empty()) {
        let (src, _) = pp.apply(line);
        z.clear();
        let (n, _) = enc.encode_line(src, &mut z);
        lines += 1;
        in_bytes += src.len() as u64;
        out_bytes += n as u64;
        let mut i = 0usize;
        while i < z.len() {
            let b = z[i];
            if b == ESCAPE {
                escapes += 1;
                i += 2;
                continue;
            }
            let (code, pat_len): (Vec<u8>, u64) = match dict {
                AnyDictionary::Base(d) => {
                    let pat = d
                        .entry(b)
                        .ok_or(crate::ZsmilesError::UnknownCode { code: b, at: i })?;
                    (vec![b], pat.len() as u64)
                }
                AnyDictionary::Wide(d) => {
                    if let Some(page) = page_index(b) {
                        let sub = *z
                            .get(i + 1)
                            .ok_or(crate::ZsmilesError::TruncatedWideCode { at: i })?;
                        let pat =
                            d.wide_entry(page, sub)
                                .ok_or(crate::ZsmilesError::UnknownCode {
                                    code: sub,
                                    at: i + 1,
                                })?;
                        (vec![b, sub], pat.len() as u64)
                    } else {
                        let pat = d
                            .base_entry(b)
                            .ok_or(crate::ZsmilesError::UnknownCode { code: b, at: i })?;
                        (vec![b], pat.len() as u64)
                    }
                }
            };
            i += code.len();
            let e = uses.entry(code).or_insert((0, 0));
            e.0 += 1;
            e.1 += pat_len;
        }
    }
    // Attach patterns, count the dead.
    let entries: Vec<(Vec<u8>, Vec<u8>)> = match dict {
        AnyDictionary::Base(d) => d
            .pattern_entries()
            .map(|(c, p)| (vec![c], p.to_vec()))
            .collect(),
        AnyDictionary::Wide(d) => d.pattern_entries().map(|(c, p)| (c, p.to_vec())).collect(),
    };
    let total_patterns = entries.len();
    let dead_patterns = entries
        .iter()
        .filter(|(c, _)| !uses.contains_key(c))
        .count();
    let pattern_of = |code: &[u8]| -> Vec<u8> {
        match dict {
            AnyDictionary::Base(d) => d.entry(code[0]).unwrap_or_default().to_vec(),
            AnyDictionary::Wide(d) => match page_index(code[0]) {
                Some(p) => d.wide_entry(p, code[1]).unwrap_or_default().to_vec(),
                None => d.base_entry(code[0]).unwrap_or_default().to_vec(),
            },
        }
    };
    let mut hits: Vec<(Vec<u8>, Vec<u8>, u64, u64)> = uses
        .into_iter()
        .map(|(code, (n, covered))| {
            let pat = pattern_of(&code);
            (code, pat, n, covered)
        })
        .collect();
    hits.sort_by(|a, b| b.3.cmp(&a.3).then_with(|| a.0.cmp(&b.0)));
    Ok(Coverage {
        lines,
        in_bytes,
        out_bytes,
        escapes,
        hits,
        dead_patterns,
        total_patterns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::builder::DictBuilder;
    use crate::Prepopulation;

    fn corpus() -> Vec<u8> {
        let mut v = Vec::new();
        for _ in 0..50 {
            v.extend_from_slice(b"COc1cc(C=O)ccc1O\n");
            v.extend_from_slice(b"CC(C)Cc1ccc(cc1)C(C)C(=O)O\n");
        }
        v
    }

    #[test]
    fn attribution_accounts_every_byte() {
        let data = corpus();
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        let report = analyze(&dict, &data);
        // covered input bytes + escaped bytes == in_bytes
        let covered: u64 = report.covered.iter().sum();
        assert_eq!(covered + report.escapes, report.in_bytes);
        // uses + 2×escapes == out_bytes
        let uses: u64 = report.uses.iter().sum();
        assert_eq!(uses + report.escapes * 2, report.out_bytes);
        assert_eq!(report.lines, 100);
        assert!(report.ratio() < 0.6);
    }

    #[test]
    fn pattern_coverage_dominates_on_trained_corpus() {
        let data = corpus();
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        let report = analyze(&dict, &data);
        assert!(
            report.pattern_coverage(&dict) > 0.7,
            "trained patterns should cover most input: {}",
            report.pattern_coverage(&dict)
        );
        assert_eq!(report.escapes, 0, "compliant SMILES never escape");
    }

    #[test]
    fn identity_dictionary_has_zero_pattern_coverage() {
        let data = corpus();
        let dict = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let report = analyze(&dict, &data);
        assert_eq!(report.pattern_coverage(&dict), 0.0);
        assert!((report.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dead_codes_detected_on_foreign_corpus() {
        let data = corpus();
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        // A corpus the dictionary has never seen and barely matches.
        let foreign = b"PPPPBBBBIIII\nPPPPBBBBIIII\n";
        let report = analyze(&dict, foreign);
        assert!(!report.dead_codes(&dict).is_empty());
    }

    #[test]
    fn summary_renders() {
        let data = corpus();
        let dict = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        let report = analyze(&dict, &data);
        let s = report.summary(&dict);
        assert!(s.contains("pattern coverage"));
        assert!(s.contains("top entries"));
    }

    #[test]
    fn empty_corpus() {
        let dict = Dictionary::identity_only(Prepopulation::SmilesAlphabet);
        let report = analyze(&dict, b"");
        assert_eq!(report.lines, 0);
        assert_eq!(report.ratio(), 1.0);
        assert_eq!(report.pattern_coverage(&dict), 0.0);
    }

    #[test]
    fn dict_stats_counts_both_flavours() {
        let data = corpus();
        let base = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        let any = AnyDictionary::Base(Box::new(base.clone()));
        let s = dict_stats(&any);
        assert_eq!(s.identity, 78, "SMILES alphabet identity entries");
        assert_eq!(s.patterns, base.pattern_entries().count());
        assert_eq!(s.symbols(), base.len());
        assert_eq!(
            s.histogram_rows().map(|(_, n)| n).sum::<usize>(),
            s.patterns
        );
        assert_eq!(s.max_len, base.max_pattern_len());

        let wide = crate::wide::WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                preprocess: false,
                ..Default::default()
            },
            wide_size: 16,
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        let pats = wide.pattern_entries().count();
        let any = AnyDictionary::Wide(Box::new(wide));
        let s = dict_stats(&any);
        assert_eq!(s.patterns, pats);
    }

    #[test]
    fn coverage_accounts_preprocessed_dictionaries() {
        // Ring-renumbering changes the text the matcher walks (e.g. %12
        // IDs shrink); the counters must all refer to that text, so the
        // accounting identities still hold.
        let mut data = Vec::new();
        for _ in 0..20 {
            data.extend_from_slice(b"C%12CCCC%12\nC1=CC=C(C=C1)C(=O)O\n");
        }
        let dict = DictBuilder {
            min_count: 2,
            preprocess: true,
            ..Default::default()
        }
        .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
        .unwrap();
        assert!(dict.preprocessed());
        let any = AnyDictionary::Base(Box::new(dict));
        let cov = coverage(&any, &data).unwrap();
        let covered: u64 = cov.hits.iter().map(|(_, _, _, c)| c).sum();
        assert_eq!(covered + cov.escapes, cov.in_bytes);
        let code_bytes: u64 = cov
            .hits
            .iter()
            .map(|(code, _, n, _)| code.len() as u64 * n)
            .sum();
        assert_eq!(code_bytes + cov.escapes * 2, cov.out_bytes);
        // in_bytes is the preprocessed base, smaller than the raw deck
        // payload ('%12' pairs collapse to one digit).
        let raw_payload: u64 = data
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(|l| l.len() as u64)
            .sum();
        assert!(
            cov.in_bytes < raw_payload,
            "{} < {raw_payload}",
            cov.in_bytes
        );
    }

    #[test]
    fn coverage_attributes_both_flavours() {
        let data = corpus();
        for wide_size in [0usize, 16] {
            let any = if wide_size == 0 {
                AnyDictionary::Base(Box::new(
                    DictBuilder {
                        min_count: 2,
                        preprocess: false,
                        ..Default::default()
                    }
                    .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
                    .unwrap(),
                ))
            } else {
                AnyDictionary::Wide(Box::new(
                    crate::wide::WideDictBuilder {
                        base: DictBuilder {
                            min_count: 2,
                            preprocess: false,
                            ..Default::default()
                        },
                        wide_size,
                    }
                    .train(data.split(|&b| b == b'\n').filter(|l| !l.is_empty()))
                    .unwrap(),
                ))
            };
            let cov = coverage(&any, &data).unwrap();
            assert_eq!(cov.lines, 100);
            assert!(cov.ratio() < 0.7, "{}", cov.ratio());
            // Every attributed input byte is accounted: covered + escapes.
            let covered: u64 = cov.hits.iter().map(|(_, _, _, c)| c).sum();
            assert_eq!(covered + cov.escapes, cov.in_bytes);
            // Output bytes = code bytes + 2 per escape.
            let code_bytes: u64 = cov
                .hits
                .iter()
                .map(|(code, _, n, _)| code.len() as u64 * n)
                .sum();
            assert_eq!(code_bytes + cov.escapes * 2, cov.out_bytes);
            assert!(cov.dead_patterns <= cov.total_patterns);
            // Sorted by coverage.
            assert!(cov.hits.windows(2).all(|w| w[0].3 >= w[1].3));
        }
    }
}
