//! Out-of-core `.zsa` reading: seek the footer, load only the metadata,
//! then fetch exactly the payload ranges callers ask for.
//!
//! [`crate::Archive`] parses a container it already holds in memory —
//! fine for decks that fit in RAM, wrong for the paper's setting of
//! tens-of-terabyte screening libraries. [`ArchiveReader`] is the
//! out-of-core redesign of the read path:
//!
//! 1. **Open** reads the fixed-size footer and header, then the embedded
//!    dictionary and the line index — a few hundred kilobytes for a
//!    multi-gigabyte archive. The payload is *never* loaded wholesale.
//! 2. **`get(line)`** issues one positioned read for that line's exact
//!    byte range (the [`crate::index::LineIndex`] stores exact ends) and
//!    decodes it. A random-access fetch transfers footer + metadata once,
//!    then one compressed line per request — the property the
//!    counting-source tests pin down.
//! 3. **`get_range`** / [`ArchiveReader::lines`] / `unpack_to` batch
//!    contiguous lines into single reads and reuse one decoder worker,
//!    for campaign-style "pull these thousand hits" workloads and full
//!    streaming unpacks in bounded memory.
//!
//! The reader is generic over [`ArchiveSource`] — a file via
//! [`FileSource`], bytes via [`crate::source::InMemorySource`] or
//! `&[u8]`, or any caller-provided positioned-read backend (an mmap, an
//! object store). Decoding goes through the dyn-safe
//! [`DynEngine`] facade, so none of this code knows which
//! code width the archive uses.
//!
//! # Integrity
//!
//! Opening validates structure (magic, trailer, section bounds, index
//! consistency with the payload length) but cannot checksum a payload it
//! refuses to read; [`ArchiveReader::verify`] streams the whole container
//! through the CRC in bounded memory when end-to-end integrity is worth
//! one sequential pass.

use crate::archive::{bad, parse_layout, FOOTER_LEN, HEADER_LEN};
use crate::decompress::DecompressStats;
use crate::engine::{AnyDictionary, DictFlavor, DynEngine, LineDecoder};
use crate::error::ZsmilesError;
use crate::index::LineIndex;
use crate::source::{ArchiveSource, AutoSource, FileSource};
use std::io::Write;
use std::ops::Range;
use std::path::Path;
use textcomp::crc32::Crc32;

/// Default byte budget for one batched payload read.
pub const DEFAULT_BATCH_BYTES: usize = 1 << 20;

/// A `.zsa` archive opened for random access without loading its payload.
#[derive(Debug)]
pub struct ArchiveReader<S: ArchiveSource> {
    source: S,
    dict: AnyDictionary,
    index: LineIndex,
    payload_start: u64,
    payload_len: u64,
    metadata_bytes: u64,
    stored_crc: u32,
}

impl ArchiveReader<FileSource> {
    /// Open a `.zsa` file for out-of-core random access with plain
    /// positioned I/O. Reads header, footer, dictionary and line index;
    /// the payload stays on disk.
    pub fn open(path: &Path) -> Result<ArchiveReader<FileSource>, ZsmilesError> {
        ArchiveReader::from_source(FileSource::open(path)?)
    }
}

impl ArchiveReader<AutoSource> {
    /// Open a `.zsa` file behind the platform's best read path: a
    /// zero-syscall mmap where available, shared-block-cache positioned
    /// I/O otherwise (see [`AutoSource`]). This is what
    /// [`crate::shard::DeckReader::open`] uses.
    pub fn open_auto(path: &Path) -> Result<ArchiveReader<AutoSource>, ZsmilesError> {
        ArchiveReader::from_source(AutoSource::open(path)?)
    }
}

impl<S: ArchiveSource> ArchiveReader<S> {
    /// Open a container served by `source`, loading only its metadata
    /// sections (header, footer, dictionary, line index).
    pub fn from_source(source: S) -> Result<ArchiveReader<S>, ZsmilesError> {
        let total = source.len();
        if total < (HEADER_LEN + FOOTER_LEN) as u64 {
            return Err(bad(format!(
                "file too short for a .zsa container ({total} bytes)"
            )));
        }
        let footer = source.read_range(total - FOOTER_LEN as u64, FOOTER_LEN)?;
        let header = source.read_range(0, HEADER_LEN)?;
        let layout = parse_layout(&header, &footer, total)?;

        let dict_bytes = source.read_range(layout.dict_start, layout.dict_len as usize)?;
        let dict = AnyDictionary::read(&dict_bytes)?;
        if dict.flavor() != layout.flavor {
            return Err(bad(format!(
                "flavor tag says {} but embedded dictionary is {}",
                layout.flavor.name(),
                dict.flavor().name()
            )));
        }
        let index_bytes = source.read_range(layout.index_start, layout.index_len as usize)?;
        let index = LineIndex::read_from(index_bytes.as_slice())?;
        // The index must describe exactly the payload section. Its own
        // parser already guarantees every stored range lies inside
        // `total_bytes()`, so this one comparison makes every later
        // byte-range read provably in-bounds — the out-of-core substitute
        // for the in-memory parser's rebuild-and-compare.
        if index.total_bytes() != layout.payload_len {
            return Err(bad(format!(
                "index describes {} payload bytes but the container holds {}",
                index.total_bytes(),
                layout.payload_len
            )));
        }
        Ok(ArchiveReader {
            source,
            dict,
            index,
            payload_start: layout.payload_start,
            payload_len: layout.payload_len,
            metadata_bytes: (HEADER_LEN + FOOTER_LEN) as u64 + layout.dict_len + layout.index_len,
            stored_crc: layout.stored_crc,
        })
    }

    /// Number of ligands stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Which dictionary flavour the archive embeds.
    pub fn flavor(&self) -> DictFlavor {
        self.dict.flavor()
    }

    /// The embedded dictionary.
    pub fn dictionary(&self) -> &AnyDictionary {
        &self.dict
    }

    /// The line-offset index.
    pub fn index(&self) -> &LineIndex {
        &self.index
    }

    /// Compressed payload size in bytes (not resident — still in the
    /// source).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_len
    }

    /// Bytes of metadata (header, footer, dictionary, index) a reader
    /// transfers at open time, before any line is requested.
    pub fn metadata_bytes(&self) -> u64 {
        self.metadata_bytes
    }

    /// The CRC32 stored in the container's footer. Structural identity a
    /// shard manifest can cross-check without reading any payload
    /// (verifying the checksum is [`ArchiveReader::verify`]).
    pub fn container_crc(&self) -> u32 {
        self.stored_crc
    }

    /// The underlying source.
    pub fn source(&self) -> &S {
        &self.source
    }

    pub fn into_source(self) -> S {
        self.source
    }

    fn check_line(&self, i: usize) -> Result<(), ZsmilesError> {
        if i >= self.index.len() {
            return Err(ZsmilesError::LineOutOfRange {
                line: i,
                len: self.index.len(),
            });
        }
        Ok(())
    }

    /// The compressed bytes of ligand `i`: one positioned read of exactly
    /// that line's range.
    pub fn compressed_line(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        self.check_line(i)?;
        self.read_span(self.index.line_range(i))
    }

    /// Decompress ligand `i` — the paper's random-access read, out of
    /// core: the transfer is that line's compressed bytes, nothing else.
    pub fn get(&self, i: usize) -> Result<Vec<u8>, ZsmilesError> {
        let line = self.compressed_line(i)?;
        let mut out = Vec::with_capacity(line.len() * 3);
        self.dict.decompress_line(&line, &mut out)?;
        Ok(out)
    }

    /// Decompress a contiguous run of ligands with **one** positioned
    /// read covering the run and one reused decoder worker.
    pub fn get_range(&self, lines: Range<usize>) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        if lines.end > self.index.len() {
            return Err(ZsmilesError::LineOutOfRange {
                line: lines.end.saturating_sub(1),
                len: self.index.len(),
            });
        }
        if lines.is_empty() {
            return Ok(Vec::new());
        }
        let span_start = self.index.line_range(lines.start).start;
        let span_end = self.index.line_range(lines.end - 1).end;
        let span = self.read_span(span_start..span_end)?;

        let mut dec = self.dict.boxed_decoder();
        let mut out = Vec::with_capacity(lines.len());
        for i in lines {
            let r = self.index.line_range(i);
            let line = &span[r.start - span_start..r.end - span_start];
            let mut smiles = Vec::with_capacity(line.len() * 3);
            dec.decode_line(line, &mut smiles)?;
            out.push(smiles);
        }
        Ok(out)
    }

    /// Decompress an arbitrary set of ligands (hit lists are rarely
    /// contiguous), in the order given, with one reused decoder — one
    /// positioned read per requested line.
    pub fn get_many(&self, indices: &[usize]) -> Result<Vec<Vec<u8>>, ZsmilesError> {
        let mut dec = self.dict.boxed_decoder();
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            self.check_line(i)?;
            let line = self.read_span(self.index.line_range(i))?;
            let mut smiles = Vec::with_capacity(line.len() * 3);
            dec.decode_line(&line, &mut smiles)?;
            out.push(smiles);
        }
        Ok(out)
    }

    /// Iterate every ligand in order, reading the payload in batches of
    /// [`DEFAULT_BATCH_BYTES`].
    pub fn lines(&self) -> LineIter<'_, S> {
        self.lines_batched(DEFAULT_BATCH_BYTES)
    }

    /// [`ArchiveReader::lines`] with an explicit per-batch byte budget
    /// (always at least one line per batch).
    pub fn lines_batched(&self, batch_bytes: usize) -> LineIter<'_, S> {
        LineIter {
            reader: self,
            dec: self.dict.boxed_decoder(),
            batch: Vec::new(),
            batch_start: 0,
            batch_end_line: 0,
            next: 0,
            batch_bytes: batch_bytes.max(1),
            failed: false,
        }
    }

    /// Grow a batch of lines starting at line `i` until it would exceed
    /// `budget` payload bytes (always at least one line). Returns the
    /// first line *not* in the batch and the batch's payload byte span —
    /// the single batching rule the iterator and streaming unpack share.
    fn batch_span(&self, i: usize, budget: usize) -> (usize, Range<usize>) {
        let start_off = self.index.line_range(i).start;
        let mut j = i + 1;
        while j < self.index.len() && self.index.line_range(j).end - start_off <= budget {
            j += 1;
        }
        (j, start_off..self.index.line_range(j - 1).end)
    }

    /// Read one payload byte span as positioned I/O.
    fn read_span(&self, span: Range<usize>) -> Result<Vec<u8>, ZsmilesError> {
        self.source
            .read_range(self.payload_start + span.start as u64, span.len())
    }

    /// Stream-decompress the whole archive into `w` on `threads` workers,
    /// reading the payload in chunks of roughly `chunk_bytes` — constant
    /// memory in the archive size.
    pub fn unpack_to<W: Write>(
        &self,
        mut w: W,
        threads: usize,
        chunk_bytes: usize,
    ) -> Result<DecompressStats, ZsmilesError> {
        let chunk_bytes = chunk_bytes.max(1);
        let mut stats = DecompressStats::default();
        let mut i = 0;
        while i < self.index.len() {
            let (j, span) = self.batch_span(i, chunk_bytes);
            let chunk = self.read_span(span)?;
            let (out, s) = self.dict.decompress_parallel(&chunk, threads)?;
            w.write_all(&out)?;
            stats.lines += s.lines;
            stats.in_bytes += s.in_bytes;
            stats.out_bytes += s.out_bytes;
            i = j;
        }
        w.flush()?;
        Ok(stats)
    }

    /// Verify the container's CRC32 end to end, streaming the source in
    /// bounded memory. This is the integrity pass `from_source`
    /// deliberately skips (it would read the whole payload); run it when
    /// opening untrusted archives.
    pub fn verify(&self) -> Result<(), ZsmilesError> {
        let crc_at = self.source.len() - 12;
        let mut hasher = Crc32::new();
        let mut buf = vec![0u8; DEFAULT_BATCH_BYTES.min(crc_at.max(1) as usize)];
        let mut offset = 0u64;
        while offset < crc_at {
            let n = ((crc_at - offset) as usize).min(buf.len());
            self.source.read_at(offset, &mut buf[..n])?;
            hasher.update(&buf[..n]);
            offset += n as u64;
        }
        let actual = hasher.finish();
        if actual != self.stored_crc {
            return Err(bad(format!(
                "CRC mismatch: stored {:08x}, computed {actual:08x} — archive corrupt",
                self.stored_crc
            )));
        }
        Ok(())
    }
}

/// Batched in-order iterator over every decoded line of an archive. One
/// positioned read per batch, one decoder worker for the whole pass.
pub struct LineIter<'r, S: ArchiveSource> {
    reader: &'r ArchiveReader<S>,
    dec: Box<dyn LineDecoder + 'r>,
    batch: Vec<u8>,
    /// Payload offset of `batch[0]`.
    batch_start: usize,
    /// First line *not* covered by the current batch.
    batch_end_line: usize,
    next: usize,
    batch_bytes: usize,
    failed: bool,
}

impl<S: ArchiveSource> LineIter<'_, S> {
    fn fill_batch(&mut self) -> Result<(), ZsmilesError> {
        let (j, span) = self.reader.batch_span(self.next, self.batch_bytes);
        self.batch_start = span.start;
        self.batch = self.reader.read_span(span)?;
        self.batch_end_line = j;
        Ok(())
    }
}

impl<S: ArchiveSource> Iterator for LineIter<'_, S> {
    type Item = Result<Vec<u8>, ZsmilesError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.next >= self.reader.len() {
            return None;
        }
        if self.next >= self.batch_end_line {
            if let Err(e) = self.fill_batch() {
                self.failed = true;
                return Some(Err(e));
            }
        }
        let r = self.reader.index().line_range(self.next);
        let line = &self.batch[r.start - self.batch_start..r.end - self.batch_start];
        let mut out = Vec::with_capacity(line.len() * 3);
        match self.dec.decode_line(line, &mut out) {
            Ok(_) => {
                self.next += 1;
                Some(Ok(out))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed {
            return (0, Some(0));
        }
        let left = self.reader.len() - self.next;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::Archive;
    use crate::dict::builder::DictBuilder;
    use crate::source::{CountingSource, InMemorySource};
    use crate::wide::WideDictBuilder;

    fn deck_lines() -> Vec<&'static [u8]> {
        let lines: [&[u8]; 5] = [
            b"COc1cc(C=O)ccc1O",
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
            b"CC(=O)Oc1ccccc1C(=O)O",
        ];
        lines.iter().copied().cycle().take(120).collect()
    }

    fn deck_bytes() -> Vec<u8> {
        deck_lines()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect()
    }

    fn dict(wide: bool) -> AnyDictionary {
        let base = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        };
        if wide {
            AnyDictionary::Wide(Box::new(
                WideDictBuilder {
                    base,
                    wide_size: 32,
                }
                .train(deck_lines())
                .unwrap(),
            ))
        } else {
            AnyDictionary::Base(Box::new(base.train(deck_lines()).unwrap()))
        }
    }

    fn container(wide: bool) -> Vec<u8> {
        let archive = Archive::pack(dict(wide), &deck_bytes(), 2);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        blob
    }

    #[test]
    fn reader_matches_in_memory_archive_for_both_flavours() {
        for wide in [false, true] {
            let blob = container(wide);
            let archive = Archive::read_from(&blob).unwrap();
            let reader = ArchiveReader::from_source(blob.as_slice()).unwrap();
            assert_eq!(reader.len(), archive.len());
            assert_eq!(reader.flavor(), archive.flavor());
            assert_eq!(reader.payload_bytes(), archive.payload().len() as u64);
            for i in [0usize, 1, 17, 63, 119] {
                assert_eq!(
                    reader.get(i).unwrap(),
                    archive.get(i).unwrap(),
                    "wide={wide}"
                );
                assert_eq!(
                    reader.compressed_line(i).unwrap(),
                    archive.compressed_line(i).unwrap()
                );
            }
            reader.verify().unwrap();
        }
    }

    #[test]
    fn get_touches_only_metadata_plus_one_line() {
        let blob = container(false);
        let total = blob.len() as u64;
        let src = CountingSource::new(InMemorySource::new(blob));
        let reader = ArchiveReader::from_source(src).unwrap();
        let open_bytes = reader.source().bytes_read();
        assert_eq!(
            open_bytes,
            reader.metadata_bytes(),
            "open reads exactly header+footer+dict+index"
        );
        assert!(open_bytes < total, "metadata is a strict subset");

        reader.source().reset();
        let line_len = reader.index().line_range(42).len() as u64;
        reader.get(42).unwrap();
        assert_eq!(reader.source().reads(), 1, "one positioned read per get");
        assert_eq!(
            reader.source().bytes_read(),
            line_len,
            "the read is exactly the line's range"
        );
    }

    #[test]
    fn get_range_is_one_read_and_matches_gets() {
        let blob = container(true);
        let src = CountingSource::new(InMemorySource::new(blob));
        let reader = ArchiveReader::from_source(src).unwrap();
        let singles: Vec<Vec<u8>> = (10..30).map(|i| reader.get(i).unwrap()).collect();
        reader.source().reset();
        let batch = reader.get_range(10..30).unwrap();
        assert_eq!(reader.source().reads(), 1, "a range is one read");
        assert_eq!(batch, singles);
        assert_eq!(reader.get_range(5..5).unwrap(), Vec::<Vec<u8>>::new());
        assert!(matches!(
            reader.get_range(100..200).unwrap_err(),
            ZsmilesError::LineOutOfRange { .. }
        ));
    }

    #[test]
    fn batched_iteration_restores_the_deck() {
        let blob = container(false);
        let reader = ArchiveReader::from_source(blob.as_slice()).unwrap();
        // Tiny batches force many reads; the stream must still be exact.
        for batch_bytes in [1usize, 7, 64, 1 << 20] {
            let lines: Result<Vec<Vec<u8>>, _> = reader.lines_batched(batch_bytes).collect();
            let lines = lines.unwrap();
            assert_eq!(lines.len(), 120, "batch={batch_bytes}");
            assert_eq!(lines, deck_lines(), "batch={batch_bytes}");
        }
        assert_eq!(reader.lines().size_hint(), (120, Some(120)));
    }

    #[test]
    fn unpack_to_streams_the_whole_deck() {
        let blob = container(true);
        let reader = ArchiveReader::from_source(blob.as_slice()).unwrap();
        for chunk in [16usize, 1000, 1 << 22] {
            let mut out = Vec::new();
            let stats = reader.unpack_to(&mut out, 3, chunk).unwrap();
            assert_eq!(out, deck_bytes(), "chunk={chunk}");
            assert_eq!(stats.lines, 120);
        }
    }

    #[test]
    fn zero_line_archive_reads_and_errors_cleanly() {
        let archive = Archive::pack(dict(false), b"", 1);
        let mut blob = Vec::new();
        archive.write_to(&mut blob).unwrap();
        let reader = ArchiveReader::from_source(blob.as_slice()).unwrap();
        assert_eq!(reader.len(), 0);
        assert!(reader.is_empty());
        assert!(matches!(
            reader.get(0).unwrap_err(),
            ZsmilesError::LineOutOfRange { line: 0, len: 0 }
        ));
        assert_eq!(reader.lines().count(), 0);
        let mut out = Vec::new();
        reader.unpack_to(&mut out, 2, 1024).unwrap();
        assert!(out.is_empty());
        reader.verify().unwrap();
    }

    #[test]
    fn truncated_and_corrupt_containers_are_rejected() {
        let blob = container(false);
        // Truncated footer / truncated body / garbage.
        assert!(ArchiveReader::from_source(&blob[..blob.len() - 1]).is_err());
        assert!(ArchiveReader::from_source(&blob[..HEADER_LEN + 3]).is_err());
        assert!(ArchiveReader::from_source(&b"ZSAR0001"[..]).is_err());
        assert!(ArchiveReader::from_source(&b"not an archive, just text"[..]).is_err());

        // A payload bit flip passes structural open (metadata untouched)
        // but fails the streaming verify.
        let mut flipped = blob.clone();
        let payload_mid = blob.len() / 2;
        flipped[payload_mid] ^= 0x01;
        let reader = ArchiveReader::from_source(flipped.as_slice());
        if let Ok(reader) = reader {
            let err = reader.verify().unwrap_err();
            assert!(
                matches!(&err, ZsmilesError::ArchiveFormat { reason } if reason.contains("CRC")),
                "got {err}"
            );
        }
    }

    #[test]
    fn lying_index_totals_are_rejected_at_open() {
        // Bump the index section's `total` field and re-sign the CRC the
        // way a buggy-but-honest writer would; the reader must refuse at
        // open (it cannot rebuild the index without the payload, but the
        // total/payload_len cross-check catches the lie).
        let mut blob = container(false);
        let footer = blob.len() - FOOTER_LEN;
        let index_len = u64::from_le_bytes(blob[footer..footer + 8].try_into().unwrap()) as usize;
        let index_start = footer - index_len;
        let total_at = index_start + 16;
        let total = u64::from_le_bytes(blob[total_at..total_at + 8].try_into().unwrap());
        blob[total_at..total_at + 8].copy_from_slice(&(total + 50).to_le_bytes());
        let crc_at = blob.len() - 12;
        let crc = textcomp::crc32::crc32(&blob[..crc_at]);
        blob[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());

        let err = ArchiveReader::from_source(blob.as_slice()).unwrap_err();
        assert!(
            matches!(&err, ZsmilesError::ArchiveFormat { reason }
                if reason.contains("payload bytes")),
            "got {err}"
        );
    }
}
