//! Out-of-core `.zsa` writing: accept raw SMILES incrementally, compress
//! in bounded batches on the persistent worker pool, and finalize the
//! container without ever materializing the payload.
//!
//! [`crate::Archive::pack`] demands the whole deck *and* the whole
//! compressed payload in memory — fine for decks that fit, wrong for the
//! paper's setting of tens-of-terabyte screening libraries.
//! [`ArchiveWriter`] is the write-side mirror of the out-of-core
//! [`crate::reader::ArchiveReader`]:
//!
//! 1. **Create** serializes the dictionary and appends a placeholder
//!    header + the dictionary section to the [`ArchiveSink`]. Nothing
//!    else is ever resident.
//! 2. **`write`** accepts raw deck bytes in arbitrary slices (lines may
//!    straddle calls). Complete lines accumulate in one bounded staging
//!    buffer; whenever it reaches the configured batch size the writer
//!    drains it through [`crate::parallel::compress_parallel_dyn`] — the
//!    persistent [`crate::parallel::WorkerPool`]'s span queue is the ring
//!    of in-flight work — appends the compressed span to the sink, and
//!    extends the [`LineIndex`] in place ([`LineIndex::append_scan`]).
//!    Back-pressure is structural: `write` does not return until the
//!    batch it filled has been compressed and handed to the sink, so peak
//!    buffered payload is one raw batch plus its compressed image,
//!    independent of deck size ([`ArchiveWriter::peak_buffered_bytes`]
//!    meters it; the one exception is a single line longer than the batch
//!    budget, which must be staged whole because the line is the codec
//!    unit).
//! 3. **`finish`** drains the tail, appends the index and footer, and
//!    patches the header's `payload_len` with one positioned write. The
//!    whole-container CRC stays streaming: the writer hashes everything
//!    after the header as it goes and joins the patched header's CRC to
//!    it with [`textcomp::crc32::crc32_combine`] — no second pass, no
//!    re-read.
//!
//! The bytes produced are **identical** to [`crate::Archive::pack`] +
//! [`crate::Archive::write_to`] for the same deck and dictionary (per-line
//! encoding is context-free, so batching cannot change the payload), which
//! the test suite pins down.

use crate::archive::{FOOTER_LEN, HEADER_LEN, MAGIC, TRAILER};
use crate::compress::CompressStats;
use crate::engine::AnyDictionary;
use crate::error::ZsmilesError;
use crate::index::LineIndex;
use crate::sink::ArchiveSink;
use textcomp::crc32::{crc32, crc32_combine, Crc32};

/// Default raw-byte batch a writer stages before compressing — small
/// enough that writer memory is megabytes, large enough that the worker
/// pool sees real spans.
pub const DEFAULT_WRITER_BATCH: usize = 4 << 20;

/// Tuning for an [`ArchiveWriter`].
#[derive(Debug, Clone, Copy)]
pub struct WriterOptions {
    /// Worker threads per compression batch (1 = serial).
    pub threads: usize,
    /// Raw input bytes staged per compression batch.
    pub batch_bytes: usize,
}

impl Default for WriterOptions {
    fn default() -> Self {
        WriterOptions {
            threads: 1,
            batch_bytes: DEFAULT_WRITER_BATCH,
        }
    }
}

/// What a finished pack reports, alongside the returned sink.
#[derive(Debug, Clone, Copy)]
pub struct PackInfo {
    /// Ligand lines stored (blank input lines are skipped, as everywhere).
    pub lines: usize,
    /// Compressed payload bytes inside the container.
    pub payload_bytes: u64,
    /// Total container bytes written to the sink.
    pub container_bytes: u64,
    /// The container's CRC32 (the value stored in the footer).
    pub crc32: u32,
    /// Compression accounting across every batch.
    pub stats: CompressStats,
    /// High-water mark of payload bytes the writer itself buffered.
    pub peak_buffered_bytes: usize,
}

/// A `.zsa` container being written incrementally through a sink.
#[derive(Debug)]
pub struct ArchiveWriter<K: ArchiveSink> {
    sink: K,
    dict: AnyDictionary,
    opts: WriterOptions,
    /// Raw input staged for the next compression batch (whole lines plus
    /// at most one partial tail line).
    pending: Vec<u8>,
    /// Whether `pending` currently holds at least one newline — tracked
    /// on append so a full-but-mid-line staging buffer (one line longer
    /// than the batch budget) is detected in O(1) instead of rescanning
    /// the buffer per write call.
    pending_has_newline: bool,
    index: LineIndex,
    /// Streaming CRC over everything *after* the fixed-size header.
    crc_tail: Crc32,
    /// Bytes hashed into `crc_tail` so far.
    tail_len: u64,
    dict_len: u64,
    payload_len: u64,
    stats: CompressStats,
    peak_buffered: usize,
}

impl<K: ArchiveSink> ArchiveWriter<K> {
    /// Start a container on `sink` with default options.
    pub fn create(sink: K, dict: AnyDictionary) -> Result<ArchiveWriter<K>, ZsmilesError> {
        ArchiveWriter::with_options(sink, dict, WriterOptions::default())
    }

    /// Start a container on `sink`: writes a placeholder header (patched
    /// at [`ArchiveWriter::finish`]) and the dictionary section.
    pub fn with_options(
        mut sink: K,
        dict: AnyDictionary,
        opts: WriterOptions,
    ) -> Result<ArchiveWriter<K>, ZsmilesError> {
        let mut dict_bytes = Vec::new();
        dict.write(&mut dict_bytes)?;
        sink.append(&[0u8; HEADER_LEN])?;
        sink.append(&dict_bytes)?;
        let mut crc_tail = Crc32::new();
        crc_tail.update(&dict_bytes);
        Ok(ArchiveWriter {
            sink,
            dict,
            opts: WriterOptions {
                threads: opts.threads.max(1),
                batch_bytes: opts.batch_bytes.max(1),
            },
            pending: Vec::new(),
            pending_has_newline: false,
            index: LineIndex::default(),
            crc_tail,
            tail_len: dict_bytes.len() as u64,
            dict_len: dict_bytes.len() as u64,
            payload_len: 0,
            stats: CompressStats::default(),
            peak_buffered: 0,
        })
    }

    /// Which dictionary flavour the container embeds.
    pub fn dictionary(&self) -> &AnyDictionary {
        &self.dict
    }

    /// Ligand lines indexed so far (lines still staged in the current
    /// batch are not counted until their batch is compressed).
    pub fn lines_written(&self) -> usize {
        self.index.len()
    }

    /// Compressed payload bytes appended to the sink so far.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_len
    }

    /// High-water mark of payload bytes buffered inside the writer (raw
    /// staging plus the compressed image of the batch in flight) — the
    /// quantity the bounded-memory guarantee is about.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.peak_buffered
    }

    /// The sink being written.
    pub fn sink(&self) -> &K {
        &self.sink
    }

    /// Accept raw deck bytes (newline-separated SMILES). Slices may cut
    /// lines anywhere; the writer reassembles them. Whenever a full batch
    /// of complete lines is staged it is compressed and flushed to the
    /// sink before this call returns.
    pub fn write(&mut self, mut bytes: &[u8]) -> Result<(), ZsmilesError> {
        while !bytes.is_empty() {
            let room = self.opts.batch_bytes.saturating_sub(self.pending.len());
            let take = if room > 0 {
                room.min(bytes.len())
            } else {
                // Staging is full but ends mid-line (one line longer than
                // the batch budget): extend straight through that line's
                // newline so it can complete, rather than byte-by-byte.
                match bytes.iter().position(|&b| b == b'\n') {
                    Some(p) => p + 1,
                    None => bytes.len(),
                }
            };
            self.pending.extend_from_slice(&bytes[..take]);
            self.pending_has_newline = self.pending_has_newline || bytes[..take].contains(&b'\n');
            bytes = &bytes[take..];
            self.peak_buffered = self.peak_buffered.max(self.pending.len());
            if self.pending.len() >= self.opts.batch_bytes {
                self.flush_complete_lines()?;
            }
        }
        Ok(())
    }

    /// Accept one line (no newline). Equivalent to writing the line's
    /// bytes followed by `\n`.
    pub fn write_line(&mut self, line: &[u8]) -> Result<(), ZsmilesError> {
        self.pending.extend_from_slice(line);
        self.pending.push(b'\n');
        self.pending_has_newline = true;
        self.peak_buffered = self.peak_buffered.max(self.pending.len());
        if self.pending.len() >= self.opts.batch_bytes {
            self.flush_complete_lines()?;
        }
        Ok(())
    }

    /// Compress and flush the staged bytes up to (and including) the last
    /// complete line. A no-op while no newline has been staged yet (O(1)
    /// in that case — the flag, not a rescan, says so).
    fn flush_complete_lines(&mut self) -> Result<(), ZsmilesError> {
        if !self.pending_has_newline {
            return Ok(());
        }
        let p = self
            .pending
            .iter()
            .rposition(|&b| b == b'\n')
            .expect("flag says a newline is staged");
        self.flush_batch(p + 1)?;
        // Everything after the last newline was kept; by construction the
        // tail holds no newline.
        self.pending_has_newline = false;
        Ok(())
    }

    /// Compress `self.pending[..upto]` as one batch, append the result to
    /// the sink, and extend index/CRC/stats.
    fn flush_batch(&mut self, upto: usize) -> Result<(), ZsmilesError> {
        if upto == 0 {
            return Ok(());
        }
        let (z, s) = self
            .dict
            .compress_parallel(&self.pending[..upto], self.opts.threads);
        self.peak_buffered = self.peak_buffered.max(self.pending.len() + z.len());
        self.index.append_scan(&z);
        self.crc_tail.update(&z);
        self.tail_len += z.len() as u64;
        self.sink.append(&z)?;
        self.payload_len += z.len() as u64;
        self.stats.merge(&s);
        self.pending.drain(..upto);
        Ok(())
    }

    /// Flush the tail, write index and footer, patch the header, and
    /// return the sink together with the pack accounting.
    pub fn finish(mut self) -> Result<(K, PackInfo), ZsmilesError> {
        // The final staged bytes are a batch whether or not they end with
        // a newline (the encoder terminates the last line itself).
        let upto = self.pending.len();
        self.flush_batch(upto)?;

        let mut index_bytes = Vec::new();
        self.index.write_to(&mut index_bytes)?;
        self.crc_tail.update(&index_bytes);
        self.tail_len += index_bytes.len() as u64;
        self.sink.append(&index_bytes)?;
        let index_len = (index_bytes.len() as u64).to_le_bytes();
        self.crc_tail.update(&index_len);
        self.tail_len += 8;
        self.sink.append(&index_len)?;

        // The header was unknowable until now (payload_len); build it,
        // patch it in place, and join its CRC to the streamed tail's.
        let mut header = [0u8; HEADER_LEN];
        header[..8].copy_from_slice(MAGIC);
        header[8] = self.dict.flavor().tag();
        header[16..24].copy_from_slice(&self.dict_len.to_le_bytes());
        header[24..32].copy_from_slice(&self.payload_len.to_le_bytes());
        self.sink.write_at(0, &header)?;
        let crc = crc32_combine(crc32(&header), self.crc_tail.finish(), self.tail_len);
        self.sink.append(&crc.to_le_bytes())?;
        self.sink.append(TRAILER)?;
        self.sink.flush()?;

        debug_assert_eq!(
            self.sink.position(),
            HEADER_LEN as u64 + self.tail_len + (FOOTER_LEN as u64 - 8),
            "container layout accounting"
        );
        let info = PackInfo {
            lines: self.index.len(),
            payload_bytes: self.payload_len,
            container_bytes: self.sink.position(),
            crc32: crc,
            stats: self.stats,
            peak_buffered_bytes: self.peak_buffered,
        };
        Ok((self.sink, info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::Archive;
    use crate::dict::builder::DictBuilder;
    use crate::reader::ArchiveReader;
    use crate::sink::{CountingSink, InMemorySink};
    use crate::wide::WideDictBuilder;

    fn deck_lines() -> Vec<&'static [u8]> {
        let lines: [&[u8]; 5] = [
            b"COc1cc(C=O)ccc1O",
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
            b"CC(=O)Oc1ccccc1C(=O)O",
        ];
        lines.iter().copied().cycle().take(200).collect()
    }

    fn deck_bytes() -> Vec<u8> {
        deck_lines()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect()
    }

    fn dict(wide: bool) -> AnyDictionary {
        let base = DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        };
        if wide {
            AnyDictionary::Wide(Box::new(
                WideDictBuilder {
                    base,
                    wide_size: 32,
                }
                .train(deck_lines())
                .unwrap(),
            ))
        } else {
            AnyDictionary::Base(Box::new(base.train(deck_lines()).unwrap()))
        }
    }

    #[test]
    fn streaming_writer_is_byte_identical_to_in_memory_pack() {
        let deck = deck_bytes();
        for wide in [false, true] {
            let archive = Archive::pack(dict(wide), &deck, 2);
            let mut expect = Vec::new();
            archive.write_to(&mut expect).unwrap();

            // Arbitrary slicing — including cuts inside lines — and both
            // serial and parallel batches must reproduce the same bytes.
            for (batch, step, threads) in [(7usize, 3usize, 1usize), (64, 11, 3), (1 << 20, 97, 2)]
            {
                let mut w = ArchiveWriter::with_options(
                    InMemorySink::new(),
                    dict(wide),
                    WriterOptions {
                        threads,
                        batch_bytes: batch,
                    },
                )
                .unwrap();
                for chunk in deck.chunks(step) {
                    w.write(chunk).unwrap();
                }
                let (sink, info) = w.finish().unwrap();
                assert_eq!(
                    sink.bytes(),
                    expect.as_slice(),
                    "wide={wide} batch={batch} step={step}"
                );
                assert_eq!(info.lines, 200);
                assert_eq!(info.payload_bytes, archive.payload().len() as u64);
                assert_eq!(info.container_bytes, expect.len() as u64);
                assert_eq!(info.stats.lines, 200);

                // And the standard readers accept it.
                let reopened = Archive::read_from(sink.bytes()).unwrap();
                assert_eq!(reopened.get(123).unwrap(), deck_lines()[123]);
            }
        }
    }

    #[test]
    fn write_line_and_missing_trailing_newline_agree_with_write() {
        let deck = deck_bytes();
        let mut by_line = ArchiveWriter::create(InMemorySink::new(), dict(false)).unwrap();
        for line in deck_lines() {
            by_line.write_line(line).unwrap();
        }
        let (sink_a, _) = by_line.finish().unwrap();

        // Same deck without the final newline: the last line still lands.
        let mut w = ArchiveWriter::create(InMemorySink::new(), dict(false)).unwrap();
        w.write(&deck[..deck.len() - 1]).unwrap();
        let (sink_b, info) = w.finish().unwrap();
        assert_eq!(sink_a.bytes(), sink_b.bytes());
        assert_eq!(info.lines, 200);
    }

    #[test]
    fn interior_blank_lines_are_skipped_like_everywhere_else() {
        let raw = b"CCO\n\n\nCCN(CC)CC\n\nCC(=O)Oc1ccccc1C(=O)O\n";
        let archive = Archive::pack(dict(false), raw, 1);
        let mut expect = Vec::new();
        archive.write_to(&mut expect).unwrap();

        let mut w = ArchiveWriter::with_options(
            InMemorySink::new(),
            dict(false),
            WriterOptions {
                threads: 1,
                batch_bytes: 5,
            },
        )
        .unwrap();
        w.write(raw).unwrap();
        let (sink, info) = w.finish().unwrap();
        assert_eq!(sink.bytes(), expect.as_slice());
        assert_eq!(info.lines, 3);
    }

    #[test]
    fn one_line_longer_than_the_batch_budget_still_packs() {
        // A single line bigger than batch_bytes cannot be cut (the line
        // is the codec unit); the writer must stage it whole — in big
        // strides, not byte-by-byte rescans — and the output must still
        // match the in-memory pack.
        let long: Vec<u8> = b"CCO".iter().copied().cycle().take(30_000).collect();
        let mut raw = long.clone();
        raw.push(b'\n');
        raw.extend_from_slice(b"CCN(CC)CC\n");
        let archive = Archive::pack(dict(false), &raw, 1);
        let mut expect = Vec::new();
        archive.write_to(&mut expect).unwrap();

        let mut w = ArchiveWriter::with_options(
            InMemorySink::new(),
            dict(false),
            WriterOptions {
                threads: 1,
                batch_bytes: 64, // far smaller than the line
            },
        )
        .unwrap();
        // Feed in awkward slices, including ones that leave the staging
        // buffer full mid-line.
        for chunk in raw.chunks(1000) {
            w.write(chunk).unwrap();
        }
        let (sink, info) = w.finish().unwrap();
        assert_eq!(info.lines, 2);
        assert_eq!(sink.bytes(), expect.as_slice());
    }

    #[test]
    fn empty_deck_finalizes_to_a_valid_empty_container() {
        let w = ArchiveWriter::create(InMemorySink::new(), dict(false)).unwrap();
        let (sink, info) = w.finish().unwrap();
        assert_eq!(info.lines, 0);
        assert_eq!(info.payload_bytes, 0);
        let reopened = Archive::read_from(sink.bytes()).unwrap();
        assert!(reopened.is_empty());
    }

    #[test]
    fn buffered_payload_stays_bounded_while_the_container_grows() {
        // A deck far larger than the batch budget, streamed through a
        // metering sink: the writer's high-water mark must stay a small
        // multiple of the batch size even as the sink swallows megabytes.
        let batch = 16 << 10;
        let mut w = ArchiveWriter::with_options(
            CountingSink::new(InMemorySink::new()),
            dict(false),
            WriterOptions {
                threads: 2,
                batch_bytes: batch,
            },
        )
        .unwrap();
        let deck = deck_bytes(); // ~4.6 KB per repetition
        for _ in 0..500 {
            w.write(&deck).unwrap();
        }
        let (sink, info) = w.finish().unwrap();
        assert_eq!(info.lines, 200 * 500);
        assert!(
            info.payload_bytes > 8 * batch as u64,
            "container is much larger than the budget ({} payload bytes)",
            info.payload_bytes
        );
        assert!(
            info.peak_buffered_bytes <= 3 * batch,
            "peak buffered {} exceeds 3x the {} batch budget",
            info.peak_buffered_bytes,
            batch
        );
        assert!(sink.appends() > 50, "payload flowed out in many spans");
        assert_eq!(sink.patches(), 1, "exactly one header patch");

        // The result is still a perfectly ordinary container.
        let bytes = sink.into_inner().into_bytes();
        let reader = ArchiveReader::from_source(bytes.as_slice()).unwrap();
        assert_eq!(reader.len(), 100_000);
        reader.verify().unwrap();
        assert_eq!(reader.get(99_999).unwrap(), deck_lines()[199]);
    }

    #[test]
    fn file_sink_pack_opens_through_the_file_reader() {
        let path =
            std::env::temp_dir().join(format!("zsmiles_test_writer_{}.zsa", std::process::id()));
        let sink = crate::sink::FileSink::create(&path).unwrap();
        let mut w = ArchiveWriter::with_options(
            sink,
            dict(true),
            WriterOptions {
                threads: 2,
                batch_bytes: 256,
            },
        )
        .unwrap();
        w.write(&deck_bytes()).unwrap();
        let (_, info) = w.finish().unwrap();
        assert_eq!(info.lines, 200);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            info.container_bytes
        );

        let reader = ArchiveReader::open(&path).unwrap();
        assert_eq!(reader.len(), 200);
        reader.verify().unwrap();
        assert_eq!(reader.get(42).unwrap(), deck_lines()[42]);
        std::fs::remove_file(&path).ok();
    }
}
