//! Wide-code extension: two-byte codes that lift the 222-pattern ceiling.
//!
//! The paper confines the dictionary to one-byte codes — 222 displayable
//! bytes after reserving newline and the escape marker — and never asks
//! whether that ceiling binds. This module answers the question (see the
//! `ablation_wide` harness): it reserves the top eight extended bytes
//! ([`PAGE_BYTES`], `0xF8..=0xFF`) as *page prefixes*, each opening a full
//! second byte of code space, for up to `8 × 222 = 1776` extra patterns on
//! top of the remaining 214 one-byte codes.
//!
//! Costs change accordingly: a wide code spends **two** output bytes, the
//! same as an escape, so it only ever pays for patterns of length ≥ 3 —
//! shorter candidates are rejected at installation. The per-line encoder is
//! the same backward shortest-path DP as [`crate::sp`], generalized to
//! per-edge costs, so the emitted stream is still optimal for the
//! dictionary.
//!
//! Every design requirement of the paper survives:
//!
//! * output bytes remain displayable (page bytes are extended bytes like
//!   any other code), so archives stay readable and grep-able;
//! * `\n` and the space escape are untouched — lines stay separable, random
//!   access works, and a [`WideDictionary`] with zero wide entries encodes
//!   exactly like a base [`crate::dict::Dictionary`] shorn of eight codes.

use crate::codec::{code_space, is_code_byte, Prepopulation, ESCAPE, LINE_SEP};
use crate::compress::{CompressStats, MatcherKind};
use crate::decompress::DecompressStats;
use crate::dict::builder::DictBuilder;
use crate::dict::MAX_PATTERN_LEN;
use crate::engine::{LineDecoder, LineEncoder, PreprocessStage};
use crate::error::ZsmilesError;
use crate::trie::{CompactAutomaton, CompactLayout, DenseAutomaton, Matcher, RelaxKey, Trie};
use std::io::{Read, Write};

/// The eight extended bytes reserved as wide-code page prefixes.
pub const PAGE_BYTES: [u8; 8] = [0xF8, 0xF9, 0xFA, 0xFB, 0xFC, 0xFD, 0xFE, 0xFF];

/// Wide slots available per page (any code byte may follow a page byte).
pub const SUBS_PER_PAGE: usize = crate::codec::CODE_SPACE_SIZE;

/// Maximum wide entries: 8 pages × 222 sub-codes.
pub const MAX_WIDE_ENTRIES: usize = PAGE_BYTES.len() * SUBS_PER_PAGE;

/// Index of a page byte within [`PAGE_BYTES`], if it is one.
#[inline]
pub const fn page_index(b: u8) -> Option<usize> {
    if b >= PAGE_BYTES[0] {
        Some((b - PAGE_BYTES[0]) as usize)
    } else {
        None
    }
}

/// Shortest wide pattern worth a two-byte code (an escape also costs 2, so
/// length-2 wide patterns would be dead weight).
pub const MIN_WIDE_PATTERN_LEN: usize = 3;

// ---------------------------------------------------------------------------
// Code identifiers
// ---------------------------------------------------------------------------

/// Dense identifier for either code width, as stored in the matcher:
/// `id < 256` is the base code byte itself; otherwise
/// `id - 256 = page_index × 256 + sub_byte`.
pub type CodeId = u16;

#[inline]
fn base_id(code: u8) -> CodeId {
    code as CodeId
}

#[inline]
fn wide_id(page: usize, sub: u8) -> CodeId {
    256 + (page as CodeId) * 256 + sub as CodeId
}

/// Emitted bytes and their count for a [`CodeId`].
#[inline]
fn emit_bytes(id: CodeId) -> ([u8; 2], usize) {
    if id < 256 {
        ([id as u8, 0], 1)
    } else {
        let x = id - 256;
        ([PAGE_BYTES[(x >> 8) as usize], (x & 0xFF) as u8], 2)
    }
}

// ---------------------------------------------------------------------------
// WideDictionary
// ---------------------------------------------------------------------------

/// A dictionary over the widened code space: up to 214 one-byte codes plus
/// up to [`MAX_WIDE_ENTRIES`] two-byte codes behind page prefixes.
#[derive(Debug, Clone)]
pub struct WideDictionary {
    /// One-byte code table (page bytes always vacant here).
    base: Vec<Option<Box<[u8]>>>,
    /// Identity provenance for base codes (pre-population entries).
    identity: Vec<bool>,
    /// `pages[p][sub]` = pattern behind the two-byte code `PAGE_BYTES[p] sub`.
    pages: Vec<Vec<Option<Box<[u8]>>>>,
    prepopulation: Prepopulation,
    lmin: usize,
    lmax: usize,
    preprocessed: bool,
    /// Pattern → [`CodeId`] matcher — the shared [`crate::trie::Trie`] at
    /// the 16-bit payload width (base and wide ids overflow a `u8`).
    trie: Trie<CodeId>,
    /// The flat table-driven matcher the wide encode hot path walks,
    /// compiled from `trie` on first use. Lazy (and shared across clones)
    /// for the same reason as [`crate::dict::Dictionary`]: the tables run
    /// to megabytes and decode-only paths never walk them.
    automaton: std::sync::Arc<std::sync::OnceLock<DenseAutomaton<CodeId>>>,
    /// The byte-class compressed matcher the wide encode hot path walks by
    /// default ([`MatcherKind::Compact`]); lazy and shared across clones
    /// like `automaton`. Wide dictionaries are where the compact layout
    /// pays most: a maximal one runs to ~28k states, whose dense rows cost
    /// 1 KiB each.
    compact: std::sync::Arc<std::sync::OnceLock<CompactAutomaton<CodeId>>>,
}

impl WideDictionary {
    /// Install `patterns` (ordered by rank) into the widened code space:
    /// identity entries first, then one-byte codes until they run out, then
    /// two-byte codes (patterns shorter than [`MIN_WIDE_PATTERN_LEN`] are
    /// skipped in the wide region — a 2-byte code for a 2-byte pattern
    /// saves nothing). At most `wide_capacity` wide entries are installed;
    /// further patterns error with [`ZsmilesError::CodeSpaceExhausted`].
    pub fn from_patterns<I, P>(
        prepopulation: Prepopulation,
        patterns: I,
        lmin: usize,
        lmax: usize,
        preprocessed: bool,
        wide_capacity: usize,
    ) -> Result<WideDictionary, ZsmilesError>
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        if lmin < 1 || lmax < lmin || lmax > MAX_PATTERN_LEN {
            return Err(ZsmilesError::BadLengthBounds { lmin, lmax });
        }
        let wide_capacity = wide_capacity.min(MAX_WIDE_ENTRIES);
        let mut base: Vec<Option<Box<[u8]>>> = vec![None; 256];
        let mut identity = vec![false; 256];
        for &b in &prepopulation.identity_bytes() {
            base[b as usize] = Some(vec![b].into_boxed_slice());
            identity[b as usize] = true;
        }
        let mut free_base: Vec<u8> = code_space()
            .filter(|&c| page_index(c).is_none() && base[c as usize].is_none())
            .collect();
        free_base.reverse();
        // Wide slots in (page, sub) order.
        let mut wide_next = 0usize;
        let mut pages: Vec<Vec<Option<Box<[u8]>>>> = vec![vec![None; 256]; PAGE_BYTES.len()];
        let subs: Vec<u8> = code_space().collect();

        let mut installed = 0usize;
        for (seen, pat) in patterns.into_iter().enumerate() {
            let pat = pat.as_ref();
            let requested = seen + 1;
            // Deserialized dictionaries can carry corrupted patterns —
            // refuse typed, don't assert.
            if pat.is_empty() || pat.len() > MAX_PATTERN_LEN {
                return Err(ZsmilesError::DictFormat {
                    line: requested,
                    reason: format!("pattern has length {} (1..={MAX_PATTERN_LEN})", pat.len()),
                });
            }
            if pat.len() == 1 && base[pat[0] as usize].is_some() {
                continue; // identity duplicate
            }
            if let Some(code) = free_base.pop() {
                base[code as usize] = Some(pat.to_vec().into_boxed_slice());
                installed += 1;
                continue;
            }
            if pat.len() < MIN_WIDE_PATTERN_LEN {
                continue; // not worth two bytes
            }
            if wide_next >= wide_capacity {
                return Err(ZsmilesError::CodeSpaceExhausted {
                    requested,
                    available: installed + prepopulation.identity_bytes().len(),
                });
            }
            let page = wide_next / SUBS_PER_PAGE;
            let sub = subs[wide_next % SUBS_PER_PAGE];
            pages[page][sub as usize] = Some(pat.to_vec().into_boxed_slice());
            wide_next += 1;
            installed += 1;
        }

        let mut trie: Trie<CodeId> = Trie::new();
        for (code, entry) in base.iter().enumerate() {
            if let Some(pat) = entry {
                trie.insert(pat, base_id(code as u8));
            }
        }
        for (p, page) in pages.iter().enumerate() {
            for (sub, entry) in page.iter().enumerate() {
                if let Some(pat) = entry {
                    trie.insert(pat, wide_id(p, sub as u8));
                }
            }
        }
        Ok(WideDictionary {
            base,
            identity,
            pages,
            prepopulation,
            lmin,
            lmax,
            preprocessed,
            trie,
            automaton: std::sync::Arc::new(std::sync::OnceLock::new()),
            compact: std::sync::Arc::new(std::sync::OnceLock::new()),
        })
    }

    /// The pattern behind a one-byte code.
    #[inline]
    pub fn base_entry(&self, code: u8) -> Option<&[u8]> {
        self.base[code as usize].as_deref()
    }

    /// The pattern behind the two-byte code `PAGE_BYTES[page] sub`.
    #[inline]
    pub fn wide_entry(&self, page: usize, sub: u8) -> Option<&[u8]> {
        self.pages.get(page)?.get(sub as usize)?.as_deref()
    }

    /// One-byte entries (identity included).
    pub fn base_len(&self) -> usize {
        self.base.iter().filter(|e| e.is_some()).count()
    }

    /// Two-byte entries.
    pub fn wide_len(&self) -> usize {
        self.pages
            .iter()
            .map(|p| p.iter().filter(|e| e.is_some()).count())
            .sum()
    }

    /// Total entries across both widths.
    pub fn len(&self) -> usize {
        self.base_len() + self.wide_len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn prepopulation(&self) -> Prepopulation {
        self.prepopulation
    }

    pub fn lmin(&self) -> usize {
        self.lmin
    }

    pub fn lmax(&self) -> usize {
        self.lmax
    }

    pub fn preprocessed(&self) -> bool {
        self.preprocessed
    }

    /// Longest installed pattern.
    pub fn max_pattern_len(&self) -> usize {
        self.trie.max_depth()
    }

    /// The matching trie (the build-time / reference structure), at the
    /// 16-bit payload width.
    pub fn trie(&self) -> &Trie<CodeId> {
        &self.trie
    }

    /// The flat table-driven matcher the wide encode hot path walks —
    /// compiled from [`WideDictionary::trie`] on first call (then cached,
    /// shared by clones), byte-identical matches, branch-light loads (see
    /// [`DenseAutomaton`] for the layout trade-off).
    pub fn automaton(&self) -> &DenseAutomaton<CodeId> {
        self.automaton
            .get_or_init(|| DenseAutomaton::compile(&self.trie))
    }

    /// The byte-class compressed matcher the wide encode hot path walks by
    /// default — compiled from [`WideDictionary::trie`] on first call
    /// (then cached, shared by clones). Byte-identical matches to the trie
    /// and [`WideDictionary::automaton`].
    pub fn compact(&self) -> &CompactAutomaton<CodeId> {
        self.compact
            .get_or_init(|| CompactAutomaton::compile(&self.trie))
    }

    /// All entries in code-assignment order: base codes (code-space order),
    /// then wide codes (page-major). Yields `(emitted bytes, pattern)`.
    pub fn all_entries(&self) -> impl Iterator<Item = (Vec<u8>, &[u8])> + '_ {
        let base = code_space()
            .filter_map(move |c| self.base[c as usize].as_deref().map(move |p| (vec![c], p)));
        let wide = (0..self.pages.len()).flat_map(move |pi| {
            code_space().filter_map(move |sub| {
                self.pages[pi][sub as usize]
                    .as_deref()
                    .map(move |p| (vec![PAGE_BYTES[pi], sub], p))
            })
        });
        base.chain(wide)
    }

    /// Trained (non-identity) entries in assignment order.
    pub fn pattern_entries(&self) -> impl Iterator<Item = (Vec<u8>, &[u8])> + '_ {
        self.all_entries()
            .filter(move |(code, _)| !(code.len() == 1 && self.identity[code[0] as usize]))
    }

    /// Sanity invariants (used by tests and after deserialization).
    pub fn validate(&self) -> Result<(), ZsmilesError> {
        for (c, e) in self.base.iter().enumerate() {
            let Some(pat) = e else { continue };
            if !is_code_byte(c as u8) || page_index(c as u8).is_some() {
                return Err(ZsmilesError::DictFormat {
                    line: 0,
                    reason: format!("base code 0x{c:02x} is reserved"),
                });
            }
            check_pattern(pat)?;
        }
        for page in &self.pages {
            for (s, e) in page.iter().enumerate() {
                let Some(pat) = e else { continue };
                if !is_code_byte(s as u8) {
                    return Err(ZsmilesError::DictFormat {
                        line: 0,
                        reason: format!("wide sub-code 0x{s:02x} is reserved"),
                    });
                }
                if pat.len() < MIN_WIDE_PATTERN_LEN {
                    return Err(ZsmilesError::DictFormat {
                        line: 0,
                        reason: format!(
                            "wide pattern of length {} never pays for its 2-byte code",
                            pat.len()
                        ),
                    });
                }
                check_pattern(pat)?;
            }
        }
        Ok(())
    }
}

fn check_pattern(pat: &[u8]) -> Result<(), ZsmilesError> {
    if pat.is_empty() || pat.len() > MAX_PATTERN_LEN {
        return Err(ZsmilesError::DictFormat {
            line: 0,
            reason: format!("pattern length {} out of range", pat.len()),
        });
    }
    if pat.contains(&LINE_SEP) {
        return Err(ZsmilesError::DictFormat {
            line: 0,
            reason: "pattern contains newline".into(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Training
// ---------------------------------------------------------------------------

/// Trains a [`WideDictionary`]: the base [`DictBuilder`] machinery asked
/// for `214 − identity + wide_size` ranked patterns, installed across both
/// code widths.
#[derive(Debug, Clone)]
pub struct WideDictBuilder {
    /// Counting/selection configuration (its `dict_size` is overridden).
    pub base: DictBuilder,
    /// Two-byte pattern slots to fill (0 = one-byte behaviour minus the
    /// eight page codes).
    pub wide_size: usize,
}

impl Default for WideDictBuilder {
    fn default() -> Self {
        WideDictBuilder {
            base: DictBuilder::default(),
            wide_size: 512,
        }
    }
}

impl WideDictBuilder {
    /// Train on an iterator of SMILES lines (no newlines).
    pub fn train<'a, I>(&self, lines: I) -> Result<WideDictionary, ZsmilesError>
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let wide_size = self.wide_size.min(MAX_WIDE_ENTRIES);
        let base_free = self
            .base
            .prepopulation
            .free_code_count()
            .saturating_sub(PAGE_BYTES.len());
        let mut cfg = self.base.clone();
        cfg.dict_size = Some(base_free + wide_size);
        // Selection may hand back short patterns that the wide region will
        // reject; ask for a margin so the wide slots still fill.
        let selected = cfg.train_patterns(lines)?;
        WideDictionary::from_patterns(
            self.base.prepopulation,
            selected,
            self.base.lmin,
            self.base.lmax,
            self.base.preprocess,
            wide_size,
        )
    }
}

// ---------------------------------------------------------------------------
// Compression: shortest path with per-edge costs
// ---------------------------------------------------------------------------

/// One wide DP cell, packed like [`crate::sp`]'s but with a 16-bit code
/// id: `cost << 24 | (0xFF - len) << 16 | id`. Minimizing the key is the
/// decision rule — smallest cost, then a code over an escape and a longer
/// pattern over a shorter one (complemented length), then the smallest
/// id. `len == 0` (stored as `0xFF`) means escape.
type WideCell = u64;

const WIDE_COST_SHIFT: u32 = 24;
const WIDE_ESCAPE_TAG: WideCell = 0xFF_0000;

#[inline]
fn wide_cell_cost(cell: WideCell) -> u64 {
    cell >> WIDE_COST_SHIFT
}

#[inline]
fn wide_cell_len(cell: WideCell) -> usize {
    0xFF - ((cell >> 16) & 0xFF) as usize
}

#[inline]
fn wide_cell_id(cell: WideCell) -> CodeId {
    (cell & 0xFFFF) as CodeId
}

/// Retired wide-DP scratch parked per thread — the same encoder-reuse
/// story as `sp::SpScratch`: worker-pool threads persist, so re-minting a
/// [`WideCompressor`] per parallel call pops warmed buffers instead of
/// growing fresh ones.
const WIDE_STASH_CAP: usize = 8;

thread_local! {
    static WIDE_STASH: std::cell::RefCell<Vec<Vec<WideCell>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Reusable DP scratch, recycled through a thread-local stash on drop.
#[derive(Debug, Default)]
pub struct WideScratch {
    cells: Vec<WideCell>,
}

impl WideScratch {
    fn recycled() -> Self {
        WIDE_STASH
            .with(|s| s.borrow_mut().pop())
            .map(|cells| WideScratch { cells })
            .unwrap_or_default()
    }
}

impl Drop for WideScratch {
    fn drop(&mut self) {
        if self.cells.capacity() == 0 {
            return;
        }
        let entry = std::mem::take(&mut self.cells);
        WIDE_STASH.with(|s| {
            let mut stash = s.borrow_mut();
            if stash.len() < WIDE_STASH_CAP {
                stash.push(entry);
            }
        });
    }
}

/// Encode one line against a wide matcher: backward DP over the position
/// DAG with per-edge costs (1 for base codes, 2 for wide codes and
/// escapes). Ties prefer any code over an escape, then cheaper emission,
/// then longer patterns, then smaller ids — deterministic like
/// [`crate::sp`]. Generic over [`Matcher`] exactly like the base DP: the
/// flat [`DenseAutomaton`] is the hot path, the node [`Trie`] the
/// reference both are pinned against.
fn wide_encode_line<M: Matcher<Code = CodeId>>(
    matcher: &M,
    line: &[u8],
    scratch: &mut WideScratch,
    out: &mut Vec<u8>,
) -> usize {
    if line.is_empty() {
        return 0;
    }
    let n = line.len();
    // No per-line clear: cell `i` is written before anything reads it
    // (the sweep is backward), so only the sink cell needs a value.
    if scratch.cells.len() < n + 1 {
        scratch.cells.resize(n + 1, 0);
    }
    scratch.cells[n] = 0;
    for i in (0..n).rev() {
        let escape =
            ((2 + wide_cell_cost(scratch.cells[i + 1])) << WIDE_COST_SHIFT) | WIDE_ESCAPE_TAG;
        scratch.cells[i] = matcher.best_relax::<WideKey>(line, i, &scratch.cells[..n + 1], escape);
    }
    wide_emit(line, &scratch.cells, out)
}

/// The wide codec's relax-key shape: base ids (< 256) emit one byte, wide
/// ids two — the width is recovered from the raw accept word's payload
/// bits without a full unpack.
struct WideKey;

impl RelaxKey for WideKey {
    #[inline]
    fn key(cell: u64, acc: u32) -> u64 {
        let width = 1 + u64::from((acc & 0xFFFF) >= 256);
        ((width + wide_cell_cost(cell)) << WIDE_COST_SHIFT) | acc as u64
    }
}

/// Walk the line's choice chain out of the packed DP cells.
fn wide_emit(line: &[u8], cells: &[WideCell], out: &mut Vec<u8>) -> usize {
    let before = out.len();
    let mut i = 0;
    while i < line.len() {
        let cell = cells[i];
        let len = wide_cell_len(cell);
        if len == 0 {
            out.push(ESCAPE);
            out.push(line[i]);
            i += 1;
        } else {
            let (bytes, width) = emit_bytes(wide_cell_id(cell));
            out.extend_from_slice(&bytes[..width]);
            i += len;
        }
    }
    out.len() - before
}

/// The wide twin of [`crate::sp::encode_lines_batched`]: run each line's
/// fused match+DP walk with the wide codec's per-edge costs, the matcher's
/// transition table staying cache-resident across the group. Byte-identical
/// to the per-line [`wide_encode_line`] loop; appends each line's bytes
/// followed by a [`LINE_SEP`] and returns the payload total, separators
/// excluded.
fn wide_encode_lines_batched<M: Matcher<Code = CodeId>>(
    matcher: &M,
    lines: &[&[u8]],
    scratch: &mut WideScratch,
    out: &mut Vec<u8>,
) -> usize {
    let mut payload = 0;
    for line in lines {
        payload += wide_encode_line(matcher, line, scratch, out);
        out.push(LINE_SEP);
    }
    payload
}

/// A reusable compressor bound to one wide dictionary (mirrors
/// [`crate::Compressor`]). The buffer loop and preprocessing stage are the
/// shared [`crate::engine`] machinery; only the per-line DP is wide-specific.
pub struct WideCompressor<'d> {
    dict: &'d WideDictionary,
    matcher: MatcherKind,
    preprocess: PreprocessStage,
    scratch: WideScratch,
    /// Staging for preprocessed sources of one batched group (mirrors
    /// [`crate::Compressor`]).
    batch_buf: Vec<u8>,
}

impl<'d> WideCompressor<'d> {
    pub fn new(dict: &'d WideDictionary) -> Self {
        WideCompressor {
            dict,
            matcher: MatcherKind::default(),
            preprocess: PreprocessStage::new(dict.preprocessed()),
            scratch: WideScratch::recycled(),
            batch_buf: Vec::new(),
        }
    }

    pub fn with_preprocess(mut self, on: bool) -> Self {
        self.preprocess.set_enabled(on);
        self
    }

    /// Select the matching structure the DP walks (both emit identical
    /// bytes; the node trie stays selectable so the throughput harness
    /// can measure the two in one run, mirroring [`crate::Compressor`]).
    pub fn with_matcher(mut self, matcher: MatcherKind) -> Self {
        self.matcher = matcher;
        self
    }

    pub fn dictionary(&self) -> &WideDictionary {
        self.dict
    }

    /// Compress one line (no newline), appending to `out`. Returns
    /// `(bytes_written, preprocess_failed)`.
    pub fn compress_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> (usize, bool) {
        let (src, failed) = self.preprocess.apply(line);
        let n = match self.matcher {
            MatcherKind::Compact => match self.dict.compact().view() {
                CompactLayout::Narrow(v) => wide_encode_line(&v, src, &mut self.scratch, out),
                CompactLayout::Wide(v) => wide_encode_line(&v, src, &mut self.scratch, out),
            },
            MatcherKind::DenseAutomaton => {
                wide_encode_line(self.dict.automaton(), src, &mut self.scratch, out)
            }
            MatcherKind::NodeTrie => wide_encode_line(&self.dict.trie, src, &mut self.scratch, out),
        };
        (n, failed)
    }

    /// Compress a newline-separated buffer, preserving line count and order.
    pub fn compress_buffer(&mut self, input: &[u8], out: &mut Vec<u8>) -> CompressStats {
        crate::engine::encode_buffer(self, input, out)
    }
}

impl LineEncoder for WideCompressor<'_> {
    fn encode_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> (usize, bool) {
        self.compress_line(line, out)
    }

    /// The fused batched path, mirroring [`crate::Compressor`]: compact
    /// matcher runs each group through `wide_encode_lines_batched`;
    /// other matchers fall back to the per-line loop. Byte-identical.
    fn encode_lines(&mut self, lines: &[&[u8]], out: &mut Vec<u8>) -> CompressStats {
        if self.matcher != MatcherKind::Compact {
            return crate::engine::encode_lines_serial(self, lines, out);
        }
        let mut stats = CompressStats::default();
        for chunk in lines.chunks(crate::sp::BATCH_LINES) {
            let mut srcs: [&[u8]; crate::sp::BATCH_LINES] = [b""; crate::sp::BATCH_LINES];
            let mut spans = [(0usize, 0usize); crate::sp::BATCH_LINES];
            self.batch_buf.clear();
            if self.preprocess.enabled() {
                for (k, &line) in chunk.iter().enumerate() {
                    let (src, failed) = self.preprocess.apply(line);
                    stats.preprocess_failures += failed as usize;
                    spans[k] = (self.batch_buf.len(), src.len());
                    self.batch_buf.extend_from_slice(src);
                }
                for (k, (start, len)) in spans.iter().take(chunk.len()).enumerate() {
                    srcs[k] = &self.batch_buf[*start..start + len];
                }
            } else {
                srcs[..chunk.len()].copy_from_slice(chunk);
            }
            stats.lines += chunk.len();
            stats.in_bytes += chunk.iter().map(|l| l.len()).sum::<usize>();
            stats.out_bytes += match self.dict.compact().view() {
                CompactLayout::Narrow(v) => {
                    wide_encode_lines_batched(&v, &srcs[..chunk.len()], &mut self.scratch, out)
                }
                CompactLayout::Wide(v) => {
                    wide_encode_lines_batched(&v, &srcs[..chunk.len()], &mut self.scratch, out)
                }
            };
        }
        stats
    }
}

/// Decompressor for wide-code streams (mirrors [`crate::Decompressor`]).
/// Only the per-byte dispatch (page prefixes) is wide-specific; the buffer
/// loop is the shared [`crate::engine`] machinery.
pub struct WideDecompressor<'d> {
    dict: &'d WideDictionary,
}

impl<'d> WideDecompressor<'d> {
    pub fn new(dict: &'d WideDictionary) -> Self {
        WideDecompressor { dict }
    }

    /// Decompress one line, appending to `out`. Returns the number of
    /// bytes appended.
    pub fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<usize, ZsmilesError> {
        let start = out.len();
        let mut i = 0usize;
        while i < line.len() {
            let b = line[i];
            if b == ESCAPE {
                let lit = *line
                    .get(i + 1)
                    .ok_or(ZsmilesError::TruncatedEscape { at: i })?;
                out.push(lit);
                i += 2;
            } else if let Some(page) = page_index(b) {
                let sub = *line
                    .get(i + 1)
                    .ok_or(ZsmilesError::TruncatedWideCode { at: i })?;
                let pat = self
                    .dict
                    .wide_entry(page, sub)
                    .ok_or(ZsmilesError::UnknownCode {
                        code: sub,
                        at: i + 1,
                    })?;
                out.extend_from_slice(pat);
                i += 2;
            } else {
                let pat = self
                    .dict
                    .base_entry(b)
                    .ok_or(ZsmilesError::UnknownCode { code: b, at: i })?;
                out.extend_from_slice(pat);
                i += 1;
            }
        }
        Ok(out.len() - start)
    }

    /// Decompress a newline-separated buffer.
    pub fn decompress_buffer(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<DecompressStats, ZsmilesError> {
        crate::engine::decode_buffer(&mut &*self, input, out)
    }
}

impl LineDecoder for WideDecompressor<'_> {
    fn decode_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> Result<usize, ZsmilesError> {
        self.decompress_line(line, out)
    }
}

impl LineDecoder for &WideDecompressor<'_> {
    fn decode_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> Result<usize, ZsmilesError> {
        self.decompress_line(line, out)
    }
}

// ---------------------------------------------------------------------------
// Serialization (readable, like `.dct`)
// ---------------------------------------------------------------------------

const WIDE_MAGIC: &str = "#zsmiles-wide-dict v1";

/// Serialize a wide dictionary to the readable text format: the `.dct`
/// layout with a wide magic, a `#wide-size` header, and one- or two-byte
/// codes in the code column. Header block and entry escaping are the
/// shared [`crate::dict::format`] machinery — the two formats differ only
/// in magic and code width.
pub fn write_wide_dict<W: Write>(dict: &WideDictionary, mut w: W) -> std::io::Result<()> {
    super::dict::format::write_header(
        &mut w,
        WIDE_MAGIC,
        dict.prepopulation(),
        dict.preprocessed(),
        dict.lmin(),
        dict.lmax(),
        Some(dict.wide_len()),
    )?;
    for (code, pat) in dict.pattern_entries() {
        super::dict::format::write_entry(&mut w, &code, pat)?;
    }
    Ok(())
}

/// Parse the wide text format through the shared dictionary-text parser.
/// Codes are re-derived from pattern order (which [`write_wide_dict`]
/// preserves), exactly like the base format.
pub fn read_wide_dict<R: Read>(r: R) -> Result<WideDictionary, ZsmilesError> {
    let (h, patterns) = super::dict::format::parse_dict_text(r, WIDE_MAGIC, true)?;
    let dict = WideDictionary::from_patterns(
        h.prepopulation,
        patterns,
        h.lmin,
        h.lmax,
        h.preprocess,
        h.wide_size,
    )?;
    dict.validate()?;
    Ok(dict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deck() -> Vec<&'static [u8]> {
        let lines: [&[u8]; 6] = [
            b"COc1cc(C=O)ccc1O",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CN1C=NC2=C1C(=O)N(C(=O)N2C)C",
            b"OC(=O)c1ccccc1Nc1ccnc2cc(Cl)ccc12",
            b"CC(=O)Oc1ccccc1C(=O)O",
        ];
        lines.iter().copied().cycle().take(120).collect()
    }

    fn trained(wide_size: usize) -> WideDictionary {
        WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                ..Default::default()
            },
            wide_size,
        }
        .train(deck())
        .unwrap()
    }

    /// 729 distinct valid SMILES from a fragment product — diverse enough
    /// that training overflows the one-byte code space.
    fn diverse_deck() -> Vec<Vec<u8>> {
        let a = [
            "CC", "CCO", "c1ccccc1", "N(C)C", "C(=O)O", "CN", "OC", "CS", "Cl",
        ];
        let b = [
            "C(=O)N",
            "c1ccncc1",
            "CC(C)",
            "OCC",
            "N1CCOCC1",
            "C#N",
            "CCCC",
            "C(F)(F)F",
            "S(=O)(=O)C",
        ];
        let c = [
            "O",
            "N",
            "CO",
            "c1ccc(Cl)cc1",
            "C(=O)OC",
            "CCN",
            "Br",
            "CCC",
            "F",
        ];
        let mut v = Vec::new();
        for x in a {
            for y in b {
                for z in c {
                    v.push(format!("{x}{y}{z}").into_bytes());
                }
            }
        }
        v
    }

    fn trained_diverse(wide_size: usize) -> WideDictionary {
        let deck = diverse_deck();
        WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                ..Default::default()
            },
            wide_size,
        }
        .train(deck.iter().map(|l| l.as_slice()))
        .unwrap()
    }

    #[test]
    fn page_bytes_are_top_extended_bytes() {
        assert_eq!(PAGE_BYTES[0], 0xF8);
        assert_eq!(*PAGE_BYTES.last().unwrap(), 0xFF);
        for (i, &b) in PAGE_BYTES.iter().enumerate() {
            assert_eq!(page_index(b), Some(i));
            assert!(is_code_byte(b));
        }
        assert_eq!(page_index(0xF7), None);
        assert_eq!(page_index(b'A'), None);
    }

    #[test]
    fn code_id_packing_round_trips() {
        let (b, w) = emit_bytes(base_id(b'!'));
        assert_eq!((b[0], w), (b'!', 1));
        let (b, w) = emit_bytes(wide_id(3, 0x42));
        assert_eq!(w, 2);
        assert_eq!(b, [PAGE_BYTES[3], 0x42]);
        let (b, w) = emit_bytes(wide_id(7, 0xFF));
        assert_eq!(w, 2);
        assert_eq!(b, [0xFF, 0xFF]);
    }

    #[test]
    fn base_codes_never_use_page_bytes() {
        let d = trained(64);
        for &pb in &PAGE_BYTES {
            assert!(
                d.base_entry(pb).is_none(),
                "page byte 0x{pb:02x} must stay free"
            );
        }
        d.validate().unwrap();
    }

    #[test]
    fn round_trip_on_training_deck() {
        let deck = diverse_deck();
        let d = trained_diverse(128);
        assert!(d.wide_len() > 0, "training should spill into wide codes");
        let mut c = WideCompressor::new(&d);
        let dec = WideDecompressor::new(&d);
        for line in &deck {
            let mut z = Vec::new();
            c.compress_line(line, &mut z);
            let mut back = Vec::new();
            dec.decompress_line(&z, &mut back).unwrap();
            // Preprocessing renumbers ring IDs; molecules must match.
            assert_eq!(
                smiles::parser::parse(line).unwrap().signature(),
                smiles::parser::parse(&back).unwrap().signature(),
                "line {:?}",
                String::from_utf8_lossy(line)
            );
        }
    }

    #[test]
    fn exact_round_trip_without_preprocess() {
        let d = WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                preprocess: false,
                ..Default::default()
            },
            wide_size: 128,
        }
        .train(deck())
        .unwrap();
        let mut c = WideCompressor::new(&d);
        let dec = WideDecompressor::new(&d);
        for line in deck() {
            let mut z = Vec::new();
            c.compress_line(line, &mut z);
            let mut back = Vec::new();
            dec.decompress_line(&z, &mut back).unwrap();
            assert_eq!(back, line);
        }
    }

    #[test]
    fn no_expansion_with_alphabet_prepopulation() {
        let d = trained(64);
        let mut c = WideCompressor::new(&d).with_preprocess(false);
        for line in deck() {
            let mut z = Vec::new();
            let (n, _) = c.compress_line(line, &mut z);
            assert!(n <= line.len(), "{:?}", String::from_utf8_lossy(line));
        }
    }

    #[test]
    fn wide_codes_improve_ratio_on_diverse_deck() {
        let narrow = trained(0);
        let wide = trained(512);
        let input: Vec<u8> = deck()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let mut zn = Vec::new();
        let sn = WideCompressor::new(&narrow).compress_buffer(&input, &mut zn);
        let mut zw = Vec::new();
        let sw = WideCompressor::new(&wide).compress_buffer(&input, &mut zw);
        assert!(
            sw.ratio() <= sn.ratio(),
            "wide {} should not lose to narrow {}",
            sw.ratio(),
            sn.ratio()
        );
    }

    #[test]
    fn output_bytes_stay_displayable() {
        let d = trained(128);
        let input: Vec<u8> = deck()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let mut z = Vec::new();
        WideCompressor::new(&d).compress_buffer(&input, &mut z);
        for &b in &z {
            assert!(
                b == LINE_SEP || b == ESCAPE || is_code_byte(b),
                "byte 0x{b:02x} is not displayable"
            );
        }
        // Line separability: one output line per input line.
        let in_lines = input.iter().filter(|&&b| b == b'\n').count();
        let out_lines = z.iter().filter(|&&b| b == b'\n').count();
        assert_eq!(in_lines, out_lines);
    }

    #[test]
    fn zero_wide_capacity_matches_base_behaviour() {
        // A wide dictionary with no wide entries is a base dictionary minus
        // the eight page codes: same decompression semantics.
        let d = trained(0);
        assert_eq!(d.wide_len(), 0);
        let mut c = WideCompressor::new(&d).with_preprocess(false);
        let dec = WideDecompressor::new(&d);
        let mut z = Vec::new();
        c.compress_line(b"COc1cc(C=O)ccc1O", &mut z);
        let mut back = Vec::new();
        dec.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, b"COc1cc(C=O)ccc1O");
    }

    #[test]
    fn short_patterns_rejected_from_wide_region() {
        // Fill the base region, then offer a 2-byte pattern: it must be
        // skipped, not installed wide.
        let fill: Vec<Vec<u8>> = (0..214u32)
            .map(|i| vec![b'a', b'0' + (i % 10) as u8, b'A' + (i / 10 % 26) as u8])
            .collect();
        let mut pats = fill;
        pats.push(b"XY".to_vec()); // short: skipped
        pats.push(b"XYZ".to_vec()); // long enough: installed wide
        let d = WideDictionary::from_patterns(Prepopulation::None, &pats, 2, 8, false, 16).unwrap();
        assert_eq!(d.wide_len(), 1);
        assert_eq!(d.wide_entry(0, 0x21), Some(&b"XYZ"[..]));
        d.validate().unwrap();
    }

    #[test]
    fn capacity_exhaustion_detected() {
        let fill: Vec<Vec<u8>> = (0..220u32)
            .map(|i| {
                vec![
                    b'a' + (i % 26) as u8,
                    b'a' + (i / 26 % 26) as u8,
                    b'0' + (i % 10) as u8,
                ]
            })
            .collect();
        let r = WideDictionary::from_patterns(Prepopulation::None, &fill, 2, 8, false, 2);
        assert!(matches!(r, Err(ZsmilesError::CodeSpaceExhausted { .. })));
    }

    #[test]
    fn decompressor_reports_truncation_and_unknown_codes() {
        let d = trained(16);
        let dec = WideDecompressor::new(&d);
        let mut out = Vec::new();
        assert!(matches!(
            dec.decompress_line(&[ESCAPE], &mut out),
            Err(ZsmilesError::TruncatedEscape { at: 0 })
        ));
        assert!(matches!(
            dec.decompress_line(&[PAGE_BYTES[0]], &mut out),
            Err(ZsmilesError::TruncatedWideCode { at: 0 })
        ));
        // Page 7 is empty in a 16-entry dictionary.
        assert!(matches!(
            dec.decompress_line(&[PAGE_BYTES[7], b'!'], &mut out),
            Err(ZsmilesError::UnknownCode { .. })
        ));
    }

    #[test]
    fn wide_code_beats_escapes_for_unmatched_text() {
        // Fill all 214 one-byte codes (no pre-population) with 4-byte
        // q-patterns so the next pattern lands in the wide region, then
        // check the DP emits the 2-byte wide code instead of 3 escapes.
        let mut pats: Vec<Vec<u8>> = (0..214u32)
            .map(|i| {
                vec![
                    b'q',
                    b'a' + (i % 26) as u8,
                    b'a' + (i / 26 % 26) as u8,
                    b'0' + (i % 10) as u8,
                ]
            })
            .collect();
        pats.push(b"XYZ".to_vec());
        let d = WideDictionary::from_patterns(Prepopulation::None, &pats, 2, 8, false, 8).unwrap();
        assert_eq!(d.wide_len(), 1);
        let mut c = WideCompressor::new(&d).with_preprocess(false);
        let mut z = Vec::new();
        let (n, _) = c.compress_line(b"XYZ", &mut z);
        assert_eq!(n, 2, "wide code used: {z:?}");
        assert_eq!(page_index(z[0]), Some(0));
        // And a base code still wins where one applies (cost 1 < cost 2).
        let mut z2 = Vec::new();
        let (n2, _) = c.compress_line(b"qaa0", &mut z2);
        assert_eq!(n2, 1);
    }

    #[test]
    fn dense_automaton_matches_node_trie_byte_for_byte() {
        // The wide hot path walks the flat automaton; the node trie is the
        // reference. Both must emit identical streams — same pin the base
        // codec carries, here across one- and two-byte codes.
        let deck = diverse_deck();
        let d = trained_diverse(256);
        assert!(d.wide_len() > 0, "training should spill into wide codes");
        let auto = d.automaton();
        assert_eq!(auto.len(), d.trie().len());
        assert_eq!(auto.max_depth(), d.trie().max_depth());
        let mut dense = WideCompressor::new(&d).with_preprocess(false);
        let mut node = WideCompressor::new(&d)
            .with_preprocess(false)
            .with_matcher(MatcherKind::NodeTrie);
        for line in deck.iter().take(200) {
            let mut za = Vec::new();
            let mut zt = Vec::new();
            dense.compress_line(line, &mut za);
            node.compress_line(line, &mut zt);
            assert_eq!(za, zt, "line {:?}", String::from_utf8_lossy(line));
        }
        // The automaton is compiled once and shared across clones.
        let clone = d.clone();
        assert!(std::ptr::eq(clone.automaton(), d.automaton()));
    }

    #[test]
    fn serialization_round_trips() {
        let d = trained(64);
        let mut buf = Vec::new();
        write_wide_dict(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with(WIDE_MAGIC));
        assert!(text.is_ascii());
        let back = read_wide_dict(&buf[..]).unwrap();
        assert_eq!(back.base_len(), d.base_len());
        assert_eq!(back.wide_len(), d.wide_len());
        let a: Vec<_> = d.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        let b: Vec<_> = back.all_entries().map(|(c, p)| (c, p.to_vec())).collect();
        assert_eq!(a, b);
        // Cross-decode: the reloaded dictionary decodes the original's
        // stream (preprocess off so bytes round-trip exactly).
        let mut z = Vec::new();
        WideCompressor::new(&d)
            .with_preprocess(false)
            .compress_line(b"COc1cc(C=O)ccc1O", &mut z);
        let mut out = Vec::new();
        WideDecompressor::new(&back)
            .decompress_line(&z, &mut out)
            .unwrap();
        assert_eq!(out, b"COc1cc(C=O)ccc1O");
    }

    #[test]
    fn bad_wide_files_rejected() {
        let r = read_wide_dict("#zsmiles-dict v1\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 1, .. })));
        let r = read_wide_dict("#zsmiles-wide-dict v1\nnotab\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
        let r = read_wide_dict("#zsmiles-wide-dict v1\n!\t\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
        let r = read_wide_dict("#zsmiles-wide-dict v1\n#wide-size banana\n".as_bytes());
        assert!(matches!(r, Err(ZsmilesError::DictFormat { line: 2, .. })));
    }

    #[test]
    fn buffer_round_trip_with_stats() {
        let d = trained(128);
        let input: Vec<u8> = deck()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let mut z = Vec::new();
        let cs = WideCompressor::new(&d)
            .with_preprocess(false)
            .compress_buffer(&input, &mut z);
        let mut back = Vec::new();
        let ds = WideDecompressor::new(&d)
            .decompress_buffer(&z, &mut back)
            .unwrap();
        assert_eq!(back, input);
        assert_eq!(cs.lines, ds.lines);
        assert_eq!(cs.in_bytes, ds.out_bytes);
        assert_eq!(cs.out_bytes, ds.in_bytes);
        assert!(cs.ratio() < 1.0);
    }
}
