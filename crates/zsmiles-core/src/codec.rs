//! Code-space management.
//!
//! ZSMILES output must stay line-separable and readable, which reserves two
//! bytes globally:
//!
//! * `\n` (0x0A) — line separator: SMILES *i* of the input is line *i* of
//!   the output, the property that makes random access work;
//! * space (0x20) — the escape marker: `0x20 b` in the output decodes to the
//!   literal byte `b` (SMILES never contain spaces, so this is free).
//!
//! Every remaining *displayable* byte is a potential dictionary code:
//! printable ASCII `0x21..=0x7E` (94 bytes) plus the extended range
//! `0x80..=0xFF` (128 bytes) — 222 codes total. Control bytes (0x00–0x1F,
//! 0x7F) are never emitted, which is what keeps the archives grep-able.
//!
//! Pre-population (paper §IV-B) claims some of those codes as *identity*
//! entries — code `c` maps to the one-byte pattern `c` — so that compliant
//! input can never expand. The trade-off measured in Table I: more identity
//! codes mean fewer multi-byte pattern codes.

use smiles::alphabet::{printable_ascii, SMILES_ALPHABET};

/// The escape marker byte (space).
pub const ESCAPE: u8 = 0x20;

/// The line separator (newline).
pub const LINE_SEP: u8 = b'\n';

/// Is `b` usable as a dictionary code?
pub const fn is_code_byte(b: u8) -> bool {
    matches!(b, 0x21..=0x7E) || b >= 0x80
}

/// All 222 usable code bytes, printable ASCII first (so dictionaries stay
/// as readable as possible), then the extended range.
pub fn code_space() -> impl Iterator<Item = u8> {
    (0x21u8..=0x7E).chain(0x80u8..=0xFF)
}

/// Number of usable code bytes.
pub const CODE_SPACE_SIZE: usize = 94 + 128;

/// Dictionary pre-population modes (paper §IV-B, Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prepopulation {
    /// No identity codes: every byte of a non-matching input must be
    /// escaped (2 bytes), so pathological inputs can double in size.
    None,
    /// Identity codes for the SMILES alphabet (78 bytes) — the paper's best
    /// row: compliant SMILES never expand, and 144 codes stay free for
    /// patterns.
    #[default]
    SmilesAlphabet,
    /// Identity codes for all printable ASCII (94 bytes): patterns are
    /// confined to the 128 extended codes.
    PrintableAscii,
}

impl Prepopulation {
    /// The identity bytes this mode claims.
    pub fn identity_bytes(&self) -> Vec<u8> {
        match self {
            Prepopulation::None => Vec::new(),
            Prepopulation::SmilesAlphabet => SMILES_ALPHABET.to_vec(),
            Prepopulation::PrintableAscii => printable_ascii().collect(),
        }
    }

    /// Codes left for multi-byte patterns.
    pub fn free_code_count(&self) -> usize {
        CODE_SPACE_SIZE - self.identity_bytes().len()
    }

    /// Stable name used in `.dct` headers.
    pub fn name(&self) -> &'static str {
        match self {
            Prepopulation::None => "none",
            Prepopulation::SmilesAlphabet => "smiles-alphabet",
            Prepopulation::PrintableAscii => "printable-ascii",
        }
    }

    /// Parse a `.dct` header value.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "none" => Prepopulation::None,
            "smiles-alphabet" => Prepopulation::SmilesAlphabet,
            "printable-ascii" => Prepopulation::PrintableAscii,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_space_is_222_displayable_bytes() {
        let codes: Vec<u8> = code_space().collect();
        assert_eq!(codes.len(), CODE_SPACE_SIZE);
        assert!(!codes.contains(&ESCAPE));
        assert!(!codes.contains(&LINE_SEP));
        assert!(!codes.contains(&0x7F), "DEL is not displayable");
        for b in 0x00..=0x1Fu8 {
            assert!(!codes.contains(&b), "control byte {b:#x}");
        }
        for &c in &codes {
            assert!(is_code_byte(c));
        }
    }

    #[test]
    fn is_code_byte_rejects_reserved() {
        assert!(!is_code_byte(ESCAPE));
        assert!(!is_code_byte(LINE_SEP));
        assert!(!is_code_byte(0x00));
        assert!(!is_code_byte(0x7F));
        assert!(is_code_byte(b'A'));
        assert!(is_code_byte(0x80));
        assert!(is_code_byte(0xFF));
    }

    #[test]
    fn prepopulation_counts_match_paper_arithmetic() {
        assert_eq!(Prepopulation::None.free_code_count(), 222);
        assert_eq!(Prepopulation::SmilesAlphabet.free_code_count(), 222 - 78);
        assert_eq!(Prepopulation::PrintableAscii.free_code_count(), 128);
    }

    #[test]
    fn identity_bytes_are_code_bytes() {
        for mode in [
            Prepopulation::None,
            Prepopulation::SmilesAlphabet,
            Prepopulation::PrintableAscii,
        ] {
            for b in mode.identity_bytes() {
                assert!(is_code_byte(b), "{b:#x} in {mode:?}");
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for mode in [
            Prepopulation::None,
            Prepopulation::SmilesAlphabet,
            Prepopulation::PrintableAscii,
        ] {
            assert_eq!(Prepopulation::from_name(mode.name()), Some(mode));
        }
        assert_eq!(Prepopulation::from_name("bogus"), None);
    }
}
