//! The [`Engine`] abstraction: one interface over both ZSMILES code
//! widths.
//!
//! The paper's three design requirements — readable output, per-line
//! random access, one shared dictionary — hold for the one-byte codec
//! ([`crate::dict::Dictionary`]) and for the wide-code extension
//! ([`crate::wide::WideDictionary`]) alike. Everything *around* the
//! per-line encode/decode step (buffer loops, parallel span splitting,
//! streaming chunk I/O, the `.zsa` container, the CLI) is
//! width-independent, so it is written once against this trait instead of
//! twice against the concrete types:
//!
//! * [`LineEncoder`] / [`LineDecoder`] — the stateful per-line workers
//!   (scratch buffers, preprocessing);
//! * [`Engine`] — a dictionary bound to a codec width; it mints fresh
//!   encoder/decoder workers (one per thread) and serializes its
//!   dictionary;
//! * [`BaseEngine`] / [`WideEngine`] — the two implementations;
//! * [`DynEngine`] — the object-safe facade over [`Engine`]: boxed worker
//!   minting (`Box<dyn LineEncoder>` / `Box<dyn LineDecoder>`) for every
//!   layer that learns the flavour at run time, so those layers drive one
//!   `&dyn DynEngine` instead of matching on [`DictFlavor`] per call site;
//! * [`AnyDictionary`] — either dictionary flavour, sniffed from file
//!   magic; it implements [`DynEngine`] directly, which makes it the
//!   run-time dispatch point (CLI, `.zsa` container, out-of-core reader);
//! * [`EngineCodec`] / [`DynCodec`] — [`textcomp::LineCodec`] adapters so
//!   the baseline comparison harness (paper Fig. 4) drives ZSMILES
//!   engines through the exact interface the FSST/SHOCO/SMAZ baselines
//!   use, statically or via the dyn facade.

use crate::compress::{CompressStats, Compressor};
use crate::decompress::{DecompressStats, Decompressor};
use crate::dict::Dictionary;
use crate::error::ZsmilesError;
use crate::sp::SpAlgorithm;
use crate::wide::{WideCompressor, WideDecompressor, WideDictionary};
use smiles::preprocess::{Preprocessor, RingRenumber};
use std::cell::RefCell;
use std::io::Write;
use std::path::Path;

pub use crate::codec::LINE_SEP;

// ---------------------------------------------------------------------------
// Per-line worker traits
// ---------------------------------------------------------------------------

/// A stateful per-line compressor: owns whatever scratch the encode step
/// needs, so steady-state compression is allocation-free.
pub trait LineEncoder {
    /// Compress one line (no newline), appending code bytes to `out`.
    /// Returns `(bytes_written, preprocess_failed)`.
    fn encode_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> (usize, bool);

    /// Compress a batch of lines (no newlines; callers filter blanks),
    /// appending each line's code bytes followed by a [`LINE_SEP`] —
    /// byte-identical to the per-line loop. The default delegates to
    /// [`LineEncoder::encode_line`]; compressors with a fused batched DP
    /// ([`crate::sp::encode_lines_batched`]) override it, which is how the
    /// batching reaches every buffer path — serial, parallel span loops,
    /// archive and sharded writers — through one object-safe method.
    fn encode_lines(&mut self, lines: &[&[u8]], out: &mut Vec<u8>) -> CompressStats {
        encode_lines_serial(self, lines, out)
    }
}

/// The per-line fallback body of [`LineEncoder::encode_lines`], callable
/// from overrides that only batch some configurations.
pub fn encode_lines_serial<E: LineEncoder + ?Sized>(
    enc: &mut E,
    lines: &[&[u8]],
    out: &mut Vec<u8>,
) -> CompressStats {
    let mut stats = CompressStats::default();
    for &line in lines {
        let (n, failed) = enc.encode_line(line, out);
        out.push(LINE_SEP);
        stats.lines += 1;
        stats.in_bytes += line.len();
        stats.out_bytes += n;
        stats.preprocess_failures += failed as usize;
    }
    stats
}

/// A stateful per-line decompressor.
pub trait LineDecoder {
    /// Decompress one line (no newline), appending to `out`. Returns the
    /// number of bytes appended.
    fn decode_line(&mut self, line: &[u8], out: &mut Vec<u8>) -> Result<usize, ZsmilesError>;
}

// ---------------------------------------------------------------------------
// The Engine trait
// ---------------------------------------------------------------------------

/// Which dictionary flavour an engine speaks — the tag byte in `.zsa`
/// headers and the discriminator for magic sniffing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictFlavor {
    /// One-byte codes (the paper's format).
    Base,
    /// One- and two-byte codes behind page prefixes ([`crate::wide`]).
    Wide,
}

impl DictFlavor {
    /// Stable one-byte tag used in binary headers.
    pub const fn tag(self) -> u8 {
        match self {
            DictFlavor::Base => 1,
            DictFlavor::Wide => 2,
        }
    }

    pub const fn from_tag(tag: u8) -> Option<DictFlavor> {
        match tag {
            1 => Some(DictFlavor::Base),
            2 => Some(DictFlavor::Wide),
            _ => None,
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            DictFlavor::Base => "base",
            DictFlavor::Wide => "wide",
        }
    }
}

/// A dictionary bound to a codec width. One engine serves any number of
/// concurrent workers: [`Engine::encoder`] / [`Engine::decoder`] mint a
/// fresh stateful worker per thread, all sharing the engine's dictionary.
pub trait Engine: Sync {
    /// Per-thread compressor worker.
    type Encoder<'e>: LineEncoder
    where
        Self: 'e;
    /// Per-thread decompressor worker.
    type Decoder<'e>: LineDecoder
    where
        Self: 'e;

    /// Display name (bench axis labels).
    fn name(&self) -> &'static str;

    /// Which dictionary flavour this engine speaks.
    fn flavor(&self) -> DictFlavor;

    /// Whether encoding applies ring-ID preprocessing.
    fn preprocessed(&self) -> bool;

    /// A fresh compressor worker.
    fn encoder(&self) -> Self::Encoder<'_>;

    /// A fresh decompressor worker.
    fn decoder(&self) -> Self::Decoder<'_>;

    /// Serialize the dictionary in its readable text format (the bytes a
    /// `.dct` file or a `.zsa` dictionary section holds).
    fn write_dict(&self, w: &mut dyn Write) -> std::io::Result<()>;

    /// Serialized dictionary size in bytes — the side-band overhead a fair
    /// ratio comparison charges to the codec.
    fn dict_overhead_bytes(&self) -> usize {
        let mut buf = Vec::new();
        self.write_dict(&mut buf).expect("Vec write cannot fail");
        buf.len()
    }
}

// ---------------------------------------------------------------------------
// Shared preprocessing stage
// ---------------------------------------------------------------------------

/// The optional ring-ID preprocessing step both code widths share. Owns
/// the [`Preprocessor`] and its staging buffer, so per-line use is
/// allocation-free.
#[derive(Default)]
pub struct PreprocessStage {
    on: bool,
    pp: Preprocessor,
    buf: Vec<u8>,
}

impl PreprocessStage {
    pub fn new(on: bool) -> Self {
        PreprocessStage {
            on,
            pp: Preprocessor::new(),
            buf: Vec::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.on
    }

    pub fn set_enabled(&mut self, on: bool) {
        self.on = on;
    }

    /// Apply preprocessing if enabled. Returns the bytes to encode and
    /// whether preprocessing failed (invalid SMILES are encoded verbatim —
    /// failure is a statistic, not an error).
    pub fn apply<'a>(&'a mut self, line: &'a [u8]) -> (&'a [u8], bool) {
        if !self.on {
            return (line, false);
        }
        self.buf.clear();
        match self
            .pp
            .process_into(line, RingRenumber::Innermost, 0, &mut self.buf)
        {
            Ok(()) => (&self.buf, false),
            Err(_) => (line, true),
        }
    }
}

// ---------------------------------------------------------------------------
// Buffer loops (written once for every engine)
// ---------------------------------------------------------------------------

/// Compress a newline-separated buffer line by line, preserving line count
/// and order — the random-access property. Shared by both code widths.
/// Non-empty lines are handed to the encoder in groups of
/// [`crate::sp::BATCH_LINES`] so batching encoders interleave their DPs;
/// the output is byte-identical to the per-line loop either way.
pub fn encode_buffer<E: LineEncoder + ?Sized>(
    enc: &mut E,
    input: &[u8],
    out: &mut Vec<u8>,
) -> CompressStats {
    let mut stats = CompressStats::default();
    let mut batch: [&[u8]; crate::sp::BATCH_LINES] = [b""; crate::sp::BATCH_LINES];
    let mut filled = 0;
    for line in input.split(|&b| b == LINE_SEP) {
        if line.is_empty() {
            continue;
        }
        batch[filled] = line;
        filled += 1;
        if filled == batch.len() {
            stats.merge(&enc.encode_lines(&batch, out));
            filled = 0;
        }
    }
    if filled > 0 {
        stats.merge(&enc.encode_lines(&batch[..filled], out));
    }
    stats
}

/// Decompress a newline-separated buffer line by line. Shared by both
/// code widths.
pub fn decode_buffer<D: LineDecoder + ?Sized>(
    dec: &mut D,
    input: &[u8],
    out: &mut Vec<u8>,
) -> Result<DecompressStats, ZsmilesError> {
    let mut stats = DecompressStats::default();
    for line in input.split(|&b| b == LINE_SEP) {
        if line.is_empty() {
            continue;
        }
        let n = dec.decode_line(line, out)?;
        out.push(LINE_SEP);
        stats.lines += 1;
        stats.in_bytes += line.len();
        stats.out_bytes += n;
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// BaseEngine
// ---------------------------------------------------------------------------

/// The paper's one-byte codec as an [`Engine`].
#[derive(Clone, Copy)]
pub struct BaseEngine<'d> {
    dict: &'d Dictionary,
    algo: SpAlgorithm,
    preprocess: bool,
}

impl<'d> BaseEngine<'d> {
    pub fn new(dict: &'d Dictionary) -> Self {
        BaseEngine {
            dict,
            algo: SpAlgorithm::default(),
            preprocess: dict.preprocessed(),
        }
    }

    pub fn with_algorithm(mut self, algo: SpAlgorithm) -> Self {
        self.algo = algo;
        self
    }

    pub fn with_preprocess(mut self, on: bool) -> Self {
        self.preprocess = on;
        self
    }

    pub fn dictionary(&self) -> &'d Dictionary {
        self.dict
    }
}

impl Engine for BaseEngine<'_> {
    type Encoder<'e>
        = Compressor<'e>
    where
        Self: 'e;
    type Decoder<'e>
        = Decompressor<'e>
    where
        Self: 'e;

    fn name(&self) -> &'static str {
        "ZSMILES"
    }

    fn flavor(&self) -> DictFlavor {
        DictFlavor::Base
    }

    fn preprocessed(&self) -> bool {
        self.preprocess
    }

    fn encoder(&self) -> Compressor<'_> {
        Compressor::new(self.dict)
            .with_algorithm(self.algo)
            .with_preprocess(self.preprocess)
    }

    fn decoder(&self) -> Decompressor<'_> {
        Decompressor::new(self.dict)
    }

    fn write_dict(&self, w: &mut dyn Write) -> std::io::Result<()> {
        crate::dict::format::write_dict(self.dict, w)
    }
}

// ---------------------------------------------------------------------------
// WideEngine
// ---------------------------------------------------------------------------

/// The wide-code extension as an [`Engine`].
#[derive(Clone, Copy)]
pub struct WideEngine<'d> {
    dict: &'d WideDictionary,
    preprocess: bool,
}

impl<'d> WideEngine<'d> {
    pub fn new(dict: &'d WideDictionary) -> Self {
        WideEngine {
            dict,
            preprocess: dict.preprocessed(),
        }
    }

    pub fn with_preprocess(mut self, on: bool) -> Self {
        self.preprocess = on;
        self
    }

    pub fn dictionary(&self) -> &'d WideDictionary {
        self.dict
    }
}

impl Engine for WideEngine<'_> {
    type Encoder<'e>
        = WideCompressor<'e>
    where
        Self: 'e;
    type Decoder<'e>
        = WideDecompressor<'e>
    where
        Self: 'e;

    fn name(&self) -> &'static str {
        "ZSMILES-wide"
    }

    fn flavor(&self) -> DictFlavor {
        DictFlavor::Wide
    }

    fn preprocessed(&self) -> bool {
        self.preprocess
    }

    fn encoder(&self) -> WideCompressor<'_> {
        WideCompressor::new(self.dict).with_preprocess(self.preprocess)
    }

    fn decoder(&self) -> WideDecompressor<'_> {
        WideDecompressor::new(self.dict)
    }

    fn write_dict(&self, w: &mut dyn Write) -> std::io::Result<()> {
        crate::wide::write_wide_dict(self.dict, w)
    }
}

// ---------------------------------------------------------------------------
// DynEngine: the object-safe facade
// ---------------------------------------------------------------------------

/// The dyn-safe facade over [`Engine`].
///
/// [`Engine`] uses generic associated types for zero-cost worker minting,
/// which makes it impossible to name as `dyn Engine`. Every layer that
/// decides the code width at *run time* — the CLI, the `.zsa` container,
/// the out-of-core [`crate::reader::ArchiveReader`], GPU dictionary
/// staging, the baseline-comparison harness — used to re-match on
/// [`DictFlavor`] at each call site instead. `DynEngine` erases the GATs
/// behind boxed workers so those layers drive one object:
///
/// * every [`Engine`] is a `DynEngine` (blanket impl; workers get boxed);
/// * [`AnyDictionary`] is a `DynEngine` *directly*, minting workers that
///   borrow the dictionary itself — no intermediate engine value, which
///   is what lets long-lived holders (readers, iterators) keep a boxed
///   worker without self-referential lifetimes.
///
/// The boxed workers cost one vtable call per line; every per-line scratch
/// buffer is still reused, so steady-state throughput is unchanged. The
/// parallel entry points ([`crate::parallel::compress_parallel_dyn`] /
/// [`crate::parallel::decompress_parallel_dyn`]) mint one boxed worker per
/// [`crate::parallel::WorkerPool`] job and reuse it across every span that
/// job claims — worker minting is a per-call cost, never a per-span one.
pub trait DynEngine: Sync {
    /// Display name (bench axis labels).
    fn name(&self) -> &'static str;

    /// Which dictionary flavour this engine speaks.
    fn flavor(&self) -> DictFlavor;

    /// Whether encoding applies ring-ID preprocessing.
    fn preprocessed(&self) -> bool;

    /// A fresh boxed compressor worker (one per thread).
    fn boxed_encoder(&self) -> Box<dyn LineEncoder + '_>;

    /// A fresh boxed decompressor worker (one per thread).
    fn boxed_decoder(&self) -> Box<dyn LineDecoder + '_>;

    /// Serialize the dictionary in its readable text format.
    fn write_dict_dyn(&self, w: &mut dyn Write) -> std::io::Result<()>;

    /// Serialized dictionary size in bytes.
    fn dict_overhead(&self) -> usize {
        let mut buf = Vec::new();
        self.write_dict_dyn(&mut buf)
            .expect("Vec write cannot fail");
        buf.len()
    }
}

/// Every statically-typed engine is also a dynamic one.
impl<E: Engine> DynEngine for E {
    fn name(&self) -> &'static str {
        Engine::name(self)
    }

    fn flavor(&self) -> DictFlavor {
        Engine::flavor(self)
    }

    fn preprocessed(&self) -> bool {
        Engine::preprocessed(self)
    }

    fn boxed_encoder(&self) -> Box<dyn LineEncoder + '_> {
        Box::new(self.encoder())
    }

    fn boxed_decoder(&self) -> Box<dyn LineDecoder + '_> {
        Box::new(self.decoder())
    }

    fn write_dict_dyn(&self, w: &mut dyn Write) -> std::io::Result<()> {
        Engine::write_dict(self, w)
    }
}

/// Drives any [`DynEngine`] through [`textcomp::LineCodec`], the uniform
/// per-line interface of the baseline comparison harness — the fully
/// dynamic sibling of [`EngineCodec`] for callers that learn the flavour
/// at run time.
pub struct DynCodec<'e> {
    name: &'static str,
    enc: RefCell<Box<dyn LineEncoder + 'e>>,
    dec: RefCell<Box<dyn LineDecoder + 'e>>,
    overhead: usize,
}

impl<'e> DynCodec<'e> {
    pub fn new(engine: &'e dyn DynEngine) -> Self {
        DynCodec {
            name: engine.name(),
            enc: RefCell::new(engine.boxed_encoder()),
            dec: RefCell::new(engine.boxed_decoder()),
            overhead: engine.dict_overhead(),
        }
    }
}

impl textcomp::LineCodec for DynCodec<'_> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn compress_line(&self, line: &[u8], out: &mut Vec<u8>) {
        self.enc.borrow_mut().encode_line(line, out);
    }

    fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), String> {
        self.dec
            .borrow_mut()
            .decode_line(line, out)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn overhead_bytes(&self) -> usize {
        self.overhead
    }
}

// ---------------------------------------------------------------------------
// AnyDictionary: run-time flavour dispatch
// ---------------------------------------------------------------------------

/// Either dictionary flavour, for callers that learn the flavour at run
/// time (file magic, `.zsa` header tags). Boxed payloads: the two types
/// differ in size and this enum travels on stack frames.
#[derive(Debug, Clone)]
pub enum AnyDictionary {
    Base(Box<Dictionary>),
    Wide(Box<WideDictionary>),
}

impl AnyDictionary {
    /// Parse a serialized dictionary, sniffing the flavour from the magic
    /// line (`#zsmiles-dict v1` vs `#zsmiles-wide-dict v1`).
    pub fn read(bytes: &[u8]) -> Result<AnyDictionary, ZsmilesError> {
        let first_line = bytes.split(|&b| b == LINE_SEP).next().unwrap_or(b"");
        if first_line.starts_with(b"#zsmiles-wide-dict") {
            Ok(AnyDictionary::Wide(Box::new(crate::wide::read_wide_dict(
                bytes,
            )?)))
        } else {
            Ok(AnyDictionary::Base(Box::new(
                crate::dict::format::read_dict(bytes)?,
            )))
        }
    }

    /// Load from a file, sniffing the flavour.
    pub fn load(path: &Path) -> Result<AnyDictionary, ZsmilesError> {
        let bytes = std::fs::read(path)?;
        AnyDictionary::read(&bytes)
    }

    pub fn flavor(&self) -> DictFlavor {
        match self {
            AnyDictionary::Base(_) => DictFlavor::Base,
            AnyDictionary::Wide(_) => DictFlavor::Wide,
        }
    }

    pub fn preprocessed(&self) -> bool {
        match self {
            AnyDictionary::Base(d) => d.preprocessed(),
            AnyDictionary::Wide(d) => d.preprocessed(),
        }
    }

    /// Serialize in the readable text format of the underlying flavour.
    pub fn write(&self, w: &mut dyn Write) -> std::io::Result<()> {
        match self {
            AnyDictionary::Base(d) => crate::dict::format::write_dict(d, w),
            AnyDictionary::Wide(d) => crate::wide::write_wide_dict(d, w),
        }
    }

    /// Save to a `.dct` file in the magic-tagged text format of the
    /// underlying flavour — the inverse of [`AnyDictionary::load`], so
    /// trained and loaded dictionaries share one save/load surface.
    pub fn save(&self, path: &Path) -> Result<(), ZsmilesError> {
        let f = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(f);
        self.write(&mut w)?;
        use std::io::Write as _;
        w.flush()?;
        Ok(())
    }

    /// View as the object-safe engine facade.
    pub fn as_dyn(&self) -> &dyn DynEngine {
        self
    }

    /// Compress a newline-separated buffer on `threads` workers of the
    /// persistent process-wide [`crate::parallel::WorkerPool`].
    pub fn compress_parallel(&self, input: &[u8], threads: usize) -> (Vec<u8>, CompressStats) {
        crate::parallel::compress_parallel_dyn(self, input, threads)
    }

    /// Decompress a newline-separated buffer on `threads` workers.
    pub fn decompress_parallel(
        &self,
        input: &[u8],
        threads: usize,
    ) -> Result<(Vec<u8>, DecompressStats), ZsmilesError> {
        crate::parallel::decompress_parallel_dyn(self, input, threads)
    }

    /// Decompress a single line (no newline), appending to `out`.
    pub fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<usize, ZsmilesError> {
        self.boxed_decoder().decode_line(line, out)
    }
}

/// The run-time-flavoured dictionary *is* an engine: workers borrow the
/// dictionary directly (not an intermediate engine value), so a reader or
/// iterator can hold a boxed worker for as long as it holds the
/// dictionary. This impl is the one place in the crate that matches on
/// the flavour to mint workers.
impl DynEngine for AnyDictionary {
    fn name(&self) -> &'static str {
        match self {
            AnyDictionary::Base(_) => "ZSMILES",
            AnyDictionary::Wide(_) => "ZSMILES-wide",
        }
    }

    fn flavor(&self) -> DictFlavor {
        AnyDictionary::flavor(self)
    }

    fn preprocessed(&self) -> bool {
        AnyDictionary::preprocessed(self)
    }

    fn boxed_encoder(&self) -> Box<dyn LineEncoder + '_> {
        match self {
            // Worker defaults mirror BaseEngine::new / WideEngine::new:
            // preprocessing follows the dictionary's training setting.
            AnyDictionary::Base(d) => Box::new(Compressor::new(d)),
            AnyDictionary::Wide(d) => Box::new(WideCompressor::new(d)),
        }
    }

    fn boxed_decoder(&self) -> Box<dyn LineDecoder + '_> {
        match self {
            AnyDictionary::Base(d) => Box::new(Decompressor::new(d)),
            AnyDictionary::Wide(d) => Box::new(WideDecompressor::new(d)),
        }
    }

    fn write_dict_dyn(&self, w: &mut dyn Write) -> std::io::Result<()> {
        self.write(w)
    }
}

// ---------------------------------------------------------------------------
// textcomp::LineCodec adapter
// ---------------------------------------------------------------------------

/// Drives any [`Engine`] through [`textcomp::LineCodec`], the uniform
/// per-line interface of the baseline comparison harness. Interior
/// mutability because `LineCodec` methods take `&self` while engine
/// workers keep scratch state.
pub struct EngineCodec<'e, E: Engine + 'e> {
    name: &'static str,
    enc: RefCell<E::Encoder<'e>>,
    dec: RefCell<E::Decoder<'e>>,
    overhead: usize,
}

impl<'e, E: Engine> EngineCodec<'e, E> {
    pub fn new(engine: &'e E) -> Self {
        EngineCodec {
            name: engine.name(),
            enc: RefCell::new(engine.encoder()),
            dec: RefCell::new(engine.decoder()),
            overhead: engine.dict_overhead_bytes(),
        }
    }
}

impl<E: Engine> textcomp::LineCodec for EngineCodec<'_, E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn compress_line(&self, line: &[u8], out: &mut Vec<u8>) {
        self.enc.borrow_mut().encode_line(line, out);
    }

    fn decompress_line(&self, line: &[u8], out: &mut Vec<u8>) -> Result<(), String> {
        self.dec
            .borrow_mut()
            .decode_line(line, out)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn overhead_bytes(&self) -> usize {
        self.overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::builder::DictBuilder;
    use crate::wide::WideDictBuilder;
    use textcomp::LineCodec;

    fn corpus() -> Vec<&'static [u8]> {
        let lines: [&[u8]; 4] = [
            b"COc1cc(C=O)ccc1O",
            b"C1=CC=C(C=C1)C(=O)CC(=O)C2=CC=CC=C2",
            b"CC(C)Cc1ccc(cc1)C(C)C(=O)O",
            b"CCN(CC)CC",
        ];
        lines.iter().copied().cycle().take(60).collect()
    }

    fn base_dict() -> Dictionary {
        DictBuilder {
            min_count: 2,
            preprocess: false,
            ..Default::default()
        }
        .train(corpus())
        .unwrap()
    }

    fn wide_dict() -> WideDictionary {
        WideDictBuilder {
            base: DictBuilder {
                min_count: 2,
                preprocess: false,
                ..Default::default()
            },
            wide_size: 32,
        }
        .train(corpus())
        .unwrap()
    }

    /// A width-independent round trip, written once against the trait —
    /// the property the whole refactor exists to make expressible.
    fn roundtrip_via_trait<E: Engine>(engine: &E) {
        let mut enc = engine.encoder();
        let mut dec = engine.decoder();
        for line in corpus() {
            let mut z = Vec::new();
            let (n, failed) = enc.encode_line(line, &mut z);
            assert_eq!(n, z.len());
            assert!(!failed);
            let mut back = Vec::new();
            dec.decode_line(&z, &mut back).unwrap();
            assert_eq!(back, line, "{}", engine.name());
        }
    }

    #[test]
    fn both_engines_round_trip_through_the_trait() {
        let bd = base_dict();
        roundtrip_via_trait(&BaseEngine::new(&bd));
        let wd = wide_dict();
        roundtrip_via_trait(&WideEngine::new(&wd));
    }

    #[test]
    fn buffer_loop_is_width_independent() {
        let input: Vec<u8> = corpus()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let bd = base_dict();
        let wd = wide_dict();
        for (flavor, z, stats) in [
            {
                let e = BaseEngine::new(&bd);
                let mut z = Vec::new();
                let s = encode_buffer(&mut e.encoder(), &input, &mut z);
                (DictFlavor::Base, z, s)
            },
            {
                let e = WideEngine::new(&wd);
                let mut z = Vec::new();
                let s = encode_buffer(&mut e.encoder(), &input, &mut z);
                (DictFlavor::Wide, z, s)
            },
        ] {
            assert_eq!(stats.lines, 60, "{flavor:?}");
            assert!(stats.ratio() < 1.0, "{flavor:?}");
            let mut back = Vec::new();
            let ds = match flavor {
                DictFlavor::Base => {
                    decode_buffer(&mut BaseEngine::new(&bd).decoder(), &z, &mut back).unwrap()
                }
                DictFlavor::Wide => {
                    decode_buffer(&mut WideEngine::new(&wd).decoder(), &z, &mut back).unwrap()
                }
            };
            assert_eq!(back, input, "{flavor:?}");
            assert_eq!(ds.lines, stats.lines);
        }
    }

    #[test]
    fn flavor_tags_round_trip() {
        for f in [DictFlavor::Base, DictFlavor::Wide] {
            assert_eq!(DictFlavor::from_tag(f.tag()), Some(f));
        }
        assert_eq!(DictFlavor::from_tag(0), None);
        assert_eq!(DictFlavor::from_tag(3), None);
    }

    #[test]
    fn any_dictionary_sniffs_both_flavours() {
        let bd = base_dict();
        let mut buf = Vec::new();
        BaseEngine::new(&bd).write_dict(&mut buf).unwrap();
        assert!(matches!(
            AnyDictionary::read(&buf).unwrap(),
            AnyDictionary::Base(_)
        ));

        let wd = wide_dict();
        let mut buf = Vec::new();
        WideEngine::new(&wd).write_dict(&mut buf).unwrap();
        let any = AnyDictionary::read(&buf).unwrap();
        assert!(matches!(any, AnyDictionary::Wide(_)));
        assert_eq!(any.flavor(), DictFlavor::Wide);

        assert!(AnyDictionary::read(b"not a dictionary").is_err());
    }

    #[test]
    fn any_dictionary_compresses_and_decompresses() {
        let input: Vec<u8> = corpus()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let wd = wide_dict();
        let any = AnyDictionary::Wide(Box::new(wd));
        let (z, cs) = any.compress_parallel(&input, 3);
        assert_eq!(cs.lines, 60);
        let (back, ds) = any.decompress_parallel(&z, 2).unwrap();
        assert_eq!(back, input);
        assert_eq!(ds.lines, 60);
        // Single-line access too.
        let first = z.split(|&b| b == b'\n').next().unwrap();
        let mut one = Vec::new();
        any.decompress_line(first, &mut one).unwrap();
        assert_eq!(one, corpus()[0]);
    }

    #[test]
    fn line_codec_adapter_matches_baseline_interface() {
        let bd = base_dict();
        let engine = BaseEngine::new(&bd);
        let codec = EngineCodec::new(&engine);
        assert_eq!(codec.name(), "ZSMILES");
        assert!(codec.overhead_bytes() > 0, "dictionary bytes are charged");
        let input: Vec<u8> = corpus()
            .iter()
            .flat_map(|l| l.iter().copied().chain(std::iter::once(b'\n')))
            .collect();
        let (out, inp) = textcomp::line_codec_ratio(&codec, &input);
        assert!(out < inp + codec.overhead_bytes());
        // Round trip through the dyn interface.
        let dyn_codec: &dyn LineCodec = &codec;
        let mut z = Vec::new();
        dyn_codec.compress_line(b"COc1cc(C=O)ccc1O", &mut z);
        let mut back = Vec::new();
        dyn_codec.decompress_line(&z, &mut back).unwrap();
        assert_eq!(back, b"COc1cc(C=O)ccc1O");
    }
}
